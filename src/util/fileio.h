// Atomic, interrupt-safe file publication.
//
// A scraper reading the daemon's stats file, or a restarting daemon reading
// its own checkpoint, must never observe a half-written file. The only
// portable way to get that on POSIX is write-to-temp + rename: rename(2) is
// atomic within a filesystem, so readers see either the old complete file or
// the new complete file, never a torn one. write_file_atomic wraps that
// dance (unique temp name beside the target, EINTR-retried writes, fsync
// before rename so a power cut cannot publish an empty file).
#pragma once

#include <cerrno>
#include <cstdio>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace rloop::util {

// Writes `content` to `path` so that any concurrent reader sees either the
// previous complete content or the new complete content. Returns false with
// a message in *error (when non-null) on failure; the target is untouched
// on failure.
inline bool write_file_atomic(const std::string& path,
                              const std::string& content,
                              std::string* error = nullptr) {
#if defined(__unix__) || defined(__APPLE__)
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  int fd = -1;
  do {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (error) *error = "cannot create " + tmp;
    return false;
  }
  std::size_t written = 0;
  while (written < content.size()) {
    const ::ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error) *error = "write failed for " + tmp;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  ::close(fd);
  if (rc != 0) {
    if (error) *error = "fsync failed for " + tmp;
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = "rename failed for " + path;
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
#else
  // No atomic rename guarantee off-POSIX; best effort via stdio.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    if (error) *error = "cannot create " + tmp;
    return false;
  }
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = "cannot publish " + path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
#endif
}

}  // namespace rloop::util
