// Failpoint injection: deterministic fault sites compiled into the hot
// seams, free when compiled out.
//
// A failpoint is a named site — `if (RLOOP_FAILPOINT("daemon.ring.push"))` —
// where production code asks "should I fail here, on purpose?". In a normal
// build the macro expands to the literal `false` and the optimizer deletes
// the branch: the framework costs nothing unless the build defines
// RLOOP_FAILPOINTS (cmake -DRLOOP_FAILPOINTS=ON), which CI's crash-recovery
// job does and release builds never do.
//
// With failpoints compiled in, sites stay inert until armed at runtime,
// either programmatically (FailpointRegistry::arm) or through the
// RLOOP_FAILPOINTS_SPEC environment variable read at first use:
//
//   RLOOP_FAILPOINTS_SPEC='pcap.read=trip@nth:100;daemon.epoch=kill@nth:40'
//
// spec      := entry (';' entry)*
// entry     := name '=' 'off' | name '=' action ['@' trigger]
// action    := 'trip'               site-defined failure (error return,
//                                   bad_alloc, truncation — see the site)
//            | 'kill'               raise SIGKILL at the chosen instant:
//                                   the crash-recovery soak's hammer
// trigger   := 'always'             every evaluation (default)
//            | 'nth:' N             only the Nth evaluation (1-based)
//            | 'prob:' P            each evaluation with probability P,
//                                   from a fixed-seed splitmix64 stream so
//                                   runs are reproducible
//
// Every evaluation and trip is counted per site (hits()/trips()); the daemon
// exports trips as rloop_failpoint_trips_total{name=...} so an armed
// failpoint is visible in the same stats channel operators already scrape.
//
// The registered catalog (kept in sync with DESIGN.md §9):
//   daemon.ring.push      producer: the push is treated as failed (drop path)
//   daemon.ring.pop       consumer: the drained batch is discarded unseen
//   daemon.epoch          per-epoch anchor; no-op on trip (kill target)
//   daemon.config.reload  reload treated as an unreadable file
//   daemon.governor.degrade  injected overload: escalate straight to
//                            sample_suspects (the /readyz 503 drill)
//   daemon.checkpoint.write  checkpoint write fails (counted, state kept)
//   streaming.insert      detector insert throws std::bad_alloc
//   pcap.read             record read treated as a truncated capture
//   pcap.mmap             mmap path reports failure; ifstream fallback runs
//   arena.alloc           Arena chunk growth throws std::bad_alloc
//   flat_map.grow         FlatMap rehash/growth throws std::bad_alloc
#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rloop::util {

enum class FailpointAction : int { off = 0, trip = 1, kill = 2 };
enum class FailpointTrigger : int { always = 0, nth = 1, prob = 2 };

struct FailpointConfig {
  FailpointAction action = FailpointAction::off;
  FailpointTrigger trigger = FailpointTrigger::always;
  std::uint64_t nth = 1;  // 1-based evaluation index for trigger nth
  double probability = 1.0;
};

class FailpointSite {
 public:
  explicit FailpointSite(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t trips() const {
    return trips_.load(std::memory_order_relaxed);
  }

  // Arm/disarm are rare (test setup, env parse); evaluate() is the hot path
  // and reads only relaxed atomics.
  void arm(const FailpointConfig& cfg) {
    trigger_.store(static_cast<int>(cfg.trigger), std::memory_order_relaxed);
    nth_.store(cfg.nth, std::memory_order_relaxed);
    prob_scaled_.store(
        cfg.probability >= 1.0
            ? ~std::uint64_t{0}
            : static_cast<std::uint64_t>(cfg.probability * 1.8446744e19),
        std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
    // Action last: a concurrent evaluate() seeing the new action also sees
    // a fully-written trigger (single-writer arm; relaxed is enough for the
    // test/ops paths that arm).
    action_.store(static_cast<int>(cfg.action), std::memory_order_release);
  }
  void disarm() {
    action_.store(static_cast<int>(FailpointAction::off),
                  std::memory_order_release);
  }

  // True when the site should fail now. kill action never returns.
  bool evaluate() {
    const int action = action_.load(std::memory_order_acquire);
    if (action == static_cast<int>(FailpointAction::off)) return false;
    const std::uint64_t hit = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire = false;
    switch (static_cast<FailpointTrigger>(
        trigger_.load(std::memory_order_relaxed))) {
      case FailpointTrigger::always:
        fire = true;
        break;
      case FailpointTrigger::nth:
        fire = hit == nth_.load(std::memory_order_relaxed);
        break;
      case FailpointTrigger::prob:
        fire = next_random() < prob_scaled_.load(std::memory_order_relaxed);
        break;
    }
    if (!fire) return false;
    trips_.fetch_add(1, std::memory_order_relaxed);
    if (action == static_cast<int>(FailpointAction::kill)) {
#if defined(SIGKILL)
      std::raise(SIGKILL);
#endif
      std::abort();  // SIGKILL cannot be handled; abort is the fallback
    }
    return true;
  }

 private:
  // splitmix64 over an atomically bumped counter: thread-safe without locks
  // and reproducible (fixed seed) so prob-armed runs replay identically.
  std::uint64_t next_random() {
    std::uint64_t z =
        rng_.fetch_add(0x9E3779B97F4A7C15ULL, std::memory_order_relaxed) +
        0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  std::string name_;
  std::atomic<int> action_{static_cast<int>(FailpointAction::off)};
  std::atomic<int> trigger_{static_cast<int>(FailpointTrigger::always)};
  std::atomic<std::uint64_t> nth_{1};
  std::atomic<std::uint64_t> prob_scaled_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> trips_{0};
  std::atomic<std::uint64_t> rng_{0x8f1bbcdcbfa53e0bULL};
};

class FailpointRegistry {
 public:
  static FailpointRegistry& instance() {
    static FailpointRegistry registry;
    return registry;
  }

  // Find-or-create; the returned reference is stable for process lifetime
  // (sites are never removed), so call sites cache it in a function-local
  // static and pay the lock once.
  FailpointSite& site(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = sites_[name];
    if (!slot) slot = std::make_unique<FailpointSite>(name);
    return *slot;
  }

  // Parses one entry's right-hand side ("trip@nth:3", "kill", "off",
  // "trip@prob:0.01") and arms `name`. False + *error on bad syntax.
  bool arm(const std::string& name, const std::string& spec,
           std::string* error) {
    FailpointConfig cfg;
    if (!parse_spec(spec, cfg, error)) return false;
    site(name).arm(cfg);
    return true;
  }

  // Full spec string: "a=trip;b=kill@nth:40". Applied left to right;
  // stops at the first malformed entry.
  bool apply_spec(const std::string& spec, std::string* error) {
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t end = spec.find(';', pos);
      if (end == std::string::npos) end = spec.size();
      const std::string entry = spec.substr(pos, end - pos);
      pos = end + 1;
      if (entry.empty()) continue;
      const auto eq = entry.find('=');
      if (eq == std::string::npos || eq == 0) {
        if (error) *error = "failpoint spec: expected name=action in '" +
                            entry + "'";
        return false;
      }
      if (!arm(entry.substr(0, eq), entry.substr(eq + 1), error)) return false;
    }
    return true;
  }

  void disarm_all() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, site] : sites_) site->disarm();
  }

  // (name, trips) for every site evaluated so far; trip counts feed the
  // rloop_failpoint_trips_total telemetry export.
  std::vector<std::pair<std::string, std::uint64_t>> trip_counts() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(sites_.size());
    for (const auto& [name, site] : sites_) {
      out.emplace_back(name, site->trips());
    }
    return out;
  }

  static bool parse_spec(const std::string& spec, FailpointConfig& cfg,
                         std::string* error) {
    std::string action = spec;
    std::string trigger = "always";
    const auto at = spec.find('@');
    if (at != std::string::npos) {
      action = spec.substr(0, at);
      trigger = spec.substr(at + 1);
    }
    if (action == "off") {
      cfg.action = FailpointAction::off;
    } else if (action == "trip") {
      cfg.action = FailpointAction::trip;
    } else if (action == "kill") {
      cfg.action = FailpointAction::kill;
    } else {
      if (error) *error = "failpoint spec: unknown action '" + action + "'";
      return false;
    }
    if (trigger == "always") {
      cfg.trigger = FailpointTrigger::always;
    } else if (trigger.rfind("nth:", 0) == 0) {
      cfg.trigger = FailpointTrigger::nth;
      char* end = nullptr;
      cfg.nth = std::strtoull(trigger.c_str() + 4, &end, 10);
      if (end == trigger.c_str() + 4 || *end != '\0' || cfg.nth == 0) {
        if (error) *error = "failpoint spec: bad nth in '" + trigger + "'";
        return false;
      }
    } else if (trigger.rfind("prob:", 0) == 0) {
      cfg.trigger = FailpointTrigger::prob;
      char* end = nullptr;
      cfg.probability = std::strtod(trigger.c_str() + 5, &end);
      if (end == trigger.c_str() + 5 || *end != '\0' ||
          cfg.probability < 0.0 || cfg.probability > 1.0) {
        if (error) *error = "failpoint spec: bad prob in '" + trigger + "'";
        return false;
      }
    } else {
      if (error) *error = "failpoint spec: unknown trigger '" + trigger + "'";
      return false;
    }
    return true;
  }

 private:
  FailpointRegistry() {
    if (const char* env = std::getenv("RLOOP_FAILPOINTS_SPEC")) {
      std::string error;
      if (!apply_spec(env, &error)) {
        // A typo in the env var must not silently disable the injection a
        // test relies on; failing loudly here is the safer default.
        std::fprintf(stderr, "RLOOP_FAILPOINTS_SPEC: %s\n", error.c_str());
        std::abort();
      }
    }
  }

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<FailpointSite>> sites_;
};

}  // namespace rloop::util

#if defined(RLOOP_FAILPOINTS)
// Evaluates the named site; `name` must be a string literal. The function-
// local static caches the registry lookup, so a disarmed site costs one
// relaxed atomic load per evaluation.
#define RLOOP_FAILPOINT(name)                                       \
  ([]() -> bool {                                                   \
    static ::rloop::util::FailpointSite& rloop_fp_site_ =           \
        ::rloop::util::FailpointRegistry::instance().site(name);    \
    return rloop_fp_site_.evaluate();                               \
  }())
#else
#define RLOOP_FAILPOINT(name) false
#endif
