// Runtime-dispatched SIMD kernels for the pipeline's columnar hot loops.
//
// Each kernel exists in three spellings:
//   <name>_scalar  portable reference implementation — the semantics;
//   <name>_avx2    AVX2 implementation, compiled with a per-function target
//                  attribute (no global -mavx2, so the binary still runs on
//                  pre-AVX2 machines); falls back to the scalar body when the
//                  build has no x86 SIMD at all;
//   <name>         dispatcher: picks AVX2 when the CPU has it, else scalar.
//
// Every AVX2 kernel is bit-identical to its scalar twin — same outputs for
// every input, including remainder lanes and unaligned starts — which
// tests/test_simd.cc checks differentially on synthetic and fuzz-seeded
// columns, and which lets the detection pipeline's differential harness
// (serial vs parallel vs detect_reference) double as the SIMD correctness
// gate. Building with -DRLOOP_NO_SIMD=ON compiles the dispatchers to the
// scalar bodies unconditionally; CI runs the fast tier in that mode so the
// fallback cannot rot.
//
// Dispatch happens per call on a cached CPUID probe (one predictable branch);
// kernels are only ever invoked on whole columns, so dispatch cost is noise.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rloop::util::simd {

// True when the running CPU supports AVX2 and the build did not force
// scalar (-DRLOOP_NO_SIMD=ON). Probed once, cached.
bool avx2_available();

// "avx2" or "scalar" — what the dispatchers will pick; for logs and bench
// metadata.
const char* active_backend();

// dst24 extraction: out[i] = in[i] & 0xFFFFFF00 (a /24 prefix address is the
// destination with the low byte cleared). in/out may alias only if equal.
void mask_lo8_zero_scalar(const std::uint32_t* in, std::uint32_t* out,
                          std::size_t n);
void mask_lo8_zero_avx2(const std::uint32_t* in, std::uint32_t* out,
                        std::size_t n);
void mask_lo8_zero(const std::uint32_t* in, std::uint32_t* out, std::size_t n);

// Shard assignment over a key-hash column: out[i] = mix64(in[i]) & mask,
// where mask = num_shards - 1 (shard counts are powers of two, so the
// modulo in core::shard_of_key_hash is exactly this mask). The mix is the
// splitmix64 finalizer from core/parallel.h, lane-for-lane.
void mix64_mask_scalar(const std::uint64_t* in, std::uint32_t* out,
                       std::size_t n, std::uint64_t mask);
void mix64_mask_avx2(const std::uint64_t* in, std::uint32_t* out,
                     std::size_t n, std::uint64_t mask);
void mix64_mask(const std::uint64_t* in, std::uint32_t* out, std::size_t n,
                std::uint64_t mask);

// Key-hash compare: index of the first position where a[i] != b[i], or n
// when the ranges are equal. The SIMD-vs-scalar differential harness and the
// column equality checks use this to diff whole hash columns at once.
std::size_t mismatch_u64_scalar(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n);
std::size_t mismatch_u64_avx2(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n);
std::size_t mismatch_u64(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n);

// TTL-delta histogram accumulation: for every adjacent pair, when
// ttl[i-1] > ttl[i], increments counts256[ttl[i-1] - ttl[i]]. `counts256`
// must have 256 entries; it is accumulated into, not cleared. This is the
// inner loop of ReplicaStream::dominant_ttl_delta (the loop hop-count mode).
void ttl_delta_hist_scalar(const std::uint8_t* ttl, std::size_t n,
                           std::uint32_t* counts256);
void ttl_delta_hist_avx2(const std::uint8_t* ttl, std::size_t n,
                         std::uint32_t* counts256);
void ttl_delta_hist(const std::uint8_t* ttl, std::size_t n,
                    std::uint32_t* counts256);

}  // namespace rloop::util::simd
