#include "util/simd.h"

// AVX2 bodies are compiled with a per-function target attribute instead of a
// global -mavx2 flag: the rest of the binary stays baseline-x86_64, the
// kernels are still vectorized, and the runtime dispatch below keeps the
// binary correct on CPUs without AVX2. RLOOP_NO_SIMD (CI's forced-scalar
// job) compiles the _avx2 symbols as forwards to the scalar bodies so every
// caller links identically in both modes.
#if !defined(RLOOP_NO_SIMD) && defined(__x86_64__) && defined(__GNUC__)
#define RLOOP_SIMD_X86 1
#include <immintrin.h>
#else
#define RLOOP_SIMD_X86 0
#endif

namespace rloop::util::simd {

namespace {

// splitmix64 finalizer, kept textually in sync with core::mix64 (the SIMD
// differential tests would catch drift immediately).
inline std::uint64_t mix64_ref(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool avx2_available() {
#if RLOOP_SIMD_X86
  static const bool available = __builtin_cpu_supports("avx2") != 0;
  return available;
#else
  return false;
#endif
}

const char* active_backend() { return avx2_available() ? "avx2" : "scalar"; }

// ---------------------------------------------------------------------------
// dst24 extraction

void mask_lo8_zero_scalar(const std::uint32_t* in, std::uint32_t* out,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = in[i] & 0xFFFFFF00u;
}

#if RLOOP_SIMD_X86
__attribute__((target("avx2"))) void mask_lo8_zero_avx2(const std::uint32_t* in,
                                                        std::uint32_t* out,
                                                        std::size_t n) {
  const __m256i mask = _mm256_set1_epi32(static_cast<int>(0xFFFFFF00u));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(v, mask));
  }
  for (; i < n; ++i) out[i] = in[i] & 0xFFFFFF00u;
}
#else
void mask_lo8_zero_avx2(const std::uint32_t* in, std::uint32_t* out,
                        std::size_t n) {
  mask_lo8_zero_scalar(in, out, n);
}
#endif

void mask_lo8_zero(const std::uint32_t* in, std::uint32_t* out,
                   std::size_t n) {
  if (avx2_available()) {
    mask_lo8_zero_avx2(in, out, n);
  } else {
    mask_lo8_zero_scalar(in, out, n);
  }
}

// ---------------------------------------------------------------------------
// Shard assignment: splitmix64 finalizer + power-of-two mask

void mix64_mask_scalar(const std::uint64_t* in, std::uint32_t* out,
                       std::size_t n, std::uint64_t mask) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>(mix64_ref(in[i]) & mask);
  }
}

#if RLOOP_SIMD_X86
namespace {

// 64x64 -> low-64 multiply, emulated from 32x32 -> 64 lane products (AVX2
// has no _mm256_mullo_epi64): lo + ((a_hi*b_lo + a_lo*b_hi) << 32).
__attribute__((target("avx2"))) inline __m256i mullo_epi64(__m256i a,
                                                           __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i xorshift64(__m256i x, int s) {
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, s));
}

}  // namespace

__attribute__((target("avx2"))) void mix64_mask_avx2(const std::uint64_t* in,
                                                     std::uint32_t* out,
                                                     std::size_t n,
                                                     std::uint64_t mask) {
  const __m256i c1 = _mm256_set1_epi64x(
      static_cast<long long>(0xbf58476d1ce4e5b9ULL));
  const __m256i c2 = _mm256_set1_epi64x(
      static_cast<long long>(0x94d049bb133111ebULL));
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  // Gathers each 64-bit lane's low dword into the lower 128 bits.
  const __m256i pack_idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    x = mullo_epi64(xorshift64(x, 30), c1);
    x = mullo_epi64(xorshift64(x, 27), c2);
    x = _mm256_and_si256(xorshift64(x, 31), vmask);
    const __m256i packed = _mm256_permutevar8x32_epi32(x, pack_idx);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm256_castsi256_si128(packed));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>(mix64_ref(in[i]) & mask);
  }
}
#else
void mix64_mask_avx2(const std::uint64_t* in, std::uint32_t* out,
                     std::size_t n, std::uint64_t mask) {
  mix64_mask_scalar(in, out, n, mask);
}
#endif

void mix64_mask(const std::uint64_t* in, std::uint32_t* out, std::size_t n,
                std::uint64_t mask) {
  if (avx2_available()) {
    mix64_mask_avx2(in, out, n, mask);
  } else {
    mix64_mask_scalar(in, out, n, mask);
  }
}

// ---------------------------------------------------------------------------
// Key-hash column compare

std::size_t mismatch_u64_scalar(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return i;
  }
  return n;
}

#if RLOOP_SIMD_X86
__attribute__((target("avx2"))) std::size_t mismatch_u64_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const int eq = _mm256_movemask_epi8(_mm256_cmpeq_epi64(va, vb));
    if (eq != -1) {
      for (std::size_t j = i; j < i + 4; ++j) {
        if (a[j] != b[j]) return j;
      }
    }
  }
  for (; i < n; ++i) {
    if (a[i] != b[i]) return i;
  }
  return n;
}
#else
std::size_t mismatch_u64_avx2(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  return mismatch_u64_scalar(a, b, n);
}
#endif

std::size_t mismatch_u64(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n) {
  return avx2_available() ? mismatch_u64_avx2(a, b, n)
                          : mismatch_u64_scalar(a, b, n);
}

// ---------------------------------------------------------------------------
// TTL-delta histogram

void ttl_delta_hist_scalar(const std::uint8_t* ttl, std::size_t n,
                           std::uint32_t* counts256) {
  for (std::size_t i = 1; i < n; ++i) {
    if (ttl[i - 1] > ttl[i]) {
      ++counts256[static_cast<std::uint8_t>(ttl[i - 1] - ttl[i])];
    }
  }
}

#if RLOOP_SIMD_X86
__attribute__((target("avx2"))) void ttl_delta_hist_avx2(
    const std::uint8_t* ttl, std::size_t n, std::uint32_t* counts256) {
  // The histogram scatter is inherently scalar (lanes may collide on one
  // bucket), so the vector part computes 32 deltas and a greater-than mask
  // per iteration and the scalar part only touches lanes with positive
  // deltas — which skips the heavy-duplicate case (delta 0) wholesale.
  std::size_t i = 1;
  alignas(32) std::uint8_t diff[32];
  for (; i + 32 <= n; i += 32) {
    const __m256i prev =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ttl + i - 1));
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ttl + i));
    // Unsigned prev > cur: max(prev, cur) == prev, and prev != cur.
    const __m256i eq = _mm256_cmpeq_epi8(prev, cur);
    const __m256i ge = _mm256_cmpeq_epi8(_mm256_max_epu8(prev, cur), prev);
    const __m256i gt = _mm256_andnot_si256(eq, ge);
    _mm256_store_si256(reinterpret_cast<__m256i*>(diff),
                       _mm256_sub_epi8(prev, cur));
    std::uint32_t lanes =
        static_cast<std::uint32_t>(_mm256_movemask_epi8(gt));
    while (lanes != 0) {
      const int lane = __builtin_ctz(lanes);
      ++counts256[diff[lane]];
      lanes &= lanes - 1;
    }
  }
  for (; i < n; ++i) {
    if (ttl[i - 1] > ttl[i]) {
      ++counts256[static_cast<std::uint8_t>(ttl[i - 1] - ttl[i])];
    }
  }
}
#else
void ttl_delta_hist_avx2(const std::uint8_t* ttl, std::size_t n,
                         std::uint32_t* counts256) {
  ttl_delta_hist_scalar(ttl, n, counts256);
}
#endif

void ttl_delta_hist(const std::uint8_t* ttl, std::size_t n,
                    std::uint32_t* counts256) {
  if (avx2_available()) {
    ttl_delta_hist_avx2(ttl, n, counts256);
  } else {
    ttl_delta_hist_scalar(ttl, n, counts256);
  }
}

}  // namespace rloop::util::simd
