// A small fixed-size worker pool for the sharded detection pipeline.
//
// The pool is deliberately minimal: a mutex-protected FIFO of
// std::function tasks, N workers, and a blocking parallel_for. Shard fan-out
// in this repo is coarse (tens of tasks, each scanning thousands to millions
// of records), so queue contention is irrelevant and a lock-free deque would
// buy nothing. Determinism note: the pool never influences *what* the
// pipeline computes — sharded stages partition work by stable hashes and
// merge results with total-order sorts — it only influences *when* each
// shard runs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace rloop::util {

class ThreadPool {
 public:
  // Spawns max(1, num_threads) workers. `registry` (optional) receives a
  // queue-depth gauge (rloop_threadpool_queue_depth) and a submitted-task
  // counter (rloop_threadpool_tasks_total). `trace` (optional) receives one
  // span per parallel_for task, named by the call site, recorded on the
  // worker thread that ran it — so a Perfetto view shows each shard in its
  // worker's lane.
  explicit ThreadPool(std::size_t num_threads,
                      telemetry::Registry* registry = nullptr,
                      telemetry::TraceSink* trace = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task; it runs on some worker, eventually. Tasks must not
  // throw (submit-side exceptions terminate); use parallel_for for
  // exception-propagating fan-out.
  void submit(std::function<void()> task);

  // Runs body(0) .. body(n-1) across the pool and blocks until all have
  // finished. The first exception thrown by any body is rethrown here after
  // the remaining indices drain (they still run; shard work is independent).
  // Internally the fan-out enqueues min(n, size()) runner tasks that claim
  // indices from a shared atomic counter — per-call queue traffic is
  // bounded by the worker count, not by n, so a million-index fan-out costs
  // the same synchronization as a sixteen-index one. `span_name` labels
  // each index's span when a trace sink is attached; it must be a string
  // literal (spans keep the pointer, not a copy). Pass nullptr to suppress
  // per-index spans — callers that emit their own finer-grained spans
  // inside the body (the staged dataflow) use that to keep those spans at
  // depth 0 in the worker's lane.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    const char* span_name = "task");

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  telemetry::Gauge* m_queue_depth_ = nullptr;
  telemetry::Counter* m_tasks_ = nullptr;
  telemetry::TraceSink* trace_ = nullptr;
};

}  // namespace rloop::util
