// Bump/arena allocator for per-shard detection state.
//
// The replica detector opens one candidate stream per first-seen header —
// millions of tiny, identically-sized objects whose lifetime all ends at the
// same instant (when the shard finishes). A general-purpose heap pays
// malloc/free per object plus per-object headers for that pattern; the arena
// pays one pointer bump per allocation and frees everything wholesale when
// the owning state is destroyed.
//
// Restrictions (enforced where possible):
//  - Only trivially destructible payloads: the arena never runs destructors.
//  - No per-object free. Memory is reclaimed by destroying (or release()ing)
//    the arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/failpoint.h"

namespace rloop::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < 64 ? 64 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Raw storage, suitably aligned. `align` must be a power of two.
  void* allocate(std::size_t bytes, std::size_t align) {
    auto p = reinterpret_cast<std::uintptr_t>(cur_);
    std::uintptr_t aligned = (p + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    if (aligned + bytes > reinterpret_cast<std::uintptr_t>(end_)) {
      grow(bytes + align);
      p = reinterpret_cast<std::uintptr_t>(cur_);
      aligned = (p + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    }
    cur_ = reinterpret_cast<std::byte*>(aligned + bytes);
    bytes_allocated_ += bytes;
    return reinterpret_cast<void*>(aligned);
  }

  // Constructs one T in the arena. T must be trivially destructible — the
  // arena frees storage without running destructors.
  template <class T, class... Args>
  T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return ::new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  // Default-initialized array of n T (uninitialized for trivial T).
  template <class T>
  T* allocate_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return ::new (allocate(sizeof(T) * n, alignof(T))) T[n];
  }

  // Payload bytes handed out (excludes alignment padding and chunk slack).
  std::size_t bytes_allocated() const { return bytes_allocated_; }
  // Bytes owned by the arena's chunks.
  std::size_t bytes_reserved() const { return bytes_reserved_; }
  std::size_t chunk_count() const { return chunks_.size(); }

  // Frees every chunk at once; the arena is reusable afterwards.
  void release() {
    chunks_.clear();
    cur_ = end_ = nullptr;
    bytes_allocated_ = 0;
    bytes_reserved_ = 0;
  }

  // Rewinds the bump pointer without returning memory to the heap: the next
  // fill reuses the reserved bytes, so steady-state reuse (the pipeline
  // workspace's per-shard detect states, reset every run) allocates nothing.
  // A fragmented arena (several chunks from incremental growth) is first
  // consolidated into one chunk of the total reserved size — one allocation,
  // after which reset() never allocates again for same-or-smaller fills.
  void reset() {
    bytes_allocated_ = 0;
    if (chunks_.empty()) return;
    if (chunks_.size() > 1) {
      const std::size_t total = bytes_reserved_;
      chunks_.clear();
      chunks_.push_back({std::make_unique<std::byte[]>(total), total});
      bytes_reserved_ = total;
    }
    cur_ = chunks_.front().data.get();
    end_ = cur_ + chunks_.front().size;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t min_bytes) {
    if (RLOOP_FAILPOINT("arena.alloc")) throw std::bad_alloc();
    // Oversized requests get a chunk of their own size; either way the new
    // chunk becomes the bump area (the old chunk's slack is abandoned, which
    // wastes at most one object's worth of bytes per chunk).
    const std::size_t size = min_bytes > chunk_bytes_ ? min_bytes : chunk_bytes_;
    chunks_.push_back({std::make_unique<std::byte[]>(size), size});
    bytes_reserved_ += size;
    cur_ = chunks_.back().data.get();
    end_ = cur_ + size;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::byte* cur_ = nullptr;
  std::byte* end_ = nullptr;
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace rloop::util
