// Lock-free single-producer / single-consumer bounded ring.
//
// Two producer/consumer boundaries in this repo use it: the daemon's ingest
// edge (capture/replay thread pushes fixed-size records, detection thread
// drains them in batches — daemon/daemon.h) and the offline pipeline's
// staged dataflow (the ingest driver pushes epoch batches to each worker and
// recycles them through a free ring — core/pipeline.cc). One producer and one
// consumer mean the queue needs no CAS loops — each side owns one index and
// only *reads* the other's, so a push is a store-release and a pop is a
// load-acquire, nothing heavier. Both indices (and each side's cached copy
// of the other) live on their own cache line so the two threads never
// false-share, and capacity is a power of two so wrapping is a mask, not a
// division.
//
// The ring itself never blocks and never drops: try_push tells the caller
// the truth and the caller implements the back-pressure policy (drop-newest
// or block) with its own accounting — see daemon.h, which maintains the
// pushed == consumed + dropped invariant on top of this primitive.
//
// Indices are free-running 64-bit counters (they never wrap in practice:
// 2^64 packets at 10^9 pps is ~585 years), so empty is head == tail and the
// ring holds tail - head records with no wasted slot.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <vector>

namespace rloop::util {

// A fixed 64 rather than std::hardware_destructive_interference_size: the
// stdlib value is flagged ABI-unstable (-Winterference-size) and 64 is the
// destructive-sharing granule on every platform this targets (x86_64
// prefetches line pairs, but padding both hot indices to 128 bytes buys
// nothing measurable here).
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  // `capacity` must be a nonzero power of two; throws otherwise.
  explicit SpscRing(std::size_t capacity)
      : slots_(capacity), mask_(capacity - 1) {
    if (capacity == 0 || (capacity & mask_) != 0) {
      throw std::invalid_argument(
          "SpscRing: capacity must be a nonzero power of two");
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  // Producer side. Returns false when the ring is full (caller decides
  // whether that is a drop or a reason to spin).
  bool try_push(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= slots_.size()) {
      // Looks full; refresh the consumer's progress before giving up.
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= slots_.size()) return false;
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side: moves up to `max` records into `out`, returns how many.
  std::size_t pop_batch(T* out, std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (cached_tail_ == head) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (cached_tail_ == head) return 0;
    }
    std::size_t n = static_cast<std::size_t>(cached_tail_ - head);
    if (n > max) n = max;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = slots_[(head + i) & mask_];
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  bool try_pop(T& out) { return pop_batch(&out, 1) == 1; }

  // Racy by nature (each thread's index moves concurrently); exact only when
  // the other side is quiescent. Good enough for gauges and tests.
  std::size_t size_approx() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }
  bool empty() const { return size_approx() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  // Consumer-owned index, and the producer's cached copy of it.
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
  alignas(kCacheLine) std::uint64_t cached_head_ = 0;
  // Producer-owned index, and the consumer's cached copy of it.
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
  alignas(kCacheLine) std::uint64_t cached_tail_ = 0;
};

}  // namespace rloop::util
