#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace rloop::util {

ThreadPool::ThreadPool(std::size_t num_threads, telemetry::Registry* registry,
                       telemetry::TraceSink* trace)
    : m_queue_depth_(telemetry::get_gauge(
          registry, "rloop_threadpool_queue_depth", {},
          "Tasks waiting in the thread-pool queue")),
      m_tasks_(telemetry::get_counter(
          registry, "rloop_threadpool_tasks_total", {},
          "Tasks submitted to the thread pool")),
      trace_(trace) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    telemetry::set(m_queue_depth_, static_cast<std::int64_t>(queue_.size()));
  }
  telemetry::inc(m_tasks_);
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
      telemetry::set(m_queue_depth_, static_cast<std::int64_t>(queue_.size()));
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              const char* span_name) {
  if (n == 0) return;
  if (n == 1) {  // no fan-out, no synchronization
    if (span_name != nullptr) {
      const telemetry::ScopedSpan span(trace_, span_name, "task");
      body(0);
    } else {
      body(0);
    }
    telemetry::inc(m_tasks_);
    return;
  }

  // One queue entry per runner, not per index: runners claim indices from
  // the shared atomic until none are left. The tasks counter still counts
  // logical bodies (n), matching the old one-task-per-index accounting. The
  // runner closure captures a single Join pointer so the std::function fits
  // its small-buffer optimization — a fan-out enqueues zero heap blocks.
  struct Join {
    ThreadPool* pool;
    const std::function<void(std::size_t)>* body;
    const char* span_name;
    std::size_t n;
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
    std::exception_ptr error;

    void run() {
      std::exception_ptr local_error;
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          if (span_name != nullptr) {
            const telemetry::ScopedSpan span(pool->trace_, span_name, "task");
            (*body)(i);
          } else {
            (*body)(i);
          }
        } catch (...) {
          // Record the first failure but keep draining: shard work is
          // independent and the contract is that every index runs.
          if (!local_error) local_error = std::current_exception();
        }
      }
      {
        const std::lock_guard<std::mutex> lock(mu);
        if (local_error && !error) error = local_error;
        --remaining;
        // Notify while holding the mutex: the waiter owns Join on its stack
        // and destroys it the moment wait() returns, so signalling after
        // unlock would touch a dead condition variable.
        cv.notify_one();
      }
    }
  } join;
  const std::size_t runners = std::min(n, workers_.size());
  join.pool = this;
  join.body = &body;
  join.span_name = span_name;
  join.n = n;
  join.remaining = runners;
  join.error = nullptr;

  Join* jp = &join;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t r = 0; r < runners; ++r) {
      queue_.push_back([jp] { jp->run(); });
    }
    telemetry::set(m_queue_depth_, static_cast<std::int64_t>(queue_.size()));
  }
  telemetry::inc(m_tasks_, n);
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(join.mu);
  join.cv.wait(lock, [&join] { return join.remaining == 0; });
  if (join.error) std::rethrow_exception(join.error);
}

}  // namespace rloop::util
