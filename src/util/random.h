// Deterministic, platform-independent pseudo-random number generation.
//
// std::mt19937 is deterministic but the standard distributions are not
// specified bit-for-bit across implementations; every scenario in this repo
// must regenerate identical traces anywhere, so both the generator
// (xoshiro256++) and all distributions are implemented here.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <string_view>
#include <vector>

namespace rloop::util {

// Derives an independent named sub-stream seed from one user-facing seed, so
// a single `--seed` reproduces every random draw in a run (network
// control-plane, workload, failure schedule, ...) while the sub-streams stay
// decorrelated. FNV-1a over the stream name mixed with the base, finalized
// with the splitmix64 avalanche.
inline std::uint64_t derive_seed(std::uint64_t base, std::string_view stream) {
  std::uint64_t h = 14695981039346656037ULL ^ base;
  for (const char c : stream) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // xoshiro256++
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
    // Rejection-free Lemire-style bounded draw; bias is < 2^-64 * range,
    // irrelevant at our scales but still avoided via rejection.
    std::uint64_t threshold = (-range) % range;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return lo + static_cast<std::int64_t>(r % range);
    }
  }

  // Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  bool bernoulli(double p) { return uniform() < p; }

  // Exponential with the given mean (mean = 1/rate).
  double exponential(double mean) {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  // Standard normal via Box-Muller (one value per call; simple over fast).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
    return mean + stddev * z;
  }

  // Bounded Pareto-ish heavy tail for flow sizes: continuous Pareto with
  // shape `alpha` and scale `xm`, capped at `cap`.
  double pareto(double xm, double alpha, double cap) {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    const double v = xm / std::pow(u, 1.0 / alpha);
    return v > cap ? cap : v;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

// Precomputed Zipf sampler over ranks 0..n-1 with exponent s.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

inline ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_.push_back(total);
  }
  for (auto& v : cdf_) v /= total;
}

inline std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

}  // namespace rloop::util
