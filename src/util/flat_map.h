// Cache-friendly open-addressing hash map for the detection hot path.
//
// std::unordered_map allocates one heap node per entry and chases a pointer
// per probe; at 10^8-10^9 packets per trace those constant factors dominate
// the detector's runtime. FlatMap stores entries inline in one contiguous
// slot array:
//
//  - robin-hood linear probing over a power-of-two slot count — a lookup is
//    a handful of sequential cache lines, and probe sequences stay short
//    because rich entries are displaced in favor of poor ones;
//  - tombstone-free backward-shift erase — deletions compact the probe
//    chain in place, so load never degrades over time the way tombstone
//    schemes do;
//  - the 64-bit hash is stored per slot, so probing compares one integer
//    before touching the key, rehashing never re-hashes keys, and erase can
//    recompute home positions without calling Hash;
//  - precomputed-hash entry points (find_hashed / emplace_hashed /
//    erase_hashed) let callers that already computed the hash — the sharded
//    detector hashes every record once for shard assignment — skip the Hash
//    call entirely and compare keys through an arbitrary predicate, which
//    also enables heterogeneous lookup without materializing a Key.
//
// Invariants (checked by tests/test_flat_map.cc against std::unordered_map):
//  - slot count is a power of two; load factor is kept <= 7/8;
//  - for every occupied slot, dist = (slot - home) mod capacity + 1 fits a
//    uint8 (inserts that would exceed it force a grow);
//  - along any probe chain, stored dist values are non-decreasing-compatible
//    with robin hood order, so lookups may stop at the first slot whose dist
//    is smaller than the probe's.
//
// The map requires Key and T to be default-constructible and movable.
// Erased slots are reset to default-constructed values so resources held by
// keys/values are released eagerly.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/failpoint.h"

namespace rloop::util {

namespace detail {
// murmur3 fmix64. Deliberately a DIFFERENT bijection from the splitmix64
// finalizer in core/parallel.h: the sharded detector partitions keys by
// splitmix64(hash) % 2^k, so every key inside one shard shares those low
// bits — masking a re-mixed hash with independent low bits keeps per-shard
// tables uniformly loaded instead of clustering into 1/2^k of the slots.
inline std::uint64_t fmix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}
}  // namespace detail

template <class Key, class T, class Hash = std::hash<Key>,
          class KeyEqual = std::equal_to<Key>>
class FlatMap {
 public:
  FlatMap() = default;
  explicit FlatMap(std::size_t expected_entries) { reserve(expected_entries); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t bucket_count() const { return slots_.size(); }

  // --- lookup ---------------------------------------------------------------

  T* find(const Key& key) {
    return find_hashed(hash_of(key),
                       [&](const Key& k) { return eq_(k, key); });
  }
  const T* find(const Key& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  // `hash` must equal Hash{}(key) for the key the predicate accepts. The
  // predicate sees candidate keys whose stored hash matches `hash`.
  template <class Pred>
  T* find_hashed(std::uint64_t hash, Pred&& matches) {
    if (size_ == 0) return nullptr;
    std::size_t i = home(hash);
    std::uint8_t d = 1;
    for (;;) {
      const std::uint8_t slot_d = dist_[i];
      if (slot_d == 0 || slot_d < d) return nullptr;  // robin-hood early out
      if (slots_[i].hash == hash && matches(slots_[i].key)) {
        return &slots_[i].value;
      }
      i = (i + 1) & mask_;
      ++d;
    }
  }

  // --- insert ---------------------------------------------------------------

  // Returns {pointer to value, true} when inserted, {existing, false} when
  // the key was already present (value untouched).
  std::pair<T*, bool> emplace(Key key, T value = T{}) {
    const std::uint64_t h = hash_of(key);
    return emplace_hashed(
        h, [&](const Key& k) { return eq_(k, key); }, std::move(key),
        std::move(value));
  }

  T& operator[](const Key& key) { return *emplace(key).first; }

  // Precomputed-hash insert: `hash` must equal Hash{}(key).
  template <class Pred>
  std::pair<T*, bool> emplace_hashed(std::uint64_t hash, Pred&& matches,
                                     Key key, T value = T{}) {
    if (T* existing = find_hashed(hash, matches)) return {existing, false};
    reserve(size_ + 1);
    return {insert_new(hash, std::move(key), std::move(value)), true};
  }

  // --- erase ----------------------------------------------------------------

  bool erase(const Key& key) {
    return erase_hashed(hash_of(key),
                        [&](const Key& k) { return eq_(k, key); });
  }

  template <class Pred>
  bool erase_hashed(std::uint64_t hash, Pred&& matches) {
    if (size_ == 0) return false;
    std::size_t i = home(hash);
    std::uint8_t d = 1;
    for (;;) {
      const std::uint8_t slot_d = dist_[i];
      if (slot_d == 0 || slot_d < d) return false;
      if (slots_[i].hash == hash && matches(slots_[i].key)) {
        erase_at(i);
        return true;
      }
      i = (i + 1) & mask_;
      ++d;
    }
  }

  // Visits every entry; `pred(key, value)` returning true erases the entry.
  // Backward-shift compaction can move a not-yet-visited entry into an
  // already-visited slot near the table's wrap point, in which case that
  // entry is visited twice — `pred` must therefore be idempotent (same
  // answer and no repeated side effects for an entry it already declined).
  // Returns the number of entries erased.
  template <class Pred>
  std::size_t erase_if(Pred&& pred) {
    if (size_ == 0) return 0;
    std::size_t erased = 0;
    for (std::size_t i = 0; i < slots_.size();) {
      if (dist_[i] != 0 && pred(slots_[i].key, slots_[i].value)) {
        erase_at(i);  // pulls the next chain entry into slot i: do not advance
        ++erased;
      } else {
        ++i;
      }
    }
    return erased;
  }

  // Visits every entry as fn(const Key&, T&). Do not insert or erase inside.
  template <class Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (dist_[i] != 0) fn(slots_[i].key, slots_[i].value);
    }
  }
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (dist_[i] != 0) fn(slots_[i].key, slots_[i].value);
    }
  }

  void clear() {
    std::fill(dist_.begin(), dist_.end(), std::uint8_t{0});
    for (Slot& s : slots_) s = Slot{};
    size_ = 0;
  }

  // Grows the table so `entries` fit within the 7/8 load bound.
  void reserve(std::size_t entries) {
    if (slots_.empty() || entries * 8 > slots_.size() * 7) {
      if (RLOOP_FAILPOINT("flat_map.grow")) throw std::bad_alloc();
      rehash_for(entries);
    }
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    Key key{};
    T value{};
  };

  static constexpr std::size_t kMinCapacity = 16;
  // Stored probe distance is (slot - home) mod capacity, offset by one so 0
  // means "empty"; it must fit a uint8.
  static constexpr std::uint8_t kMaxDist = 0xff;

  std::uint64_t hash_of(const Key& key) const {
    return static_cast<std::uint64_t>(hasher_(key));
  }
  std::size_t home(std::uint64_t hash) const {
    return static_cast<std::size_t>(detail::fmix64(hash)) & mask_;
  }

  void rehash_for(std::size_t entries) {
    std::size_t cap = kMinCapacity;
    while (entries * 8 > cap * 7) cap <<= 1;
    if (cap <= slots_.size()) cap = slots_.size() << 1;
    rehash(cap);
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_dist = std::move(dist_);
    slots_.assign(new_capacity, Slot{});
    dist_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    size_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_dist[i] != 0) {
        insert_new(old_slots[i].hash, std::move(old_slots[i].key),
                   std::move(old_slots[i].value));
      }
    }
  }

  // Robin-hood insert of a key known to be absent. Table must have room.
  // At <= 7/8 load with a 64-bit hash, robin-hood probe distances stay in
  // the tens even for tens of millions of entries; a distance that would
  // overflow the uint8 dist field requires > kMaxDist entries sharing one
  // hash (a catastrophically degenerate Hash), which growth cannot fix —
  // throw instead of looping.
  T* insert_new(std::uint64_t hash, Key key, T value) {
    Slot incoming{hash, std::move(key), std::move(value)};
    std::size_t i = home(hash);
    std::uint8_t d = 1;
    T* result = nullptr;
    for (;;) {
      if (dist_[i] == 0) {
        slots_[i] = std::move(incoming);
        dist_[i] = d;
        ++size_;
        return result ? result : &slots_[i].value;
      }
      if (dist_[i] < d) {
        // Rich entry: displace it, keep probing for its new position. Once
        // the original entry lands in a slot it never moves again during
        // this insert (displaced entries only probe forward into emptier
        // territory), so `result` stays valid.
        std::swap(incoming, slots_[i]);
        std::swap(d, dist_[i]);
        if (!result) result = &slots_[i].value;
      }
      if (d == kMaxDist) {
        throw std::length_error(
            "FlatMap: probe distance overflow (degenerate hash function)");
      }
      i = (i + 1) & mask_;
      ++d;
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> dist_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  [[no_unique_address]] Hash hasher_{};
  [[no_unique_address]] KeyEqual eq_{};

  void erase_at(std::size_t i) {
    std::size_t j = (i + 1) & mask_;
    while (dist_[j] > 1) {
      slots_[i] = std::move(slots_[j]);
      dist_[i] = static_cast<std::uint8_t>(dist_[j] - 1);
      i = j;
      j = (j + 1) & mask_;
    }
    slots_[i] = Slot{};
    dist_[i] = 0;
    --size_;
  }
};

}  // namespace rloop::util
