// Traceroute-style active loop detection — the baseline the paper argues
// against (Paxson's end-to-end study detected persistent loops but few
// transient ones; probing is periodic and a transient loop must be in
// progress while a probe train runs to be seen).
//
// The prober sits at a vantage router and, every `probe_interval`, runs a
// TTL sweep (TTL = 1..max_ttl) toward each target prefix, then reconstructs
// the forwarding path from where each probe ended (the simulator's
// equivalent of collecting ICMP time-exceeded sources). A routing loop shows
// up as the same router appearing at two different probe TTLs.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/prefix.h"
#include "net/time.h"
#include "routing/topology.h"
#include "sim/network.h"

namespace rloop::baseline {

struct ProberConfig {
  net::TimeNs start = 0;
  net::TimeNs probe_interval = 30 * net::kSecond;
  net::TimeNs duration = 10 * net::kMinute;
  int max_ttl = 24;
  // Delay between firing a sweep and reading back its results (probes must
  // have ended by then; generously above any RTT in the simulator).
  net::TimeNs collect_delay = 2 * net::kSecond;
};

struct ProbeObservation {
  net::TimeNs time = 0;        // when the sweep was fired
  net::Prefix target;          // destination /24 probed
  bool loop_detected = false;  // a router repeated within the sweep's path
  bool reached = false;        // some probe was delivered
  std::vector<routing::NodeId> path;  // hop i = final node of TTL i+1 probe
};

class TracerouteProber {
 public:
  // Probes a host inside each of `targets` from `vantage`.
  TracerouteProber(ProberConfig config, std::vector<net::Prefix> targets,
                   routing::NodeId vantage);

  // Schedules all sweeps; observations accumulate as the simulation runs.
  void install(sim::Network& network);

  const std::vector<ProbeObservation>& observations() const {
    return observations_;
  }
  std::uint64_t probes_sent() const { return probes_sent_; }

 private:
  void fire_sweep(sim::Network& network, net::TimeNs at);
  void collect_sweep(sim::Network& network, net::TimeNs fired_at,
                     std::vector<std::vector<std::uint64_t>> probe_ids);

  ProberConfig config_;
  std::vector<net::Prefix> targets_;
  routing::NodeId vantage_;
  std::vector<ProbeObservation> observations_;
  std::uint64_t probes_sent_ = 0;
  std::uint16_t next_ip_id_ = 1;
};

}  // namespace rloop::baseline
