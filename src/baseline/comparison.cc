#include "baseline/comparison.h"

#include <algorithm>
#include <map>

namespace rloop::baseline {

std::vector<TruthLoop> merge_crossings(
    const std::vector<sim::LoopCrossing>& crossings, net::TimeNs merge_gap) {
  std::map<net::Prefix, std::vector<net::TimeNs>> by_prefix;
  for (const auto& c : crossings) {
    by_prefix[c.dst_prefix24].push_back(c.time);
  }

  std::vector<TruthLoop> loops;
  for (auto& [prefix, times] : by_prefix) {
    std::sort(times.begin(), times.end());
    TruthLoop current;
    current.prefix24 = prefix;
    current.start = times.front();
    current.end = times.front();
    current.crossings = 1;
    for (std::size_t i = 1; i < times.size(); ++i) {
      if (times[i] - current.end <= merge_gap) {
        current.end = times[i];
        ++current.crossings;
      } else {
        loops.push_back(current);
        current.start = times[i];
        current.end = times[i];
        current.crossings = 1;
      }
    }
    loops.push_back(current);
  }
  std::sort(loops.begin(), loops.end(),
            [](const TruthLoop& a, const TruthLoop& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.prefix24 < b.prefix24;
            });
  return loops;
}

namespace {

bool intervals_overlap(net::TimeNs a0, net::TimeNs a1, net::TimeNs b0,
                       net::TimeNs b1, net::TimeNs slack) {
  return a0 - slack <= b1 && b0 - slack <= a1;
}

}  // namespace

DetectorScore score_passive(const std::vector<TruthLoop>& truth,
                            const std::vector<core::RoutingLoop>& reports,
                            net::TimeNs slack) {
  DetectorScore score;
  score.truth_loops = truth.size();
  score.reports = reports.size();

  std::vector<bool> truth_hit(truth.size(), false);
  for (const auto& report : reports) {
    bool matched = false;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      if (truth[i].prefix24 != report.prefix24) continue;
      if (intervals_overlap(truth[i].start, truth[i].end, report.start,
                            report.end, slack)) {
        truth_hit[i] = true;
        matched = true;
      }
    }
    if (!matched) ++score.unmatched_reports;
  }
  score.detected = static_cast<std::uint64_t>(
      std::count(truth_hit.begin(), truth_hit.end(), true));
  return score;
}

DetectorScore score_prober(const std::vector<TruthLoop>& truth,
                           const std::vector<ProbeObservation>& observations,
                           net::TimeNs slack) {
  DetectorScore score;
  score.truth_loops = truth.size();

  std::vector<bool> truth_hit(truth.size(), false);
  for (const auto& obs : observations) {
    if (!obs.loop_detected) continue;
    ++score.reports;
    bool matched = false;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      if (truth[i].prefix24 != obs.target) continue;
      if (obs.time >= truth[i].start - slack &&
          obs.time <= truth[i].end + slack) {
        truth_hit[i] = true;
        matched = true;
      }
    }
    if (!matched) ++score.unmatched_reports;
  }
  score.detected = static_cast<std::uint64_t>(
      std::count(truth_hit.begin(), truth_hit.end(), true));
  return score;
}

}  // namespace rloop::baseline
