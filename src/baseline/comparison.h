// Scoring detectors against simulator ground truth.
//
// The simulator records a LoopCrossing every time a packet revisits a
// router. Merging crossings per destination /24 yields ground-truth loop
// intervals. A detector "finds" a truth loop when it reports a loop for the
// same /24 overlapping the interval (with slack for observation latency).
// This quantifies what the paper could only argue: the passive method's
// coverage on its monitored link, and how badly periodic probing misses
// transient loops.
#pragma once

#include <cstdint>
#include <vector>

#include "baseline/prober.h"
#include "core/stream_merger.h"
#include "net/prefix.h"
#include "net/time.h"
#include "sim/network.h"

namespace rloop::baseline {

struct TruthLoop {
  net::Prefix prefix24;
  net::TimeNs start = 0;
  net::TimeNs end = 0;
  std::uint64_t crossings = 0;

  net::TimeNs duration() const { return end - start; }
};

// Merges raw crossings (any order) into per-prefix intervals, joining
// crossings separated by less than `merge_gap`.
std::vector<TruthLoop> merge_crossings(
    const std::vector<sim::LoopCrossing>& crossings,
    net::TimeNs merge_gap = 2 * net::kSecond);

struct DetectorScore {
  std::uint64_t truth_loops = 0;
  std::uint64_t detected = 0;     // truth loops matched by >= 1 report
  std::uint64_t reports = 0;      // total reports by the detector
  std::uint64_t unmatched_reports = 0;  // reports matching no truth loop

  double recall() const {
    return truth_loops == 0
               ? 0.0
               : static_cast<double>(detected) /
                     static_cast<double>(truth_loops);
  }
  double precision() const {
    return reports == 0 ? 0.0
                        : static_cast<double>(reports - unmatched_reports) /
                              static_cast<double>(reports);
  }
};

// Passive detector: a RoutingLoop report matches a truth loop when prefixes
// are equal and intervals overlap within `slack`.
DetectorScore score_passive(const std::vector<TruthLoop>& truth,
                            const std::vector<core::RoutingLoop>& reports,
                            net::TimeNs slack = net::kSecond);

// Active prober: an observation with loop_detected matches a truth loop when
// its target prefix is equal and the sweep time falls inside the interval
// (expanded by `slack`).
DetectorScore score_prober(const std::vector<TruthLoop>& truth,
                           const std::vector<ProbeObservation>& observations,
                           net::TimeNs slack = net::kSecond);

}  // namespace rloop::baseline
