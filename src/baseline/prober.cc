#include "baseline/prober.h"

#include <algorithm>
#include <unordered_set>

#include "net/packet.h"

namespace rloop::baseline {

TracerouteProber::TracerouteProber(ProberConfig config,
                                   std::vector<net::Prefix> targets,
                                   routing::NodeId vantage)
    : config_(config), targets_(std::move(targets)), vantage_(vantage) {}

void TracerouteProber::install(sim::Network& network) {
  for (net::TimeNs t = config_.start; t < config_.start + config_.duration;
       t += config_.probe_interval) {
    network.schedule(t, [this, &network, t]() { fire_sweep(network, t); });
  }
}

void TracerouteProber::fire_sweep(sim::Network& network, net::TimeNs at) {
  const net::Ipv4Addr vantage_addr =
      network.topology().node(vantage_).loopback;
  std::vector<std::vector<std::uint64_t>> probe_ids(targets_.size());

  for (std::size_t ti = 0; ti < targets_.size(); ++ti) {
    // Probe the .1 host of the target /24 with classic traceroute UDP
    // (unlikely destination port).
    const net::Ipv4Addr dst{targets_[ti].addr.value | 1};
    probe_ids[ti].reserve(static_cast<std::size_t>(config_.max_ttl));
    // The vantage is itself a router, so a TTL-1 probe would expire before
    // leaving it; TTL k+1 expires at the k-th hop.
    for (int ttl = 2; ttl <= config_.max_ttl + 1; ++ttl) {
      auto pkt = net::make_udp_packet(
          vantage_addr, dst,
          /*src_port=*/static_cast<std::uint16_t>(33000 + ttl),
          /*dst_port=*/static_cast<std::uint16_t>(33434 + ttl),
          /*payload_len=*/12, static_cast<std::uint8_t>(ttl), next_ip_id_++);
      probe_ids[ti].push_back(
          network.inject(std::move(pkt), /*wire_len=*/40, vantage_, at));
      ++probes_sent_;
    }
  }

  network.schedule(at + config_.collect_delay,
                   [this, &network, at, ids = std::move(probe_ids)]() mutable {
                     collect_sweep(network, at, std::move(ids));
                   });
}

void TracerouteProber::collect_sweep(
    sim::Network& network, net::TimeNs fired_at,
    std::vector<std::vector<std::uint64_t>> probe_ids) {
  const auto& fates = network.fates();
  for (std::size_t ti = 0; ti < targets_.size(); ++ti) {
    ProbeObservation obs;
    obs.time = fired_at;
    obs.target = targets_[ti];

    for (const std::uint64_t id : probe_ids[ti]) {
      const sim::PacketFate& fate = fates.at(id);
      if (fate.kind == sim::FateKind::delivered) {
        obs.reached = true;
        obs.path.push_back(fate.final_node);
        break;  // remaining probes overshoot the destination
      }
      obs.path.push_back(fate.final_node);
    }

    // A repeated expiry router at different TTLs = loop, the classic
    // traceroute signature (same hop listed twice).
    std::unordered_set<int> seen;
    for (std::size_t i = 0; i + (obs.reached ? 1 : 0) < obs.path.size(); ++i) {
      const routing::NodeId node = obs.path[i];
      if (node < 0) continue;
      if (!seen.insert(node).second) {
        obs.loop_detected = true;
        break;
      }
    }
    observations_.push_back(std::move(obs));
  }
}

}  // namespace rloop::baseline
