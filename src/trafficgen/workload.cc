#include "trafficgen/workload.h"

#include <algorithm>
#include <stdexcept>

namespace rloop::trafficgen {

const RatePhase* active_phase(const std::vector<RatePhase>& phases,
                              net::TimeNs t) {
  for (const auto& phase : phases) {
    if (t >= phase.start && t < phase.end) return &phase;
  }
  return nullptr;
}

double phase_multiplier(const std::vector<RatePhase>& phases, net::TimeNs t) {
  const RatePhase* phase = active_phase(phases, t);
  if (phase == nullptr) return 1.0;
  if (phase->end <= phase->start) return phase->mult_begin;
  const double f = static_cast<double>(t - phase->start) /
                   static_cast<double>(phase->end - phase->start);
  return phase->mult_begin + f * (phase->mult_end - phase->mult_begin);
}

net::TimeNs next_phase_boundary(const std::vector<RatePhase>& phases,
                                net::TimeNs t) {
  net::TimeNs best = -1;
  for (const auto& phase : phases) {
    for (const net::TimeNs edge : {phase.start, phase.end}) {
      if (edge > t && (best < 0 || edge < best)) best = edge;
    }
  }
  return best;
}

Workload::Workload(WorkloadConfig config,
                   std::shared_ptr<const PrefixPool> destinations,
                   std::shared_ptr<const PrefixPool> sources,
                   TtlModel ttl_model,
                   std::vector<routing::NodeId> ingress_nodes)
    : config_(config),
      destinations_(std::move(destinations)),
      sources_(std::move(sources)),
      ttl_model_(std::move(ttl_model)),
      ingress_nodes_(std::move(ingress_nodes)) {
  if (!destinations_ || !sources_) {
    throw std::invalid_argument("Workload: null address pool");
  }
  if (ingress_nodes_.empty()) {
    throw std::invalid_argument("Workload: no ingress nodes");
  }
  if (!(config_.flows_per_second > 0)) {
    throw std::invalid_argument("Workload: flows_per_second must be > 0");
  }
}

void Workload::install(sim::Network& network, std::uint64_t seed) {
  rng_ = std::make_unique<util::Rng>(seed);
  network.schedule(config_.start,
                   [this, &network]() { schedule_next_arrival(network); });
}

void Workload::schedule_next_arrival(sim::Network& network) {
  const net::TimeNs now = network.now();
  // Instantaneous rate under the active phase (1x outside every phase). The
  // draw is re-anchored at each phase boundary below, so an idle phase's long
  // gaps cannot jump over a following burst window.
  const double mult =
      std::max(phase_multiplier(config_.phases, now), 1e-6);
  const net::TimeNs gap = std::max<net::TimeNs>(
      static_cast<net::TimeNs>(
          rng_->exponential(1e9 / (config_.flows_per_second * mult))),
      1);
  net::TimeNs next = now + gap;
  bool arrival = true;
  if (!config_.phases.empty()) {
    const net::TimeNs boundary = next_phase_boundary(config_.phases, now);
    if (boundary >= 0 && next > boundary) {
      next = boundary;  // re-sample at the new phase's rate, no flow started
      arrival = false;
    }
  }
  if (next >= config_.start + config_.duration) return;
  network.schedule(next, [this, &network, arrival]() {
    if (arrival) start_flow(network);
    schedule_next_arrival(network);
  });
}

net::Ipv4Addr Workload::sample_dst(net::TimeNs at, util::Rng& rng) {
  const RatePhase* phase = active_phase(config_.phases, at);
  if (phase != nullptr && phase->focus_fraction > 0.0 &&
      rng.bernoulli(phase->focus_fraction)) {
    return destinations_->sample_host(
        std::min(phase->focus_rank, destinations_->size() - 1), rng);
  }
  return destinations_->sample_destination(rng);
}

FlowSpec Workload::sample_flow(net::TimeNs at) {
  util::Rng& rng = *rng_;
  FlowSpec spec;
  spec.start = at;
  spec.mean_gap = config_.mean_packet_gap;
  spec.mean_payload = config_.mean_payload;
  spec.initial_ttl = ttl_model_.sample(rng);
  spec.first_ip_id = static_cast<std::uint16_t>(rng.next_u64());
  spec.ingress = ingress_nodes_[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(ingress_nodes_.size()) - 1))];
  spec.src = sources_->sample_host(sources_->sample_index(rng), rng);

  const double type_draw = rng.uniform();
  const TrafficMix& mix = config_.mix;
  const double total = mix.tcp + mix.udp + mix.icmp + mix.mcast;

  if (type_draw < mix.tcp / total) {
    spec.type = FlowType::tcp;
    spec.dst = sample_dst(at, rng);
    spec.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    static constexpr std::uint16_t kCommonPorts[] = {80,  443, 25,  53,
                                                     110, 21,  8080};
    spec.dst_port =
        rng.bernoulli(0.8)
            ? kCommonPorts[rng.uniform_int(0, 6)]
            : static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    spec.packet_count = std::max(
        1, static_cast<int>(rng.pareto(1.5, config_.tcp_pareto_shape,
                                       config_.tcp_flow_max_pkts) *
                            config_.tcp_flow_mean_pkts / 4.0));
    if (rng.bernoulli(config_.long_flow_prob)) {
      spec.mean_gap = config_.mean_packet_gap * config_.long_flow_gap_multiplier;
    }
  } else if (type_draw < (mix.tcp + mix.udp) / total) {
    spec.type = FlowType::udp;
    spec.dst = sample_dst(at, rng);
    spec.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    spec.dst_port = rng.bernoulli(0.5)
                        ? 53
                        : static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    spec.packet_count = std::max(
        1, static_cast<int>(rng.exponential(config_.udp_flow_mean_pkts)));
  } else if (type_draw < (mix.tcp + mix.udp + mix.icmp) / total) {
    spec.type = FlowType::icmp_echo;
    spec.dst = sample_dst(at, rng);
    spec.src_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    spec.packet_count = std::max(
        1, static_cast<int>(rng.exponential(config_.icmp_flow_mean_pkts)));
    spec.mean_gap = net::kSecond;  // ping cadence
    if (rng.bernoulli(config_.reserved_icmp_prob)) {
      // The odd host: reserved ICMP type from one fixed source address.
      spec.icmp_type = 38;
      spec.src = sources_->sample_host(0, rng);
    }
  } else {
    spec.type = FlowType::multicast_udp;
    spec.dst = sample_multicast_group(rng);
    spec.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    spec.dst_port = spec.src_port;
    spec.packet_count = std::max(
        1, static_cast<int>(rng.exponential(config_.udp_flow_mean_pkts)));
  }
  return spec;
}

void Workload::start_flow(sim::Network& network) {
  const FlowSpec spec = sample_flow(network.now());
  ++flows_generated_;
  packets_generated_ += static_cast<std::uint64_t>(spec.packet_count);
  if (spec.type == FlowType::tcp && config_.closed_loop_tcp) {
    emit_flow_closed_loop(network, spec, *rng_, config_.closed_loop);
  } else {
    emit_flow(network, spec, *rng_);
  }
}

}  // namespace rloop::trafficgen
