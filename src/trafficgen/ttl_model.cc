#include "trafficgen/ttl_model.h"

#include <algorithm>
#include <stdexcept>

namespace rloop::trafficgen {

TtlModel::TtlModel(std::vector<std::pair<std::uint8_t, double>> table)
    : table_(std::move(table)) {
  if (table_.empty()) throw std::invalid_argument("TtlModel: empty table");
  double total = 0.0;
  for (const auto& [ttl, w] : table_) {
    if (!(w > 0)) throw std::invalid_argument("TtlModel: non-positive weight");
    total += w;
  }
  double acc = 0.0;
  cdf_.reserve(table_.size());
  for (auto& [ttl, w] : table_) {
    w /= total;
    acc += w;
    cdf_.push_back(acc);
  }
  cdf_.back() = 1.0;  // guard FP round-off
}

TtlModel TtlModel::standard() {
  return TtlModel({{64, 0.55}, {128, 0.40}, {32, 0.03}, {255, 0.02}});
}

TtlModel TtlModel::three_modes() {
  return TtlModel({{64, 0.40}, {128, 0.32}, {32, 0.25}, {255, 0.03}});
}

std::uint8_t TtlModel::sample(util::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
  return table_[idx].first;
}

}  // namespace rloop::trafficgen
