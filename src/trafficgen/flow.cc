#include "trafficgen/flow.h"

#include <algorithm>

#include "net/packet.h"

namespace rloop::trafficgen {

namespace {

std::uint16_t sample_payload(std::uint16_t mean, util::Rng& rng) {
  // Bimodal like real traffic: mostly small or near-MTU.
  if (rng.bernoulli(0.35)) {
    return static_cast<std::uint16_t>(rng.uniform_int(0, 100));
  }
  const double v = rng.exponential(static_cast<double>(mean));
  return static_cast<std::uint16_t>(std::min(v, 1440.0));
}

}  // namespace

int emit_flow(sim::Network& network, const FlowSpec& spec, util::Rng& rng) {
  net::TimeNs t = spec.start;
  std::uint16_t ip_id = spec.first_ip_id;
  std::uint32_t seq = static_cast<std::uint32_t>(rng.next_u64());
  const std::uint32_t ack = static_cast<std::uint32_t>(rng.next_u64());
  int injected = 0;

  for (int i = 0; i < spec.packet_count; ++i) {
    net::ParsedPacket pkt;
    switch (spec.type) {
      case FlowType::tcp: {
        std::uint8_t flags;
        std::uint16_t payload = 0;
        const bool first = (i == 0) && !spec.tcp_established;
        const bool last = (i == spec.packet_count - 1);
        if (first) {
          flags = net::kTcpSyn;
        } else if (last && (spec.packet_count > 1 || spec.tcp_established)) {
          flags = rng.bernoulli(0.92)
                      ? static_cast<std::uint8_t>(net::kTcpFin | net::kTcpAck)
                      : static_cast<std::uint8_t>(net::kTcpRst);
        } else if (rng.bernoulli(0.45)) {
          flags = net::kTcpAck;  // pure ACK
        } else {
          flags = static_cast<std::uint8_t>(net::kTcpAck | net::kTcpPsh);
          payload = sample_payload(spec.mean_payload, rng);
        }
        pkt = net::make_tcp_packet(spec.src, spec.dst, spec.src_port,
                                   spec.dst_port, seq, ack, flags, payload,
                                   spec.initial_ttl, ip_id);
        seq += payload + ((flags & net::kTcpSyn) ? 1 : 0);
        break;
      }
      case FlowType::udp:
      case FlowType::multicast_udp: {
        const std::uint16_t payload = sample_payload(spec.mean_payload, rng);
        pkt = net::make_udp_packet(spec.src, spec.dst, spec.src_port,
                                   spec.dst_port, payload, spec.initial_ttl,
                                   ip_id);
        break;
      }
      case FlowType::icmp_echo: {
        const std::uint32_t rest =
            (std::uint32_t{spec.src_port} << 16) |
            static_cast<std::uint32_t>(i + 1);  // identifier | sequence
        pkt = net::make_icmp_packet(
            spec.src, spec.dst, static_cast<net::IcmpType>(spec.icmp_type), 0,
            rest, /*payload_len=*/56, spec.initial_ttl, ip_id);
        break;
      }
    }
    const std::uint32_t wire_len = pkt.ip.total_length;
    network.inject(std::move(pkt), wire_len, spec.ingress, t);
    ++injected;
    ++ip_id;
    t += std::max<net::TimeNs>(
        static_cast<net::TimeNs>(
            rng.exponential(static_cast<double>(spec.mean_gap))),
        net::kMicrosecond);
  }
  return injected;
}

namespace {

void attempt_syn(sim::Network& network, FlowSpec spec, util::Rng& rng,
                 ClosedLoopConfig config, int attempt) {
  // The SYN itself. Retransmissions reuse the TCP fields (same sequence
  // number) under a fresh IP ID, like a real stack — so a retransmitted SYN
  // is NOT a replica of the original in the detector's eyes.
  auto syn = net::make_tcp_packet(
      spec.src, spec.dst, spec.src_port, spec.dst_port,
      /*seq=*/static_cast<std::uint32_t>(spec.src_port) << 16 | spec.dst_port,
      /*ack=*/0, net::kTcpSyn, 0, spec.initial_ttl,
      static_cast<std::uint16_t>(spec.first_ip_id + attempt));
  const std::uint32_t wire_len = syn.ip.total_length;
  const auto syn_id = network.inject(std::move(syn), wire_len, spec.ingress,
                                     spec.start);

  network.schedule(
      spec.start + config.syn_check_delay,
      [&network, &rng, spec, config, attempt, syn_id]() {
        const auto& fate = network.fates().at(syn_id);
        if (fate.kind == sim::FateKind::delivered) {
          // Connection up: stream the rest of the flow.
          if (spec.packet_count > 1) {
            FlowSpec rest = spec;
            rest.tcp_established = true;
            rest.packet_count = spec.packet_count - 1;
            rest.first_ip_id =
                static_cast<std::uint16_t>(spec.first_ip_id + attempt + 1);
            rest.start = network.now();
            emit_flow(network, rest, rng);
          }
          return;
        }
        if (attempt < config.syn_retries) {
          FlowSpec retry = spec;
          retry.start = network.now() + config.syn_retry_backoff * (1 << attempt);
          attempt_syn(network, retry, rng, config, attempt + 1);
          return;
        }
        // Connection never came up. Sometimes the user investigates with
        // ping — straight into the loop, if one is still active.
        if (rng.bernoulli(config.ping_on_failure_prob)) {
          FlowSpec ping;
          ping.type = FlowType::icmp_echo;
          ping.src = spec.src;
          ping.dst = spec.dst;
          ping.src_port = spec.src_port;  // echo identifier
          ping.packet_count = static_cast<int>(rng.uniform_int(3, 5));
          ping.start = network.now() + net::kSecond;
          ping.mean_gap = net::kSecond;
          ping.initial_ttl = spec.initial_ttl;
          ping.first_ip_id =
              static_cast<std::uint16_t>(spec.first_ip_id + 100);
          ping.ingress = spec.ingress;
          emit_flow(network, ping, rng);
        }
      });
}

}  // namespace

void emit_flow_closed_loop(sim::Network& network, const FlowSpec& spec,
                           util::Rng& rng, const ClosedLoopConfig& config) {
  if (spec.type != FlowType::tcp || spec.tcp_established) {
    emit_flow(network, spec, rng);
    return;
  }
  attempt_syn(network, spec, rng, config, 0);
}

}  // namespace rloop::trafficgen
