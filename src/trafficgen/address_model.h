// Destination/source address pools.
//
// Destinations are a pool of /24 prefixes with Zipf popularity — the paper's
// Figure 7 shows loops touching a wide spread of addresses with a bias
// toward the class-C range (192.0.0.0–223.255.255.255). Pools also drive
// which prefixes a scenario attaches to which egress routers.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix.h"
#include "util/random.h"

namespace rloop::trafficgen {

struct PrefixPoolConfig {
  std::size_t prefix_count = 256;
  // Zipf exponent for popularity; 0 = uniform.
  double zipf_s = 0.9;
  // Fraction of prefixes drawn from the class-C range; the rest come from
  // the class-A/B unicast space.
  double class_c_fraction = 0.6;
};

class PrefixPool {
 public:
  // Generates `config.prefix_count` distinct /24 prefixes.
  PrefixPool(const PrefixPoolConfig& config, util::Rng& rng);

  const std::vector<net::Prefix>& prefixes() const { return prefixes_; }
  std::size_t size() const { return prefixes_.size(); }

  // Zipf-weighted prefix index.
  std::size_t sample_index(util::Rng& rng) const;
  // A host address inside prefix `index` (last octet 1..254).
  net::Ipv4Addr sample_host(std::size_t index, util::Rng& rng) const;
  // Convenience: host in a Zipf-sampled prefix.
  net::Ipv4Addr sample_destination(util::Rng& rng) const;

 private:
  std::vector<net::Prefix> prefixes_;
  util::ZipfSampler zipf_;
};

// A multicast group address in 224.0.0.0/4 (the MCAST rows of Figures 5/6).
net::Ipv4Addr sample_multicast_group(util::Rng& rng);

}  // namespace rloop::trafficgen
