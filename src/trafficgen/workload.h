// Workload: an open-loop flow-arrival process that fills the simulated
// network with a realistic traffic mix.
//
// Flow arrivals are Poisson; each arrival samples a flow type from the mix,
// a destination from the prefix pool (Zipf popularity), a source from the
// source pool, an ingress router, an initial TTL from the TTL model, and a
// heavy-tailed flow length. The mix defaults reproduce the paper's Figure 5:
// more than 80 % TCP, 5–15 % UDP, a few percent ICMP, a sliver of multicast.
//
// The generator is self-scheduling: each arrival event injects its flow's
// packets and schedules the next arrival, so installing a workload costs
// O(1) memory regardless of duration.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/time.h"
#include "routing/topology.h"
#include "sim/network.h"
#include "trafficgen/address_model.h"
#include "trafficgen/flow.h"
#include "trafficgen/ttl_model.h"
#include "util/random.h"

namespace rloop::trafficgen {

struct TrafficMix {
  double tcp = 0.82;
  double udp = 0.13;
  double icmp = 0.035;
  double mcast = 0.015;
};

// A timed window modulating the arrival process (the scenario engine's
// idle/burst/ramp phases). The multiplier interpolates linearly from
// mult_begin at `start` to mult_end at `end`, so a flat burst sets both
// equal and a ramp sets them apart. Windows must not overlap; outside every
// window the base rate applies (multiplier 1).
struct RatePhase {
  net::TimeNs start = 0;
  net::TimeNs end = 0;
  double mult_begin = 1.0;
  double mult_end = 1.0;
  // Fraction of arrivals inside the window redirected to the destination
  // prefix of rank `focus_rank` (single-prefix flash crowd / DDoS shape);
  // 0 keeps the plain Zipf draw and costs no RNG draw, so configs without
  // focus reproduce pre-phase traces bit-for-bit.
  double focus_fraction = 0.0;
  std::size_t focus_rank = 0;
};

// Multiplier in effect at `t` (1.0 outside every phase).
double phase_multiplier(const std::vector<RatePhase>& phases, net::TimeNs t);
// Earliest phase start or end strictly after `t`, or -1 when none remain.
// The arrival process re-samples at boundaries so a long idle gap cannot
// jump over a burst window.
net::TimeNs next_phase_boundary(const std::vector<RatePhase>& phases,
                                net::TimeNs t);
// The phase covering `t`, or nullptr.
const RatePhase* active_phase(const std::vector<RatePhase>& phases,
                              net::TimeNs t);

struct WorkloadConfig {
  net::TimeNs start = 0;
  net::TimeNs duration = 60 * net::kSecond;
  double flows_per_second = 200.0;
  TrafficMix mix;
  // TCP flow lengths are bounded-Pareto (heavy-tailed); UDP and ICMP are
  // geometric-ish around their means.
  double tcp_flow_mean_pkts = 12.0;
  double tcp_pareto_shape = 1.3;
  double tcp_flow_max_pkts = 400.0;
  double udp_flow_mean_pkts = 10.0;
  double icmp_flow_mean_pkts = 5.0;
  net::TimeNs mean_packet_gap = 8 * net::kMillisecond;
  std::uint16_t mean_payload = 420;
  // TCP flows are closed-loop: data follows only a delivered SYN (paper
  // §V-B: looped SYNs never establish connections, so looped traffic is
  // SYN-enriched while UDP keeps sending).
  bool closed_loop_tcp = true;
  ClosedLoopConfig closed_loop;
  // A small share of ICMP flows uses a reserved message type from one fixed
  // host, mirroring the oddball sender the paper observed on B1/B2.
  double reserved_icmp_prob = 0.04;
  // Fraction of TCP flows that are long-lived (paced tens of seconds rather
  // than ~100 ms). Their in-flight data packets are what a loop catches
  // mid-connection, putting ACK/PSH traffic into Figure 6's looped mix.
  double long_flow_prob = 0.15;
  int long_flow_gap_multiplier = 25;
  // Scenario-engine rate phases (empty = constant rate, the original
  // behavior, bit-identical traces).
  std::vector<RatePhase> phases;
};

class Workload {
 public:
  // `ingress_nodes` are sampled uniformly per flow. Pools are shared with the
  // scenario (which also attaches the pools' prefixes to egress routers).
  Workload(WorkloadConfig config, std::shared_ptr<const PrefixPool> destinations,
           std::shared_ptr<const PrefixPool> sources, TtlModel ttl_model,
           std::vector<routing::NodeId> ingress_nodes);

  // Starts the arrival process; packet injections then happen as the
  // simulation runs. `seed` isolates workload randomness from the network's
  // control-plane randomness.
  void install(sim::Network& network, std::uint64_t seed);

  std::uint64_t flows_generated() const { return flows_generated_; }
  // Offered load: the sum of sampled flow sizes. Closed-loop TCP flows may
  // inject fewer packets than offered when their SYNs die.
  std::uint64_t packets_generated() const { return packets_generated_; }

 private:
  void schedule_next_arrival(sim::Network& network);
  void start_flow(sim::Network& network);
  FlowSpec sample_flow(net::TimeNs at);
  // Destination draw honoring the active phase's focus redirect.
  net::Ipv4Addr sample_dst(net::TimeNs at, util::Rng& rng);

  WorkloadConfig config_;
  std::shared_ptr<const PrefixPool> destinations_;
  std::shared_ptr<const PrefixPool> sources_;
  TtlModel ttl_model_;
  std::vector<routing::NodeId> ingress_nodes_;
  std::unique_ptr<util::Rng> rng_;
  std::uint16_t next_ip_id_base_ = 257;
  std::uint64_t flows_generated_ = 0;
  std::uint64_t packets_generated_ = 0;
};

}  // namespace rloop::trafficgen
