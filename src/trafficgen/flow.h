// Flow models: the packet sequences one transport-level conversation emits.
//
// Only the direction that crosses the tapped link is generated (the paper's
// traces are uni-directional), but the packet sequence within a flow is
// realistic: TCP flows start with a SYN, carry data/pure-ACK packets and end
// with FIN or RST; UDP flows are unstructured datagrams; ICMP echo flows are
// ping trains. Every packet of a flow carries a distinct, incrementing IP ID,
// which is what lets the detector separate a flow's packets from replicas of
// one looped packet.
#pragma once

#include <cstdint>

#include "net/ipv4.h"
#include "net/time.h"
#include "routing/topology.h"
#include "sim/network.h"
#include "util/random.h"

namespace rloop::trafficgen {

enum class FlowType : std::uint8_t { tcp, udp, icmp_echo, multicast_udp };

struct FlowSpec {
  FlowType type = FlowType::tcp;
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  int packet_count = 1;
  net::TimeNs start = 0;
  // Mean inter-packet gap within the flow (exponential).
  net::TimeNs mean_gap = 10 * net::kMillisecond;
  std::uint8_t initial_ttl = 64;
  std::uint16_t first_ip_id = 0;
  // Mean TCP/UDP payload size for data packets, bytes.
  std::uint16_t mean_payload = 512;
  routing::NodeId ingress = 0;
  // TCP: the connection is already established, so the first packet is data
  // rather than a SYN (used by the closed-loop emitter's continuation).
  bool tcp_established = false;
  // ICMP: message type of generated packets (echo_request by default; the
  // paper observed one host emitting reserved-type ICMP into loops).
  std::uint8_t icmp_type = 8;
};

// Schedules every packet of `spec` into `network`; returns the number of
// packets injected. Deterministic given the Rng state.
int emit_flow(sim::Network& network, const FlowSpec& spec, util::Rng& rng);

// Closed-loop TCP behaviour (paper §V-B): data packets follow only if the
// SYN is actually delivered. A lost SYN is retransmitted with exponential
// backoff (new IP ID, as real stacks do); when every attempt dies — e.g.
// inside a routing loop — the flow transmits nothing further, and with
// probability `ping_on_failure_prob` the "user" pings the unreachable
// destination, feeding the echo-request trains the paper found looping.
struct ClosedLoopConfig {
  net::TimeNs syn_check_delay = 500 * net::kMillisecond;
  int syn_retries = 2;
  net::TimeNs syn_retry_backoff = 3 * net::kSecond;
  double ping_on_failure_prob = 0.35;
};

// `network` and `rng` must outlive the simulation run (continuations hold
// references to both).
void emit_flow_closed_loop(sim::Network& network, const FlowSpec& spec,
                           util::Rng& rng, const ClosedLoopConfig& config);

}  // namespace rloop::trafficgen
