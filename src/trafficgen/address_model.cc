#include "trafficgen/address_model.h"

#include <stdexcept>
#include <unordered_set>

namespace rloop::trafficgen {

PrefixPool::PrefixPool(const PrefixPoolConfig& config, util::Rng& rng)
    : zipf_(config.prefix_count, config.zipf_s) {
  if (config.prefix_count == 0) {
    throw std::invalid_argument("PrefixPool: prefix_count must be > 0");
  }
  std::unordered_set<std::uint32_t> seen;
  prefixes_.reserve(config.prefix_count);
  while (prefixes_.size() < config.prefix_count) {
    std::uint8_t first;
    if (rng.uniform() < config.class_c_fraction) {
      first = static_cast<std::uint8_t>(rng.uniform_int(192, 223));
    } else {
      // Class A/B unicast space, avoiding 0, 10 (sim-internal), 127.
      do {
        first = static_cast<std::uint8_t>(rng.uniform_int(1, 191));
      } while (first == 10 || first == 127);
    }
    const auto second = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto third = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const net::Ipv4Addr base(first, second, third, 0);
    if (!seen.insert(base.value).second) continue;
    prefixes_.push_back(net::Prefix::of(base, 24));
  }
}

std::size_t PrefixPool::sample_index(util::Rng& rng) const {
  return zipf_.sample(rng);
}

net::Ipv4Addr PrefixPool::sample_host(std::size_t index, util::Rng& rng) const {
  const net::Prefix& p = prefixes_.at(index);
  return net::Ipv4Addr{p.addr.value |
                       static_cast<std::uint32_t>(rng.uniform_int(1, 254))};
}

net::Ipv4Addr PrefixPool::sample_destination(util::Rng& rng) const {
  return sample_host(sample_index(rng), rng);
}

net::Ipv4Addr sample_multicast_group(util::Rng& rng) {
  return net::Ipv4Addr(
      static_cast<std::uint8_t>(rng.uniform_int(224, 239)),
      static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
      static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
      static_cast<std::uint8_t>(rng.uniform_int(1, 254)));
}

}  // namespace rloop::trafficgen
