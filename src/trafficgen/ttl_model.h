// Initial-TTL model.
//
// The paper's Figures 3/8 get their step shapes from the small set of
// initial TTLs operating systems use: 64 (Linux/BSD), 128 (Windows 2000),
// 32 (Windows 9x) and 255 (Solaris and friends). A packet with initial TTL T
// that enters a loop of TTL-delta d on a backbone (having already spent a few
// hops) produces roughly T/d replicas, so the replica-count CDF jumps at
// values determined by this distribution.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/random.h"

namespace rloop::trafficgen {

class TtlModel {
 public:
  // weights need not sum to 1; they are normalized internally.
  // Throws std::invalid_argument on an empty table or non-positive weight.
  explicit TtlModel(std::vector<std::pair<std::uint8_t, double>> table);

  // Mix observed on most links: 64 and 128 dominate.
  static TtlModel standard();
  // Mix with three strong modes (64 / 128 / 32), modelling the paper's
  // Backbone 4, whose duration CDF shows three distinct steps.
  static TtlModel three_modes();

  std::uint8_t sample(util::Rng& rng) const;

  const std::vector<std::pair<std::uint8_t, double>>& table() const {
    return table_;
  }

 private:
  std::vector<std::pair<std::uint8_t, double>> table_;  // normalized weights
  std::vector<double> cdf_;
};

}  // namespace rloop::trafficgen
