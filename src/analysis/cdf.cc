#include "analysis/cdf.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rloop::analysis {

void EmpiricalCdf::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void EmpiricalCdf::add_all(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_ = false;
}

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::fraction_at_or_below(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  if (samples_.empty()) throw std::logic_error("quantile: empty CDF");
  ensure_sorted();
  if (q == 0.0) return samples_.front();
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  rank = std::min(std::max<std::size_t>(rank, 1), samples_.size());
  return samples_[rank - 1];
}

double EmpiricalCdf::min() const {
  if (samples_.empty()) throw std::logic_error("min: empty CDF");
  ensure_sorted();
  return samples_.front();
}

double EmpiricalCdf::max() const {
  if (samples_.empty()) throw std::logic_error("max: empty CDF");
  ensure_sorted();
  return samples_.back();
}

double EmpiricalCdf::mean() const {
  if (samples_.empty()) throw std::logic_error("mean: empty CDF");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> EmpiricalCdf::points(
    std::size_t max_points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || max_points == 0) return out;
  ensure_sorted();
  const auto n = samples_.size();
  const auto step = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = 0; i < n; i += step) {
    out.emplace_back(samples_[i],
                     static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (out.back().first != samples_.back() || out.back().second != 1.0) {
    out.emplace_back(samples_.back(), 1.0);
  }
  return out;
}

}  // namespace rloop::analysis
