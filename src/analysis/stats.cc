#include "analysis/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rloop::analysis {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

RateSeries::RateSeries(double bin_width) : bin_width_(bin_width) {
  if (!(bin_width > 0)) {
    throw std::invalid_argument("RateSeries: bin_width must be > 0");
  }
}

void RateSeries::add(double time, std::uint64_t weight) {
  if (time < 0) time = 0;
  auto idx = static_cast<std::size_t>(time / bin_width_);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0);
  bins_[idx] += weight;
  total_ += weight;
}

std::uint64_t RateSeries::max_bin() const {
  std::uint64_t best = 0;
  for (auto b : bins_) best = std::max(best, b);
  return best;
}

}  // namespace rloop::analysis
