// Histogram types used to summarize trace measurements.
//
// Two flavours are provided:
//  - Histogram: real-valued samples over uniform bins with under/overflow
//    tracking, used for figures that report fractions per bucket.
//  - DiscreteHistogram: integer-keyed counts (e.g. TTL deltas), preserving
//    exact values rather than binning them.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace rloop::analysis {

// Uniform-bin histogram over [lo, hi). Samples outside the range are counted
// in underflow/overflow so totals always reconcile with the sample count.
class Histogram {
 public:
  // Creates `bins` uniform bins covering [lo, hi). Throws std::invalid_argument
  // if the range is empty or bins == 0.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value, std::uint64_t weight = 1);

  std::size_t bin_count() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }

  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  // Fraction of all samples (including under/overflow) in bin i.
  double fraction(std::size_t i) const;

 private:
  double lo_ = 0;
  double hi_ = 0;
  double width_ = 0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

// Exact integer-valued histogram (e.g. TTL delta -> count).
class DiscreteHistogram {
 public:
  void add(std::int64_t value, std::uint64_t weight = 1);

  std::uint64_t count(std::int64_t value) const;
  std::uint64_t total() const { return total_; }
  double fraction(std::int64_t value) const;

  // Value with the highest count; throws std::logic_error when empty.
  std::int64_t mode() const;

  bool empty() const { return counts_.empty(); }
  const std::map<std::int64_t, std::uint64_t>& counts() const { return counts_; }

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Counts string-labelled categories (e.g. packet types). A single sample may
// be added to several categories, mirroring the paper's Figure 5/6 convention
// where a TCP SYN-ACK counts under TCP, SYN and ACK.
class CategoricalCounter {
 public:
  void add(const std::string& category, std::uint64_t weight = 1);
  // Bumps the denominator without touching any category; used when a sample
  // contributes to no category at all.
  void add_sample(std::uint64_t weight = 1) { total_ += weight; }

  std::uint64_t count(const std::string& category) const;
  std::uint64_t total() const { return total_; }
  // Fraction of the *sample* total, so multi-category samples can make
  // fractions sum above 1, as in the paper.
  double fraction(const std::string& category) const;

  const std::map<std::string, std::uint64_t>& counts() const { return counts_; }

 private:
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace rloop::analysis
