// Empirical CDF over double-valued samples.
//
// The paper's evaluation is dominated by CDF plots (Figures 3, 4, 8, 9);
// this type collects samples and answers quantile / fraction-below queries,
// and can down-sample itself to a fixed number of plot points.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace rloop::analysis {

class EmpiricalCdf {
 public:
  void add(double sample);
  void add_all(const std::vector<double>& samples);

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Fraction of samples <= x. Returns 0 for an empty CDF.
  double fraction_at_or_below(double x) const;

  // q-quantile with q in [0, 1]; uses the nearest-rank method.
  // Throws std::invalid_argument for q outside [0,1], std::logic_error if empty.
  double quantile(double q) const;

  double min() const;
  double max() const;
  double mean() const;

  // At most `max_points` (x, F(x)) pairs suitable for plotting, always
  // including the first and last sample.
  std::vector<std::pair<double, double>> points(std::size_t max_points = 64) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace rloop::analysis
