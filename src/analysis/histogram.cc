#include "analysis/histogram.h"

#include <algorithm>
#include <cmath>

namespace rloop::analysis {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double value, std::uint64_t weight) {
  total_ += weight;
  if (std::isnan(value) || value < lo_) {
    underflow_ += weight;
    return;
  }
  if (value >= hi_) {
    overflow_ += weight;
    return;
  }
  auto idx = static_cast<std::size_t>((value - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // guard FP edge at hi_
  counts_[idx] += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

void DiscreteHistogram::add(std::int64_t value, std::uint64_t weight) {
  counts_[value] += weight;
  total_ += weight;
}

std::uint64_t DiscreteHistogram::count(std::int64_t value) const {
  auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

double DiscreteHistogram::fraction(std::int64_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

std::int64_t DiscreteHistogram::mode() const {
  if (counts_.empty()) throw std::logic_error("DiscreteHistogram::mode: empty");
  auto best = counts_.begin();
  for (auto it = counts_.begin(); it != counts_.end(); ++it) {
    if (it->second > best->second) best = it;
  }
  return best->first;
}

void CategoricalCounter::add(const std::string& category, std::uint64_t weight) {
  counts_[category] += weight;
}

std::uint64_t CategoricalCounter::count(const std::string& category) const {
  auto it = counts_.find(category);
  return it == counts_.end() ? 0 : it->second;
}

double CategoricalCounter::fraction(const std::string& category) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(category)) / static_cast<double>(total_);
}

}  // namespace rloop::analysis
