// Fixed-width text table rendering for the benchmark harnesses, which print
// the paper's tables as aligned rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rloop::analysis {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Throws std::invalid_argument if the row width differs from the header.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  // Renders with a header rule, each column padded to its widest cell.
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers shared by bench output.
std::string format_double(double v, int precision = 2);
std::string format_percent(double fraction, int precision = 1);
std::string format_si(double v, int precision = 1);  // 1.2k, 3.4M, ...

}  // namespace rloop::analysis
