#include "analysis/table.h"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rloop::analysis {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 != row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t rule = 0;
  for (auto w : widths) rule += w;
  rule += 2 * (widths.size() - 1);
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision) + "%";
}

std::string format_si(double v, int precision) {
  const char* suffix = "";
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "k";
  }
  return format_double(v, precision) + suffix;
}

}  // namespace rloop::analysis
