// Minimal CSV writer used by the bench harnesses to dump figure data that can
// be re-plotted (gnuplot/matplotlib) outside this repo.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace rloop::analysis {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Throws
  // std::runtime_error when the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  // Throws std::invalid_argument if the row width differs from the header.
  void add_row(const std::vector<std::string>& cells);

  // Flushed and closed on destruction as well; explicit close lets callers
  // surface errors.
  void close();

  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t width_;
};

}  // namespace rloop::analysis
