// Streaming statistics helpers.
#pragma once

#include <cstdint>
#include <vector>

namespace rloop::analysis {

// Welford online mean/variance with min/max tracking.
class OnlineStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Buckets event counts into fixed-width time bins, e.g. losses per minute.
// Times are arbitrary units (the caller picks seconds, ns, ...).
class RateSeries {
 public:
  // Throws std::invalid_argument when bin_width <= 0.
  explicit RateSeries(double bin_width);

  void add(double time, std::uint64_t weight = 1);

  double bin_width() const { return bin_width_; }
  // Bins from time 0 through the last observed event; empty if no events.
  const std::vector<std::uint64_t>& bins() const { return bins_; }
  std::uint64_t max_bin() const;
  std::uint64_t total() const { return total_; }

 private:
  double bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace rloop::analysis
