#include "analysis/csv.h"

#include <stdexcept>

namespace rloop::analysis {

namespace {
bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}
}  // namespace

std::string CsvWriter::escape(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), width_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != width_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::close() {
  out_.close();
  if (out_.fail()) throw std::runtime_error("CsvWriter: write failure on close");
}

}  // namespace rloop::analysis
