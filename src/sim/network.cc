#include "sim/network.h"

#include <algorithm>
#include <stdexcept>

#include "net/checksum.h"

namespace rloop::sim {

namespace {
// Bound on stored ground-truth crossings; beyond this they are only counted.
constexpr std::size_t kMaxStoredCrossings = 4'000'000;
}  // namespace

Network::Network(routing::Topology topo, std::uint64_t seed, NetworkConfig cfg)
    : topo_(std::move(topo)), cfg_(cfg), rng_(seed) {
  queue_.attach_trace(cfg_.trace);
  if (telemetry::Registry* reg = cfg_.registry) {
    queue_.attach_telemetry(reg);
    const auto drop_counter = [reg](const char* reason) {
      return reg->counter("rloop_sim_packets_dropped_total",
                          {{"reason", reason}},
                          "Packets dropped by the simulated network");
    };
    m_injected_ = reg->counter("rloop_sim_packets_injected_total", {},
                               "Packets injected at ingress routers");
    m_delivered_ = reg->counter("rloop_sim_packets_delivered_total", {},
                                "Packets delivered to their destination");
    m_forwarded_ = reg->counter("rloop_sim_packets_forwarded_total", {},
                                "Hop-by-hop link transmissions");
    m_dropped_ttl_ = drop_counter("ttl_expired");
    m_dropped_queue_ = drop_counter("queue_full");
    m_dropped_link_down_ = drop_counter("link_down");
    m_dropped_no_route_ = drop_counter("no_route");
    m_icmp_generated_ = reg->counter(
        "rloop_sim_icmp_time_exceeded_total", {},
        "ICMP time-exceeded packets originated by routers");
    m_loop_crossings_ = reg->counter(
        "rloop_sim_loop_crossings_total", {},
        "Ground-truth router revisits (a packet looping right now)");
    m_tap_crossings_ = reg->counter(
        "rloop_sim_tap_crossings_total", {},
        "Captured packet traversals of tapped links (detectability truth)");
  }
  routers_.reserve(topo_.node_count());
  for (const auto& node : topo_.nodes()) {
    routers_.emplace_back(node.id, node.loopback);
  }
  links_.reserve(topo_.link_count());
  for (const auto& link : topo_.links()) {
    links_.emplace_back(link);
  }
}

void Network::attach_external_route(routing::ExternalRoute route) {
  if (route.egress_preference.empty()) {
    throw std::invalid_argument("attach_external_route: no egress");
  }
  ExternalState state;
  state.route = std::move(route);
  state.chosen.assign(topo_.node_count(), 0);
  external_.insert_or_assign(state.route.prefix, std::move(state));
}

std::vector<std::pair<net::Prefix, std::uint32_t>> Network::compute_routes(
    routing::NodeId node) const {
  const auto spf = routing::compute_spf(topo_, node);
  std::vector<std::pair<net::Prefix, std::uint32_t>> routes;
  routes.reserve(topo_.node_count() + external_.size());

  for (const auto& other : topo_.nodes()) {
    if (other.id == node) {
      routes.emplace_back(net::Prefix::of(other.loopback, 32), kFibLocal);
      continue;
    }
    if (spf.reachable(other.id)) {
      routes.emplace_back(
          net::Prefix::of(other.loopback, 32),
          static_cast<std::uint32_t>(
              spf.next_hop_link[static_cast<std::size_t>(other.id)]));
    }
  }

  for (const auto& [prefix, state] : external_) {
    const int choice = state.chosen[static_cast<std::size_t>(node)];
    const routing::NodeId egress = state.route.egress_preference.at(
        static_cast<std::size_t>(choice));
    if (egress == node) {
      routes.emplace_back(prefix, kFibLocal);
    } else if (spf.reachable(egress)) {
      routes.emplace_back(
          prefix, static_cast<std::uint32_t>(
                      spf.next_hop_link[static_cast<std::size_t>(egress)]));
    }
    // Unreachable egress: no route installed; packets get no_route_drop.
  }
  return routes;
}

void Network::refresh_node_fib(routing::NodeId node) {
  auto routes = compute_routes(node);
  // Misconfiguration overrides survive reconvergence: the operator's bogus
  // static route beats whatever the protocols compute.
  for (const auto& [key, link] : misconfigurations_) {
    if (key.first != node) continue;
    bool replaced = false;
    for (auto& [prefix, value] : routes) {
      if (prefix == key.second) {
        value = static_cast<std::uint32_t>(link);
        replaced = true;
      }
    }
    if (!replaced) {
      routes.emplace_back(key.second, static_cast<std::uint32_t>(link));
    }
  }
  routers_[static_cast<std::size_t>(node)].install_routes(routes);
}

void Network::install_all_routes() {
  for (const auto& node : topo_.nodes()) {
    refresh_node_fib(node.id);
  }
}

std::size_t Network::add_tap(routing::LinkId link, routing::NodeId from_node,
                             std::string trace_name,
                             std::int64_t epoch_unix_s) {
  const auto& spec = topo_.link(link);
  if (from_node != spec.a && from_node != spec.b) {
    throw std::invalid_argument("add_tap: from_node not an endpoint");
  }
  taps_.push_back(
      {link, from_node, net::Trace(std::move(trace_name), epoch_unix_s)});
  return taps_.size() - 1;
}

const net::Trace& Network::tap_trace(std::size_t tap_index) const {
  return taps_.at(tap_index).trace;
}

std::uint64_t Network::inject(net::ParsedPacket pkt, std::uint32_t wire_len,
                              routing::NodeId ingress, net::TimeNs t) {
  const std::uint64_t id = fates_.size();
  PacketFate fate;
  fate.injected = t;
  fates_.push_back(fate);
  ++stats_.injected;
  telemetry::inc(m_injected_);

  queue_.schedule(t, [this, pkt = std::move(pkt), wire_len, ingress, id]() {
    SimPacket p;
    p.hdr = pkt;
    p.wire_len = wire_len;
    p.injected_at = queue_.now();
    p.id = id;
    p.visited.reserve(8);
    arrive(std::move(p), ingress);
  });
  return id;
}

void Network::schedule(net::TimeNs t, std::function<void()> fn) {
  queue_.schedule(t, std::move(fn));
}

void Network::fail_link(routing::LinkId link, net::TimeNs t) {
  queue_.schedule(t, [this, link]() {
    topo_.set_link_up(link, false);
    links_[static_cast<std::size_t>(link)].set_up(false);
    control_log_.push_back(
        {ControlEvent::Kind::link_down, queue_.now(), link, {}, -1});
    const auto schedule =
        routing::link_event_schedule(topo_, link, queue_.now(), cfg_.igp, rng_);
    for (const auto& update : schedule) {
      queue_.schedule(update.time, [this, node = update.node]() {
        refresh_node_fib(node);
        control_log_.push_back(
            {ControlEvent::Kind::fib_update, queue_.now(), -1, {}, node});
      });
    }
  });
}

void Network::restore_link(routing::LinkId link, net::TimeNs t) {
  queue_.schedule(t, [this, link]() {
    topo_.set_link_up(link, true);
    links_[static_cast<std::size_t>(link)].set_up(true);
    control_log_.push_back(
        {ControlEvent::Kind::link_up, queue_.now(), link, {}, -1});
    const auto schedule =
        routing::link_event_schedule(topo_, link, queue_.now(), cfg_.igp, rng_);
    for (const auto& update : schedule) {
      queue_.schedule(update.time, [this, node = update.node]() {
        refresh_node_fib(node);
        control_log_.push_back(
            {ControlEvent::Kind::fib_update, queue_.now(), -1, {}, node});
      });
    }
  });
}

void Network::withdraw_best_egress(const net::Prefix& prefix, net::TimeNs t) {
  queue_.schedule(t, [this, prefix]() {
    auto it = external_.find(prefix);
    if (it == external_.end()) {
      throw std::invalid_argument("withdraw_best_egress: unknown prefix " +
                                  prefix.to_string());
    }
    ExternalState& state = it->second;
    if (state.route.egress_preference.size() < 2) {
      ++stats_.withdraw_without_fallback;
      return;
    }
    const routing::NodeId origin = state.route.egress_preference[0];
    control_log_.push_back(
        {ControlEvent::Kind::bgp_withdraw, queue_.now(), -1, prefix, origin});
    const auto schedule =
        routing::bgp_event_schedule(topo_, origin, queue_.now(), cfg_.bgp, rng_);
    for (const auto& update : schedule) {
      queue_.schedule(update.time, [this, prefix, node = update.node]() {
        auto st = external_.find(prefix);
        if (st == external_.end()) return;
        st->second.chosen[static_cast<std::size_t>(node)] = 1;
        control_log_.push_back({ControlEvent::Kind::bgp_fib_update,
                                queue_.now(), -1, prefix, node});
        const routing::NodeId egress = st->second.route.egress_preference[1];
        auto& fib = routers_[static_cast<std::size_t>(node)].fib();
        if (egress == node) {
          fib.insert(prefix, kFibLocal);
          return;
        }
        const auto spf = routing::compute_spf(topo_, node);
        if (spf.reachable(egress)) {
          fib.insert(prefix,
                     static_cast<std::uint32_t>(spf.next_hop_link[
                         static_cast<std::size_t>(egress)]));
        } else {
          fib.remove(prefix);
        }
      });
    }
  });
}

void Network::reannounce_prefix(const net::Prefix& prefix, net::TimeNs t) {
  queue_.schedule(t, [this, prefix]() {
    auto it = external_.find(prefix);
    if (it == external_.end()) return;
    ExternalState& state = it->second;
    const routing::NodeId origin = state.route.egress_preference[0];
    control_log_.push_back(
        {ControlEvent::Kind::bgp_reannounce, queue_.now(), -1, prefix, origin});
    const auto schedule =
        routing::bgp_event_schedule(topo_, origin, queue_.now(), cfg_.bgp, rng_);
    for (const auto& update : schedule) {
      queue_.schedule(update.time, [this, prefix, node = update.node]() {
        auto st = external_.find(prefix);
        if (st == external_.end()) return;
        st->second.chosen[static_cast<std::size_t>(node)] = 0;
        control_log_.push_back({ControlEvent::Kind::bgp_fib_update,
                                queue_.now(), -1, prefix, node});
        const routing::NodeId egress = st->second.route.egress_preference[0];
        auto& fib = routers_[static_cast<std::size_t>(node)].fib();
        if (egress == node) {
          fib.insert(prefix, kFibLocal);
          return;
        }
        const auto spf = routing::compute_spf(topo_, node);
        if (spf.reachable(egress)) {
          fib.insert(prefix,
                     static_cast<std::uint32_t>(spf.next_hop_link[
                         static_cast<std::size_t>(egress)]));
        } else {
          fib.remove(prefix);
        }
      });
    }
  });
}

void Network::inject_misconfiguration(const net::Prefix& prefix,
                                      routing::NodeId node,
                                      routing::LinkId wrong_link,
                                      net::TimeNs t) {
  queue_.schedule(t, [this, prefix, node, wrong_link]() {
    const auto& spec = topo_.link(wrong_link);
    if (spec.a != node && spec.b != node) {
      throw std::invalid_argument(
          "inject_misconfiguration: link not attached to node");
    }
    misconfigurations_[{node, prefix}] = wrong_link;
    refresh_node_fib(node);
    control_log_.push_back(
        {ControlEvent::Kind::misconfig_set, queue_.now(), wrong_link, prefix,
         node});
  });
}

void Network::clear_misconfiguration(const net::Prefix& prefix,
                                     routing::NodeId node, net::TimeNs t) {
  queue_.schedule(t, [this, prefix, node]() {
    misconfigurations_.erase({node, prefix});
    refresh_node_fib(node);
    control_log_.push_back(
        {ControlEvent::Kind::misconfig_clear, queue_.now(), -1, prefix, node});
  });
}

void Network::finish_fate(std::uint64_t id, FateKind kind,
                          std::uint16_t crossings, routing::NodeId at) {
  if (!cfg_.record_fates) return;
  PacketFate& fate = fates_.at(id);
  fate.kind = kind;
  fate.ended = queue_.now();
  fate.loop_crossings = crossings;
  fate.final_node = at;
}

void Network::deliver(SimPacket&& p, routing::NodeId at) {
  ++stats_.delivered;
  telemetry::inc(m_delivered_);
  finish_fate(p.id, FateKind::delivered, p.loop_crossings, at);
}

void Network::drop(SimPacket&& p, FateKind kind, routing::NodeId at) {
  switch (kind) {
    case FateKind::queue_drop:
      ++stats_.queue_drops;
      telemetry::inc(m_dropped_queue_);
      break;
    case FateKind::link_down_drop:
      ++stats_.link_down_drops;
      telemetry::inc(m_dropped_link_down_);
      break;
    case FateKind::no_route_drop:
      ++stats_.no_route_drops;
      telemetry::inc(m_dropped_no_route_);
      break;
    case FateKind::ttl_expired:
      ++stats_.ttl_expired;
      telemetry::inc(m_dropped_ttl_);
      break;
    default: break;
  }
  finish_fate(p.id, kind, p.loop_crossings, at);
}

void Network::expire_ttl(SimPacket&& p, routing::NodeId at) {
  SimRouter& router = routers_[static_cast<std::size_t>(at)];
  const net::Ipv4Addr original_src = p.hdr.ip.src;
  const bool was_icmp =
      p.hdr.ip.protocol == static_cast<std::uint8_t>(net::IpProto::icmp);
  drop(std::move(p), FateKind::ttl_expired, at);

  // RFC 792: routers report TTL expiry to the source — unless the expiring
  // packet was itself ICMP (no ICMP about ICMP errors; echo is exempt but we
  // conservatively skip all ICMP to avoid error storms).
  if (!cfg_.emit_icmp_time_exceeded || was_icmp) return;
  if (!router.icmp_permitted(queue_.now(), cfg_.icmp_rate_limit)) return;

  auto icmp = net::make_icmp_packet(
      router.loopback(), original_src, net::IcmpType::time_exceeded,
      /*code=*/0, /*rest=*/0,
      /*payload_len=*/28,  // original IP header + 8 bytes, per RFC 792
      /*ttl=*/64, icmp_ip_id_++);
  const std::uint64_t id =
      inject(std::move(icmp), /*wire_len=*/56, at, queue_.now());
  fates_.at(id).is_icmp_generated = true;
  ++stats_.icmp_generated;
  telemetry::inc(m_icmp_generated_);
}

void Network::transmit(SimPacket&& p, routing::NodeId at,
                       routing::LinkId link) {
  SimLink& l = links_.at(static_cast<std::size_t>(link));
  SimLink::TxTiming timing;
  const auto result = l.transmit(queue_.now(), p.wire_len, at, timing);
  if (result == SimLink::TxResult::link_down) {
    drop(std::move(p), FateKind::link_down_drop, at);
    return;
  }
  if (result == SimLink::TxResult::queue_full) {
    drop(std::move(p), FateKind::queue_drop, at);
    return;
  }

  telemetry::inc(m_forwarded_);
  for (auto& tap : taps_) {
    if (tap.link == link && tap.from == at) {
      tap.trace.add(timing.depart, p.hdr, p.wire_len);
      ++stats_.tap_crossings;
      telemetry::inc(m_tap_crossings_);
      if (tap_crossings_.size() < kMaxStoredCrossings) {
        tap_crossings_.push_back(
            {timing.depart, net::Prefix::slash24(p.hdr.ip.dst), at, p.id});
      }
    }
  }

  const routing::NodeId next = l.spec().other(at);
  queue_.schedule(timing.arrive, [this, p = std::move(p), next]() mutable {
    arrive(std::move(p), next);
  });
}

void Network::arrive(SimPacket&& p, routing::NodeId at) {
  // Ground truth: revisiting a router means the packet is looping right now.
  if (std::find(p.visited.begin(), p.visited.end(), at) != p.visited.end()) {
    ++p.loop_crossings;
    ++stats_.loop_crossings;
    telemetry::inc(m_loop_crossings_);
    if (loop_crossings_.size() < kMaxStoredCrossings) {
      loop_crossings_.push_back({queue_.now(),
                                 net::Prefix::slash24(p.hdr.ip.dst), at, p.id});
    }
  }
  p.visited.push_back(at);

  SimRouter& router = routers_[static_cast<std::size_t>(at)];
  const auto action = router.fib().lookup(p.hdr.ip.dst);
  if (!action) {
    drop(std::move(p), FateKind::no_route_drop, at);
    return;
  }
  if (*action == kFibLocal) {
    deliver(std::move(p), at);
    return;
  }
  if (p.hdr.ip.ttl <= 1) {
    expire_ttl(std::move(p), at);
    return;
  }

  // Decrement TTL with the RFC 1624 incremental checksum update real routers
  // perform; the TTL/checksum pair is the only difference between replicas.
  const std::uint16_t old_word =
      static_cast<std::uint16_t>((std::uint16_t{p.hdr.ip.ttl} << 8) |
                                 p.hdr.ip.protocol);
  p.hdr.ip.ttl -= 1;
  const std::uint16_t new_word =
      static_cast<std::uint16_t>((std::uint16_t{p.hdr.ip.ttl} << 8) |
                                 p.hdr.ip.protocol);
  p.hdr.ip.checksum =
      net::incremental_checksum_update(p.hdr.ip.checksum, old_word, new_word);

  transmit(std::move(p), at, static_cast<routing::LinkId>(*action));
}

}  // namespace rloop::sim
