#include "sim/router.h"

namespace rloop::sim {

void SimRouter::install_routes(
    const std::vector<std::pair<net::Prefix, std::uint32_t>>& routes) {
  fib_.clear();
  for (const auto& [prefix, value] : routes) {
    fib_.insert(prefix, value);
  }
}

bool SimRouter::icmp_permitted(net::TimeNs now, net::TimeNs interval) {
  if (last_icmp_ != std::numeric_limits<net::TimeNs>::min() &&
      now - last_icmp_ < interval) {
    return false;
  }
  last_icmp_ = now;
  return true;
}

}  // namespace rloop::sim
