#include "sim/failure.h"

#include <algorithm>
#include <stdexcept>

namespace rloop::sim {

void FailurePlan::apply(Network& network) const {
  for (const auto& ev : link_events) {
    network.fail_link(ev.link, ev.fail_at);
    if (ev.restore_at >= 0) {
      network.restore_link(ev.link, ev.restore_at);
    }
  }
  for (const auto& ev : bgp_events) {
    network.withdraw_best_egress(ev.prefix, ev.withdraw_at);
    if (ev.reannounce_at >= 0) {
      network.reannounce_prefix(ev.prefix, ev.reannounce_at);
    }
  }
}

FailurePlan make_failure_plan(const FailurePlanConfig& config, util::Rng& rng) {
  if (config.link_event_count > 0 && config.candidate_links.empty()) {
    throw std::invalid_argument("make_failure_plan: no candidate links");
  }
  if (config.bgp_event_count > 0 && config.candidate_prefixes.empty()) {
    throw std::invalid_argument("make_failure_plan: no candidate prefixes");
  }
  if (config.horizon <= config.start) {
    throw std::invalid_argument("make_failure_plan: empty time window");
  }

  FailurePlan plan;
  for (int i = 0; i < config.link_event_count; ++i) {
    LinkEvent ev;
    ev.link = config.candidate_links[static_cast<std::size_t>(
        rng.uniform_int(0,
                        static_cast<std::int64_t>(config.candidate_links.size()) -
                            1))];
    ev.fail_at = rng.uniform_int(config.start, config.horizon);
    const auto outage = static_cast<net::TimeNs>(
        rng.exponential(static_cast<double>(config.outage_mean)));
    ev.restore_at = ev.fail_at + std::max<net::TimeNs>(outage, net::kSecond);
    plan.link_events.push_back(ev);
  }
  for (int i = 0; i < config.bgp_event_count; ++i) {
    const net::TimeNs withdraw_at = rng.uniform_int(config.start, config.horizon);
    const auto outage = static_cast<net::TimeNs>(
        rng.exponential(static_cast<double>(config.bgp_outage_mean)));
    const net::TimeNs reannounce_at =
        withdraw_at + std::max<net::TimeNs>(outage, 5 * net::kSecond);

    // Session-failure semantics: one event withdraws a batch of prefixes at
    // the same instant (they re-announce together too).
    int batch = 1;
    if (config.bgp_batch_mean > 1.0) {
      batch = 1 + static_cast<int>(rng.exponential(config.bgp_batch_mean - 1.0));
      batch = std::min<int>(
          batch, static_cast<int>(config.candidate_prefixes.size()));
    }
    for (int b = 0; b < batch; ++b) {
      BgpEvent ev;
      ev.prefix = config.candidate_prefixes[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(
                                 config.candidate_prefixes.size()) -
                                 1))];
      ev.withdraw_at = withdraw_at;
      ev.reannounce_at = reannounce_at;
      plan.bgp_events.push_back(ev);
    }
  }

  // Sort for readability in test output; application order is irrelevant
  // because every event is scheduled at its own absolute time.
  std::sort(plan.link_events.begin(), plan.link_events.end(),
            [](const LinkEvent& a, const LinkEvent& b) {
              return a.fail_at < b.fail_at;
            });
  std::sort(plan.bgp_events.begin(), plan.bgp_events.end(),
            [](const BgpEvent& a, const BgpEvent& b) {
              return a.withdraw_at < b.withdraw_at;
            });
  return plan;
}

}  // namespace rloop::sim
