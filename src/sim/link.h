// Transmission model for a point-to-point link.
//
// Each direction has an output queue modelled by a busy-until horizon:
// serialization delay is wire_len / bandwidth, queueing delay is however far
// the horizon is ahead of now, and the drop-tail queue overflows when more
// than `queue_capacity_pkts` serializations are already pending. This keeps
// per-packet cost O(1) while producing realistic queueing delay and loss.
#pragma once

#include <cstdint>

#include "net/time.h"
#include "routing/topology.h"

namespace rloop::sim {

class SimLink {
 public:
  explicit SimLink(const routing::Link& spec) : spec_(spec) {}

  enum class TxResult { ok, link_down, queue_full };

  struct TxTiming {
    net::TimeNs depart = 0;  // serialization complete; tap timestamp
    net::TimeNs arrive = 0;  // depart + propagation delay
  };

  // Attempts to enqueue a packet of `wire_len` bytes leaving `from` at `now`.
  TxResult transmit(net::TimeNs now, std::uint32_t wire_len,
                    routing::NodeId from, TxTiming& timing);

  const routing::Link& spec() const { return spec_; }
  bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  // Serialization time for `wire_len` bytes on this link.
  net::TimeNs serialization_delay(std::uint32_t wire_len) const;

  std::uint64_t queue_drops() const { return queue_drops_; }

 private:
  routing::Link spec_;
  bool up_ = true;
  // Index 0: a -> b, index 1: b -> a.
  net::TimeNs busy_until_[2] = {0, 0};
  std::uint64_t queue_drops_ = 0;
};

}  // namespace rloop::sim
