// Per-router forwarding state.
//
// FIB values encode the forwarding action: kFibLocal delivers the packet at
// this router (the destination prefix is attached here / exits the AS here),
// any other value is the LinkId of the outgoing interface.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "net/ipv4.h"
#include "net/time.h"
#include "routing/lpm_trie.h"
#include "routing/topology.h"

namespace rloop::sim {

inline constexpr std::uint32_t kFibLocal =
    std::numeric_limits<std::uint32_t>::max();

class SimRouter {
 public:
  SimRouter(routing::NodeId id, net::Ipv4Addr loopback)
      : id_(id), loopback_(loopback) {}

  routing::NodeId id() const { return id_; }
  net::Ipv4Addr loopback() const { return loopback_; }

  routing::LpmTrie& fib() { return fib_; }
  const routing::LpmTrie& fib() const { return fib_; }

  // Replaces the full FIB contents (IGP reconvergence installs a new table).
  void install_routes(
      const std::vector<std::pair<net::Prefix, std::uint32_t>>& routes);

  // ICMP time-exceeded rate limiting (one per `interval` per router).
  bool icmp_permitted(net::TimeNs now, net::TimeNs interval);

 private:
  routing::NodeId id_;
  net::Ipv4Addr loopback_;
  routing::LpmTrie fib_;
  net::TimeNs last_icmp_ = std::numeric_limits<net::TimeNs>::min();
};

}  // namespace rloop::sim
