// The simulated network: routers, links, taps, control-plane dynamics and
// ground-truth bookkeeping.
//
// Traffic is injected at ingress routers and forwarded hop by hop through
// FIBs. Control-plane events (link failures/restorations, BGP withdrawals)
// do NOT atomically rewrite all FIBs: each router's table is replaced at the
// instant the convergence model (routing/link_state.h, routing/bgp_lite.h)
// says that router has converged. In the window where tables disagree,
// packets loop — exactly the phenomenon the paper measures — and a tap on a
// link records them into a Trace the detector can analyze.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "net/prefix.h"
#include "net/time.h"
#include "net/trace.h"
#include "routing/bgp_lite.h"
#include "routing/link_state.h"
#include "routing/topology.h"
#include "sim/event_queue.h"
#include "sim/link.h"
#include "sim/packet.h"
#include "sim/router.h"
#include "telemetry/registry.h"
#include "util/random.h"

namespace rloop::sim {

struct NetworkConfig {
  // Routers answer TTL expiry with ICMP time-exceeded toward the source
  // (rate-limited per router), as the paper observes in looped traffic.
  bool emit_icmp_time_exceeded = true;
  net::TimeNs icmp_rate_limit = 5 * net::kMillisecond;
  // Fate tracking costs ~32 bytes per packet; always on in this repo.
  bool record_fates = true;
  routing::ConvergenceConfig igp;
  routing::BgpConfig bgp;
  // Optional metrics sink (rloop_sim_* counters, event-queue depth gauge).
  // Must outlive the Network.
  telemetry::Registry* registry = nullptr;
  // Optional span sink: every dispatched simulator event gets an "event"
  // span. Must outlive the Network.
  telemetry::TraceSink* trace = nullptr;
};

enum class FateKind : std::uint8_t {
  in_flight,
  delivered,
  ttl_expired,
  queue_drop,
  link_down_drop,
  no_route_drop,
};

struct PacketFate {
  FateKind kind = FateKind::in_flight;
  net::TimeNs injected = 0;
  net::TimeNs ended = 0;
  std::uint16_t loop_crossings = 0;  // times the packet revisited a router
  bool is_icmp_generated = false;    // router-originated time-exceeded
  // Router where the packet was delivered or dropped (-1 while in flight).
  // TTL-sweep probes use this to reconstruct traceroute-style paths.
  routing::NodeId final_node = -1;

  net::TimeNs delay() const { return ended - injected; }
};

// Control-plane event log entry. The paper's future work proposes
// correlating detected loops with "complete BGP and IS-IS routing data";
// the simulator exports exactly that feed (src/correlate consumes it).
struct ControlEvent {
  enum class Kind : std::uint8_t {
    link_down,
    link_up,
    bgp_withdraw,
    bgp_reannounce,
    fib_update,      // a router's FIB replaced after IGP reconvergence
    bgp_fib_update,  // a router switched one prefix to another egress
    misconfig_set,   // operator error: FIB override installed
    misconfig_clear,
  };
  Kind kind = Kind::fib_update;
  net::TimeNs time = 0;
  routing::LinkId link = -1;  // for link_* kinds
  net::Prefix prefix;         // for bgp_* and misconfig kinds
  routing::NodeId node = -1;  // for *_fib_update and misconfig kinds
};

// One router-revisit observation: ground truth that a loop is in progress.
struct LoopCrossing {
  net::TimeNs time = 0;
  net::Prefix dst_prefix24;
  routing::NodeId node = -1;
  std::uint64_t packet_id = 0;
};

class Network {
 public:
  Network(routing::Topology topo, std::uint64_t seed, NetworkConfig cfg = {});

  const routing::Topology& topology() const { return topo_; }
  util::Rng& rng() { return rng_; }
  net::TimeNs now() const { return queue_.now(); }

  // --- route setup -------------------------------------------------------
  // Registers an external prefix exiting at route.egress_preference[0]
  // (later entries are fallbacks used when the best egress withdraws).
  void attach_external_route(routing::ExternalRoute route);
  // Computes and installs every router's full FIB from the current topology
  // and external-route choices. Call once after setup; convergence events
  // later keep FIBs up to date per-router.
  void install_all_routes();

  // --- taps ---------------------------------------------------------------
  // Captures packets traversing `link` in the from_node -> other direction.
  // Returns the index of the tap; retrieve the trace with tap_trace().
  std::size_t add_tap(routing::LinkId link, routing::NodeId from_node,
                      std::string trace_name, std::int64_t epoch_unix_s);
  const net::Trace& tap_trace(std::size_t tap_index) const;
  // Ground truth for detectability: one entry per captured traversal of a
  // tapped link (node = transmitting router). A packet with k entries
  // appears k times in the trace, so k >= min_replicas is exactly the
  // paper's condition for its replica stream to survive validation.
  const std::vector<LoopCrossing>& tap_crossings() const {
    return tap_crossings_;
  }

  // --- traffic ------------------------------------------------------------
  // Schedules injection of `pkt` at `ingress` at absolute time `t`;
  // returns the packet id (index into fates()).
  std::uint64_t inject(net::ParsedPacket pkt, std::uint32_t wire_len,
                       routing::NodeId ingress, net::TimeNs t);
  // General event scheduling for workload generators.
  void schedule(net::TimeNs t, std::function<void()> fn);

  // --- control-plane events ------------------------------------------------
  // Fails/restores a link at time `t`; per-router FIB updates follow the
  // IGP convergence model.
  void fail_link(routing::LinkId link, net::TimeNs t);
  void restore_link(routing::LinkId link, net::TimeNs t);
  // Withdraws the currently-best egress of `prefix` at time `t`; per-router
  // switches to the next-preferred egress follow the BGP convergence model.
  // No-op (with a counted warning) when no fallback egress exists.
  void withdraw_best_egress(const net::Prefix& prefix, net::TimeNs t);
  // Restores the original preference order at time `t` (re-announcement).
  void reannounce_prefix(const net::Prefix& prefix, net::TimeNs t);
  // Operator misconfiguration (the paper's persistent-loop cause): at time
  // `t`, forces `node`'s FIB entry for `prefix` onto `wrong_link`,
  // overriding every later reconvergence, until cleared. Throws (when the
  // event fires) if the link is not attached to the node.
  void inject_misconfiguration(const net::Prefix& prefix, routing::NodeId node,
                               routing::LinkId wrong_link, net::TimeNs t);
  void clear_misconfiguration(const net::Prefix& prefix, routing::NodeId node,
                              net::TimeNs t);

  // --- execution -----------------------------------------------------------
  void run_until(net::TimeNs t) { queue_.run_until(t); }
  void run_all() { queue_.run_all(); }

  // --- results --------------------------------------------------------------
  struct Stats {
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t ttl_expired = 0;
    std::uint64_t queue_drops = 0;
    std::uint64_t link_down_drops = 0;
    std::uint64_t no_route_drops = 0;
    std::uint64_t icmp_generated = 0;
    std::uint64_t loop_crossings = 0;
    std::uint64_t tap_crossings = 0;
    std::uint64_t withdraw_without_fallback = 0;

    std::uint64_t total_dropped() const {
      return ttl_expired + queue_drops + link_down_drops + no_route_drops;
    }
  };
  const Stats& stats() const { return stats_; }
  const std::vector<PacketFate>& fates() const { return fates_; }
  const std::vector<LoopCrossing>& loop_crossings() const {
    return loop_crossings_;
  }
  // Time-ordered control-plane feed (simulated "BGP + IS-IS routing data").
  const std::vector<ControlEvent>& control_log() const { return control_log_; }
  const SimRouter& router(routing::NodeId id) const {
    return routers_.at(static_cast<std::size_t>(id));
  }

 private:
  struct ExternalState {
    routing::ExternalRoute route;
    // chosen[node] = index into route.egress_preference currently used by
    // that node's FIB (per-node because convergence is per-node).
    std::vector<int> chosen;
  };

  struct Tap {
    routing::LinkId link;
    routing::NodeId from;
    net::Trace trace;
  };

  void arrive(SimPacket&& p, routing::NodeId at);
  void deliver(SimPacket&& p, routing::NodeId at);
  void drop(SimPacket&& p, FateKind kind, routing::NodeId at);
  void expire_ttl(SimPacket&& p, routing::NodeId at);
  void transmit(SimPacket&& p, routing::NodeId at, routing::LinkId link);

  // Full route computation for one node given current topology + choices.
  std::vector<std::pair<net::Prefix, std::uint32_t>> compute_routes(
      routing::NodeId node) const;
  void refresh_node_fib(routing::NodeId node);
  void finish_fate(std::uint64_t id, FateKind kind, std::uint16_t crossings,
                   routing::NodeId at);

  routing::Topology topo_;
  NetworkConfig cfg_;
  util::Rng rng_;
  EventQueue queue_;
  std::vector<SimRouter> routers_;
  std::vector<SimLink> links_;
  std::vector<Tap> taps_;
  std::unordered_map<net::Prefix, ExternalState> external_;
  std::vector<PacketFate> fates_;
  std::vector<LoopCrossing> loop_crossings_;
  std::vector<LoopCrossing> tap_crossings_;
  std::vector<ControlEvent> control_log_;
  // (node, prefix) -> forced outgoing link, applied over computed routes.
  std::map<std::pair<routing::NodeId, net::Prefix>, routing::LinkId>
      misconfigurations_;
  Stats stats_;
  std::uint16_t icmp_ip_id_ = 1;
  telemetry::Counter* m_injected_ = nullptr;
  telemetry::Counter* m_delivered_ = nullptr;
  telemetry::Counter* m_forwarded_ = nullptr;
  telemetry::Counter* m_dropped_ttl_ = nullptr;
  telemetry::Counter* m_dropped_queue_ = nullptr;
  telemetry::Counter* m_dropped_link_down_ = nullptr;
  telemetry::Counter* m_dropped_no_route_ = nullptr;
  telemetry::Counter* m_icmp_generated_ = nullptr;
  telemetry::Counter* m_tap_crossings_ = nullptr;
  telemetry::Counter* m_loop_crossings_ = nullptr;
};

}  // namespace rloop::sim
