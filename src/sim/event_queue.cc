#include "sim/event_queue.h"

#include <stdexcept>

namespace rloop::sim {

void EventQueue::attach_telemetry(telemetry::Registry* registry) {
  m_dispatched_ = telemetry::get_counter(
      registry, "rloop_sim_events_dispatched_total", {},
      "Discrete events dispatched by the simulation queue");
  m_depth_ = telemetry::get_gauge(registry, "rloop_sim_event_queue_depth", {},
                                  "Events currently pending in the queue");
}

void EventQueue::schedule(net::TimeNs t, Callback fn) {
  if (t < now_) {
    throw std::invalid_argument("EventQueue::schedule: time in the past");
  }
  heap_.push({t, next_seq_++, std::move(fn)});
  telemetry::set(m_depth_, static_cast<std::int64_t>(heap_.size()));
}

void EventQueue::pop_and_run() {
  // Move the callback out before popping so it can schedule new events.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.time;
  telemetry::inc(m_dispatched_);
  telemetry::set(m_depth_, static_cast<std::int64_t>(heap_.size()));
  const telemetry::ScopedSpan span(trace_, "event", "sim");
  ev.fn();
}

void EventQueue::run_until(net::TimeNs t) {
  while (!heap_.empty() && heap_.top().time <= t) {
    pop_and_run();
  }
  if (now_ < t) now_ = t;
}

void EventQueue::run_all() {
  while (!heap_.empty()) {
    pop_and_run();
  }
}

}  // namespace rloop::sim
