// Failure plans: the schedule of control-plane events a scenario replays.
//
// A plan is data (so tests and benches can assert against it) and is applied
// to a Network before the simulation runs. Random plans model the paper's
// environment: sporadic intra-domain link flaps (IGP loops, sub-10 s) plus
// occasional E-BGP withdrawals (EGP loops, possibly much longer).
#pragma once

#include <vector>

#include "net/prefix.h"
#include "net/time.h"
#include "routing/topology.h"
#include "sim/network.h"
#include "util/random.h"

namespace rloop::sim {

struct LinkEvent {
  routing::LinkId link = -1;
  net::TimeNs fail_at = 0;
  // < 0 means the link never comes back within the scenario.
  net::TimeNs restore_at = -1;
};

struct BgpEvent {
  net::Prefix prefix;
  net::TimeNs withdraw_at = 0;
  // < 0 means the best egress never re-announces within the scenario.
  net::TimeNs reannounce_at = -1;
};

struct FailurePlan {
  std::vector<LinkEvent> link_events;
  std::vector<BgpEvent> bgp_events;

  void apply(Network& network) const;
};

struct FailurePlanConfig {
  // Links eligible to flap and how many flaps to schedule in [start, horizon].
  std::vector<routing::LinkId> candidate_links;
  int link_event_count = 0;
  net::TimeNs outage_mean = 5 * net::kSecond;

  // Prefixes eligible for withdrawal events.
  std::vector<net::Prefix> candidate_prefixes;
  int bgp_event_count = 0;
  net::TimeNs bgp_outage_mean = 30 * net::kSecond;
  // Mean prefixes withdrawn per event. An E-BGP session failure withdraws
  // every prefix advertised over it at once (paper §II-A), so one event can
  // produce simultaneous loops across many prefixes.
  double bgp_batch_mean = 1.0;

  net::TimeNs start = net::kSecond;
  net::TimeNs horizon = 60 * net::kSecond;
};

// Draws event times uniformly in [start, horizon] and outage durations
// exponentially; deterministic given the Rng state. Throws
// std::invalid_argument when events are requested but candidates are empty.
FailurePlan make_failure_plan(const FailurePlanConfig& config, util::Rng& rng);

}  // namespace rloop::sim
