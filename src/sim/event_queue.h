// Deterministic discrete-event scheduler.
//
// Events at equal timestamps run in scheduling order (a monotonically
// increasing sequence number breaks ties), which makes every simulation run
// bit-for-bit reproducible for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/time.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace rloop::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  net::TimeNs now() const { return now_; }

  // Registers the dispatch counter and queue-depth gauge with `registry`
  // (null detaches). Call before running; metrics resolve once here.
  void attach_telemetry(telemetry::Registry* registry);

  // Attaches a span sink (null detaches): every dispatched event is wrapped
  // in an "event" span, so a Perfetto view of the simulator shows the event
  // loop's wall-clock shape.
  void attach_trace(telemetry::TraceSink* trace) { trace_ = trace; }

  // Schedules `fn` at absolute time `t`. Throws std::invalid_argument when
  // t is in the past (t < now()).
  void schedule(net::TimeNs t, Callback fn);
  void schedule_in(net::TimeNs delay, Callback fn) {
    schedule(now_ + delay, std::move(fn));
  }

  std::size_t pending() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  // Runs events with time <= t; afterwards now() == t.
  void run_until(net::TimeNs t);
  // Runs until the queue drains.
  void run_all();

 private:
  struct Event {
    net::TimeNs time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void pop_and_run();

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  net::TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  telemetry::Counter* m_dispatched_ = nullptr;
  telemetry::Gauge* m_depth_ = nullptr;
  telemetry::TraceSink* trace_ = nullptr;
};

}  // namespace rloop::sim
