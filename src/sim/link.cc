#include "sim/link.h"

namespace rloop::sim {

net::TimeNs SimLink::serialization_delay(std::uint32_t wire_len) const {
  const double seconds =
      static_cast<double>(wire_len) * 8.0 / spec_.bandwidth_bps;
  const auto ns = static_cast<net::TimeNs>(seconds * 1e9);
  return ns > 0 ? ns : 1;  // at least one ns so time strictly advances
}

SimLink::TxResult SimLink::transmit(net::TimeNs now, std::uint32_t wire_len,
                                    routing::NodeId from, TxTiming& timing) {
  if (!up_) return TxResult::link_down;

  const int dir = (from == spec_.a) ? 0 : 1;
  const net::TimeNs ser = serialization_delay(wire_len);
  net::TimeNs& busy_until = busy_until_[dir];

  const net::TimeNs backlog = busy_until > now ? busy_until - now : 0;
  // Approximate packet count waiting as backlog / this packet's ser time.
  if (backlog > ser * spec_.queue_capacity_pkts) {
    ++queue_drops_;
    return TxResult::queue_full;
  }

  const net::TimeNs start = now + backlog;
  busy_until = start + ser;
  timing.depart = busy_until;
  timing.arrive = busy_until + spec_.prop_delay;
  return TxResult::ok;
}

}  // namespace rloop::sim
