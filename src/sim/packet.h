// The unit the simulator forwards: a parsed packet plus simulation metadata.
//
// `visited` is sim-only ground truth (it is never serialized into traces):
// a router finding itself in the trail has observed a forwarding loop
// directly, which is what the passive detector is later scored against.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "net/time.h"
#include "routing/topology.h"

namespace rloop::sim {

struct SimPacket {
  net::ParsedPacket hdr;
  std::uint32_t wire_len = 0;
  net::TimeNs injected_at = 0;
  std::uint64_t id = 0;  // index into Network's fate table
  std::vector<routing::NodeId> visited;
  std::uint16_t loop_crossings = 0;
};

}  // namespace rloop::sim
