// Crash-safe daemon checkpoints.
//
// A checkpoint is everything the daemon needs to resume detection after a
// kill -9: the detector's open-entry state and hold-downs (a
// StreamingDetector::Snapshot), the exact ledger (pushed/consumed/dropped),
// and the resume offset into the packet source. Written at epoch boundaries
// via tmp + fsync + rename (never a torn file on disk), restored on start
// by scanning the checkpoint directory for the newest snapshot whose
// checksum verifies — corrupt or truncated files are skipped with a
// warning, never trusted, never fatal.
//
// On-disk format (all integers little-endian, independent of host order):
//
//   offset  size  field
//   0       4     magic "RLCK"
//   4       4     version (u32, currently 1)
//   8       8     payload size (u64)
//   16      8     FNV-1a-64 checksum of the payload bytes
//   24      ...   payload (CheckpointState fields, then the detector's
//                 open entries and hold-downs, counted)
//
// Versioning rule: any change to the payload layout bumps the version; a
// reader rejects versions it does not know (decode returns false) so an
// old binary never misparses a new snapshot, and a new binary treats an
// old version as "no checkpoint" rather than guessing. The detector
// snapshot is canonically sorted (see StreamingDetector::Snapshot), so
// identical state always produces identical bytes.
//
// Resume semantics: `source_offset` counts records the producer took from
// the source up to the snapshot (consumed + dropped). Under `block`
// back-pressure nothing is ever dropped, so skipping `source_offset`
// records on restart replays exactly the unprocessed suffix and the
// restarted run's alerts equal the uninterrupted run's. Under
// `drop_newest`, records the producer dropped after the snapshot are lost
// with the process — the "modulo the ring window" caveat.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/streaming_detector.h"

namespace rloop::daemon {

inline constexpr std::uint32_t kCheckpointVersion = 1;

struct CheckpointState {
  std::uint64_t seq = 0;          // monotonic per daemon run, resumes rising
  std::uint64_t wall_unix_s = 0;  // wall clock at write (restore-age log)
  // Records taken from the source when the snapshot was cut
  // (== pushed == consumed + dropped at an epoch boundary); the restart
  // skips this many records.
  std::uint64_t source_offset = 0;
  std::uint64_t pushed = 0;
  std::uint64_t consumed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t epochs = 0;
  std::uint64_t alerts = 0;
  core::StreamingDetector::Snapshot detector;
};

// Serializes `state` into the framed format above (header + checksummed
// payload). Deterministic: equal states encode to equal bytes.
std::string encode_checkpoint(const CheckpointState& state);

// Parses and verifies a frame produced by encode_checkpoint. Returns false
// (message in *error when non-null) on short input, bad magic, unknown
// version, size mismatch, or checksum mismatch; `state` is unspecified on
// failure.
bool decode_checkpoint(std::string_view bytes, CheckpointState& state,
                       std::string* error = nullptr);

// Writes `state` to <dir>/ckpt-<seq>.rlck atomically and prunes older
// snapshots, keeping the newest two (the previous one survives until the
// next write so a crash during rename still leaves a valid snapshot).
// Creates `dir` if missing. False + *error on any I/O failure; an existing
// newest checkpoint is never damaged by a failed write.
bool write_checkpoint_file(const std::string& dir,
                           const CheckpointState& state,
                           std::string* error = nullptr);

// Scans `dir` for ckpt-*.rlck files and decodes the one with the highest
// sequence number that verifies, skipping (and warning to stderr about)
// corrupt files. Returns false when the directory is missing/empty or no
// file verifies — the cold-start path, not an error.
bool load_latest_checkpoint(const std::string& dir, CheckpointState& state,
                            std::string* error = nullptr);

}  // namespace rloop::daemon
