// Where the daemon's packets come from.
//
// A PacketSource is a pull iterator of timestamped capture records, consumed
// by the daemon's producer thread. Two adapters cover the repo's inputs:
//
//  * PcapReplaySource — a capture file loaded via read_pcap_fast (mmap path
//    when possible) and replayed at recorded speed, at a time-scaled speed,
//    or as fast as the consumer can take it (speed <= 0, "max"). Pacing is
//    done by the *caller* thread sleeping between next() calls, so a paced
//    replay exercises exactly the burst/lull pattern of the original trace.
//
//  * SimulatorSource — one of the four backbone scenarios run on demand, its
//    tap trace then replayed like a pcap. This is the "live" source for
//    machines without captures: deterministic traffic with real loops.
//
// Both are Trace replays underneath (ReplaySource); a true libpcap live
// capture would implement the same three-method interface.
#pragma once

#include <memory>
#include <string>

#include "net/trace.h"
#include "telemetry/registry.h"

namespace rloop::daemon {

class PacketSource {
 public:
  virtual ~PacketSource() = default;

  // Fills `out` with the next record; false at end of stream. When pacing
  // applies, blocks (sleeps) until the record is due.
  virtual bool next(net::TraceRecord& out) = 0;

  // Human-readable origin for logs and stats ("pcap:foo.pcap", "sim:1").
  virtual std::string name() const = 0;

  // Records this source will produce in total, 0 when unknown (live).
  virtual std::size_t expected_packets() const { return 0; }

  // Discards the next `n` records (checkpoint restore: fast-forward past
  // the already-consumed prefix). Replay sources jump their index; the
  // default pulls and discards, which also works for live sources.
  virtual void skip(std::size_t n) {
    net::TraceRecord discard;
    while (n-- > 0 && next(discard)) {
    }
  }
};

// Replays an in-memory Trace. speed <= 0 replays as fast as possible;
// speed 1.0 at recorded pace; speed 10 at 10x the recorded pace. The first
// next() call anchors trace time to the wall clock.
class ReplaySource : public PacketSource {
 public:
  ReplaySource(net::Trace trace, std::string name, double speed);
  // Non-owning: `trace` must outlive the source (benchmarks replaying a
  // shared cached trace without copying it).
  ReplaySource(const net::Trace* trace, std::string name, double speed);

  bool next(net::TraceRecord& out) override;
  std::string name() const override { return name_; }
  std::size_t expected_packets() const override { return trace_->size(); }
  // O(1): advances the replay index without pacing sleeps. The first record
  // actually delivered re-anchors pacing, so a paced resumed replay does not
  // try to "catch up" the skipped span in wall time.
  void skip(std::size_t n) override;

 private:
  net::Trace owned_;
  const net::Trace* trace_ = nullptr;
  std::string name_;
  double speed_;
  std::size_t index_ = 0;
  bool anchored_ = false;            // pacing anchor taken yet?
  std::int64_t wall_anchor_ns_ = 0;  // wall clock at first delivered record
  net::TimeNs trace_anchor_ = 0;     // trace ts of first delivered record
};

// read_pcap_fast + ReplaySource. Throws what the pcap readers throw.
std::unique_ptr<PacketSource> make_pcap_source(
    const std::string& path, double speed,
    telemetry::Registry* registry = nullptr);

// Runs backbone scenario `k` (1..4) and replays its tap trace.
std::unique_ptr<PacketSource> make_sim_source(
    int k, double speed, telemetry::Registry* registry = nullptr);

// Runs the canned scenario `name` (scenarios/scenario.h) and replays its
// analysis trace — the phase-driven stress workloads as a daemon input.
// `seed` != 0 overrides the scenario's pinned seed. Throws
// std::invalid_argument on an unknown name.
std::unique_ptr<PacketSource> make_scenario_source(
    const std::string& name, double speed, std::uint64_t seed = 0,
    telemetry::Registry* registry = nullptr);

}  // namespace rloop::daemon
