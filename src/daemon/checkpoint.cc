#include "daemon/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "util/failpoint.h"
#include "util/fileio.h"

namespace rloop::daemon {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[4] = {'R', 'L', 'C', 'K'};
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 8;

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Little-endian append/read, independent of host byte order.
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

// Reader with an explicit ok flag: any short read poisons the cursor so
// decode can check once at the end instead of after every field.
struct Cursor {
  std::string_view data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (pos + 1 > data.size()) {
      ok = false;
      return 0;
    }
    return static_cast<std::uint8_t>(data[pos++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    if (pos + 4 > data.size()) {
      ok = false;
      pos = data.size();
      return 0;
    }
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos++]))
           << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    if (pos + 8 > data.size()) {
      ok = false;
      pos = data.size();
      return 0;
    }
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[pos++]))
           << (8 * i);
    }
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool bytes(std::byte* out, std::size_t n) {
    if (pos + n > data.size()) {
      ok = false;
      pos = data.size();
      return false;
    }
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::byte>(data[pos + i]);
    }
    pos += n;
    return true;
  }
};

void put_prefix(std::string& out, const net::Prefix& p) {
  put_u32(out, p.addr.value);
  put_u8(out, p.len);
}

net::Prefix get_prefix(Cursor& c) {
  const std::uint32_t addr = c.u32();
  const std::uint8_t len = c.u8();
  if (!c.ok || len > 32) {
    c.ok = false;
    return net::Prefix{};
  }
  return net::Prefix::of(net::Ipv4Addr(addr), len);
}

// True when `seq` was parsed from a name of the form ckpt-<seq>.rlck.
bool parse_checkpoint_name(const std::string& name, std::uint64_t& seq) {
  constexpr std::string_view prefix = "ckpt-";
  constexpr std::string_view suffix = ".rlck";
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return false;
  seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

std::string checkpoint_path(const std::string& dir, std::uint64_t seq) {
  return (fs::path(dir) / ("ckpt-" + std::to_string(seq) + ".rlck")).string();
}

}  // namespace

std::string encode_checkpoint(const CheckpointState& state) {
  std::string payload;
  const auto& det = state.detector;
  payload.reserve(128 + det.open.size() * 80 + det.holddowns.size() * 13);
  put_u64(payload, state.seq);
  put_u64(payload, state.wall_unix_s);
  put_u64(payload, state.source_offset);
  put_u64(payload, state.pushed);
  put_u64(payload, state.consumed);
  put_u64(payload, state.dropped);
  put_u64(payload, state.epochs);
  put_u64(payload, state.alerts);
  put_i64(payload, det.last_ts);
  put_u64(payload, det.packets_seen);
  put_u64(payload, det.alerts_raised);
  put_u64(payload, det.reordered);
  put_u64(payload, det.reorder_dropped);
  put_u64(payload, det.evicted);
  put_u64(payload, det.sampled_dropped);
  put_u64(payload, det.peak_open);
  put_u32(payload, det.since_sweep);
  put_u64(payload, det.open.size());
  for (const auto& [key, entry] : det.open) {
    for (const std::byte b : key.normalized) {
      payload.push_back(static_cast<char>(b));
    }
    put_u8(payload, key.len);
    put_u64(payload, key.hash);
    put_i64(payload, entry.first_ts);
    put_i64(payload, entry.last_ts);
    put_u8(payload, entry.last_ttl);
    put_u32(payload, entry.replicas);
    put_u32(payload, static_cast<std::uint32_t>(entry.last_delta));
    put_prefix(payload, entry.prefix24);
  }
  put_u64(payload, det.holddowns.size());
  for (const auto& [prefix, ts] : det.holddowns) {
    put_prefix(payload, prefix);
    put_i64(payload, ts);
  }

  std::string frame;
  frame.reserve(kHeaderSize + payload.size());
  frame.append(kMagic, sizeof(kMagic));
  put_u32(frame, kCheckpointVersion);
  put_u64(frame, payload.size());
  put_u64(frame, fnv1a64(payload));
  frame += payload;
  return frame;
}

bool decode_checkpoint(std::string_view bytes, CheckpointState& state,
                       std::string* error) {
  if (bytes.size() < kHeaderSize) {
    if (error) *error = "checkpoint shorter than its header";
    return false;
  }
  if (bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    if (error) *error = "checkpoint magic mismatch";
    return false;
  }
  Cursor header{bytes.substr(sizeof(kMagic)), 0, true};
  const std::uint32_t version = header.u32();
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t checksum = header.u64();
  if (version != kCheckpointVersion) {
    if (error) {
      *error = "checkpoint version " + std::to_string(version) +
               " not supported (expected " +
               std::to_string(kCheckpointVersion) + ")";
    }
    return false;
  }
  if (bytes.size() != kHeaderSize + payload_size) {
    if (error) *error = "checkpoint payload size mismatch (torn write?)";
    return false;
  }
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (fnv1a64(payload) != checksum) {
    if (error) *error = "checkpoint checksum mismatch";
    return false;
  }

  Cursor c{payload, 0, true};
  state = CheckpointState{};
  state.seq = c.u64();
  state.wall_unix_s = c.u64();
  state.source_offset = c.u64();
  state.pushed = c.u64();
  state.consumed = c.u64();
  state.dropped = c.u64();
  state.epochs = c.u64();
  state.alerts = c.u64();
  auto& det = state.detector;
  det.last_ts = c.i64();
  det.packets_seen = c.u64();
  det.alerts_raised = c.u64();
  det.reordered = c.u64();
  det.reorder_dropped = c.u64();
  det.evicted = c.u64();
  det.sampled_dropped = c.u64();
  det.peak_open = c.u64();
  det.since_sweep = c.u32();
  const std::uint64_t open_count = c.u64();
  // Sanity bound: each open entry occupies >= 70 payload bytes, so a count
  // beyond payload/70 cannot be honest even though the checksum passed.
  if (!c.ok || open_count > payload.size() / 70) {
    if (error) *error = "checkpoint open-entry count implausible";
    return false;
  }
  det.open.reserve(static_cast<std::size_t>(open_count));
  for (std::uint64_t i = 0; i < open_count && c.ok; ++i) {
    core::ReplicaKey key;
    c.bytes(key.normalized.data(), key.normalized.size());
    key.len = c.u8();
    key.hash = c.u64();
    core::StreamingDetector::OpenEntry entry;
    entry.first_ts = c.i64();
    entry.last_ts = c.i64();
    entry.last_ttl = c.u8();
    entry.replicas = c.u32();
    entry.last_delta = static_cast<std::int32_t>(c.u32());
    entry.prefix24 = get_prefix(c);
    det.open.emplace_back(std::move(key), entry);
  }
  const std::uint64_t holddown_count = c.u64();
  if (!c.ok || holddown_count > payload.size() / 13) {
    if (error) *error = "checkpoint hold-down count implausible";
    return false;
  }
  det.holddowns.reserve(static_cast<std::size_t>(holddown_count));
  for (std::uint64_t i = 0; i < holddown_count && c.ok; ++i) {
    const net::Prefix prefix = get_prefix(c);
    const net::TimeNs ts = c.i64();
    det.holddowns.emplace_back(prefix, ts);
  }
  if (!c.ok || c.pos != payload.size()) {
    if (error) *error = "checkpoint payload truncated or oversized";
    return false;
  }
  return true;
}

bool write_checkpoint_file(const std::string& dir,
                           const CheckpointState& state, std::string* error) {
  if (RLOOP_FAILPOINT("daemon.checkpoint.write")) {
    if (error) *error = "injected checkpoint write failure";
    return false;
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    if (error) *error = "cannot create checkpoint dir " + dir;
    return false;
  }
  const std::string path = checkpoint_path(dir, state.seq);
  if (!util::write_file_atomic(path, encode_checkpoint(state), error)) {
    return false;
  }
  // Prune all but the two newest snapshots; the previous one stays until
  // the next successful write, so a bad write never leaves zero valid
  // checkpoints behind. Prune failures are non-fatal (stale files only).
  for (const auto& dirent : fs::directory_iterator(dir, ec)) {
    std::uint64_t seq = 0;
    if (!parse_checkpoint_name(dirent.path().filename().string(), seq)) {
      continue;
    }
    if (state.seq >= 1 && seq < state.seq - 1) {
      fs::remove(dirent.path(), ec);
    }
  }
  return true;
}

bool load_latest_checkpoint(const std::string& dir, CheckpointState& state,
                            std::string* error) {
  std::error_code ec;
  std::vector<std::pair<std::uint64_t, fs::path>> candidates;
  for (const auto& dirent : fs::directory_iterator(dir, ec)) {
    std::uint64_t seq = 0;
    if (parse_checkpoint_name(dirent.path().filename().string(), seq)) {
      candidates.emplace_back(seq, dirent.path());
    }
  }
  if (ec || candidates.empty()) {
    if (error) *error = "no checkpoint files in " + dir;
    return false;
  }
  // Newest first; fall back to older snapshots when a newer one is corrupt
  // (e.g. the process died mid-publication and left a damaged file via some
  // path outside our atomic writer).
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [seq, path] : candidates) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) continue;
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::string decode_error;
    if (decode_checkpoint(bytes, state, &decode_error)) return true;
    std::fprintf(stderr, "rloopd: skipping checkpoint %s: %s\n",
                 path.string().c_str(), decode_error.c_str());
  }
  if (error) *error = "no valid checkpoint in " + dir;
  return false;
}

}  // namespace rloop::daemon
