// The always-on loop-detection daemon (library core of `rloopd`).
//
// Two threads, one ring:
//
//   PacketSource --> [producer thread] --> SpscRing --> [consumer thread]
//                                                        StreamingDetector
//
// The producer does nothing but pull records from the source and push them
// into the ring, applying the configured back-pressure policy when the ring
// is full: `block` spins (lossless, latency moves upstream), `drop_newest`
// counts the record into `dropped` and moves on (bounded latency, explicit
// loss). The consumer — run() itself, on the calling thread — drains the
// ring in batches of at most `batch_size` ("epochs"), feeds the detector,
// and records per-epoch latency + batch-occupancy histograms, amortizing
// per-packet synchronization to ~1/batch_size.
//
// Accounting is exact by construction: `pushed` counts records the producer
// took from the source, `dropped` the ones back-pressure discarded, and
// `consumed` the ones the detection thread processed. On any exit path the
// consumer drains whatever the producer enqueued, so after run() returns
//
//     pushed == consumed + dropped            (DaemonStats::invariant_ok)
//
// holds exactly — the overload story is a number, not a shrug.
//
// Lifecycle: run() returns when the source is exhausted or after
// request_stop() (the SIGINT/SIGTERM path: producer stops promptly, ring is
// drained, stats flushed). request_reload() (SIGHUP) re-reads the config
// file at the next epoch boundary and applies the reloadable keys to the
// live detector. Both are one atomic store — safe to call from a signal
// handler or another thread.
//
// Memory is bounded end to end: the ring is fixed-size, the detector runs
// under StreamingConfig::max_open_entries with watermark eviction (surfaced
// here as rloop_daemon_evicted_total), and stats go through the existing
// telemetry registry, so days-long runs against millions of /24s hold a
// fixed RSS.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/streaming_detector.h"
#include "daemon/checkpoint.h"
#include "daemon/config.h"
#include "daemon/governor.h"
#include "daemon/packet_source.h"
#include "daemon/spsc_ring.h"
#include "net/trace.h"
#include "telemetry/decision_log.h"
#include "telemetry/registry.h"

namespace rloop::daemon {

class ObservabilityHub;  // observability.h; attach_observability is optional

struct DaemonStats {
  std::string source;
  std::uint64_t pushed = 0;    // records taken from the source
  std::uint64_t dropped = 0;   // discarded by drop_newest back-pressure
  std::uint64_t consumed = 0;  // records the detection thread processed
  std::uint64_t epochs = 0;    // consumer batches
  std::uint64_t reloads = 0;   // SIGHUP reloads applied
  std::uint64_t alerts = 0;
  std::uint64_t reordered = 0;
  std::uint64_t reorder_dropped = 0;
  std::uint64_t evicted = 0;
  std::size_t open_entries = 0;
  std::size_t peak_open_entries = 0;
  net::TimeNs last_packet_ts = 0;
  // Checkpointing (0s when no checkpoint_dir is configured).
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_failures = 0;
  std::uint64_t restored_seq = 0;  // snapshot this run resumed from; 0 = cold
  // Graded degradation (governor.h); tier 0 with the governor disabled.
  int degrade_tier = 0;
  std::uint64_t degrade_escalations = 0;
  std::uint64_t degrade_deescalations = 0;
  std::uint64_t alloc_failures = 0;
  std::uint64_t sampled_dropped = 0;

  bool invariant_ok() const { return pushed == consumed + dropped; }

  // One JSON object; with `metrics_json` (a telemetry::to_json array) it is
  // embedded under "metrics". This is the --stats-out payload CI asserts on.
  std::string to_json(const std::string& metrics_json = "") const;
};

class Daemon {
 public:
  using AlertCallback = core::StreamingDetector::AlertCallback;

  // `registry`/`journal` optional, must outlive the daemon. The alert
  // callback fires on the consumer thread.
  Daemon(DaemonConfig config, std::unique_ptr<PacketSource> source,
         AlertCallback on_alert, telemetry::Registry* registry = nullptr,
         telemetry::DecisionLog* journal = nullptr);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Attaches the live observability plane (observability.h). The daemon
  // publishes a StatusSnapshot at every epoch boundary and the open suspect
  // table every `loops_publish_every` epochs — always with try_lock, so a
  // scraper holding the hub never stalls the consumer thread. Set before
  // run(); the hub must outlive the daemon.
  void attach_observability(ObservabilityHub* hub) { obs_hub_ = hub; }

  // Receives each periodic stats dump (Prometheus/JSON text per
  // config.stats_format). Set before run(); fires on the consumer thread,
  // driven by packet timestamps so replays are deterministic.
  using StatsSink = std::function<void(const std::string&)>;
  void set_stats_sink(StatsSink sink) { stats_sink_ = std::move(sink); }

  // Blocks until the source ends or request_stop(); returns final stats.
  // Call at most once.
  DaemonStats run();

  // Graceful drain: producer stops, ring is drained, run() returns.
  // One relaxed atomic store — async-signal-safe.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  // Re-read config_file at the next epoch boundary. Async-signal-safe.
  void request_reload() { reload_.store(true, std::memory_order_relaxed); }

  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  // Live view (consistent only after run() returns).
  DaemonStats stats() const;

  const core::StreamingDetector& detector() const { return detector_; }
  // Current config (reload may have changed the reloadable keys).
  const DaemonConfig& config() const { return config_; }

  // How this run started: cold, or resumed from snapshot `seq` written at
  // `wall_unix_s`. Valid after construction.
  struct RestoreInfo {
    bool restored = false;
    std::uint64_t seq = 0;
    std::uint64_t wall_unix_s = 0;
    std::uint64_t source_offset = 0;  // records skipped on resume
  };
  const RestoreInfo& restore_info() const { return restore_info_; }

  const OverloadGovernor& governor() const { return governor_; }

 private:
  void producer_loop();
  void consume_batch(const net::TraceRecord* batch, std::size_t n);
  void apply_reload();
  void try_restore();
  // Cuts a snapshot when due (`force` ignores the interval); counts
  // failures but never throws — checkpointing must not take the daemon down.
  void maybe_checkpoint(bool force);
  // Applies the governor tier's effects (journal, batch width, sampling,
  // forced drop). Consumer thread only.
  void apply_tier(DegradeTier tier);
  // Epoch-boundary publish into obs_hub_ (no-op when unattached). Status
  // every call; the suspect table every loops_publish_every epochs or when
  // `final_publish` (drain) is set.
  void publish_observability(bool final_publish);
  // Mirrors failpoint trip counts into rloop_failpoint_trips_total{name=}.
  void export_failpoint_trips();

  DaemonConfig config_;
  std::unique_ptr<PacketSource> source_;
  telemetry::Registry* registry_ = nullptr;
  telemetry::DecisionLog* journal_ = nullptr;
  StatsSink stats_sink_;
  core::StreamingDetector detector_;
  SpscRing<net::TraceRecord> ring_;
  OverloadGovernor governor_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> reload_{false};
  std::atomic<bool> producer_done_{false};
  // Governor tier 4: producer drops on a full ring even under `block`.
  std::atomic<bool> force_drop_{false};

  // Producer-written, consumer/exporter-read.
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  // Consumer-written.
  std::atomic<std::uint64_t> consumed_{0};
  std::uint64_t epochs_ = 0;
  std::uint64_t reloads_ = 0;
  std::uint64_t alerts_ = 0;
  net::TimeNs last_packet_ts_ = 0;
  std::uint64_t evicted_reported_ = 0;
  // Consumer-thread checkpoint state.
  std::uint64_t ckpt_seq_ = 0;
  std::uint64_t checkpoints_written_ = 0;
  std::uint64_t checkpoint_failures_ = 0;
  net::TimeNs last_ckpt_ts_ = 0;
  std::uint64_t last_ckpt_wall_unix_s_ = 0;  // newest on-disk snapshot
  RestoreInfo restore_info_;
  // Observability plane (null = detached; zero publish cost beyond a branch).
  ObservabilityHub* obs_hub_ = nullptr;
  bool obs_started_ = false;  // consumer loop entered
  std::uint64_t start_unix_s_ = 0;
  std::chrono::steady_clock::time_point start_steady_{};
  static constexpr std::uint64_t kLoopsPublishEvery = 8;
  static constexpr std::size_t kLoopsPublishMax = 4096;
  // Effective per-epoch drain limit (batch_size, widened at tier >= 2).
  std::size_t batch_limit_ = 0;
  std::map<std::string, std::uint64_t> failpoint_reported_;

  telemetry::Counter* m_pushed_ = nullptr;
  telemetry::Counter* m_consumed_ = nullptr;
  telemetry::Counter* m_dropped_ = nullptr;
  telemetry::Counter* m_epochs_ = nullptr;
  telemetry::Counter* m_evicted_ = nullptr;
  telemetry::Counter* m_reloads_ = nullptr;
  telemetry::Counter* m_checkpoints_ = nullptr;
  telemetry::Counter* m_ckpt_failures_ = nullptr;
  telemetry::Gauge* m_ring_occupancy_ = nullptr;
  telemetry::Histogram* m_epoch_ns_ = nullptr;
  telemetry::Histogram* m_batch_size_ = nullptr;
  telemetry::Gauge* m_uptime_s_ = nullptr;
  telemetry::Gauge* m_last_packet_ts_s_ = nullptr;
};

}  // namespace rloop::daemon
