#include "daemon/config.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace rloop::daemon {

namespace {

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

bool apply_config_file(const std::string& path, DaemonConfig& config,
                       std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    if (error) *error = "cannot read config file: " + path;
    return false;
  }
  DaemonConfig staged = config;  // all-or-nothing application
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto eq = stripped.find('=');
    if (eq == std::string::npos) {
      if (error) {
        *error = path + ":" + std::to_string(lineno) + ": expected key=value";
      }
      return false;
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    std::uint64_t u = 0;
    double d = 0;
    bool ok = true;
    if (key == "max_open_entries") {
      ok = parse_u64(value, u);
      if (ok) staged.streaming.max_open_entries = u;
    } else if (key == "reorder_tolerance_ms") {
      ok = parse_double(value, d);
      if (ok) staged.streaming.reorder_tolerance_ns = net::from_millis(d);
    } else if (key == "min_replicas") {
      ok = parse_u64(value, u) && u >= 2;
      if (ok) staged.streaming.min_replicas = u;
    } else if (key == "min_ttl_delta") {
      ok = parse_u64(value, u) && u >= 1;
      if (ok) staged.streaming.min_ttl_delta = static_cast<int>(u);
    } else if (key == "stream_timeout_s") {
      ok = parse_double(value, d) && d > 0;
      if (ok) staged.streaming.stream_timeout = net::from_seconds(d);
    } else if (key == "alert_holddown_s") {
      ok = parse_double(value, d) && d >= 0;
      if (ok) staged.streaming.alert_holddown = net::from_seconds(d);
    } else if (key == "stats_interval_s") {
      ok = parse_double(value, d) && d >= 0;
      if (ok) staged.stats_interval = net::from_seconds(d);
    } else if (key == "checkpoint_dir") {
      staged.checkpoint_dir = value;  // "" turns checkpointing off
    } else if (key == "checkpoint_interval_s") {
      ok = parse_double(value, d) && d >= 0;
      if (ok) staged.checkpoint_interval = net::from_seconds(d);
    }
    // Unknown keys (including structural ones) are ignored on reload.
    if (!ok) {
      if (error) {
        *error = path + ":" + std::to_string(lineno) + ": bad value for '" +
                 key + "': " + value;
      }
      return false;
    }
  }
  config = staged;
  return true;
}

}  // namespace rloop::daemon
