#include "daemon/governor.h"

namespace rloop::daemon {

const char* degrade_tier_name(DegradeTier tier) {
  switch (tier) {
    case DegradeTier::normal:
      return "normal";
    case DegradeTier::shed_observability:
      return "shed_observability";
    case DegradeTier::widen_batching:
      return "widen_batching";
    case DegradeTier::sample_suspects:
      return "sample_suspects";
    case DegradeTier::drop_newest:
      return "drop_newest";
  }
  return "unknown";
}

OverloadGovernor::OverloadGovernor(GovernorConfig config,
                                   telemetry::Registry* registry)
    : config_(config),
      m_tier_(telemetry::get_gauge(
          registry, "rloop_daemon_degrade_tier", {},
          "Current degradation tier (0 normal .. 4 drop_newest)")),
      m_escalations_(telemetry::get_counter(
          registry, "rloop_daemon_degrade_escalations_total", {},
          "Degradation tier steps up (overload onsets)")),
      m_deescalations_(telemetry::get_counter(
          registry, "rloop_daemon_degrade_deescalations_total", {},
          "Degradation tier steps down (recoveries)")),
      m_alloc_failures_(telemetry::get_counter(
          registry, "rloop_daemon_alloc_failures_total", {},
          "Allocation failures absorbed by detection (escalate to "
          "sampling)")) {}

void OverloadGovernor::move_to(DegradeTier to, double occupancy) {
  const DegradeTier from = tier_;
  if (to == from) return;
  tier_ = to;
  calm_epochs_ = 0;
  if (static_cast<int>(to) > static_cast<int>(from)) {
    ++escalations_;
    telemetry::inc(m_escalations_);
  } else {
    ++deescalations_;
    telemetry::inc(m_deescalations_);
  }
  telemetry::set(m_tier_, static_cast<std::int64_t>(to));
  if (hook_) hook_(from, to, occupancy);
}

DegradeTier OverloadGovernor::on_epoch(std::size_t occupancy,
                                       std::size_t capacity) {
  const double fill =
      capacity == 0 ? 0.0
                    : static_cast<double>(occupancy) /
                          static_cast<double>(capacity);
  if (fill >= config_.enter_occupancy) {
    calm_epochs_ = 0;
    if (tier_ != DegradeTier::drop_newest) {
      move_to(static_cast<DegradeTier>(static_cast<int>(tier_) + 1), fill);
    }
  } else if (fill <= config_.exit_occupancy) {
    if (tier_ != DegradeTier::normal &&
        ++calm_epochs_ >= config_.hold_epochs) {
      move_to(static_cast<DegradeTier>(static_cast<int>(tier_) - 1), fill);
    }
  } else {
    // Inside the hysteresis band: hold the tier, reset the calm streak.
    calm_epochs_ = 0;
  }
  return tier_;
}

DegradeTier OverloadGovernor::on_alloc_failure() {
  ++alloc_failures_;
  telemetry::inc(m_alloc_failures_);
  if (static_cast<int>(tier_) < static_cast<int>(DegradeTier::sample_suspects)) {
    move_to(DegradeTier::sample_suspects, 1.0);
  }
  return tier_;
}

}  // namespace rloop::daemon
