// The daemon's live observability plane: epoch-boundary snapshots published
// by the consumer thread, served over an embedded HTTP server.
//
// The contract that shapes everything here: the HTTP side may NEVER block
// the detection hot path. The consumer thread publishes through
// ObservabilityHub with try_lock — if a scraper holds the lock, the publish
// is skipped (counted) and retried next epoch; the consumer never waits.
// Scrapers read under the full lock and therefore always see a consistent
// snapshot (the ledger invariant holds inside any one /status response).
// Alert fan-out to /events clients uses bounded per-client queues with
// drop-newest accounting, same policy as the ingest ring.
//
// Endpoint catalog (mounted by ObservabilityServer, served by
// net::HttpServer on its own threads):
//
//   /metrics   Prometheus text: the full telemetry registry, plus derived
//              <histogram>_quantiles summaries (p50/p95/p99,
//              telemetry/quantiles.h), rloop_build_info, and the HTTP
//              plane's own counters
//   /healthz   200 while the process serves requests (liveness)
//   /readyz    200 only when the daemon has started consuming, is not
//              draining, and the governor tier is at or below
//              widen_batching; 503 with a reason otherwise (readiness)
//   /status    one JSON object: uptime, ring ledger, governor tier and
//              transition counts, checkpoint seq/age, config epoch
//   /loops     currently-open suspect entries (>= 2 replicas) as JSON,
//              copied from the detector at the last publish boundary
//   /events    text/event-stream of alert lines as they are raised
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/streaming_detector.h"
#include "daemon/governor.h"
#include "net/http_server.h"
#include "net/time.h"
#include "telemetry/registry.h"

namespace rloop::daemon {

// Everything /status and /readyz need, copied from the daemon at epoch
// boundaries. Consistent within one publish (single writer, whole-struct
// copy under the hub lock).
struct StatusSnapshot {
  bool started = false;   // consumer loop entered (restore already decided)
  bool draining = false;  // stop requested or source exhausted
  std::string source;
  std::uint64_t start_unix_s = 0;
  double uptime_s = 0;

  // Ring ledger (pushed == consumed + dropped at rest).
  std::uint64_t pushed = 0;
  std::uint64_t consumed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t ring_capacity = 0;
  std::uint64_t ring_occupancy = 0;

  std::uint64_t epochs = 0;
  std::uint64_t alerts = 0;
  std::uint64_t reordered = 0;
  std::uint64_t reorder_dropped = 0;
  std::uint64_t evicted = 0;
  std::uint64_t sampled_dropped = 0;
  std::uint64_t open_entries = 0;
  std::uint64_t peak_open_entries = 0;
  net::TimeNs last_packet_ts = 0;

  // Config epoch: SIGHUP reloads applied since start (0 = boot config).
  std::uint64_t config_epoch = 0;

  // Checkpointing.
  std::uint64_t checkpoint_seq = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_failures = 0;
  std::uint64_t checkpoint_wall_unix_s = 0;  // newest snapshot; 0 = none yet
  std::uint64_t restored_seq = 0;            // 0 = cold start

  // Governor.
  int degrade_tier = 0;
  std::uint64_t degrade_escalations = 0;
  std::uint64_t degrade_deescalations = 0;
  std::uint64_t alloc_failures = 0;

  // One JSON object (the /status payload). `now_unix_s` turns
  // checkpoint_wall_unix_s into a checkpoint_age_s field.
  std::string to_json(std::uint64_t now_unix_s) const;
};

// One /events subscriber: a bounded FIFO of alert lines. The publisher
// (consumer thread) pushes with try_lock + drop-newest; the SSE connection
// thread pops with a timed wait.
class EventStream {
 public:
  explicit EventStream(std::size_t capacity) : capacity_(capacity) {}

  // Blocks up to `timeout_ms` for a line; false on timeout or closed+empty.
  bool pop(std::string& out, int timeout_ms);

  bool closed() const;
  // Lines dropped because the queue was full or the publisher could not
  // take the lock; reading resets the count (the SSE writer reports it).
  std::uint64_t take_dropped() {
    return dropped_.exchange(0, std::memory_order_relaxed);
  }

 private:
  friend class ObservabilityHub;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::string> q_;
  std::size_t capacity_;
  bool closed_ = false;
  std::atomic<std::uint64_t> dropped_{0};
};

// The shared state between the daemon (single publisher) and the HTTP
// threads (any number of readers). All publish_* methods are wait-free for
// the caller: they try_lock and skip on contention.
class ObservabilityHub {
 public:
  using SuspectEntry = core::StreamingDetector::SuspectEntry;

  // --- publisher side (daemon consumer thread) -----------------------------
  void publish_status(const StatusSnapshot& status);
  void publish_loops(std::vector<SuspectEntry> entries, net::TimeNs as_of,
                     std::uint64_t epoch, bool truncated);
  // Alert fan-out. Takes the subscriber-list lock (alerts are rare events,
  // not the per-packet path); each subscriber queue is try_locked.
  void publish_event(const std::string& line);

  // --- reader side (HTTP threads) ------------------------------------------
  // False until the first publish.
  bool read_status(StatusSnapshot& out) const;
  struct LoopsView {
    std::vector<SuspectEntry> entries;
    net::TimeNs as_of = 0;
    std::uint64_t epoch = 0;
    bool truncated = false;
  };
  bool read_loops(LoopsView& out) const;

  // The suspect table is demand-paged: copying + sorting it costs the
  // consumer real time, so /loops raises this flag and the daemon refreshes
  // the view at a later epoch boundary only when someone actually asked.
  // Starts raised so the boot publish primes an (empty) view.
  void request_loops() { loops_demand_.store(true, std::memory_order_relaxed); }
  // Consumes the demand; called by the publisher at cadence boundaries.
  bool take_loops_demand() {
    return loops_demand_.exchange(false, std::memory_order_relaxed);
  }

  std::shared_ptr<EventStream> subscribe(std::size_t queue_capacity);
  void unsubscribe(const std::shared_ptr<EventStream>& stream);
  // Wakes every subscriber with closed=true (daemon drain / server stop).
  void close_events();

  // Publishes skipped because a reader held the lock (visibility into the
  // wait-free trade; exported on /metrics).
  std::uint64_t status_publishes_skipped() const {
    return status_skipped_.load(std::memory_order_relaxed);
  }
  std::uint64_t loops_publishes_skipped() const {
    return loops_skipped_.load(std::memory_order_relaxed);
  }
  std::uint64_t events_dropped_total() const {
    return events_dropped_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex status_mu_;
  StatusSnapshot status_;
  bool status_valid_ = false;

  mutable std::mutex loops_mu_;
  LoopsView loops_;
  bool loops_valid_ = false;

  std::mutex subs_mu_;
  std::vector<std::shared_ptr<EventStream>> subs_;

  std::atomic<std::uint64_t> status_skipped_{0};
  std::atomic<std::uint64_t> loops_skipped_{0};
  std::atomic<std::uint64_t> events_dropped_{0};
  std::atomic<bool> loops_demand_{true};
};

// Mounts the endpoint catalog over a hub + registry and owns the HTTP
// server. The registry may be null (endpoints still serve; /metrics is
// empty). Start order in rloopd: hub -> server.start() -> daemon run, so
// /healthz and /readyz answer (503 "starting") during a slow restore.
class ObservabilityServer {
 public:
  struct Options {
    net::HttpServer::Options http;
    std::size_t events_queue_capacity = 256;  // alert lines per SSE client
  };

  // The default-argument form would need Options' implicit default ctor
  // inside the still-incomplete enclosing class (its NSDMIs are deferred to
  // the complete-class context), which gcc rejects — hence the overload.
  ObservabilityServer(ObservabilityHub* hub, telemetry::Registry* registry);
  ObservabilityServer(ObservabilityHub* hub, telemetry::Registry* registry,
                      Options options);
  ~ObservabilityServer();

  bool start(std::string* error);
  void stop();

  int port() const { return server_.port(); }
  const net::HttpServer& http() const { return server_; }

 private:
  net::HttpResponse metrics(const net::HttpRequest& request);
  net::HttpResponse healthz(const net::HttpRequest& request);
  net::HttpResponse readyz(const net::HttpRequest& request);
  net::HttpResponse status(const net::HttpRequest& request);
  net::HttpResponse loops(const net::HttpRequest& request);
  void events(const net::HttpRequest& request, net::HttpStreamWriter& writer);

  ObservabilityHub* hub_;
  telemetry::Registry* registry_;
  Options options_;
  net::HttpServer server_;
};

}  // namespace rloop::daemon
