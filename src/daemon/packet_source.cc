#include "daemon/packet_source.h"

#include <chrono>
#include <thread>
#include <utility>

#include "net/pcap_mmap.h"
#include "scenarios/backbone.h"
#include "scenarios/scenario.h"

namespace rloop::daemon {

namespace {
std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ReplaySource::ReplaySource(net::Trace trace, std::string name, double speed)
    : owned_(std::move(trace)),
      trace_(&owned_),
      name_(std::move(name)),
      speed_(speed) {}

ReplaySource::ReplaySource(const net::Trace* trace, std::string name,
                           double speed)
    : trace_(trace), name_(std::move(name)), speed_(speed) {}

bool ReplaySource::next(net::TraceRecord& out) {
  if (index_ >= trace_->size()) return false;
  const net::TraceRecord& rec = (*trace_)[index_++];
  if (speed_ > 0) {
    if (!anchored_) {
      anchored_ = true;
      wall_anchor_ns_ = wall_now_ns();
      trace_anchor_ = rec.ts;
    } else {
      const auto elapsed_trace =
          static_cast<double>(rec.ts - trace_anchor_) / speed_;
      const std::int64_t due =
          wall_anchor_ns_ + static_cast<std::int64_t>(elapsed_trace);
      const std::int64_t now = wall_now_ns();
      if (due > now) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(due - now));
      }
    }
  }
  out = rec;
  return true;
}

void ReplaySource::skip(std::size_t n) {
  index_ = n >= trace_->size() - index_ ? trace_->size() : index_ + n;
  // Re-anchor at the next delivered record: a resumed paced replay plays
  // the remaining records at the configured speed instead of sprinting to
  // catch up with the skipped span.
  anchored_ = false;
}

std::unique_ptr<PacketSource> make_pcap_source(const std::string& path,
                                               double speed,
                                               telemetry::Registry* registry) {
  return std::make_unique<ReplaySource>(net::read_pcap_fast(path, registry),
                                        "pcap:" + path, speed);
}

std::unique_ptr<PacketSource> make_sim_source(int k, double speed,
                                              telemetry::Registry* registry) {
  auto run = scenarios::run_backbone(k, registry);
  return std::make_unique<ReplaySource>(
      run->trace(), "sim:" + std::to_string(k), speed);
}

std::unique_ptr<PacketSource> make_scenario_source(
    const std::string& name, double speed, std::uint64_t seed,
    telemetry::Registry* registry) {
  scenarios::ScenarioSpec spec = scenarios::canned_scenario(name);
  if (seed != 0) spec.seed = seed;
  auto run = scenarios::run_scenario(spec, registry);
  return std::make_unique<ReplaySource>(run->analysis_trace(),
                                        "scenario:" + name, speed);
}

}  // namespace rloop::daemon
