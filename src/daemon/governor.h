// Graded degradation for the daemon: explicit tiers instead of a cliff.
//
// Before this governor the daemon had exactly two load states: "fine" and
// "the ring is full, records are dropping". The governor inserts ordered
// intermediate tiers, each shedding something cheaper than detection
// fidelity, so sustained overload degrades the *observability* and
// *latency* of the daemon long before it degrades the answer:
//
//   tier 0  normal              everything on
//   tier 1  shed_observability  detach the decision journal (per-packet
//                               trace I/O is the first ballast overboard)
//   tier 2  widen_batching      multiply the epoch batch size: fewer
//                               epoch boundaries, better amortization,
//                               coarser stats cadence
//   tier 3  sample_suspects     detector keeps 1-in-N packets for
//                               destinations that are not current loop
//                               suspects; suspect /24s keep full fidelity
//                               (see StreamingDetector sampling)
//   tier 4  drop_newest         force the producer to drop rather than
//                               block: the old cliff, now the *last* tier
//
// Transitions are driven by ring occupancy at epoch boundaries, with
// hysteresis: escalate one tier per epoch while occupancy is at or above
// `enter_occupancy`; de-escalate one tier only after `hold_epochs`
// consecutive epochs at or below `exit_occupancy` (the gap between the two
// thresholds plus the hold keeps the governor from flapping on a sawtooth
// ring). An allocation failure inside detection escalates straight to
// tier 3 — memory pressure is not a latency problem batching can fix.
// Every transition is counted, exported, and reported through an optional
// hook so the daemon can log it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "telemetry/registry.h"

namespace rloop::daemon {

enum class DegradeTier : int {
  normal = 0,
  shed_observability = 1,
  widen_batching = 2,
  sample_suspects = 3,
  drop_newest = 4,
};

// Human-readable tier name ("normal", "shed_observability", ...).
const char* degrade_tier_name(DegradeTier tier);

struct GovernorConfig {
  // Escalate while occupancy/capacity >= enter; count toward de-escalation
  // while <= exit. enter > exit is the hysteresis band.
  double enter_occupancy = 0.75;
  double exit_occupancy = 0.30;
  // Consecutive calm epochs required before stepping one tier down.
  std::uint32_t hold_epochs = 8;
  // Tier-2 batch widening factor and tier-3 sampling divisor (keep 1-in-N).
  std::uint32_t batch_multiplier = 4;
  std::uint32_t sample_keep_one_in = 8;
};

class OverloadGovernor {
 public:
  // Called on every tier change with (from, to, occupancy at the decision).
  using TransitionHook =
      std::function<void(DegradeTier from, DegradeTier to, double occupancy)>;

  explicit OverloadGovernor(GovernorConfig config,
                            telemetry::Registry* registry = nullptr);

  // Feed the ring state at an epoch boundary; returns the (possibly new)
  // tier. `capacity` 0 is treated as occupancy 0 (inline mode: no ring, no
  // pressure signal, governor stays at normal / decays back to it).
  DegradeTier on_epoch(std::size_t occupancy, std::size_t capacity);

  // An allocation failed inside detection: jump to at least
  // sample_suspects immediately (no hysteresis on the way up).
  DegradeTier on_alloc_failure();

  DegradeTier tier() const { return tier_; }
  const GovernorConfig& config() const { return config_; }
  std::uint64_t escalations() const { return escalations_; }
  std::uint64_t deescalations() const { return deescalations_; }
  std::uint64_t alloc_failures() const { return alloc_failures_; }

  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }

 private:
  void move_to(DegradeTier to, double occupancy);

  GovernorConfig config_;
  DegradeTier tier_ = DegradeTier::normal;
  std::uint32_t calm_epochs_ = 0;
  std::uint64_t escalations_ = 0;
  std::uint64_t deescalations_ = 0;
  std::uint64_t alloc_failures_ = 0;
  TransitionHook hook_;
  telemetry::Gauge* m_tier_ = nullptr;
  telemetry::Counter* m_escalations_ = nullptr;
  telemetry::Counter* m_deescalations_ = nullptr;
  telemetry::Counter* m_alloc_failures_ = nullptr;
};

}  // namespace rloop::daemon
