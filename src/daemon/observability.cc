#include "daemon/observability.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "telemetry/exporter.h"
#include "telemetry/quantiles.h"

namespace rloop::daemon {
namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void field(std::string& out, const char* key, std::uint64_t v, bool first = false) {
  if (!first) out += ',';
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void field_str(std::string& out, const char* key, const std::string& v) {
  out += ",\"";
  out += key;
  out += "\":";
  append_json_string(out, v);
}

telemetry::MetricSnapshot make_counter(std::string name, std::string help,
                                       double value) {
  telemetry::MetricSnapshot s;
  s.name = std::move(name);
  s.help = std::move(help);
  s.type = telemetry::MetricType::counter;
  s.value = value;
  return s;
}

}  // namespace

std::string StatusSnapshot::to_json(std::uint64_t now_unix_s) const {
  std::string out = "{";
  out += "\"started\":";
  out += started ? "true" : "false";
  out += ",\"draining\":";
  out += draining ? "true" : "false";
  out += ",\"ready\":";
  const bool ready =
      started && !draining &&
      degrade_tier <= static_cast<int>(DegradeTier::widen_batching);
  out += ready ? "true" : "false";
  field_str(out, "source", source);
  field(out, "start_unix_s", start_unix_s);
  out += ",\"uptime_s\":";
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", uptime_s);
    out += buf;
  }
  out += ",\"ring\":{";
  field(out, "pushed", pushed, /*first=*/true);
  field(out, "consumed", consumed);
  field(out, "dropped", dropped);
  field(out, "capacity", ring_capacity);
  field(out, "occupancy", ring_occupancy);
  out += "}";
  out += ",\"detector\":{";
  field(out, "epochs", epochs, /*first=*/true);
  field(out, "alerts", alerts);
  field(out, "reordered", reordered);
  field(out, "reorder_dropped", reorder_dropped);
  field(out, "evicted", evicted);
  field(out, "sampled_dropped", sampled_dropped);
  field(out, "open_entries", open_entries);
  field(out, "peak_open_entries", peak_open_entries);
  field(out, "last_packet_ts_ns", static_cast<std::uint64_t>(last_packet_ts));
  out += "}";
  field(out, "config_epoch", config_epoch);
  out += ",\"checkpoint\":{";
  field(out, "seq", checkpoint_seq, /*first=*/true);
  field(out, "written", checkpoints_written);
  field(out, "failures", checkpoint_failures);
  field(out, "restored_seq", restored_seq);
  if (checkpoint_wall_unix_s != 0 && now_unix_s >= checkpoint_wall_unix_s) {
    field(out, "age_s", now_unix_s - checkpoint_wall_unix_s);
  } else {
    out += ",\"age_s\":null";
  }
  out += "}";
  out += ",\"governor\":{";
  field(out, "tier", static_cast<std::uint64_t>(degrade_tier), /*first=*/true);
  field_str(out, "tier_name",
            degrade_tier_name(static_cast<DegradeTier>(degrade_tier)));
  field(out, "escalations", degrade_escalations);
  field(out, "deescalations", degrade_deescalations);
  field(out, "alloc_failures", alloc_failures);
  out += "}}";
  return out;
}

// --- EventStream -----------------------------------------------------------

bool EventStream::pop(std::string& out, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
               [&] { return closed_ || !q_.empty(); });
  if (q_.empty()) return false;
  out = std::move(q_.front());
  q_.pop_front();
  return true;
}

bool EventStream::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

// --- ObservabilityHub ------------------------------------------------------

void ObservabilityHub::publish_status(const StatusSnapshot& status) {
  std::unique_lock<std::mutex> lock(status_mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    status_skipped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  status_ = status;
  status_valid_ = true;
}

void ObservabilityHub::publish_loops(std::vector<SuspectEntry> entries,
                                     net::TimeNs as_of, std::uint64_t epoch,
                                     bool truncated) {
  std::unique_lock<std::mutex> lock(loops_mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    loops_skipped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  loops_.entries = std::move(entries);
  loops_.as_of = as_of;
  loops_.epoch = epoch;
  loops_.truncated = truncated;
  loops_valid_ = true;
}

void ObservabilityHub::publish_event(const std::string& line) {
  std::lock_guard<std::mutex> subs_lock(subs_mu_);
  for (const auto& sub : subs_) {
    std::unique_lock<std::mutex> lock(sub->mu_, std::try_to_lock);
    if (!lock.owns_lock() || sub->q_.size() >= sub->capacity_) {
      sub->dropped_.fetch_add(1, std::memory_order_relaxed);
      events_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    sub->q_.push_back(line);
    lock.unlock();
    sub->cv_.notify_one();
  }
}

bool ObservabilityHub::read_status(StatusSnapshot& out) const {
  std::lock_guard<std::mutex> lock(status_mu_);
  if (!status_valid_) return false;
  out = status_;
  return true;
}

bool ObservabilityHub::read_loops(LoopsView& out) const {
  std::lock_guard<std::mutex> lock(loops_mu_);
  if (!loops_valid_) return false;
  out = loops_;
  return true;
}

std::shared_ptr<EventStream> ObservabilityHub::subscribe(
    std::size_t queue_capacity) {
  auto stream = std::make_shared<EventStream>(queue_capacity);
  std::lock_guard<std::mutex> lock(subs_mu_);
  subs_.push_back(stream);
  return stream;
}

void ObservabilityHub::unsubscribe(const std::shared_ptr<EventStream>& stream) {
  std::lock_guard<std::mutex> lock(subs_mu_);
  subs_.erase(std::remove(subs_.begin(), subs_.end(), stream), subs_.end());
}

void ObservabilityHub::close_events() {
  std::lock_guard<std::mutex> subs_lock(subs_mu_);
  for (const auto& sub : subs_) {
    {
      std::lock_guard<std::mutex> lock(sub->mu_);
      sub->closed_ = true;
    }
    sub->cv_.notify_all();
  }
}

// --- ObservabilityServer ---------------------------------------------------

ObservabilityServer::ObservabilityServer(ObservabilityHub* hub,
                                         telemetry::Registry* registry)
    : ObservabilityServer(hub, registry, Options{}) {}

ObservabilityServer::ObservabilityServer(ObservabilityHub* hub,
                                         telemetry::Registry* registry,
                                         Options options)
    : hub_(hub),
      registry_(registry),
      options_(options),
      server_(options.http) {
  server_.handle("/metrics",
                 [this](const net::HttpRequest& r) { return metrics(r); });
  server_.handle("/healthz",
                 [this](const net::HttpRequest& r) { return healthz(r); });
  server_.handle("/readyz",
                 [this](const net::HttpRequest& r) { return readyz(r); });
  server_.handle("/status",
                 [this](const net::HttpRequest& r) { return status(r); });
  server_.handle("/loops",
                 [this](const net::HttpRequest& r) { return loops(r); });
  server_.handle_stream(
      "/events", "text/event-stream",
      [this](const net::HttpRequest& r, net::HttpStreamWriter& w) {
        events(r, w);
      });
}

ObservabilityServer::~ObservabilityServer() { stop(); }

bool ObservabilityServer::start(std::string* error) {
  return server_.start(error);
}

void ObservabilityServer::stop() {
  // Wake SSE handlers first so their connection threads exit promptly when
  // the server joins them.
  hub_->close_events();
  server_.stop();
}

net::HttpResponse ObservabilityServer::metrics(const net::HttpRequest&) {
  std::vector<telemetry::MetricSnapshot> snaps;
  if (registry_ != nullptr) snaps = registry_->snapshot();
  auto summaries = telemetry::summarize_histograms(snaps);
  for (auto& s : summaries) snaps.push_back(std::move(s));

  // The HTTP plane's own health, visible to the scraper scraping it.
  snaps.push_back(make_counter(
      "rloop_http_requests_total", "HTTP requests served by the "
      "observability server",
      static_cast<double>(server_.requests_served())));
  snaps.push_back(make_counter(
      "rloop_http_rejected_overload_total",
      "Connections rejected by the max_connections cap",
      static_cast<double>(server_.rejected_overload())));
  snaps.push_back(make_counter(
      "rloop_http_bad_requests_total",
      "Requests dropped as oversized, malformed, or timed out",
      static_cast<double>(server_.bad_requests())));
  snaps.push_back(make_counter(
      "rloop_obs_status_publish_skipped_total",
      "Status publishes skipped because a reader held the hub lock",
      static_cast<double>(hub_->status_publishes_skipped())));
  snaps.push_back(make_counter(
      "rloop_obs_loops_publish_skipped_total",
      "Loop-table publishes skipped because a reader held the hub lock",
      static_cast<double>(hub_->loops_publishes_skipped())));
  snaps.push_back(make_counter(
      "rloop_obs_events_dropped_total",
      "Alert events dropped by full or contended subscriber queues",
      static_cast<double>(hub_->events_dropped_total())));

  std::stable_sort(snaps.begin(), snaps.end(),
                   [](const telemetry::MetricSnapshot& a,
                      const telemetry::MetricSnapshot& b) {
                     if (a.name != b.name) return a.name < b.name;
                     return a.labels < b.labels;
                   });

  net::HttpResponse resp;
  resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  resp.body = telemetry::to_prometheus(snaps);
  return resp;
}

net::HttpResponse ObservabilityServer::healthz(const net::HttpRequest&) {
  net::HttpResponse resp;
  resp.body = "ok\n";
  return resp;
}

net::HttpResponse ObservabilityServer::readyz(const net::HttpRequest&) {
  net::HttpResponse resp;
  StatusSnapshot status;
  if (!hub_->read_status(status) || !status.started) {
    resp.status = 503;
    resp.body = "not ready: starting\n";
    return resp;
  }
  if (status.draining) {
    resp.status = 503;
    resp.body = "not ready: draining\n";
    return resp;
  }
  if (status.degrade_tier > static_cast<int>(DegradeTier::widen_batching)) {
    resp.status = 503;
    resp.body = std::string("not ready: degraded (") +
                degrade_tier_name(
                    static_cast<DegradeTier>(status.degrade_tier)) +
                ")\n";
    return resp;
  }
  resp.body = "ready\n";
  return resp;
}

net::HttpResponse ObservabilityServer::status(const net::HttpRequest&) {
  net::HttpResponse resp;
  resp.content_type = "application/json; charset=utf-8";
  StatusSnapshot status;
  if (!hub_->read_status(status)) {
    resp.status = 503;
    resp.body = "{\"started\":false,\"error\":\"no status published yet\"}";
    return resp;
  }
  const auto now_unix_s = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  resp.body = status.to_json(now_unix_s);
  return resp;
}

net::HttpResponse ObservabilityServer::loops(const net::HttpRequest&) {
  net::HttpResponse resp;
  resp.content_type = "application/json; charset=utf-8";
  // Ask the daemon to refresh the view at an upcoming epoch boundary; this
  // response serves whatever was published last (at most one cadence stale
  // for a repeat scraper).
  hub_->request_loops();
  ObservabilityHub::LoopsView view;
  if (!hub_->read_loops(view)) {
    resp.body = "{\"as_of_ns\":0,\"epoch\":0,\"truncated\":false,"
                "\"entries\":[]}";
    return resp;
  }
  std::string out = "{";
  field(out, "as_of_ns", static_cast<std::uint64_t>(view.as_of),
        /*first=*/true);
  field(out, "epoch", view.epoch);
  out += ",\"truncated\":";
  out += view.truncated ? "true" : "false";
  out += ",\"entries\":[";
  bool first = true;
  for (const auto& e : view.entries) {
    if (!first) out += ',';
    first = false;
    out += "{\"prefix\":";
    append_json_string(out, e.prefix24.to_string());
    field(out, "first_ts_ns", static_cast<std::uint64_t>(e.first_ts));
    field(out, "last_ts_ns", static_cast<std::uint64_t>(e.last_ts));
    field(out, "replicas", e.replicas);
    out += ",\"ttl_delta\":";
    out += std::to_string(e.ttl_delta);
    out += "}";
  }
  out += "]}";
  resp.body = std::move(out);
  return resp;
}

void ObservabilityServer::events(const net::HttpRequest&,
                                 net::HttpStreamWriter& writer) {
  auto sub = hub_->subscribe(options_.events_queue_capacity);
  // A comment line up front so clients see bytes immediately (curl flushes,
  // proxies learn the stream is alive).
  if (!writer.write(": rloopd event stream\n\n")) {
    hub_->unsubscribe(sub);
    return;
  }
  std::string line;
  while (writer.alive()) {
    if (sub->pop(line, /*timeout_ms=*/250)) {
      std::string frame = "data: " + line + "\n\n";
      const std::uint64_t dropped = sub->take_dropped();
      if (dropped != 0) {
        frame += "event: dropped\ndata: " + std::to_string(dropped) + "\n\n";
      }
      if (!writer.write(frame)) break;
    } else if (sub->closed()) {
      break;
    }
  }
  hub_->unsubscribe(sub);
}

}  // namespace rloop::daemon
