// rloopd configuration: the knobs of the always-on daemon, their CLI
// spelling, and the subset that can be changed at runtime via SIGHUP.
//
// The reload path is deliberately file-based: `--config <file>` names a
// key=value file that is read once at startup and re-read on SIGHUP, so an
// operator edits thresholds (entry budget, alert thresholds, reorder
// tolerance) and signals the running daemon instead of restarting it and
// losing tracked streams. Structural knobs — ring capacity, batch size,
// back-pressure policy, source — are fixed for the process lifetime;
// reload applies only the detection/stats keys and ignores the rest.
#pragma once

#include <cstddef>
#include <string>

#include "core/streaming_detector.h"
#include "daemon/governor.h"
#include "net/time.h"

namespace rloop::daemon {

enum class BackPressure {
  block,        // producer spins until the consumer frees a slot: lossless,
                // pushes latency (and, live, kernel drops) upstream
  drop_newest,  // producer counts the record dropped and moves on: bounded
                // latency, explicit loss (rloop_daemon_ring_dropped_total)
};

enum class StatsFormat { prometheus, json };

struct DaemonConfig {
  // --- structural (process lifetime) ---------------------------------------
  std::size_t ring_capacity = 1 << 16;  // slots; must be a power of two
  std::size_t batch_size = 256;         // max records drained per epoch
  BackPressure back_pressure = BackPressure::block;
  // false: no ring, no producer thread — the source is drained on the
  // calling thread. The single-threaded oracle for differential tests and
  // the 1-thread bench point.
  bool use_ring = true;
  // Graded degradation (daemon/governor.h): when enabled, sustained ring
  // pressure walks the shed-journal / widen-batching / sample / drop tiers
  // instead of going straight from "fine" to the back-pressure policy.
  // Off by default: tier 4 forces drops even under `block`, which trades
  // the lossless guarantee for bounded latency — an operator's choice.
  bool governor_enabled = false;
  GovernorConfig governor;

  // --- detection (reloadable) ----------------------------------------------
  core::StreamingConfig streaming = daemon_streaming_defaults();

  // --- stats / output (interval reloadable) --------------------------------
  net::TimeNs stats_interval = 0;  // 0 = no periodic dump (trace-time driven)
  StatsFormat stats_format = StatsFormat::prometheus;
  std::string stats_out;   // final stats JSON path; "" = none, "-" = stdout
  std::string alerts_out;  // alert lines ("" = none)
  std::string config_file;  // key=value file re-read on SIGHUP

  // --- checkpointing (reloadable) -------------------------------------------
  // Directory for crash-safe state snapshots (daemon/checkpoint.h); "" =
  // checkpointing off. Snapshots are cut at epoch boundaries, at most one
  // per `checkpoint_interval` of trace time (0 = every epoch), and a final
  // one on graceful drain.
  std::string checkpoint_dir;
  net::TimeNs checkpoint_interval = 0;

  // A daemon fed by real capture tolerates jitter and bounds its state by
  // default; the offline StreamingConfig defaults stay strict.
  static core::StreamingConfig daemon_streaming_defaults() {
    core::StreamingConfig cfg;
    cfg.reorder_tolerance_ns = 100 * net::kMillisecond;
    cfg.max_open_entries = 1 << 20;  // ~1M tracked candidates, fixed RSS
    return cfg;
  }
};

// Applies `key=value` lines from `path` onto `config` (detection + stats
// keys only; see config.cc for the key list). Unknown keys and blank/'#'
// lines are ignored so a config file can carry structural keys for startup
// tooling. Returns false (with a message in *error) when the file cannot be
// read or a value fails to parse; config is untouched on failure.
bool apply_config_file(const std::string& path, DaemonConfig& config,
                       std::string* error);

}  // namespace rloop::daemon
