#include "daemon/daemon.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <new>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "daemon/observability.h"
#include "telemetry/exporter.h"
#include "util/failpoint.h"

namespace rloop::daemon {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Epoch wall-latency buckets: 1 us .. ~4 s.
std::vector<double> epoch_bounds_ns() {
  return telemetry::exponential_bounds(1e3, 4.0, 11);
}

// Batch-size buckets up to a 64Ki-record drain.
std::vector<double> batch_bounds() {
  return telemetry::exponential_bounds(1.0, 4.0, 9);
}

}  // namespace

std::string DaemonStats::to_json(const std::string& metrics_json) const {
  std::ostringstream out;
  out << "{\"source\":\"" << json_escape(source) << "\""
      << ",\"pushed\":" << pushed << ",\"consumed\":" << consumed
      << ",\"dropped\":" << dropped
      << ",\"invariant_ok\":" << (invariant_ok() ? "true" : "false")
      << ",\"epochs\":" << epochs << ",\"reloads\":" << reloads
      << ",\"alerts\":" << alerts << ",\"reordered\":" << reordered
      << ",\"reorder_dropped\":" << reorder_dropped
      << ",\"evicted\":" << evicted << ",\"open_entries\":" << open_entries
      << ",\"peak_open_entries\":" << peak_open_entries
      << ",\"last_packet_ts_ns\":" << last_packet_ts
      << ",\"checkpoints_written\":" << checkpoints_written
      << ",\"checkpoint_failures\":" << checkpoint_failures
      << ",\"restored_seq\":" << restored_seq
      << ",\"degrade_tier\":" << degrade_tier
      << ",\"degrade_escalations\":" << degrade_escalations
      << ",\"degrade_deescalations\":" << degrade_deescalations
      << ",\"alloc_failures\":" << alloc_failures
      << ",\"sampled_dropped\":" << sampled_dropped;
  if (!metrics_json.empty()) out << ",\"metrics\":" << metrics_json;
  out << "}";
  return out.str();
}

Daemon::Daemon(DaemonConfig config, std::unique_ptr<PacketSource> source,
               AlertCallback on_alert, telemetry::Registry* registry,
               telemetry::DecisionLog* journal)
    : config_(std::move(config)),
      source_(std::move(source)),
      registry_(registry),
      journal_(journal),
      detector_(
          config_.streaming,
          [this, cb = std::move(on_alert)](const core::LoopAlert& alert) {
            ++alerts_;
            if (cb) cb(alert);
          },
          registry, journal),
      ring_(config_.ring_capacity),
      governor_(config_.governor, registry),
      m_pushed_(telemetry::get_counter(
          registry, "rloop_daemon_ring_pushed_total", {},
          "Records the producer took from the packet source")),
      m_consumed_(telemetry::get_counter(
          registry, "rloop_daemon_ring_consumed_total", {},
          "Records the detection thread drained from the ring")),
      m_dropped_(telemetry::get_counter(
          registry, "rloop_daemon_ring_dropped_total", {},
          "Records discarded by back-pressure (pushed == consumed + "
          "dropped)")),
      m_epochs_(telemetry::get_counter(
          registry, "rloop_daemon_epochs_total", {},
          "Consumer batches processed")),
      m_evicted_(telemetry::get_counter(
          registry, "rloop_daemon_evicted_total", {},
          "Tracked entries evicted by the daemon's entry budget")),
      m_reloads_(telemetry::get_counter(
          registry, "rloop_daemon_config_reloads_total", {},
          "SIGHUP config reloads applied")),
      m_checkpoints_(telemetry::get_counter(
          registry, "rloop_daemon_checkpoints_written_total", {},
          "State snapshots published to the checkpoint directory")),
      m_ckpt_failures_(telemetry::get_counter(
          registry, "rloop_daemon_checkpoint_failures_total", {},
          "Snapshot writes that failed (state kept, daemon continues)")),
      m_ring_occupancy_(telemetry::get_gauge(
          registry, "rloop_daemon_ring_occupancy", {},
          "Records resident in the ingest ring at last epoch")),
      m_epoch_ns_(telemetry::get_histogram(
          registry, "rloop_daemon_epoch_latency_ns", epoch_bounds_ns(), {},
          "Wall nanoseconds spent detecting per consumer epoch")),
      m_batch_size_(telemetry::get_histogram(
          registry, "rloop_daemon_batch_size", batch_bounds(), {},
          "Records drained per consumer epoch")),
      m_uptime_s_(telemetry::get_gauge(
          registry, "rloop_daemon_uptime_seconds", {},
          "Wall seconds since the daemon was constructed")),
      m_last_packet_ts_s_(telemetry::get_gauge(
          registry, "rloop_daemon_last_packet_timestamp_seconds", {},
          "Trace timestamp of the newest packet consumed, in seconds")) {
  batch_limit_ = config_.batch_size;
  start_unix_s_ = static_cast<std::uint64_t>(std::time(nullptr));
  start_steady_ = std::chrono::steady_clock::now();
  if (config_.governor_enabled) {
    governor_.set_transition_hook(
        [](DegradeTier from, DegradeTier to, double occupancy) {
          std::fprintf(stderr,
                       "rloopd: degrade tier %s -> %s (ring %.0f%% full)\n",
                       degrade_tier_name(from), degrade_tier_name(to),
                       occupancy * 100.0);
        });
  }
  try_restore();
}

Daemon::~Daemon() = default;

void Daemon::try_restore() {
  if (config_.checkpoint_dir.empty()) return;
  CheckpointState state;
  if (!load_latest_checkpoint(config_.checkpoint_dir, state)) return;
  detector_.restore(state.detector);
  // The snapshot's ledger was reconciled at write time (records still in
  // the ring were never consumed and count as lost with the old process),
  // so pushed == consumed + dropped holds from the first stats() call.
  pushed_.store(state.pushed, std::memory_order_relaxed);
  consumed_.store(state.consumed, std::memory_order_relaxed);
  dropped_.store(state.dropped, std::memory_order_relaxed);
  epochs_ = state.epochs;
  alerts_ = state.alerts;
  last_packet_ts_ = state.detector.last_ts;
  evicted_reported_ = detector_.evicted();
  ckpt_seq_ = state.seq;
  last_ckpt_ts_ = state.detector.last_ts;
  restore_info_ = {true, state.seq, state.wall_unix_s, state.source_offset};
  last_ckpt_wall_unix_s_ = state.wall_unix_s;
  if (source_) source_->skip(state.source_offset);
}

void Daemon::maybe_checkpoint(bool force) {
  if (config_.checkpoint_dir.empty()) return;
  if (!force && config_.checkpoint_interval > 0 &&
      last_packet_ts_ - last_ckpt_ts_ < config_.checkpoint_interval) {
    return;
  }
  CheckpointState state;
  state.seq = ckpt_seq_ + 1;
  state.wall_unix_s = static_cast<std::uint64_t>(std::time(nullptr));
  state.consumed = consumed_.load(std::memory_order_relaxed);
  state.dropped = dropped_.load(std::memory_order_relaxed);
  // Resume point: the consumed prefix plus back-pressure drops. Records
  // sitting in the ring at a crash are lost with the process (the "modulo
  // the ring window" caveat); reconcile `pushed` down so the restored
  // ledger balances.
  state.source_offset = state.consumed + state.dropped;
  state.pushed = state.source_offset;
  state.epochs = epochs_;
  state.alerts = alerts_;
  state.detector = detector_.snapshot();
  std::string error;
  if (write_checkpoint_file(config_.checkpoint_dir, state, &error)) {
    ckpt_seq_ = state.seq;
    last_ckpt_ts_ = last_packet_ts_;
    last_ckpt_wall_unix_s_ = state.wall_unix_s;
    ++checkpoints_written_;
    telemetry::inc(m_checkpoints_);
  } else {
    // Never fatal: detection state is intact, the previous snapshot is
    // still on disk, and the failure is visible in stats.
    ++checkpoint_failures_;
    telemetry::inc(m_ckpt_failures_);
  }
}

void Daemon::apply_tier(DegradeTier tier) {
  const int t = static_cast<int>(tier);
  detector_.set_journal(
      t >= static_cast<int>(DegradeTier::shed_observability) ? nullptr
                                                             : journal_);
  batch_limit_ = t >= static_cast<int>(DegradeTier::widen_batching)
                     ? config_.batch_size * governor_.config().batch_multiplier
                     : config_.batch_size;
  detector_.set_sample_keep_one_in(
      t >= static_cast<int>(DegradeTier::sample_suspects)
          ? governor_.config().sample_keep_one_in
          : 0);
  force_drop_.store(t >= static_cast<int>(DegradeTier::drop_newest),
                    std::memory_order_relaxed);
}

void Daemon::publish_observability(bool final_publish) {
  const double uptime_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start_steady_)
          .count();
  telemetry::set(m_uptime_s_, static_cast<std::int64_t>(uptime_s));
  telemetry::set(m_last_packet_ts_s_,
                 static_cast<std::int64_t>(last_packet_ts_ / net::kSecond));
  if (obs_hub_ == nullptr) return;

  StatusSnapshot s;
  s.started = obs_started_;
  s.draining = final_publish || stop_requested();
  s.source = source_ ? source_->name() : "";
  s.start_unix_s = start_unix_s_;
  s.uptime_s = uptime_s;
  s.pushed = pushed_.load(std::memory_order_relaxed);
  s.consumed = consumed_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.ring_capacity = config_.use_ring ? ring_.capacity() : 0;
  s.ring_occupancy = config_.use_ring ? ring_.size_approx() : 0;
  s.epochs = epochs_;
  s.alerts = alerts_;
  s.reordered = detector_.reordered();
  s.reorder_dropped = detector_.reorder_dropped();
  s.evicted = detector_.evicted();
  s.sampled_dropped = detector_.sampled_dropped();
  s.open_entries = detector_.open_entries();
  s.peak_open_entries = detector_.peak_open_entries();
  s.last_packet_ts = last_packet_ts_;
  s.config_epoch = reloads_;
  s.checkpoint_seq = ckpt_seq_;
  s.checkpoints_written = checkpoints_written_;
  s.checkpoint_failures = checkpoint_failures_;
  s.checkpoint_wall_unix_s = last_ckpt_wall_unix_s_;
  s.restored_seq = restore_info_.restored ? restore_info_.seq : 0;
  s.degrade_tier =
      config_.governor_enabled ? static_cast<int>(governor_.tier()) : 0;
  s.degrade_escalations = governor_.escalations();
  s.degrade_deescalations = governor_.deescalations();
  s.alloc_failures = governor_.alloc_failures();
  obs_hub_->publish_status(s);

  // Demand-paged: the suspect-table copy (filter + sort over every open
  // entry) only happens when a /loops reader asked since the last refresh,
  // rate-capped to every kLoopsPublishEvery epochs. The demand flag is
  // consumed only at cadence boundaries so a request landing mid-cadence is
  // not lost.
  if (final_publish ||
      (epochs_ % kLoopsPublishEvery == 0 && obs_hub_->take_loops_demand())) {
    auto entries = detector_.suspect_entries(kLoopsPublishMax + 1);
    const bool truncated = entries.size() > kLoopsPublishMax;
    if (truncated) entries.pop_back();
    obs_hub_->publish_loops(std::move(entries), last_packet_ts_, epochs_,
                            truncated);
  }
}

void Daemon::export_failpoint_trips() {
  if (!registry_) return;
  for (const auto& [name, trips] :
       util::FailpointRegistry::instance().trip_counts()) {
    auto& reported = failpoint_reported_[name];
    if (trips > reported) {
      telemetry::inc(
          telemetry::get_counter(registry_, "rloop_failpoint_trips_total",
                                 {{"name", name}},
                                 "Failpoint trips by site name"),
          trips - reported);
      reported = trips;
    }
  }
}

void Daemon::producer_loop() {
  net::TraceRecord rec;
  while (!stop_.load(std::memory_order_relaxed) && source_->next(rec)) {
    pushed_.fetch_add(1, std::memory_order_relaxed);
    telemetry::inc(m_pushed_);
    // Injected push failure takes the drop path (ledger stays exact).
    const bool injected_fail = RLOOP_FAILPOINT("daemon.ring.push");
    if (!injected_fail && ring_.try_push(rec)) continue;
    if (!injected_fail && config_.back_pressure == BackPressure::block &&
        !force_drop_.load(std::memory_order_relaxed)) {
      bool delivered = false;
      while (!stop_.load(std::memory_order_relaxed) &&
             !force_drop_.load(std::memory_order_relaxed)) {
        if (ring_.try_push(rec)) {
          delivered = true;
          break;
        }
        std::this_thread::yield();
      }
      if (delivered) continue;
    }
    // drop_newest, or a blocked push abandoned by request_stop().
    dropped_.fetch_add(1, std::memory_order_relaxed);
    telemetry::inc(m_dropped_);
  }
  producer_done_.store(true, std::memory_order_release);
}

void Daemon::consume_batch(const net::TraceRecord* batch, std::size_t n) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    try {
      detector_.on_packet(batch[i].ts, batch[i].bytes());
    } catch (const std::bad_alloc&) {
      // The packet is lost but the daemon survives; memory pressure is not
      // something wider batching fixes, so jump straight to sampling.
      const DegradeTier tier = governor_.on_alloc_failure();
      if (config_.governor_enabled) apply_tier(tier);
    }
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  consumed_.fetch_add(n, std::memory_order_relaxed);
  telemetry::inc(m_consumed_, n);
  ++epochs_;
  telemetry::inc(m_epochs_);
  last_packet_ts_ = batch[n - 1].ts;
  telemetry::observe(m_epoch_ns_, static_cast<double>(ns));
  telemetry::observe(m_batch_size_, static_cast<double>(n));
  telemetry::set(m_ring_occupancy_,
                 static_cast<std::int64_t>(ring_.size_approx()));
  // Surface the detector's budget evictions under the daemon namespace.
  const std::uint64_t evicted = detector_.evicted();
  if (evicted > evicted_reported_) {
    telemetry::inc(m_evicted_, evicted - evicted_reported_);
    evicted_reported_ = evicted;
  }
}

void Daemon::apply_reload() {
  ++reloads_;
  telemetry::inc(m_reloads_);
  if (config_.config_file.empty()) return;
  // Injected reload failure == unreadable file: running config unchanged.
  if (RLOOP_FAILPOINT("daemon.config.reload")) return;
  std::string error;
  if (apply_config_file(config_.config_file, config_, &error)) {
    detector_.update_config(config_.streaming);
  }
  // A bad file leaves the running config untouched; the reload counter
  // still ticks so the operator sees the signal arrived.
}

DaemonStats Daemon::run() {
  std::unique_ptr<telemetry::PeriodicExporter> exporter;
  if (registry_ && config_.stats_interval > 0 && stats_sink_) {
    exporter = std::make_unique<telemetry::PeriodicExporter>(
        registry_, config_.stats_interval,
        config_.stats_format == StatsFormat::json
            ? telemetry::PeriodicExporter::Format::json
            : telemetry::PeriodicExporter::Format::prometheus,
        stats_sink_);
  }

  // Restore (ctor) is done and consumption is about to begin: readiness
  // flips here, before the first epoch, so a healthy-but-idle daemon still
  // answers /readyz 200.
  obs_started_ = true;
  publish_observability(/*final_publish=*/false);

  // Sized for the widest tier-2 batch so widening never reallocates.
  std::vector<net::TraceRecord> batch(
      config_.governor_enabled
          ? config_.batch_size *
                std::max<std::size_t>(1, config_.governor.batch_multiplier)
          : config_.batch_size);
  if (config_.use_ring) {
    std::thread producer([this] { producer_loop(); });
    for (;;) {
      std::size_t n = ring_.pop_batch(
          batch.data(), std::min(batch.size(), batch_limit_));
      if (n == 0) {
        if (producer_done_.load(std::memory_order_acquire)) {
          n = ring_.pop_batch(batch.data(), batch.size());
          if (n == 0) break;
        } else {
          std::this_thread::yield();
          continue;
        }
      }
      if (RLOOP_FAILPOINT("daemon.ring.pop")) {
        // Batch discarded unseen; count it consumed so the ledger balances.
        consumed_.fetch_add(n, std::memory_order_relaxed);
        telemetry::inc(m_consumed_, n);
        continue;
      }
      consume_batch(batch.data(), n);
      if (reload_.exchange(false, std::memory_order_relaxed)) apply_reload();
      if (config_.governor_enabled) {
        apply_tier(governor_.on_epoch(ring_.size_approx(), ring_.capacity()));
      }
      maybe_checkpoint(/*force=*/false);
      // Per-epoch anchor for fault injection; a no-op on trip, the
      // crash-recovery soak arms it with kill@nth:N to die here.
      if (RLOOP_FAILPOINT("daemon.epoch")) {
      }
      // Injected overload: same escalation path as a detection bad_alloc
      // (straight to sample_suspects), used to prove /readyz goes 503.
      if (RLOOP_FAILPOINT("daemon.governor.degrade")) {
        const DegradeTier tier = governor_.on_alloc_failure();
        if (config_.governor_enabled) apply_tier(tier);
      }
      export_failpoint_trips();
      publish_observability(/*final_publish=*/false);
      if (exporter) exporter->pump(last_packet_ts_);
    }
    producer.join();
  } else {
    // Inline mode: one thread, no ring — batches are read straight from the
    // source. Differential oracle and the 1-thread bench point.
    net::TraceRecord rec;
    bool more = true;
    while (more && !stop_.load(std::memory_order_relaxed)) {
      std::size_t n = 0;
      while (n < batch_limit_ && (more = source_->next(rec))) {
        batch[n++] = rec;
      }
      if (n == 0) break;
      pushed_.fetch_add(n, std::memory_order_relaxed);
      telemetry::inc(m_pushed_, n);
      consume_batch(batch.data(), n);
      if (reload_.exchange(false, std::memory_order_relaxed)) apply_reload();
      maybe_checkpoint(/*force=*/false);
      if (RLOOP_FAILPOINT("daemon.epoch")) {
      }
      if (RLOOP_FAILPOINT("daemon.governor.degrade")) {
        const DegradeTier tier = governor_.on_alloc_failure();
        if (config_.governor_enabled) apply_tier(tier);
      }
      export_failpoint_trips();
      publish_observability(/*final_publish=*/false);
      if (exporter) exporter->pump(last_packet_ts_);
    }
    producer_done_.store(true, std::memory_order_release);
  }
  // Final snapshot on drain: a graceful stop + restart resumes exactly
  // where this run left off.
  maybe_checkpoint(/*force=*/true);
  export_failpoint_trips();
  publish_observability(/*final_publish=*/true);
  if (exporter && last_packet_ts_ > 0) exporter->flush(last_packet_ts_);
  return stats();
}

DaemonStats Daemon::stats() const {
  DaemonStats s;
  s.source = source_ ? source_->name() : "";
  s.pushed = pushed_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.consumed = consumed_.load(std::memory_order_relaxed);
  s.epochs = epochs_;
  s.reloads = reloads_;
  s.alerts = alerts_;
  s.reordered = detector_.reordered();
  s.reorder_dropped = detector_.reorder_dropped();
  s.evicted = detector_.evicted();
  s.open_entries = detector_.open_entries();
  s.peak_open_entries = detector_.peak_open_entries();
  s.last_packet_ts = last_packet_ts_;
  s.checkpoints_written = checkpoints_written_;
  s.checkpoint_failures = checkpoint_failures_;
  s.restored_seq = restore_info_.restored ? restore_info_.seq : 0;
  s.degrade_tier =
      config_.governor_enabled ? static_cast<int>(governor_.tier()) : 0;
  s.degrade_escalations = governor_.escalations();
  s.degrade_deescalations = governor_.deescalations();
  s.alloc_failures = governor_.alloc_failures();
  s.sampled_dropped = detector_.sampled_dropped();
  return s;
}

}  // namespace rloop::daemon
