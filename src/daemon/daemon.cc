#include "daemon/daemon.h"

#include <chrono>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/exporter.h"

namespace rloop::daemon {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Epoch wall-latency buckets: 1 us .. ~4 s.
std::vector<double> epoch_bounds_ns() {
  return telemetry::exponential_bounds(1e3, 4.0, 11);
}

// Batch-size buckets up to a 64Ki-record drain.
std::vector<double> batch_bounds() {
  return telemetry::exponential_bounds(1.0, 4.0, 9);
}

}  // namespace

std::string DaemonStats::to_json(const std::string& metrics_json) const {
  std::ostringstream out;
  out << "{\"source\":\"" << json_escape(source) << "\""
      << ",\"pushed\":" << pushed << ",\"consumed\":" << consumed
      << ",\"dropped\":" << dropped
      << ",\"invariant_ok\":" << (invariant_ok() ? "true" : "false")
      << ",\"epochs\":" << epochs << ",\"reloads\":" << reloads
      << ",\"alerts\":" << alerts << ",\"reordered\":" << reordered
      << ",\"reorder_dropped\":" << reorder_dropped
      << ",\"evicted\":" << evicted << ",\"open_entries\":" << open_entries
      << ",\"peak_open_entries\":" << peak_open_entries
      << ",\"last_packet_ts_ns\":" << last_packet_ts;
  if (!metrics_json.empty()) out << ",\"metrics\":" << metrics_json;
  out << "}";
  return out.str();
}

Daemon::Daemon(DaemonConfig config, std::unique_ptr<PacketSource> source,
               AlertCallback on_alert, telemetry::Registry* registry,
               telemetry::DecisionLog* journal)
    : config_(std::move(config)),
      source_(std::move(source)),
      registry_(registry),
      detector_(
          config_.streaming,
          [this, cb = std::move(on_alert)](const core::LoopAlert& alert) {
            ++alerts_;
            if (cb) cb(alert);
          },
          registry, journal),
      ring_(config_.ring_capacity),
      m_pushed_(telemetry::get_counter(
          registry, "rloop_daemon_ring_pushed_total", {},
          "Records the producer took from the packet source")),
      m_consumed_(telemetry::get_counter(
          registry, "rloop_daemon_ring_consumed_total", {},
          "Records the detection thread drained from the ring")),
      m_dropped_(telemetry::get_counter(
          registry, "rloop_daemon_ring_dropped_total", {},
          "Records discarded by back-pressure (pushed == consumed + "
          "dropped)")),
      m_epochs_(telemetry::get_counter(
          registry, "rloop_daemon_epochs_total", {},
          "Consumer batches processed")),
      m_evicted_(telemetry::get_counter(
          registry, "rloop_daemon_evicted_total", {},
          "Tracked entries evicted by the daemon's entry budget")),
      m_reloads_(telemetry::get_counter(
          registry, "rloop_daemon_config_reloads_total", {},
          "SIGHUP config reloads applied")),
      m_ring_occupancy_(telemetry::get_gauge(
          registry, "rloop_daemon_ring_occupancy", {},
          "Records resident in the ingest ring at last epoch")),
      m_epoch_ns_(telemetry::get_histogram(
          registry, "rloop_daemon_epoch_latency_ns", epoch_bounds_ns(), {},
          "Wall nanoseconds spent detecting per consumer epoch")),
      m_batch_size_(telemetry::get_histogram(
          registry, "rloop_daemon_batch_size", batch_bounds(), {},
          "Records drained per consumer epoch")) {}

Daemon::~Daemon() = default;

void Daemon::producer_loop() {
  net::TraceRecord rec;
  while (!stop_.load(std::memory_order_relaxed) && source_->next(rec)) {
    pushed_.fetch_add(1, std::memory_order_relaxed);
    telemetry::inc(m_pushed_);
    if (ring_.try_push(rec)) continue;
    if (config_.back_pressure == BackPressure::block) {
      bool delivered = false;
      while (!stop_.load(std::memory_order_relaxed)) {
        if (ring_.try_push(rec)) {
          delivered = true;
          break;
        }
        std::this_thread::yield();
      }
      if (delivered) continue;
    }
    // drop_newest, or a blocked push abandoned by request_stop().
    dropped_.fetch_add(1, std::memory_order_relaxed);
    telemetry::inc(m_dropped_);
  }
  producer_done_.store(true, std::memory_order_release);
}

void Daemon::consume_batch(const net::TraceRecord* batch, std::size_t n) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    detector_.on_packet(batch[i].ts, batch[i].bytes());
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  consumed_.fetch_add(n, std::memory_order_relaxed);
  telemetry::inc(m_consumed_, n);
  ++epochs_;
  telemetry::inc(m_epochs_);
  last_packet_ts_ = batch[n - 1].ts;
  telemetry::observe(m_epoch_ns_, static_cast<double>(ns));
  telemetry::observe(m_batch_size_, static_cast<double>(n));
  telemetry::set(m_ring_occupancy_,
                 static_cast<std::int64_t>(ring_.size_approx()));
  // Surface the detector's budget evictions under the daemon namespace.
  const std::uint64_t evicted = detector_.evicted();
  if (evicted > evicted_reported_) {
    telemetry::inc(m_evicted_, evicted - evicted_reported_);
    evicted_reported_ = evicted;
  }
}

void Daemon::apply_reload() {
  ++reloads_;
  telemetry::inc(m_reloads_);
  if (config_.config_file.empty()) return;
  std::string error;
  if (apply_config_file(config_.config_file, config_, &error)) {
    detector_.update_config(config_.streaming);
  }
  // A bad file leaves the running config untouched; the reload counter
  // still ticks so the operator sees the signal arrived.
}

DaemonStats Daemon::run() {
  std::unique_ptr<telemetry::PeriodicExporter> exporter;
  if (registry_ && config_.stats_interval > 0 && stats_sink_) {
    exporter = std::make_unique<telemetry::PeriodicExporter>(
        registry_, config_.stats_interval,
        config_.stats_format == StatsFormat::json
            ? telemetry::PeriodicExporter::Format::json
            : telemetry::PeriodicExporter::Format::prometheus,
        stats_sink_);
  }

  std::vector<net::TraceRecord> batch(config_.batch_size);
  if (config_.use_ring) {
    std::thread producer([this] { producer_loop(); });
    for (;;) {
      std::size_t n = ring_.pop_batch(batch.data(), batch.size());
      if (n == 0) {
        if (producer_done_.load(std::memory_order_acquire)) {
          n = ring_.pop_batch(batch.data(), batch.size());
          if (n == 0) break;
        } else {
          std::this_thread::yield();
          continue;
        }
      }
      consume_batch(batch.data(), n);
      if (reload_.exchange(false, std::memory_order_relaxed)) apply_reload();
      if (exporter) exporter->pump(last_packet_ts_);
    }
    producer.join();
  } else {
    // Inline mode: one thread, no ring — batches are read straight from the
    // source. Differential oracle and the 1-thread bench point.
    net::TraceRecord rec;
    bool more = true;
    while (more && !stop_.load(std::memory_order_relaxed)) {
      std::size_t n = 0;
      while (n < batch.size() && (more = source_->next(rec))) {
        batch[n++] = rec;
      }
      if (n == 0) break;
      pushed_.fetch_add(n, std::memory_order_relaxed);
      telemetry::inc(m_pushed_, n);
      consume_batch(batch.data(), n);
      if (reload_.exchange(false, std::memory_order_relaxed)) apply_reload();
      if (exporter) exporter->pump(last_packet_ts_);
    }
    producer_done_.store(true, std::memory_order_release);
  }
  if (exporter && last_packet_ts_ > 0) exporter->flush(last_packet_ts_);
  return stats();
}

DaemonStats Daemon::stats() const {
  DaemonStats s;
  s.source = source_ ? source_->name() : "";
  s.pushed = pushed_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.consumed = consumed_.load(std::memory_order_relaxed);
  s.epochs = epochs_;
  s.reloads = reloads_;
  s.alerts = alerts_;
  s.reordered = detector_.reordered();
  s.reorder_dropped = detector_.reorder_dropped();
  s.evicted = detector_.evicted();
  s.open_entries = detector_.open_entries();
  s.peak_open_entries = detector_.peak_open_entries();
  s.last_packet_ts = last_packet_ts_;
  return s;
}

}  // namespace rloop::daemon
