// The SPSC ring moved to util/spsc_ring.h when the offline pipeline's staged
// dataflow (core/pipeline.h) adopted the same bounded-queue discipline as the
// daemon's ingest boundary. This shim keeps the historical daemon-namespace
// spelling working; new code should include util/spsc_ring.h directly.
#pragma once

#include "util/spsc_ring.h"

namespace rloop::daemon {

using rloop::util::kCacheLine;
using rloop::util::SpscRing;

}  // namespace rloop::daemon
