#include "scenarios/scenario.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace rloop::scenarios {

namespace {
constexpr net::TimeNs kS = net::kSecond;

// The focus (flash-crowd / DDoS victim) prefix rank: the first rank inside
// the spec's withdrawable band at or past the pool's first quartile. Mirrors
// the eligibility rule in build_backbone (side-B egress with fallback,
// mid-popularity band) so the rank is known *before* the pool exists — the
// workload's RatePhases need it at construction time.
std::size_t focus_rank_for(const BackboneSpec& base) {
  const auto n = static_cast<double>(base.dst_prefix_count);
  const auto lo = static_cast<std::size_t>(base.withdraw_rank_lo * n);
  const auto hi = static_cast<std::size_t>(base.withdraw_rank_hi * n);
  for (std::size_t i = std::max(lo, base.dst_prefix_count / 4); i < hi; ++i) {
    if (i % 10 < 7) return i;
  }
  throw std::logic_error("focus_rank_for: empty withdrawable band");
}

bool intervals_overlap(net::TimeNs a_start, net::TimeNs a_end,
                       net::TimeNs b_start, net::TimeNs b_end,
                       net::TimeNs slack) {
  return a_start <= b_end + slack && b_start <= a_end + slack;
}

// detectable[i]: truth[i] satisfies the paper's own evidence rules at the
// tap — some packet crossed >= min_crossings times inside the interval
// (expanded by slack), AND that packet's replica window is not refuted by a
// healthy same-prefix packet (one crossing only) inside it. The second
// condition matters for IGP loops: a local flap loop does not black-hole
// the whole /24 (traffic from other ingresses still crosses the tap
// cleanly), and validation step 2 rightly rejects such streams, so ground
// truth must not count them against recall.
std::vector<char> detectable_flags(
    const std::vector<baseline::TruthLoop>& truth,
    const std::vector<sim::LoopCrossing>& crossings,
    const TruthPolicy& policy) {
  std::unordered_map<net::Prefix, std::vector<const sim::LoopCrossing*>>
      by_prefix;
  for (const auto& c : crossings) by_prefix[c.dst_prefix24].push_back(&c);

  // A packet's crossings all share its dst /24, so per-prefix totals give
  // each packet's full crossing count in this view.
  std::unordered_map<std::uint64_t, std::uint64_t> total_by_packet;
  for (const auto& c : crossings) ++total_by_packet[c.packet_id];

  std::vector<char> out(truth.size(), 0);
  std::unordered_map<std::uint64_t, std::uint64_t> in_window;
  std::unordered_map<std::uint64_t, std::pair<net::TimeNs, net::TimeNs>> span;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto it = by_prefix.find(truth[i].prefix24);
    if (it == by_prefix.end()) continue;
    const net::TimeNs lo = truth[i].start - policy.slack;
    const net::TimeNs hi = truth[i].end + policy.slack;
    in_window.clear();
    span.clear();
    for (const sim::LoopCrossing* c : it->second) {
      if (c->time < lo || c->time > hi) continue;
      const auto [at, inserted] =
          span.try_emplace(c->packet_id, c->time, c->time);
      if (!inserted) {
        at->second.first = std::min(at->second.first, c->time);
        at->second.second = std::max(at->second.second, c->time);
      }
      ++in_window[c->packet_id];
    }
    for (const auto& [packet, count] : in_window) {
      if (count < policy.min_crossings) continue;
      const auto [first, last] = span[packet];
      bool refuted = false;
      for (const sim::LoopCrossing* c : it->second) {
        if (c->time >= first && c->time <= last && c->packet_id != packet &&
            total_by_packet[c->packet_id] == 1) {
          refuted = true;
          break;
        }
      }
      if (!refuted) {
        out[i] = 1;
        break;
      }
    }
  }
  return out;
}

template <typename Report, typename Matcher>
ScenarioScore score_reports(const ScenarioRun& run,
                            const std::vector<sim::LoopCrossing>& crossings,
                            const std::vector<Report>& reports,
                            Matcher&& matches) {
  const auto truth = run.truth();
  const auto detectable = detectable_flags(truth, crossings, run.spec.truth);

  ScenarioScore score;
  score.truth_loops = truth.size();
  score.reports = reports.size();
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (!detectable[i]) continue;
    ++score.detectable;
    for (const Report& r : reports) {
      if (matches(truth[i], r)) {
        ++score.detected;
        break;
      }
    }
  }
  for (const Report& r : reports) {
    bool any = false;
    for (const auto& t : truth) {
      if (matches(t, r)) {
        any = true;
        break;
      }
    }
    if (!any) ++score.unmatched_reports;
  }
  return score;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // never occurs here
    out.push_back(c);
  }
  return out;
}

std::string format_ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}
}  // namespace

const char* phase_kind_name(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::idle:
      return "idle";
    case PhaseKind::burst:
      return "burst";
    case PhaseKind::ramp:
      return "ramp";
    case PhaseKind::flap:
      return "flap";
  }
  return "?";
}

net::TimeNs ScenarioSpec::duration() const {
  net::TimeNs total = 0;
  for (const auto& p : phases) total += p.duration;
  return total;
}

std::unique_ptr<ScenarioRun> run_scenario(const ScenarioSpec& spec,
                                          telemetry::Registry* registry) {
  if (spec.phases.empty()) {
    throw std::invalid_argument("run_scenario: spec has no phases");
  }
  if (spec.bidirectional && (spec.drop_probability > 0 || spec.jitter > 0)) {
    throw std::invalid_argument(
        "run_scenario: bidirectional + post-capture stress unsupported "
        "(record->crossing correspondence needs a single tap)");
  }

  auto run = std::make_unique<ScenarioRun>();
  run->spec = spec;

  BackboneSpec base = backbone_spec(spec.backbone);
  if (spec.misconfig && base.transit_chain) {
    throw std::invalid_argument(
        "run_scenario: misconfig needs the tap's far end to be Y "
        "(backbones 1..3)");
  }
  base.name = spec.name;
  base.seed = util::derive_seed(spec.seed, "network");
  base.workload_seed = util::derive_seed(spec.seed, "workload");
  base.flows_per_second = spec.flows_per_second;
  base.duration = spec.duration();
  // The scenario's phases own all failure scheduling; the stock per-backbone
  // event mix is disabled.
  base.igp_events = 0;
  base.bgp_events = 0;

  const bool has_focus =
      std::any_of(spec.phases.begin(), spec.phases.end(),
                  [](const ScenarioPhase& p) { return p.focus_fraction > 0; });
  const std::size_t focus = has_focus ? focus_rank_for(base) : 0;

  net::TimeNs at = 0;
  for (const ScenarioPhase& phase : spec.phases) {
    trafficgen::RatePhase rp;
    rp.start = at;
    rp.end = at + phase.duration;
    rp.mult_begin = phase.rate;
    rp.mult_end = phase.kind == PhaseKind::ramp ? phase.rate_end : phase.rate;
    rp.focus_fraction = phase.focus_fraction;
    rp.focus_rank = focus;
    base.phases.push_back(rp);
    at += phase.duration;
  }

  run->backbone = build_backbone(base, registry);
  BackboneRun& bb = *run->backbone;
  sim::Network& network = *bb.network;

  const routing::NodeId reverse_from =
      network.topology().link(bb.nodes.tap_link).other(bb.nodes.x);
  if (spec.bidirectional) {
    run->reverse_tap = network.add_tap(bb.nodes.tap_link, reverse_from,
                                       spec.name + " (reverse)",
                                       base.epoch_unix_s);
  }

  // Phase-confined failure schedule, one derived RNG stream for all of it.
  util::Rng failure_rng(util::derive_seed(spec.seed, "failures"));
  sim::FailurePlan plan;
  at = 0;
  for (const ScenarioPhase& phase : spec.phases) {
    if (phase.flap_events > 0) {
      sim::FailurePlanConfig cfg;
      cfg.candidate_links = bb.nodes.flap_candidates;
      cfg.link_event_count = phase.flap_events;
      cfg.outage_mean = phase.flap_outage_mean;
      cfg.start = at;
      cfg.horizon = at + phase.duration;
      const auto sub = sim::make_failure_plan(cfg, failure_rng);
      plan.link_events.insert(plan.link_events.end(), sub.link_events.begin(),
                              sub.link_events.end());
    }
    if (phase.withdraw_events > 0) {
      sim::FailurePlanConfig cfg;
      cfg.candidate_prefixes = bb.withdrawable;
      cfg.bgp_event_count = phase.withdraw_events;
      cfg.bgp_outage_mean = phase.withdraw_outage_mean;
      cfg.bgp_batch_mean = 1.0;
      cfg.start = at;
      cfg.horizon = at + phase.duration;
      const auto sub = sim::make_failure_plan(cfg, failure_rng);
      plan.bgp_events.insert(plan.bgp_events.end(), sub.bgp_events.begin(),
                             sub.bgp_events.end());
    }
    at += phase.duration;
  }

  if (spec.focus_withdraw) {
    if (!has_focus) {
      throw std::invalid_argument(
          "run_scenario: focus_withdraw without a focused phase");
    }
    net::TimeNs t0 = 0;
    for (const ScenarioPhase& phase : spec.phases) {
      if (phase.focus_fraction > 0) {
        sim::BgpEvent ev;
        ev.prefix = bb.destinations->prefixes()[focus];
        ev.withdraw_at = t0 + phase.duration / 4;
        ev.reannounce_at = t0 + phase.duration;
        plan.bgp_events.push_back(ev);
        break;
      }
      t0 += phase.duration;
    }
  }
  plan.apply(network);
  bb.plan = std::move(plan);

  if (spec.misconfig) {
    if (bb.withdrawable.empty()) {
      throw std::logic_error("run_scenario: no misconfig victim available");
    }
    const net::Prefix victim = bb.withdrawable.front();
    network.inject_misconfiguration(victim, bb.nodes.y, bb.nodes.tap_link,
                                    spec.misconfig_at);
    if (spec.misconfig_clear >= 0) {
      network.clear_misconfiguration(victim, bb.nodes.y, spec.misconfig_clear);
    }
  }

  execute(bb);

  // Effective crossings for the analysis view. tap_crossings() is one global
  // log across taps; the transmitting node attributes each entry to a
  // direction (forward entries transmit at X).
  const auto& all = network.tap_crossings();
  if (spec.drop_probability > 0 || spec.jitter > 0) {
    const net::Trace& tap = bb.trace();
    if (all.size() != tap.size()) {
      throw std::logic_error(
          "run_scenario: tap crossing log out of step with the trace "
          "(crossing cap exceeded?)");
    }
    util::Rng stress_rng(util::derive_seed(spec.seed, "stress"));
    struct Kept {
      net::TimeNs ts;
      std::size_t idx;
    };
    std::vector<Kept> kept;
    kept.reserve(tap.size());
    for (std::size_t i = 0; i < tap.size(); ++i) {
      if (spec.drop_probability > 0 &&
          stress_rng.bernoulli(spec.drop_probability)) {
        continue;
      }
      net::TimeNs ts = tap[i].ts;
      if (spec.jitter > 0) {
        ts = std::max<net::TimeNs>(
            0, ts + stress_rng.uniform_int(-spec.jitter, spec.jitter));
      }
      kept.push_back({ts, i});
    }
    std::stable_sort(kept.begin(), kept.end(),
                     [](const Kept& a, const Kept& b) { return a.ts < b.ts; });
    net::Trace stressed(spec.name + " (stressed)", tap.epoch_unix_s());
    run->crossings.reserve(kept.size());
    for (const Kept& k : kept) {
      stressed.add(k.ts, tap[k.idx].bytes(), tap[k.idx].wire_len);
      // Original capture times: detectability windows stay aligned with the
      // truth intervals, which jitter does not move.
      run->crossings.push_back(all[k.idx]);
    }
    run->derived = std::move(stressed);
  } else {
    for (const auto& c : all) {
      if (c.node == bb.nodes.x) {
        run->crossings.push_back(c);
      } else if (spec.bidirectional && c.node == reverse_from) {
        run->reverse_crossings.push_back(c);
      }
    }
  }
  return run;
}

// --- canned scenarios -------------------------------------------------------

namespace {
ScenarioSpec make_loop_free_control() {
  ScenarioSpec s;
  s.name = "loop_free_control";
  s.summary =
      "busy link, 3x burst, zero failures: every path must stay silent";
  s.seed = 1001;
  s.backbone = 2;
  s.flows_per_second = 80.0;
  s.phases = {{.kind = PhaseKind::idle, .duration = 15 * kS},
              {.kind = PhaseKind::burst, .duration = 15 * kS, .rate = 3.0},
              {.kind = PhaseKind::idle, .duration = 10 * kS}};
  s.truth.expect_loops = false;
  return s;
}

ScenarioSpec make_flash_crowd() {
  ScenarioSpec s;
  s.name = "flash_crowd";
  s.summary =
      "5x ramp onto one hot prefix while egresses withdraw mid-surge";
  s.seed = 1002;
  s.backbone = 1;
  s.flows_per_second = 60.0;
  s.phases = {
      {.kind = PhaseKind::idle, .duration = 15 * kS, .rate = 0.7},
      {.kind = PhaseKind::ramp,
       .duration = 25 * kS,
       .rate = 0.7,
       .rate_end = 5.0,
       .withdraw_events = 2,
       .withdraw_outage_mean = 25 * kS},
      {.kind = PhaseKind::burst,
       .duration = 15 * kS,
       .rate = 5.0,
       .focus_fraction = 0.35,
       .withdraw_events = 2,
       .withdraw_outage_mean = 20 * kS},
      {.kind = PhaseKind::ramp, .duration = 10 * kS, .rate = 5.0,
       .rate_end = 1.0},
      {.kind = PhaseKind::idle, .duration = 10 * kS}};
  return s;
}

ScenarioSpec make_ddos_burst() {
  ScenarioSpec s;
  s.name = "ddos_burst";
  s.summary =
      "single-prefix DDoS at 4x rate; the victim's egress withdraws "
      "under the blast";
  s.seed = 1003;
  s.backbone = 2;
  s.flows_per_second = 70.0;
  s.phases = {{.kind = PhaseKind::idle, .duration = 15 * kS},
              {.kind = PhaseKind::burst,
               .duration = 25 * kS,
               .rate = 4.0,
               .focus_fraction = 0.45,
               .withdraw_events = 2,
               .withdraw_outage_mean = 15 * kS},
              {.kind = PhaseKind::idle, .duration = 15 * kS}};
  s.focus_withdraw = true;
  return s;
}

ScenarioSpec make_link_flap_storm() {
  ScenarioSpec s;
  s.name = "link_flap_storm";
  s.summary = "two IGP flap storms on the quiet long-haul backbone";
  // Most flap draws hit links whose loss converges without looping; this
  // seed/event-count pair lands flaps on the cost-1 primaries and produces
  // a rich IGP loop population (the interesting case for the gates).
  s.seed = 99;
  s.backbone = 3;
  s.flows_per_second = 60.0;
  s.phases = {{.kind = PhaseKind::idle, .duration = 10 * kS},
              {.kind = PhaseKind::flap,
               .duration = 25 * kS,
               .flap_events = 12,
               .flap_outage_mean = 2500 * net::kMillisecond},
              {.kind = PhaseKind::idle, .duration = 8 * kS},
              {.kind = PhaseKind::flap,
               .duration = 18 * kS,
               .rate = 1.2,
               .flap_events = 10,
               .flap_outage_mean = 1500 * net::kMillisecond},
              {.kind = PhaseKind::idle, .duration = 12 * kS}};
  return s;
}

ScenarioSpec make_persistent_vs_transient() {
  ScenarioSpec s;
  s.name = "persistent_vs_transient";
  s.summary =
      "70 s misconfiguration loop (paper's persistent cause) over "
      "ordinary withdrawal transients";
  s.seed = 1005;
  s.backbone = 1;
  s.flows_per_second = 55.0;
  s.phases = {{.kind = PhaseKind::idle,
               .duration = 25 * kS,
               .withdraw_events = 1,
               .withdraw_outage_mean = 20 * kS},
              {.kind = PhaseKind::idle,
               .duration = 50 * kS,
               .withdraw_events = 2,
               .withdraw_outage_mean = 20 * kS},
              {.kind = PhaseKind::idle, .duration = 25 * kS}};
  s.misconfig = true;
  s.misconfig_at = 15 * kS;
  s.misconfig_clear = 85 * kS;
  return s;
}

ScenarioSpec make_multi_failure_convergence() {
  ScenarioSpec s;
  s.name = "multi_failure_convergence";
  s.summary =
      "simultaneous IGP flaps and BGP withdrawals on the transit-chain "
      "backbone (2- and 3-router loops)";
  s.seed = 1006;
  s.backbone = 4;
  s.flows_per_second = 70.0;
  s.phases = {{.kind = PhaseKind::idle, .duration = 12 * kS},
              {.kind = PhaseKind::flap,
               .duration = 30 * kS,
               .flap_events = 3,
               .flap_outage_mean = 2500 * net::kMillisecond,
               .withdraw_events = 5,
               .withdraw_outage_mean = 18 * kS},
              {.kind = PhaseKind::idle, .duration = 18 * kS}};
  return s;
}

ScenarioSpec make_asymmetric_bidir() {
  ScenarioSpec s;
  s.name = "asymmetric_bidir";
  s.summary =
      "both artery directions tapped; forward and reverse monitors must "
      "each find every loop their direction exposes";
  s.seed = 1007;
  s.backbone = 1;
  s.flows_per_second = 65.0;
  s.phases = {{.kind = PhaseKind::idle, .duration = 12 * kS},
              {.kind = PhaseKind::idle,
               .duration = 30 * kS,
               .withdraw_events = 4,
               .withdraw_outage_mean = 15 * kS},
              {.kind = PhaseKind::idle, .duration = 13 * kS}};
  s.bidirectional = true;
  return s;
}

ScenarioSpec make_reorder_loss_stress() {
  ScenarioSpec s;
  s.name = "reorder_loss_stress";
  s.summary =
      "8% capture loss + 0.5 ms timestamp jitter; recall judged on the "
      "surviving crossings";
  s.seed = 1008;
  s.backbone = 1;
  s.flows_per_second = 65.0;
  s.phases = {{.kind = PhaseKind::idle, .duration = 12 * kS},
              {.kind = PhaseKind::burst,
               .duration = 30 * kS,
               .rate = 1.6,
               .withdraw_events = 4,
               .withdraw_outage_mean = 15 * kS},
              {.kind = PhaseKind::idle, .duration = 13 * kS}};
  s.drop_probability = 0.08;
  s.jitter = 500'000;  // 0.5 ms, under half the 2 ms loop turn time
  return s;
}
}  // namespace

const std::vector<std::string>& canned_scenario_names() {
  static const std::vector<std::string> names = {
      "loop_free_control",      "flash_crowd",
      "ddos_burst",             "link_flap_storm",
      "persistent_vs_transient", "multi_failure_convergence",
      "asymmetric_bidir",       "reorder_loss_stress"};
  return names;
}

ScenarioSpec canned_scenario(const std::string& name) {
  if (name == "loop_free_control") return make_loop_free_control();
  if (name == "flash_crowd") return make_flash_crowd();
  if (name == "ddos_burst") return make_ddos_burst();
  if (name == "link_flap_storm") return make_link_flap_storm();
  if (name == "persistent_vs_transient") return make_persistent_vs_transient();
  if (name == "multi_failure_convergence") {
    return make_multi_failure_convergence();
  }
  if (name == "asymmetric_bidir") return make_asymmetric_bidir();
  if (name == "reorder_loss_stress") return make_reorder_loss_stress();
  throw std::invalid_argument("canned_scenario: unknown scenario " + name);
}

// --- scoring ----------------------------------------------------------------

std::string render_loop(const core::RoutingLoop& loop) {
  std::ostringstream out;
  out << loop.prefix24.to_string() << " start=" << loop.start
      << " end=" << loop.end << " replicas=" << loop.replica_count
      << " delta=" << loop.ttl_delta << " streams=" << loop.stream_count();
  return out.str();
}

std::string render_alert(const core::LoopAlert& alert) {
  std::ostringstream out;
  out << alert.prefix24.to_string() << " first=" << alert.first_seen
      << " raised=" << alert.raised_at << " replicas=" << alert.replicas
      << " delta=" << alert.ttl_delta;
  return out.str();
}

ScenarioScore score_offline(const ScenarioRun& run,
                            const std::vector<sim::LoopCrossing>& crossings,
                            const std::vector<core::RoutingLoop>& loops) {
  const net::TimeNs slack = run.spec.truth.slack;
  return score_reports(
      run, crossings, loops,
      [slack](const baseline::TruthLoop& t, const core::RoutingLoop& r) {
        return t.prefix24 == r.prefix24 &&
               intervals_overlap(t.start, t.end, r.start, r.end, slack);
      });
}

ScenarioScore score_streaming(const ScenarioRun& run,
                              const std::vector<sim::LoopCrossing>& crossings,
                              const std::vector<core::LoopAlert>& alerts) {
  const net::TimeNs slack = run.spec.truth.slack;
  return score_reports(
      run, crossings, alerts,
      [slack](const baseline::TruthLoop& t, const core::LoopAlert& a) {
        return t.prefix24 == a.prefix24 &&
               intervals_overlap(t.start, t.end, a.first_seen, a.raised_at,
                                 slack);
      });
}

core::StreamingConfig scenario_streaming_config(const ScenarioSpec& spec) {
  core::StreamingConfig cfg;
  cfg.min_replicas = spec.truth.min_crossings;
  // Distinct truth loops on one prefix are >= 2 s apart (the merge gap), so
  // a short hold-down keeps one alert per loop without suppressing the next
  // loop's alert — the recall gate depends on that.
  cfg.alert_holddown = net::kSecond;
  // The stressed view is re-sorted after jitter, so feeds are monotonic and
  // no tolerance is needed; live-capture tolerance is exercised separately
  // in tests/test_streaming.cc.
  cfg.reorder_tolerance_ns = 0;
  return cfg;
}

// --- evaluation -------------------------------------------------------------

namespace {
PathOutcome offline_path(const ScenarioRun& run, const std::string& name,
                         const net::Trace& trace,
                         const std::vector<sim::LoopCrossing>& crossings,
                         unsigned threads) {
  core::LoopDetectorConfig cfg;
  cfg.parallel.num_threads = threads;
  const auto result = core::detect_loops(trace, cfg);
  PathOutcome out;
  out.path = name;
  out.score = score_offline(run, crossings, result.loops);
  out.lines.reserve(result.loops.size());
  for (const auto& loop : result.loops) out.lines.push_back(render_loop(loop));
  return out;
}
}  // namespace

const PathOutcome* ScenarioEvaluation::find(const std::string& path) const {
  for (const auto& p : paths) {
    if (p.path == path) return &p;
  }
  return nullptr;
}

ScenarioEvaluation evaluate_scenario(const ScenarioRun& run) {
  ScenarioEvaluation ev;
  ev.scenario = run.spec.name;
  ev.seed = run.spec.seed;

  const net::Trace& trace = run.analysis_trace();
  ev.paths.push_back(offline_path(run, "serial", trace, run.crossings, 1));
  ev.paths.push_back(offline_path(run, "parallel2", trace, run.crossings, 2));
  ev.paths.push_back(offline_path(run, "parallel4", trace, run.crossings, 4));

  {
    PathOutcome out;
    out.path = "streaming";
    std::vector<core::LoopAlert> alerts;
    core::StreamingDetector detector(
        scenario_streaming_config(run.spec),
        [&](const core::LoopAlert& a) { alerts.push_back(a); });
    for (const auto& rec : trace) detector.on_packet(rec.ts, rec.bytes());
    out.score = score_streaming(run, run.crossings, alerts);
    out.lines.reserve(alerts.size());
    for (const auto& a : alerts) out.lines.push_back(render_alert(a));
    ev.paths.push_back(std::move(out));
  }

  if (run.spec.bidirectional) {
    ev.paths.push_back(offline_path(run, "reverse", run.reverse_trace(),
                                    run.reverse_crossings, 1));
  }

  ev.offline_identical = ev.find("serial")->lines ==
                             ev.find("parallel2")->lines &&
                         ev.find("serial")->lines == ev.find("parallel4")->lines;
  if (!ev.offline_identical) {
    ev.failures.push_back("serial and parallel report lines differ");
  }

  const TruthPolicy& policy = run.spec.truth;
  if (policy.expect_loops && ev.find("serial")->score.detectable == 0) {
    ev.failures.push_back(
        "no detectable truth loops: the scenario is vacuous");
  }
  for (const PathOutcome& path : ev.paths) {
    const ScenarioScore& s = path.score;
    if (!policy.expect_loops) {
      if (s.reports != 0) {
        ev.failures.push_back(path.path + ": " + std::to_string(s.reports) +
                              " report(s) in a loop-free scenario");
      }
      continue;
    }
    if (s.detected < s.detectable) {
      ev.failures.push_back(path.path + ": recall " +
                            format_ratio(s.recall()) + " (" +
                            std::to_string(s.detected) + "/" +
                            std::to_string(s.detectable) +
                            " detectable loops)");
    }
    const double floor = path.path == "streaming"
                             ? policy.precision_floor_streaming
                             : policy.precision_floor_offline;
    if (s.precision() < floor) {
      ev.failures.push_back(path.path + ": precision " +
                            format_ratio(s.precision()) + " below floor " +
                            format_ratio(floor));
    }
  }
  ev.pass = ev.failures.empty();
  return ev;
}

std::string ScenarioEvaluation::to_json() const {
  std::ostringstream out;
  out << "{\"scenario\":\"" << json_escape(scenario) << "\",\"seed\":" << seed
      << ",\"pass\":" << (pass ? "true" : "false")
      << ",\"offline_identical\":" << (offline_identical ? "true" : "false")
      << ",\"failures\":[";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    out << (i ? "," : "") << '"' << json_escape(failures[i]) << '"';
  }
  out << "],\"paths\":[";
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const PathOutcome& p = paths[i];
    const ScenarioScore& s = p.score;
    out << (i ? "," : "") << "{\"path\":\"" << json_escape(p.path)
        << "\",\"truth_loops\":" << s.truth_loops
        << ",\"detectable\":" << s.detectable << ",\"detected\":" << s.detected
        << ",\"reports\":" << s.reports
        << ",\"unmatched_reports\":" << s.unmatched_reports
        << ",\"recall\":" << format_ratio(s.recall())
        << ",\"precision\":" << format_ratio(s.precision()) << ",\"lines\":[";
    for (std::size_t j = 0; j < p.lines.size(); ++j) {
      out << (j ? "," : "") << '"' << json_escape(p.lines[j]) << '"';
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace rloop::scenarios
