#include "scenarios/backbone.h"

#include <algorithm>
#include <stdexcept>

namespace rloop::scenarios {

namespace {
constexpr double kGbps = 1e9;
constexpr double kOc12Bps = 622e6;

net::TimeNs scaled(double ms, double scale) {
  return static_cast<net::TimeNs>(ms * scale * 1e6);
}
}  // namespace

BackboneSpec backbone_spec(int k) {
  BackboneSpec spec;
  switch (k) {
    case 1:
      // Long BGP convergence -> the long-duration loop tail of Figure 9.
      spec = {.index = 1,
              .name = "Backbone 1",
              .seed = 101,
              .epoch_unix_s = 1'005'224'400,  // 2001-11-08 13:00 GMT
              .duration = 8 * net::kMinute,
              .flows_per_second = 95.0,
              .delay_scale = 1.0,
              .igp_events = 9,
              .bgp_events = 14,
              .mrai_max = 30 * net::kSecond,
              .dst_prefix_count = 300,
              .src_prefix_count = 120,
              .three_mode_ttl = false,
              .bgp_batch_mean = 3.0,
              .transit_chain = false};
      break;
    case 2:
      // The busy link: several times the packet rate of the others.
      spec = {.index = 2,
              .name = "Backbone 2",
              .seed = 202,
              .epoch_unix_s = 1'005'224'400,
              .duration = 8 * net::kMinute,
              .flows_per_second = 240.0,
              .delay_scale = 1.0,
              .igp_events = 10,
              .bgp_events = 16,
              .mrai_max = 20 * net::kSecond,
              .dst_prefix_count = 340,
              .src_prefix_count = 140,
              .three_mode_ttl = false,
              .bgp_batch_mean = 3.0,
              .transit_chain = false};
      break;
    case 3:
      // Quiet long-haul link, almost all IGP events -> short loops only.
      spec = {.index = 3,
              .name = "Backbone 3",
              .seed = 303,
              .epoch_unix_s = 1'012'770'000,  // 2002-02-03 21:00 GMT
              .duration = 8 * net::kMinute,
              .flows_per_second = 45.0,
              .delay_scale = 2.5,
              .igp_events = 15,
              .bgp_events = 14,
              .mrai_max = 4 * net::kSecond,
              .dst_prefix_count = 260,
              .src_prefix_count = 100,
              .three_mode_ttl = false,
              .bgp_batch_mean = 2.0,
              .bgp_outage_mean = 10 * net::kSecond,
              .withdraw_rank_lo = 0.02,
              .withdraw_rank_hi = 0.40,
              .transit_chain = false};
      break;
    case 4:
      // Three initial-TTL modes and frequent 3-hop loops through the
      // X-Y-D0 triangle: Backbone 4's split TTL-delta distribution and
      // three-step duration CDF.
      spec = {.index = 4,
              .name = "Backbone 4",
              .seed = 404,
              .epoch_unix_s = 1'012'770'000,
              .duration = 8 * net::kMinute,
              .flows_per_second = 80.0,
              .delay_scale = 3.5,
              .igp_events = 13,
              .bgp_events = 28,
              .mrai_max = 8 * net::kSecond,
              .dst_prefix_count = 280,
              .src_prefix_count = 110,
              .three_mode_ttl = true,
              .bgp_batch_mean = 2.0,
              // Sessions stay down past the trace horizon: Backbone 4's
              // loops are pure withdrawal transients (short), not merged
              // withdraw/re-announce pairs.
              .bgp_outage_mean = 20 * net::kMinute,
              .withdraw_rank_lo = 0.02,
              .withdraw_rank_hi = 0.42,
              .transit_chain = true};
      break;
    default:
      throw std::invalid_argument("backbone_spec: k must be 1..4");
  }
  return spec;
}

routing::Topology make_backbone_topology(const BackboneSpec& spec,
                                         BackboneNodes& nodes) {
  routing::Topology topo;
  const double s = spec.delay_scale;

  nodes.i0 = topo.add_node("I0");
  nodes.i1 = topo.add_node("I1");
  nodes.i2 = topo.add_node("I2");
  nodes.a0 = topo.add_node("A0");
  nodes.a1 = topo.add_node("A1");
  nodes.a2 = topo.add_node("A2");
  nodes.x = topo.add_node("X");
  nodes.y = topo.add_node("Y");
  nodes.d0 = topo.add_node("D0");
  nodes.d1 = topo.add_node("D1");
  nodes.d2 = topo.add_node("D2");
  nodes.e1 = topo.add_node("E1");
  nodes.e2 = topo.add_node("E2");
  nodes.ea = topo.add_node("EA");

  // Ingress edge.
  topo.add_link(nodes.i0, nodes.a0, scaled(0.4, s), 1.0 * kGbps, 200, 1);
  topo.add_link(nodes.i1, nodes.a1, scaled(0.4, s), 1.0 * kGbps, 200, 1);
  topo.add_link(nodes.i2, nodes.a2, scaled(0.4, s), 1.0 * kGbps, 200, 1);

  // Side-A aggregation mesh.
  const auto a0_a1 =
      topo.add_link(nodes.a0, nodes.a1, scaled(0.5, s), 2.5 * kGbps, 300, 2);
  topo.add_link(nodes.a1, nodes.a2, scaled(0.5, s), 2.5 * kGbps, 300, 2);
  const auto a0_a2 =
      topo.add_link(nodes.a0, nodes.a2, scaled(0.9, s), 2.5 * kGbps, 300, 4);
  topo.add_link(nodes.a0, nodes.x, scaled(0.4, s), 2.5 * kGbps, 300, 2);
  const auto a1_x =
      topo.add_link(nodes.a1, nodes.x, scaled(0.3, s), 2.5 * kGbps, 300, 1);
  topo.add_link(nodes.a2, nodes.x, scaled(0.4, s), 2.5 * kGbps, 300, 2);

  // The tapped inter-POP OC-12. With transit_chain, M sits between X and Y
  // and an equal-cost direct X--Y link exists; link creation order fixes the
  // equal-cost tie-breaks (lower link id wins) so that downstream traffic
  // takes X->M->Y while the fresh upstream path takes the direct Y->X leg,
  // which is what makes 3-hop loop cycles (X->M->Y->X) possible.
  if (spec.transit_chain) {
    nodes.m = topo.add_node("M");
    nodes.tap_link =
        topo.add_link(nodes.x, nodes.m, scaled(0.5, s), kOc12Bps, 400, 1);
    topo.add_link(nodes.x, nodes.y, scaled(1.0, s), kOc12Bps, 400, 2);
    topo.add_link(nodes.m, nodes.y, scaled(0.5, s), kOc12Bps, 400, 1);
  } else {
    nodes.tap_link =
        topo.add_link(nodes.x, nodes.y, scaled(1.0, s), kOc12Bps, 400, 1);
  }

  // Side-B distribution.
  const auto y_d0 = topo.add_link(nodes.y, nodes.d0, scaled(0.5, s),
                                  2.5 * kGbps, 300, 2);
  const auto y_d1 = topo.add_link(nodes.y, nodes.d1, scaled(0.5, s),
                                  2.5 * kGbps, 300, 1);
  const auto y_d2 =
      topo.add_link(nodes.y, nodes.d2, scaled(0.6, s), 2.5 * kGbps, 300, 2);
  const auto d0_d1 =
      topo.add_link(nodes.d0, nodes.d1, scaled(0.4, s), 2.5 * kGbps, 300, 1);
  const auto d1_d2 =
      topo.add_link(nodes.d1, nodes.d2, scaled(0.4, s), 2.5 * kGbps, 300, 2);

  // Side-B egresses and the side-A egress.
  topo.add_link(nodes.d1, nodes.e1, scaled(0.3, s), 1.0 * kGbps, 200, 1);
  topo.add_link(nodes.d2, nodes.e2, scaled(0.3, s), 1.0 * kGbps, 200, 1);
  topo.add_link(nodes.a0, nodes.ea, scaled(0.3, s), 1.0 * kGbps, 200, 1);

  // Bypasses: the X-Y-D0 triangle (3-hop loop cycle) and a far backup.
  topo.add_link(nodes.x, nodes.d0, scaled(1.8, s), kOc12Bps, 300, 8);
  topo.add_link(nodes.a2, nodes.d2, scaled(2.6, s), kOc12Bps, 300, 12);

  // Only links whose loss keeps the graph 2-connected around the tap flap.
  nodes.flap_candidates = {y_d0, y_d1, y_d2, d0_d1, d1_d2,
                           a0_a1, a1_x, a0_a2};
  return topo;
}

std::unique_ptr<BackboneRun> build_backbone(const BackboneSpec& spec,
                                            telemetry::Registry* registry) {
  auto run = std::make_unique<BackboneRun>();
  run->spec = spec;

  routing::Topology topo = make_backbone_topology(spec, run->nodes);
  const BackboneNodes& n = run->nodes;

  sim::NetworkConfig net_cfg;
  net_cfg.registry = registry;
  net_cfg.bgp.mrai_max = spec.mrai_max;
  if (spec.transit_chain) {
    // X and M are route-reflector clients: their BGP updates take an extra
    // reflection hop. On a withdrawal, Y then typically converges (points up
    // the direct X--Y leg) while X and M still point down — the 3-router
    // X->M->Y->X loop phase — before the X<->M pair phase begins.
    net_cfg.bgp.slow_nodes = {run->nodes.x, run->nodes.m};
    net_cfg.bgp.slow_extra_mean = spec.mrai_max / 3;
  }
  run->network = std::make_unique<sim::Network>(std::move(topo), spec.seed,
                                                net_cfg);
  sim::Network& network = *run->network;

  // Address pools. Setup randomness is separate from the network's
  // control-plane randomness so topology/plan stay stable under config
  // tweaks elsewhere.
  util::Rng setup_rng(spec.seed * 7919 + 17);
  trafficgen::PrefixPoolConfig dst_cfg;
  dst_cfg.prefix_count = spec.dst_prefix_count;
  run->destinations =
      std::make_shared<trafficgen::PrefixPool>(dst_cfg, setup_rng);
  trafficgen::PrefixPoolConfig src_cfg;
  src_cfg.prefix_count = spec.src_prefix_count;
  src_cfg.class_c_fraction = 0.3;
  run->sources = std::make_shared<trafficgen::PrefixPool>(src_cfg, setup_rng);

  // Attach destinations: 70 % side-B egress with side-A fallback (the
  // loop-prone population), 20 % dual side-B egress, 10 % side-A only.
  const auto& dst_prefixes = run->destinations->prefixes();
  for (std::size_t i = 0; i < dst_prefixes.size(); ++i) {
    const net::Prefix& p = dst_prefixes[i];
    const std::size_t r = i % 10;
    routing::ExternalRoute route;
    route.prefix = p;
    if (r < 7) {
      route.egress_preference = {(i % 2) ? n.e1 : n.e2, n.ea};
      // Withdrawal candidates: mid-popularity prefixes. They carry steady
      // traffic (so loops produce replicas) without the very top ranks,
      // whose looped volume would dwarf the trace; the heaviest prefixes in
      // real backbones are also the least likely to flap.
      const auto lo = static_cast<std::size_t>(
          spec.withdraw_rank_lo * static_cast<double>(dst_prefixes.size()));
      const auto hi = static_cast<std::size_t>(
          spec.withdraw_rank_hi * static_cast<double>(dst_prefixes.size()));
      if (i >= lo && i < hi) run->withdrawable.push_back(p);
    } else if (r < 9) {
      route.egress_preference = {(i % 2) ? n.e1 : n.e2, (i % 2) ? n.e2 : n.e1};
    } else {
      route.egress_preference = {n.ea};
    }
    network.attach_external_route(std::move(route));
  }

  // Multicast range exits side B (traffic-mix realism only).
  network.attach_external_route(
      {net::Prefix::of(net::Ipv4Addr(224, 0, 0, 0), 4), {n.e2}});

  // Source prefixes live behind the ingress routers, so ICMP time-exceeded
  // generated inside the network can route back to the offending sources.
  const auto& src_prefixes = run->sources->prefixes();
  const routing::NodeId ingress_nodes[3] = {n.i0, n.i1, n.i2};
  for (std::size_t i = 0; i < src_prefixes.size(); ++i) {
    network.attach_external_route({src_prefixes[i], {ingress_nodes[i % 3]}});
  }

  network.install_all_routes();

  run->tap_index = network.add_tap(n.tap_link, n.x, spec.name,
                                   spec.epoch_unix_s);

  // Workload.
  trafficgen::WorkloadConfig wl_cfg;
  wl_cfg.start = 0;
  wl_cfg.duration = spec.duration;
  wl_cfg.flows_per_second = spec.flows_per_second;
  wl_cfg.phases = spec.phases;
  run->workload = std::make_unique<trafficgen::Workload>(
      wl_cfg, run->destinations, run->sources,
      spec.three_mode_ttl ? trafficgen::TtlModel::three_modes()
                          : trafficgen::TtlModel::standard(),
      std::vector<routing::NodeId>{n.i0, n.i1, n.i2});
  run->workload->install(network, spec.workload_seed != 0
                                      ? spec.workload_seed
                                      : spec.seed ^ 0x9e3779b97f4a7c15ULL);

  // Failure plan.
  sim::FailurePlanConfig plan_cfg;
  plan_cfg.candidate_links = n.flap_candidates;
  plan_cfg.link_event_count = spec.igp_events;
  plan_cfg.outage_mean = 6 * net::kSecond;
  plan_cfg.candidate_prefixes = run->withdrawable;
  plan_cfg.bgp_event_count = spec.bgp_events;
  plan_cfg.bgp_outage_mean = spec.bgp_outage_mean;
  plan_cfg.bgp_batch_mean = spec.bgp_batch_mean;
  plan_cfg.start = std::min<net::TimeNs>(5 * net::kSecond, spec.duration / 4);
  plan_cfg.horizon = std::max<net::TimeNs>(spec.duration - 30 * net::kSecond,
                                           plan_cfg.start + net::kSecond);
  run->plan = sim::make_failure_plan(plan_cfg, setup_rng);
  run->plan.apply(network);

  return run;
}

void execute(BackboneRun& run) {
  run.network->run_until(run.spec.duration + 10 * net::kSecond);
}

std::unique_ptr<BackboneRun> run_backbone(int k,
                                          telemetry::Registry* registry) {
  auto run = build_backbone(backbone_spec(k), registry);
  execute(*run);
  return run;
}

}  // namespace rloop::scenarios
