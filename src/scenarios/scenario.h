// The scenario engine: timed, auto-switching workload phases with
// ground-truth precision/recall gates.
//
// The paper validated its detector on four fixed backbone traces with no
// ground truth. The simulator gives us what the authors never had — a
// per-packet log of every tap traversal (sim::Network::tap_crossings) — so
// every detector path can be *re-proven correct* under hostile workloads,
// not just the quiet ones. A ScenarioSpec sequences phases (idle / burst /
// ramp / flap, each with a duration, a rate multiplier and optional failure
// events) over the trafficgen arrival process and the failure injector;
// running it yields a ScenarioRun whose analysis trace, effective tap
// crossings and truth loops feed evaluate_scenario(), which scores the
// serial, parallel{2,4} and streaming detector paths against the spec's
// TruthPolicy:
//
//   * recall must be 100% over *detectable* truth loops — those where one
//     packet crossed the tap >= min_crossings (3) times, the paper's own
//     replica-stream threshold;
//   * precision must not fall below the spec's pinned floor;
//   * the serial and parallel offline paths must produce byte-identical
//     report lines.
//
// One seed threads through everything (network control plane, workload,
// failure schedule — util::derive_seed sub-streams), so every scenario run
// is bit-reproducible from the `--seed` printed at start.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baseline/comparison.h"
#include "core/loop_detector.h"
#include "core/streaming_detector.h"
#include "scenarios/backbone.h"

namespace rloop::scenarios {

enum class PhaseKind { idle, burst, ramp, flap };

const char* phase_kind_name(PhaseKind kind);

// One timed phase. Phases run back to back in spec order (auto-switching);
// the scenario duration is the sum of phase durations.
struct ScenarioPhase {
  PhaseKind kind = PhaseKind::idle;
  net::TimeNs duration = 10 * net::kSecond;
  // Arrival-rate multiplier over the spec's base flows_per_second. For ramp
  // the rate interpolates linearly from `rate` to `rate_end` across the
  // phase; for every other kind it is flat at `rate`.
  double rate = 1.0;
  double rate_end = 1.0;
  // Fraction of arrivals redirected at the scenario's focus prefix
  // (single-prefix DDoS shape); 0 keeps the Zipf draw.
  double focus_fraction = 0.0;
  // IGP link flaps drawn uniformly inside this phase window.
  int flap_events = 0;
  net::TimeNs flap_outage_mean = 2 * net::kSecond;
  // E-BGP withdrawals drawn uniformly inside this phase window.
  int withdraw_events = 0;
  net::TimeNs withdraw_outage_mean = 20 * net::kSecond;
};

// What the scenario promises about detector behavior — the per-scenario
// gate that ctest and the CI scenario-matrix job enforce.
struct TruthPolicy {
  // false: a control scenario that must stay silent (zero reports on every
  // path); recall/precision are then vacuous and asserted as such.
  bool expect_loops = true;
  // Pinned precision floors (matched reports / reports), per path family.
  double precision_floor_offline = 1.0;
  double precision_floor_streaming = 1.0;
  // Interval slack when matching reports to truth loops (observation
  // latency, merge boundaries).
  net::TimeNs slack = 2 * net::kSecond;
  // A truth loop is *detectable* when one packet crossed the tap at least
  // this many times during it — the paper's min_replicas bar.
  std::uint64_t min_crossings = 3;
};

struct ScenarioSpec {
  std::string name;
  std::string summary;
  // The single user-facing seed; network, workload and failure randomness
  // all derive from it (util::derive_seed named sub-streams).
  std::uint64_t seed = 1;
  // Base topology/trace parameters (1..4, see backbone_spec).
  int backbone = 1;
  double flows_per_second = 70.0;
  std::vector<ScenarioPhase> phases;
  // Withdraw the focus prefix's best egress for the span of the first
  // focused phase (DDoS burst against a flapping prefix).
  bool focus_withdraw = false;
  // Operator misconfiguration (persistent loop): at misconfig_at, the far
  // artery router's FIB entry for one withdrawable prefix is forced back up
  // the tapped link until misconfig_clear (< 0 = never cleared).
  bool misconfig = false;
  net::TimeNs misconfig_at = 0;
  net::TimeNs misconfig_clear = -1;
  // Tap both directions of the artery and run a reverse-direction detection
  // path too (asymmetric routing: a 2-router loop shows up in both
  // directions; each direction is analyzed on its own because interleaving
  // them would collapse per-turn TTL deltas to 1).
  bool bidirectional = false;
  // Post-capture stress: drop each record with this probability and jitter
  // its timestamp by up to +-jitter, deterministically from the seed. The
  // recall gate is computed over the *surviving* crossings.
  double drop_probability = 0.0;
  net::TimeNs jitter = 0;
  TruthPolicy truth;

  net::TimeNs duration() const;
};

// A fully-executed scenario: the backbone run plus the analysis view the
// detectors consume (loss/jitter-stressed when requested) and the
// tap-crossing ground truth aligned with that view.
struct ScenarioRun {
  ScenarioSpec spec;
  std::unique_ptr<BackboneRun> backbone;
  // Valid only when spec.bidirectional.
  std::size_t reverse_tap = static_cast<std::size_t>(-1);
  // Stressed (dropped/jittered) trace; absent when the raw tap trace is
  // analyzed.
  std::optional<net::Trace> derived;
  // Forward-direction tap crossings visible in the analysis view (the
  // surviving subset when records were dropped).
  std::vector<sim::LoopCrossing> crossings;
  // Reverse-direction crossings; non-empty only when spec.bidirectional.
  std::vector<sim::LoopCrossing> reverse_crossings;

  const net::Trace& analysis_trace() const {
    return derived ? *derived : backbone->trace();
  }
  const net::Trace& reverse_trace() const {
    return backbone->network->tap_trace(reverse_tap);
  }
  // Ground-truth loop intervals (all router revisits, network-wide).
  std::vector<baseline::TruthLoop> truth() const {
    return baseline::merge_crossings(backbone->network->loop_crossings());
  }
};

// Builds and executes the scenario. `registry` (optional, must outlive the
// run) instruments the simulated network.
std::unique_ptr<ScenarioRun> run_scenario(const ScenarioSpec& spec,
                                          telemetry::Registry* registry =
                                              nullptr);

// --- canned scenarios ------------------------------------------------------
// The stock stress suite; every name here runs in ctest and the CI
// scenario-matrix job. Throws std::invalid_argument on an unknown name.
const std::vector<std::string>& canned_scenario_names();
ScenarioSpec canned_scenario(const std::string& name);

// --- scoring ---------------------------------------------------------------

struct ScenarioScore {
  std::uint64_t truth_loops = 0;   // all ground-truth loop intervals
  std::uint64_t detectable = 0;    // >= min_crossings by one packet at the tap
  std::uint64_t detected = 0;      // detectable loops matched by a report
  std::uint64_t reports = 0;
  std::uint64_t unmatched_reports = 0;  // matching no truth loop at all

  double recall() const {
    return detectable == 0 ? 1.0
                           : static_cast<double>(detected) /
                                 static_cast<double>(detectable);
  }
  double precision() const {
    return reports == 0 ? 1.0
                        : static_cast<double>(reports - unmatched_reports) /
                              static_cast<double>(reports);
  }
};

// Canonical one-line renderings; "alert-identical across paths" is a string
// vector comparison on these.
std::string render_loop(const core::RoutingLoop& loop);
std::string render_alert(const core::LoopAlert& alert);

// Scores reports against the run's truth loops; `crossings` decides which
// truth loops count as detectable (pass run.crossings for the forward view,
// run.reverse_crossings for the reverse path).
ScenarioScore score_offline(const ScenarioRun& run,
                            const std::vector<sim::LoopCrossing>& crossings,
                            const std::vector<core::RoutingLoop>& loops);
ScenarioScore score_streaming(const ScenarioRun& run,
                              const std::vector<sim::LoopCrossing>& crossings,
                              const std::vector<core::LoopAlert>& alerts);

// The streaming configuration every scenario gate runs under (short
// hold-down so back-to-back loops on one prefix alert separately).
core::StreamingConfig scenario_streaming_config(const ScenarioSpec& spec);

// --- evaluation ------------------------------------------------------------

struct PathOutcome {
  // "serial" | "parallel2" | "parallel4" | "streaming", plus "reverse"
  // (serial over the reverse-direction trace) when spec.bidirectional.
  std::string path;
  ScenarioScore score;
  std::vector<std::string> lines;  // rendered reports/alerts, canonical order
};

struct ScenarioEvaluation {
  std::string scenario;
  std::uint64_t seed = 0;
  std::vector<PathOutcome> paths;
  bool offline_identical = false;
  bool pass = false;
  std::vector<std::string> failures;  // human-readable gate violations

  const PathOutcome* find(const std::string& path) const;
  // One JSON object (truth/alert artifact the CI job uploads).
  std::string to_json() const;
};

// Runs serial, parallel{2,4} and streaming detection over the analysis
// trace and applies the spec's gates.
ScenarioEvaluation evaluate_scenario(const ScenarioRun& run);

}  // namespace rloop::scenarios
