#include "scenarios/random_backbone.h"

#include <algorithm>
#include <string>

namespace rloop::scenarios {

namespace {
constexpr double kGbps = 1e9;

net::TimeNs random_delay(util::Rng& rng) {
  return net::from_millis(rng.uniform_double(0.2, 2.5));
}
}  // namespace

std::unique_ptr<BackboneRun> build_random_backbone(
    const RandomBackboneConfig& config) {
  util::Rng rng(config.seed * 1099511628211ULL + 3);

  auto run = std::make_unique<BackboneRun>();
  run->spec = BackboneSpec{};
  run->spec.index = 0;
  run->spec.name = "random-" + std::to_string(config.seed);
  run->spec.seed = config.seed;
  run->spec.duration = config.duration;
  run->spec.flows_per_second = config.flows_per_second;

  const int a_width = config.side_a_width
                          ? config.side_a_width
                          : static_cast<int>(rng.uniform_int(2, 4));
  const int b_width = config.side_b_width
                          ? config.side_b_width
                          : static_cast<int>(rng.uniform_int(2, 4));

  routing::Topology topo;
  BackboneNodes& n = run->nodes;

  // Side A: one ingress leaf per aggregation router.
  std::vector<routing::NodeId> aggs, ingresses;
  for (int i = 0; i < a_width; ++i) {
    aggs.push_back(topo.add_node("A" + std::to_string(i)));
    ingresses.push_back(topo.add_node("I" + std::to_string(i)));
    topo.add_link(ingresses.back(), aggs.back(), random_delay(rng),
                  1.0 * kGbps, 200, 1);
  }
  // Aggregation chain plus random chords.
  for (int i = 0; i + 1 < a_width; ++i) {
    topo.add_link(aggs[static_cast<std::size_t>(i)],
                  aggs[static_cast<std::size_t>(i + 1)], random_delay(rng),
                  2.5 * kGbps, 300,
                  static_cast<std::uint32_t>(rng.uniform_int(2, 4)));
  }
  n.x = topo.add_node("X");
  n.y = topo.add_node("Y");
  for (const auto agg : aggs) {
    topo.add_link(agg, n.x, random_delay(rng), 2.5 * kGbps, 300,
                  static_cast<std::uint32_t>(rng.uniform_int(1, 3)));
  }
  // The tapped artery.
  n.tap_link = topo.add_link(n.x, n.y, random_delay(rng), 622e6, 400, 1);
  n.m = -1;

  // Side B distribution + egress leaves.
  std::vector<routing::NodeId> dists, egresses;
  for (int i = 0; i < b_width; ++i) {
    dists.push_back(topo.add_node("D" + std::to_string(i)));
    topo.add_link(n.y, dists.back(), random_delay(rng), 2.5 * kGbps, 300,
                  static_cast<std::uint32_t>(rng.uniform_int(1, 3)));
    egresses.push_back(topo.add_node("E" + std::to_string(i)));
    topo.add_link(dists.back(), egresses.back(), random_delay(rng),
                  1.0 * kGbps, 200, 1);
  }
  for (int i = 0; i + 1 < b_width; ++i) {
    topo.add_link(dists[static_cast<std::size_t>(i)],
                  dists[static_cast<std::size_t>(i + 1)], random_delay(rng),
                  2.5 * kGbps, 300,
                  static_cast<std::uint32_t>(rng.uniform_int(1, 3)));
  }
  // Side-A egress and a random expensive bypass keeping 2-connectivity.
  n.ea = topo.add_node("EA");
  topo.add_link(aggs.front(), n.ea, random_delay(rng), 1.0 * kGbps, 200, 1);
  topo.add_link(aggs.back(),
                dists[static_cast<std::size_t>(
                    rng.uniform_int(0, b_width - 1))],
                random_delay(rng), 622e6, 300,
                static_cast<std::uint32_t>(rng.uniform_int(8, 14)));

  // Fill the remaining named fields for callers that peek at them.
  n.i0 = ingresses[0];
  n.i1 = ingresses[std::min<std::size_t>(1, ingresses.size() - 1)];
  n.i2 = ingresses.back();
  n.a0 = aggs[0];
  n.a1 = aggs[std::min<std::size_t>(1, aggs.size() - 1)];
  n.a2 = aggs.back();
  n.d0 = dists[0];
  n.d1 = dists[std::min<std::size_t>(1, dists.size() - 1)];
  n.d2 = dists.back();
  n.e1 = egresses.front();
  n.e2 = egresses.back();

  // Flappable links: inter-distribution and Y-distribution links (never the
  // artery, never a leaf's only link).
  for (const auto& link : topo.links()) {
    if (link.id == n.tap_link) continue;
    const bool leaf_link =
        topo.neighbors(link.a).size() == 1 || topo.neighbors(link.b).size() == 1;
    if (!leaf_link && rng.bernoulli(0.6)) {
      n.flap_candidates.push_back(link.id);
    }
  }

  sim::NetworkConfig net_cfg;
  net_cfg.bgp.mrai_max = config.mrai_max;
  run->network =
      std::make_unique<sim::Network>(std::move(topo), config.seed, net_cfg);
  sim::Network& network = *run->network;

  trafficgen::PrefixPoolConfig dst_cfg;
  dst_cfg.prefix_count = config.dst_prefix_count;
  run->destinations = std::make_shared<trafficgen::PrefixPool>(dst_cfg, rng);
  trafficgen::PrefixPoolConfig src_cfg;
  src_cfg.prefix_count = config.src_prefix_count;
  src_cfg.class_c_fraction = 0.3;
  run->sources = std::make_shared<trafficgen::PrefixPool>(src_cfg, rng);

  const auto& dst_prefixes = run->destinations->prefixes();
  for (std::size_t i = 0; i < dst_prefixes.size(); ++i) {
    routing::ExternalRoute route;
    route.prefix = dst_prefixes[i];
    const auto egress = egresses[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(egresses.size()) - 1))];
    if (i % 10 < 7) {
      route.egress_preference = {egress, n.ea};
      if (i >= dst_prefixes.size() / 8 && i < dst_prefixes.size() / 2) {
        run->withdrawable.push_back(route.prefix);
      }
    } else if (i % 10 < 9 && egresses.size() > 1) {
      const auto other = egresses[(static_cast<std::size_t>(egress) + 1) %
                                  egresses.size()];
      route.egress_preference = {egress, other};
    } else {
      route.egress_preference = {n.ea};
    }
    network.attach_external_route(std::move(route));
  }
  network.attach_external_route(
      {net::Prefix::of(net::Ipv4Addr(224, 0, 0, 0), 4), {egresses.front()}});
  const auto& src_prefixes = run->sources->prefixes();
  for (std::size_t i = 0; i < src_prefixes.size(); ++i) {
    network.attach_external_route(
        {src_prefixes[i], {ingresses[i % ingresses.size()]}});
  }
  network.install_all_routes();

  run->tap_index =
      network.add_tap(n.tap_link, n.x, run->spec.name, 1'000'000'000);

  trafficgen::WorkloadConfig wl_cfg;
  wl_cfg.duration = config.duration;
  wl_cfg.flows_per_second = config.flows_per_second;
  run->workload = std::make_unique<trafficgen::Workload>(
      wl_cfg, run->destinations, run->sources,
      trafficgen::TtlModel::standard(), ingresses);
  run->workload->install(network, config.seed ^ 0xc2b2ae3d27d4eb4fULL);

  sim::FailurePlanConfig plan_cfg;
  plan_cfg.candidate_links = n.flap_candidates;
  plan_cfg.link_event_count =
      n.flap_candidates.empty() ? 0 : config.igp_events;
  plan_cfg.candidate_prefixes = run->withdrawable;
  plan_cfg.bgp_event_count = config.bgp_events;
  plan_cfg.bgp_batch_mean = 2.0;
  plan_cfg.start = 2 * net::kSecond;
  plan_cfg.horizon = config.duration - 10 * net::kSecond;
  run->plan = sim::make_failure_plan(plan_cfg, rng);
  run->plan.apply(network);

  return run;
}

}  // namespace rloop::scenarios
