// The four "backbone" scenarios standing in for the paper's four Sprint
// OC-12 traces (Table I). Each scenario is a deterministic simulation:
// a two-sided backbone topology with a tapped inter-POP link, a traffic
// workload matching the paper's mix, and a failure plan of IGP link flaps
// and BGP withdrawals whose convergence windows create transient loops.
//
// Topology (* marks the tapped link, direction X -> (M|Y) is captured):
//
//      I0    I1    I2          ingress edge routers (traffic + probe vantage)
//      |     |     |
//      A0 -- A1 -- A2          aggregation, side A   (A0--A2 backup)
//       \.   |   ./
//   EA -- [  X  ]              EA: side-A egress
//            |*                tapped OC-12 (scenario 4 inserts transit
//         [  Y  ]              router M: X -*- M -- Y plus a direct X--Y
//        /   |   \.            link of equal cost)
//      D0 -- D1 -- D2          distribution, side B
//      |     |     |
//      +--X  E1    E2          E1/E2: side-B egresses; X--D0: backup path
//
// Most destination prefixes prefer a side-B egress with the side-A egress as
// BGP fallback: a withdrawal makes converged routers point *up* through the
// tap while stale routers still point *down*, so the loop's cycle contains
// the tapped link and every turn produces a replica in the trace. With
// symmetric IGP costs, a loop cycle through the tapped artery longer than
// the adjacent pair is impossible (the condition for a fresh upstream path
// to take a side door contradicts the condition for downstream traffic to
// stay on the artery), which is why scenario 4 splits the artery into
// X-M-Y with an equal-cost direct X--Y link: tie-breaks route downstream
// traffic through M and upstream traffic over the direct link, making both
// two-router (X<->M, TTL delta 2) and three-router (X->M->Y->X, delta 3)
// cycles realizable — Backbone 4's split TTL-delta distribution.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baseline/comparison.h"
#include "net/prefix.h"
#include "net/time.h"
#include "net/trace.h"
#include "routing/topology.h"
#include "sim/failure.h"
#include "sim/network.h"
#include "trafficgen/address_model.h"
#include "trafficgen/ttl_model.h"
#include "trafficgen/workload.h"

namespace rloop::scenarios {

struct BackboneSpec {
  int index = 1;
  std::string name = "Backbone 1";
  std::uint64_t seed = 1;
  std::int64_t epoch_unix_s = 1'005'224'400;  // 2001-11-08 13:00 GMT
  net::TimeNs duration = 8 * net::kMinute;
  double flows_per_second = 90.0;
  // Multiplies every link's propagation delay (distinguishes short-haul from
  // long-haul links and shifts the spacing/duration CDFs, Figures 4/8).
  double delay_scale = 1.0;
  int igp_events = 10;
  int bgp_events = 14;
  // BGP convergence spread; the dominant control on loop durations (Fig. 9).
  net::TimeNs mrai_max = 20 * net::kSecond;
  std::size_t dst_prefix_count = 300;
  std::size_t src_prefix_count = 120;
  bool three_mode_ttl = false;
  // Mean prefixes withdrawn per BGP event (session-failure batching).
  double bgp_batch_mean = 1.0;
  // Mean E-BGP outage length (withdraw -> re-announce). When no healthy
  // packet for the prefix crosses the tap during the outage, the detector
  // merges the withdraw-loop with the re-announce-loop (exactly as the
  // paper's algorithm would), so this controls the merged-loop duration
  // tail on each link.
  net::TimeNs bgp_outage_mean = 45 * net::kSecond;
  // Zipf-rank band (as fractions of the destination pool) eligible for
  // withdrawal. Quiet links need more popular prefixes to flap for loops to
  // carry observable traffic; busy links the opposite.
  double withdraw_rank_lo = 1.0 / 6.0;
  double withdraw_rank_hi = 0.5;
  // Insert a transit router M between X and Y (tap moves to X->M) with an
  // equal-cost direct X--Y link. BGP disagreement between X and M loops
  // X->M->X (TTL delta 2); disagreement between {X,M} and Y loops
  // X->M->Y->X (delta 3, the return leg using the direct link). Backbone 4
  // uses this to reproduce its split 55%/35% TTL-delta distribution.
  bool transit_chain = false;
  // Workload RNG seed; 0 keeps the legacy derivation (seed ^ golden ratio).
  // The scenario engine sets it so one user-facing seed threads through
  // network, workload and failure-plan randomness (util::derive_seed).
  std::uint64_t workload_seed = 0;
  // Timed rate/focus phases forwarded to the workload (scenario engine).
  std::vector<trafficgen::RatePhase> phases;
};

// Specs for the paper's four traces (k in 1..4). Throws std::invalid_argument
// otherwise.
BackboneSpec backbone_spec(int k);

struct BackboneNodes {
  routing::NodeId i0, i1, i2;
  routing::NodeId a0, a1, a2;
  routing::NodeId x, y;
  routing::NodeId m = -1;  // transit node, only with spec.transit_chain
  routing::NodeId d0, d1, d2;
  routing::NodeId e1, e2, ea;
  routing::LinkId tap_link = -1;
  std::vector<routing::LinkId> flap_candidates;
};

routing::Topology make_backbone_topology(const BackboneSpec& spec,
                                         BackboneNodes& nodes);

// A fully-wired scenario. Owns the network, pools and workload; the network
// holds callbacks into the workload, so the object must stay put while the
// simulation runs (hence unique_ptr and no copies).
struct BackboneRun {
  BackboneSpec spec;
  BackboneNodes nodes;
  std::unique_ptr<sim::Network> network;
  std::shared_ptr<trafficgen::PrefixPool> destinations;
  std::shared_ptr<trafficgen::PrefixPool> sources;
  std::unique_ptr<trafficgen::Workload> workload;
  sim::FailurePlan plan;
  std::size_t tap_index = 0;
  // Prefixes with a BGP fallback egress (withdrawal candidates).
  std::vector<net::Prefix> withdrawable;

  const net::Trace& trace() const { return network->tap_trace(tap_index); }
  std::vector<baseline::TruthLoop> truth_loops() const {
    return baseline::merge_crossings(network->loop_crossings());
  }
};

// Builds the scenario with workload and failure plan installed but nothing
// run yet, so callers can add taps/probers before execute(). `registry`
// (optional, must outlive the run) instruments the simulated network and its
// event queue with rloop_sim_* metrics.
std::unique_ptr<BackboneRun> build_backbone(
    const BackboneSpec& spec, telemetry::Registry* registry = nullptr);

// Runs the simulation to spec.duration plus a drain period.
void execute(BackboneRun& run);

// build + execute for the paper's trace k.
std::unique_ptr<BackboneRun> run_backbone(
    int k, telemetry::Registry* registry = nullptr);

}  // namespace rloop::scenarios
