// Randomized backbone scenarios for robustness testing.
//
// The four fixed scenarios reproduce the paper's traces; this generator
// answers a different question: does the detector's zero-false-positive
// property survive on topologies it was never tuned for? Each seed yields a
// different two-sided network around a tapped artery — random aggregation
// and distribution widths, random extra chords and costs, random delays,
// random event schedules — while preserving the structural invariant that
// makes a single-link tap meaningful (ingress on one side, most egresses on
// the other, one cheap artery).
#pragma once

#include <cstdint>
#include <memory>

#include "scenarios/backbone.h"

namespace rloop::scenarios {

struct RandomBackboneConfig {
  std::uint64_t seed = 1;
  int side_a_width = 0;  // 0 = draw 2..4
  int side_b_width = 0;  // 0 = draw 2..4
  net::TimeNs duration = 90 * net::kSecond;
  double flows_per_second = 70.0;
  std::size_t dst_prefix_count = 140;
  std::size_t src_prefix_count = 50;
  int igp_events = 2;
  int bgp_events = 6;
  net::TimeNs mrai_max = 10 * net::kSecond;
};

// Builds a fully-wired random scenario (workload + failure plan installed).
// The returned run uses the BackboneRun container; nodes.x/nodes.y are the
// tapped artery endpoints and the remaining node fields name the first
// element of each randomized group.
std::unique_ptr<BackboneRun> build_random_backbone(
    const RandomBackboneConfig& config);

}  // namespace rloop::scenarios
