// Zero-copy pcap ingest via mmap.
//
// read_pcap copies every record twice: ifstream's buffer into a scratch
// vector, then the scratch vector into the Trace. For the multi-gigabyte
// captures the paper's methodology targets, mapping the file and parsing
// records straight out of the mapping removes the scratch copy and lets the
// kernel fault pages in sequentially (one MADV_SEQUENTIAL hint) instead of
// round-tripping through read(2).
//
// Semantics are identical to read_pcap — same accepted formats (micro/nano
// timestamps, either byte order, raw or Ethernet linktype), same telemetry
// counters, same truncation handling — and tests/test_pcap_mmap.cc pins the
// two readers record-for-record equal on every format variant.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>

#include "net/trace.h"
#include "telemetry/registry.h"

namespace rloop::net {

// Parses a complete pcap savefile held in memory. `source_name` becomes the
// trace's source (read_pcap uses "pcap:" + path). Throws std::runtime_error
// on a malformed file header, bad magic, unsupported linktype, or an
// implausible record length; a short final record is a counted warning
// (rloop_pcap_truncated_records_total), matching read_pcap.
Trace parse_pcap_buffer(std::span<const std::byte> data,
                        const std::string& source_name,
                        telemetry::Registry* registry = nullptr);

// Maps `path` and parses it in place. Returns std::nullopt when the mmap
// path is unavailable: non-POSIX build, or the path is not a regular file
// (pipes and sockets cannot be mapped). Throws on open failure or malformed
// content, exactly as read_pcap would.
std::optional<Trace> read_pcap_mmap(const std::string& path,
                                    telemetry::Registry* registry = nullptr);

// read_pcap_mmap when possible, read_pcap otherwise. Drop-in replacement
// for read_pcap at every call site.
Trace read_pcap_fast(const std::string& path,
                     telemetry::Registry* registry = nullptr);

// Test-only seam: when non-null, invoked by read_pcap_mmap between mapping
// the file and re-checking its size. The truncation regression test shrinks
// the file here — the exact window where a concurrent `truncate` would
// otherwise turn a page access into SIGBUS.
extern void (*pcap_mmap_test_hook)();

}  // namespace rloop::net
