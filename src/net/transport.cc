#include "net/transport.h"

#include "net/byteio.h"

namespace rloop::net {

void TcpHeader::serialize(std::span<std::byte> out) const {
  write_u16(out, 0, src_port);
  write_u16(out, 2, dst_port);
  write_u32(out, 4, seq);
  write_u32(out, 8, ack);
  write_u8(out, 12, static_cast<std::uint8_t>(data_offset << 4));
  write_u8(out, 13, flags);
  write_u16(out, 14, window);
  write_u16(out, 16, checksum);
  write_u16(out, 18, urgent_pointer);
}

std::optional<TcpHeader> TcpHeader::parse(std::span<const std::byte> buf) {
  if (buf.size() < kTcpHeaderSize) return std::nullopt;
  TcpHeader h;
  h.src_port = read_u16(buf, 0);
  h.dst_port = read_u16(buf, 2);
  h.seq = read_u32(buf, 4);
  h.ack = read_u32(buf, 8);
  h.data_offset = read_u8(buf, 12) >> 4;
  if (h.data_offset < 5) return std::nullopt;
  h.flags = read_u8(buf, 13) & 0x3f;
  h.window = read_u16(buf, 14);
  h.checksum = read_u16(buf, 16);
  h.urgent_pointer = read_u16(buf, 18);
  return h;
}

void UdpHeader::serialize(std::span<std::byte> out) const {
  write_u16(out, 0, src_port);
  write_u16(out, 2, dst_port);
  write_u16(out, 4, length);
  write_u16(out, 6, checksum);
}

std::optional<UdpHeader> UdpHeader::parse(std::span<const std::byte> buf) {
  if (buf.size() < kUdpHeaderSize) return std::nullopt;
  UdpHeader h;
  h.src_port = read_u16(buf, 0);
  h.dst_port = read_u16(buf, 2);
  h.length = read_u16(buf, 4);
  if (h.length < kUdpHeaderSize) return std::nullopt;
  h.checksum = read_u16(buf, 6);
  return h;
}

void IcmpHeader::serialize(std::span<std::byte> out) const {
  write_u8(out, 0, type);
  write_u8(out, 1, code);
  write_u16(out, 2, checksum);
  write_u32(out, 4, rest);
}

std::optional<IcmpHeader> IcmpHeader::parse(std::span<const std::byte> buf) {
  if (buf.size() < kIcmpHeaderSize) return std::nullopt;
  IcmpHeader h;
  h.type = read_u8(buf, 0);
  h.code = read_u8(buf, 1);
  h.checksum = read_u16(buf, 2);
  h.rest = read_u32(buf, 4);
  return h;
}

std::string tcp_flags_to_string(std::uint8_t flags) {
  std::string out;
  auto append = [&](const char* name) {
    if (!out.empty()) out += '|';
    out += name;
  };
  if (flags & kTcpSyn) append("SYN");
  if (flags & kTcpAck) append("ACK");
  if (flags & kTcpFin) append("FIN");
  if (flags & kTcpRst) append("RST");
  if (flags & kTcpPsh) append("PSH");
  if (flags & kTcpUrg) append("URG");
  if (out.empty()) out = "none";
  return out;
}

}  // namespace rloop::net
