// IPv4 address and header types.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace rloop::net {

// IPv4 address held in host order; serialization converts to network order.
struct Ipv4Addr {
  std::uint32_t value = 0;

  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t v) : value(v) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  auto operator<=>(const Ipv4Addr&) const = default;

  std::string to_string() const;
  // Parses dotted-quad "a.b.c.d"; nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(const std::string& text);
};

enum class IpProto : std::uint8_t {
  icmp = 1,
  igmp = 2,
  tcp = 6,
  udp = 17,
};

inline constexpr std::size_t kIpv4HeaderSize = 20;

// IPv4 header without options (IHL == 5), which covers every packet the
// simulator emits and the vast majority of backbone traffic. Parsing accepts
// larger IHL values but only when the capture contains the full header.
struct Ipv4Header {
  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;  // header + payload, bytes
  std::uint16_t id = 0;            // IP identification: distinguishes packets
                                   // of a flow from replicas of one packet
  bool dont_fragment = false;
  bool more_fragments = false;
  std::uint16_t fragment_offset = 0;  // in 8-byte units
  std::uint8_t ttl = 0;
  std::uint8_t protocol = 0;  // raw value; see IpProto for known ones
  std::uint16_t checksum = 0;
  Ipv4Addr src;
  Ipv4Addr dst;

  bool operator==(const Ipv4Header&) const = default;

  // Serializes 20 bytes into `out` (must be >= 20 bytes). The checksum field
  // is written as-is; call compute_checksum() first for a valid packet.
  void serialize(std::span<std::byte> out) const;

  // Returns the correct header checksum for the current field values.
  std::uint16_t compute_checksum() const;
  // True when the stored checksum matches the field values.
  bool checksum_valid() const;

  // Parses a header from `buf`. Returns nullopt for: short buffer, version
  // != 4, IHL < 5, or total_length smaller than the header. Parsed headers
  // with options have the option bytes skipped; `header_length_out` (when
  // non-null) receives the full IHL in bytes so callers can locate the
  // transport header.
  static std::optional<Ipv4Header> parse(std::span<const std::byte> buf,
                                         std::size_t* header_length_out = nullptr);
};

}  // namespace rloop::net
