#include "net/prefix.h"

#include <stdexcept>

namespace rloop::net {

std::uint32_t Prefix::netmask() const {
  if (len == 0) return 0;
  return ~std::uint32_t{0} << (32 - len);
}

Prefix Prefix::of(Ipv4Addr a, std::uint8_t length) {
  if (length > 32) throw std::invalid_argument("Prefix::of: length > 32");
  Prefix p;
  p.len = length;
  p.addr = Ipv4Addr{a.value & p.netmask()};
  return p;
}

bool Prefix::contains(Ipv4Addr a) const {
  return (a.value & netmask()) == addr.value;
}

bool Prefix::covers(const Prefix& other) const {
  return other.len >= len && contains(other.addr);
}

std::string Prefix::to_string() const {
  return addr.to_string() + "/" + std::to_string(len);
}

std::optional<Prefix> Prefix::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string len_part = text.substr(slash + 1);
  if (len_part.empty() || len_part.size() > 2) return std::nullopt;
  int len = 0;
  for (char c : len_part) {
    if (c < '0' || c > '9') return std::nullopt;
    len = len * 10 + (c - '0');
  }
  if (len > 32) return std::nullopt;
  return Prefix::of(*addr, static_cast<std::uint8_t>(len));
}

}  // namespace rloop::net
