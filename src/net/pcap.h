// pcap file format reader/writer (the classic libpcap savefile format).
//
// Writing uses the nanosecond-resolution magic (0xa1b23c4d) with LINKTYPE_RAW
// (101: packets begin with the IPv4 header), matching the library's 40-byte
// snaplen traces. Reading additionally accepts microsecond files, either byte
// order, and LINKTYPE_EN10MB (Ethernet framing is stripped and non-IPv4
// frames are skipped), so the detector runs on ordinary captures.
#pragma once

#include <cstdint>
#include <string>

#include "net/trace.h"
#include "telemetry/registry.h"

namespace rloop::net {

inline constexpr std::uint32_t kPcapMagicMicros = 0xa1b2c3d4;
inline constexpr std::uint32_t kPcapMagicNanos = 0xa1b23c4d;
inline constexpr std::uint32_t kLinktypeRaw = 101;
inline constexpr std::uint32_t kLinktypeEthernet = 1;

// Writes `trace` to `path`. Timestamps are emitted as absolute
// (epoch_unix_s + record ts). Throws std::runtime_error on I/O failure.
void write_pcap(const Trace& trace, const std::string& path);

// Reads a pcap file into a Trace (capped at kSnapLen captured bytes per
// record). The first record's absolute second becomes the trace epoch.
// Throws std::runtime_error on I/O failure or malformed file structure. A
// capture that ends mid-record (killed tcpdump, full disk) is NOT malformed:
// the complete records are kept and the remnant is counted in
// rloop_pcap_truncated_records_total. `registry` (optional) additionally
// receives rloop_pcap_records_total and per-reason
// rloop_pcap_records_skipped_total counters.
// See net/pcap_mmap.h for the zero-copy variant (read_pcap_fast).
Trace read_pcap(const std::string& path,
                telemetry::Registry* registry = nullptr);

}  // namespace rloop::net
