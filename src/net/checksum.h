// Internet checksum (RFC 1071) and incremental update (RFC 1624).
//
// Routers in the simulator update the IP header checksum incrementally when
// decrementing TTL — the same operation real routers perform — so a captured
// replica differs from the original in exactly the TTL and checksum fields,
// which is the invariant the paper's detector relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace rloop::net {

// One's-complement sum of 16-bit big-endian words; odd trailing byte is
// padded with zero, per RFC 1071.
std::uint32_t ones_complement_sum(std::span<const std::byte> data,
                                  std::uint32_t initial = 0);

// Folds carries and complements; the standard Internet checksum over `data`.
std::uint16_t internet_checksum(std::span<const std::byte> data);

// RFC 1624 (eqn. 3) incremental checksum update when one 16-bit header word
// changes from `old_word` to `new_word`.
std::uint16_t incremental_checksum_update(std::uint16_t old_checksum,
                                          std::uint16_t old_word,
                                          std::uint16_t new_word);

// Pseudo-header seed for TCP/UDP checksums: src/dst address, protocol and
// transport-segment length, per RFC 793 / RFC 768.
std::uint32_t pseudo_header_sum(std::uint32_t src_addr, std::uint32_t dst_addr,
                                std::uint8_t protocol,
                                std::uint16_t transport_length);

// Folds a 32-bit one's-complement accumulator into a final 16-bit checksum.
std::uint16_t fold_checksum(std::uint32_t sum);

}  // namespace rloop::net
