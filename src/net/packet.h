// Parsed packet representation and packet construction helpers.
//
// A ParsedPacket is the decoded view of the bytes a trace captured for one
// packet: the IPv4 header plus whichever transport header is present. It is
// also the unit the simulator forwards, so the exact same type flows from
// traffic generation through routers into traces and the detector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <variant>

#include "net/ipv4.h"
#include "net/transport.h"

namespace rloop::net {

// Maximum bytes serialized for any simulator packet: IP + TCP headers.
inline constexpr std::size_t kMaxHeaderBytes = kIpv4HeaderSize + kTcpHeaderSize;

struct ParsedPacket {
  Ipv4Header ip;
  // monostate: unknown protocol, fragment without transport header, or the
  // capture was too short to include the transport header.
  std::variant<std::monostate, TcpHeader, UdpHeader, IcmpHeader> transport;

  bool operator==(const ParsedPacket&) const = default;

  const TcpHeader* tcp() const { return std::get_if<TcpHeader>(&transport); }
  const UdpHeader* udp() const { return std::get_if<UdpHeader>(&transport); }
  const IcmpHeader* icmp() const { return std::get_if<IcmpHeader>(&transport); }

  // The transport checksum stands in for payload identity in the paper's
  // replica test (only 40 bytes are captured). nullopt when no transport
  // header was captured.
  std::optional<std::uint16_t> transport_checksum() const;
};

// Decodes an IPv4 packet from captured bytes. Transport decoding is
// best-effort: a valid IP header with an unknown or truncated transport
// yields monostate, not failure. Returns nullopt only when the IP header
// itself is absent or malformed.
std::optional<ParsedPacket> parse_packet(std::span<const std::byte> buf);

// Serializes the headers of `pkt` into `out`; returns bytes written
// (20, 28, 28 or 40 depending on transport). Throws std::invalid_argument
// when `out` is too small. Payload bytes are never serialized: the library
// models 40-byte snaplen captures, and payload identity travels via the
// transport checksum.
std::size_t serialize_packet(const ParsedPacket& pkt, std::span<std::byte> out);

// Construction helpers. All fill in correct IP total_length, IP checksum and
// a transport checksum computed as if the payload were `payload_len` zero
// bytes — deterministic, and constant across replicas of the same packet.
ParsedPacket make_tcp_packet(Ipv4Addr src, Ipv4Addr dst, std::uint16_t src_port,
                             std::uint16_t dst_port, std::uint32_t seq,
                             std::uint32_t ack, std::uint8_t flags,
                             std::uint16_t payload_len, std::uint8_t ttl,
                             std::uint16_t ip_id);
ParsedPacket make_udp_packet(Ipv4Addr src, Ipv4Addr dst, std::uint16_t src_port,
                             std::uint16_t dst_port, std::uint16_t payload_len,
                             std::uint8_t ttl, std::uint16_t ip_id);
ParsedPacket make_icmp_packet(Ipv4Addr src, Ipv4Addr dst, IcmpType type,
                              std::uint8_t code, std::uint32_t rest,
                              std::uint16_t payload_len, std::uint8_t ttl,
                              std::uint16_t ip_id);

// Recomputes and stores the transport checksum of `pkt` (pseudo-header +
// transport header + zero payload). Used by the builders and by tests.
void finalize_transport_checksum(ParsedPacket& pkt);

}  // namespace rloop::net
