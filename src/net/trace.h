// Packet trace storage: the 40-byte snaplen record format of the Sprint IPMON
// traces the paper analyzed, held in memory with nanosecond timestamps.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/packet.h"
#include "net/time.h"

namespace rloop::net {

// The paper's traces keep the first 40 bytes of every IP packet: enough for
// IP + TCP headers (without options).
inline constexpr std::size_t kSnapLen = 40;

struct TraceRecord {
  TimeNs ts = 0;               // relative to the trace epoch
  std::uint32_t wire_len = 0;  // original packet length on the wire
  std::uint8_t cap_len = 0;    // captured bytes, <= kSnapLen
  std::array<std::byte, kSnapLen> data{};

  std::span<const std::byte> bytes() const {
    return std::span<const std::byte>(data.data(), cap_len);
  }
};

class Trace {
 public:
  Trace() = default;
  Trace(std::string link_name, std::int64_t epoch_unix_s)
      : link_name_(std::move(link_name)), epoch_unix_s_(epoch_unix_s) {}

  const std::string& link_name() const { return link_name_; }
  void set_link_name(std::string name) { link_name_ = std::move(name); }
  // UNIX seconds of t=0 in this trace; only used for pcap absolute stamps.
  std::int64_t epoch_unix_s() const { return epoch_unix_s_; }
  void set_epoch_unix_s(std::int64_t s) { epoch_unix_s_ = s; }

  // Appends raw captured bytes (truncated to kSnapLen). Records must be added
  // in non-decreasing timestamp order; throws std::invalid_argument otherwise.
  void add(TimeNs ts, std::span<const std::byte> packet_bytes,
           std::uint32_t wire_len);
  // Serializes the packet's headers and appends them (convenience for the
  // simulator tap and tests).
  void add(TimeNs ts, const ParsedPacket& pkt, std::uint32_t wire_len);

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const TraceRecord& operator[](std::size_t i) const { return records_[i]; }
  const std::vector<TraceRecord>& records() const { return records_; }

  auto begin() const { return records_.begin(); }
  auto end() const { return records_.end(); }

  // Time span between first and last record; 0 when fewer than two records.
  TimeNs duration() const;
  // Sum of wire lengths, for Table I's average bandwidth column.
  std::uint64_t total_wire_bytes() const { return total_wire_bytes_; }
  double average_bandwidth_mbps() const;

 private:
  std::string link_name_;
  std::int64_t epoch_unix_s_ = 0;
  std::vector<TraceRecord> records_;
  std::uint64_t total_wire_bytes_ = 0;
};

// Uniform packet sampling: keeps each record independently with probability
// `keep_prob` (deterministic for a given seed). Real monitors often sample
// under load; the sampling ablation bench uses this to measure how fast the
// replica-stream method degrades when the monitor misses crossings.
Trace sample_trace(const Trace& trace, double keep_prob, std::uint64_t seed);

}  // namespace rloop::net
