// CIDR prefixes. The detector aggregates looped packets by /24 destination
// prefix (the longest prefix honored by tier-1 ISPs, per the paper), and the
// routing substrate advertises and withdraws prefixes.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "net/ipv4.h"

namespace rloop::net {

struct Prefix {
  Ipv4Addr addr;         // always stored masked to `len` bits
  std::uint8_t len = 0;  // 0..32

  constexpr Prefix() = default;

  // Masks `a` down to `length` bits. Throws std::invalid_argument if
  // length > 32.
  static Prefix of(Ipv4Addr a, std::uint8_t length);
  // The /24 containing `a`; the detector's aggregation unit.
  static Prefix slash24(Ipv4Addr a) { return of(a, 24); }

  bool contains(Ipv4Addr a) const;
  // True when `other` is equal to or nested inside this prefix.
  bool covers(const Prefix& other) const;

  std::uint32_t netmask() const;

  auto operator<=>(const Prefix&) const = default;

  std::string to_string() const;
  // Parses "a.b.c.d/len"; nullopt on malformed input. The address part is
  // masked, so "10.1.2.3/24" parses to 10.1.2.0/24.
  static std::optional<Prefix> parse(const std::string& text);
};

}  // namespace rloop::net

template <>
struct std::hash<rloop::net::Prefix> {
  std::size_t operator()(const rloop::net::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.addr.value) << 8) | p.len);
  }
};
