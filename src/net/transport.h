// TCP, UDP and ICMP header types, as captured in 40-byte snaplen traces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace rloop::net {

inline constexpr std::size_t kTcpHeaderSize = 20;
inline constexpr std::size_t kUdpHeaderSize = 8;
inline constexpr std::size_t kIcmpHeaderSize = 8;

// TCP flag bits as laid out in the 13th header byte.
enum TcpFlag : std::uint8_t {
  kTcpFin = 0x01,
  kTcpSyn = 0x02,
  kTcpRst = 0x04,
  kTcpPsh = 0x08,
  kTcpAck = 0x10,
  kTcpUrg = 0x20,
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  // header length in 32-bit words
  std::uint8_t flags = 0;        // TcpFlag bits
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
  std::uint16_t urgent_pointer = 0;

  bool operator==(const TcpHeader&) const = default;

  bool has(TcpFlag f) const { return (flags & f) != 0; }

  // Serializes the fixed 20-byte header (options are not emitted even when
  // data_offset > 5; the simulator never produces options).
  void serialize(std::span<std::byte> out) const;
  static std::optional<TcpHeader> parse(std::span<const std::byte> buf);
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload
  std::uint16_t checksum = 0;

  bool operator==(const UdpHeader&) const = default;

  void serialize(std::span<std::byte> out) const;
  static std::optional<UdpHeader> parse(std::span<const std::byte> buf);
};

// Common ICMP types referenced in the paper's analysis.
enum class IcmpType : std::uint8_t {
  echo_reply = 0,
  dest_unreachable = 3,
  echo_request = 8,
  time_exceeded = 11,
};

struct IcmpHeader {
  std::uint8_t type = 0;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint32_t rest = 0;  // identifier/sequence for echo; unused otherwise

  bool operator==(const IcmpHeader&) const = default;

  void serialize(std::span<std::byte> out) const;
  static std::optional<IcmpHeader> parse(std::span<const std::byte> buf);
};

// Human-readable protocol/flag labels used by the traffic-mix figures.
std::string tcp_flags_to_string(std::uint8_t flags);

}  // namespace rloop::net
