#include "net/ipv4.h"

#include <array>

#include "net/byteio.h"
#include "net/checksum.h"

namespace rloop::net {

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  out += std::to_string((value >> 24) & 0xff);
  out += '.';
  out += std::to_string((value >> 16) & 0xff);
  out += '.';
  out += std::to_string((value >> 8) & 0xff);
  out += '.';
  out += std::to_string(value & 0xff);
  return out;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(const std::string& text) {
  std::uint32_t value = 0;
  std::size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
      return std::nullopt;
    }
    std::uint32_t part = 0;
    std::size_t digits = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      part = part * 10 + static_cast<std::uint32_t>(text[pos] - '0');
      if (part > 255) return std::nullopt;
      ++pos;
      ++digits;
    }
    if (digits == 0 || digits > 3) return std::nullopt;
    value = (value << 8) | part;
    if (octet < 3) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4Addr{value};
}

void Ipv4Header::serialize(std::span<std::byte> out) const {
  write_u8(out, 0, 0x45);  // version 4, IHL 5
  write_u8(out, 1, tos);
  write_u16(out, 2, total_length);
  write_u16(out, 4, id);
  std::uint16_t frag = fragment_offset & 0x1fff;
  if (dont_fragment) frag |= 0x4000;
  if (more_fragments) frag |= 0x2000;
  write_u16(out, 6, frag);
  write_u8(out, 8, ttl);
  write_u8(out, 9, protocol);
  write_u16(out, 10, checksum);
  write_u32(out, 12, src.value);
  write_u32(out, 16, dst.value);
}

std::uint16_t Ipv4Header::compute_checksum() const {
  std::array<std::byte, kIpv4HeaderSize> buf{};
  Ipv4Header copy = *this;
  copy.checksum = 0;
  copy.serialize(buf);
  return internet_checksum(buf);
}

bool Ipv4Header::checksum_valid() const { return checksum == compute_checksum(); }

std::optional<Ipv4Header> Ipv4Header::parse(std::span<const std::byte> buf,
                                            std::size_t* header_length_out) {
  if (buf.size() < kIpv4HeaderSize) return std::nullopt;
  const std::uint8_t version_ihl = read_u8(buf, 0);
  if ((version_ihl >> 4) != 4) return std::nullopt;
  const std::size_t header_length = static_cast<std::size_t>(version_ihl & 0x0f) * 4;
  if (header_length < kIpv4HeaderSize) return std::nullopt;
  if (buf.size() < header_length) return std::nullopt;

  Ipv4Header h;
  h.tos = read_u8(buf, 1);
  h.total_length = read_u16(buf, 2);
  if (h.total_length < header_length) return std::nullopt;
  h.id = read_u16(buf, 4);
  const std::uint16_t frag = read_u16(buf, 6);
  h.dont_fragment = (frag & 0x4000) != 0;
  h.more_fragments = (frag & 0x2000) != 0;
  h.fragment_offset = frag & 0x1fff;
  h.ttl = read_u8(buf, 8);
  h.protocol = read_u8(buf, 9);
  h.checksum = read_u16(buf, 10);
  h.src = Ipv4Addr{read_u32(buf, 12)};
  h.dst = Ipv4Addr{read_u32(buf, 16)};
  if (header_length_out) *header_length_out = header_length;
  return h;
}

}  // namespace rloop::net
