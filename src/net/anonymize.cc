#include "net/anonymize.h"

#include "net/byteio.h"
#include "net/checksum.h"

namespace rloop::net {

namespace {

// splitmix64 finalizer as the keyed bit-PRF.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

Ipv4Addr Anonymizer::map(Ipv4Addr addr) const {
  std::uint32_t out = 0;
  for (int i = 0; i < 32; ++i) {
    // The flip decision for bit i depends only on bits 0..i-1 of the input
    // (and the key), which is exactly what makes the mapping
    // prefix-preserving and invertible.
    const std::uint32_t prefix =
        i == 0 ? 0 : (addr.value >> (32 - i)) << (32 - i);
    const std::uint64_t flip =
        mix(key_ ^ (std::uint64_t{prefix} << 8) ^ static_cast<std::uint64_t>(i)) &
        1;
    const std::uint32_t bit = (addr.value >> (31 - i)) & 1;
    out = (out << 1) | (bit ^ static_cast<std::uint32_t>(flip));
  }
  return Ipv4Addr{out};
}

Trace Anonymizer::anonymize(const Trace& trace) const {
  Trace out(trace.link_name() + " (anonymized)", trace.epoch_unix_s());
  for (const auto& rec : trace.records()) {
    TraceRecord copy = rec;
    auto bytes = std::span<std::byte>(copy.data.data(), copy.cap_len);
    std::size_t header_len = 0;
    if (Ipv4Header::parse(bytes, &header_len)) {
      const Ipv4Addr src{read_u32(bytes, 12)};
      const Ipv4Addr dst{read_u32(bytes, 16)};
      write_u32(bytes, 12, map(src).value);
      write_u32(bytes, 16, map(dst).value);
      // Recompute the header checksum over the captured header bytes.
      write_u16(bytes, 10, 0);
      const auto checksum = internet_checksum(
          std::span<const std::byte>(copy.data.data(), header_len));
      write_u16(bytes, 10, checksum);
    }
    out.add(copy.ts, std::span<const std::byte>(copy.data.data(), copy.cap_len),
            copy.wire_len);
  }
  return out;
}

}  // namespace rloop::net
