#include "net/checksum.h"

namespace rloop::net {

std::uint32_t ones_complement_sum(std::span<const std::byte> data,
                                  std::uint32_t initial) {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) |
           static_cast<std::uint32_t>(data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i]) << 8;
  }
  return sum;
}

std::uint16_t fold_checksum(std::uint32_t sum) {
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::byte> data) {
  return fold_checksum(ones_complement_sum(data));
}

std::uint16_t incremental_checksum_update(std::uint16_t old_checksum,
                                          std::uint16_t old_word,
                                          std::uint16_t new_word) {
  // RFC 1624: HC' = ~(~HC + ~m + m'), computed in one's-complement arithmetic.
  std::uint32_t sum = static_cast<std::uint16_t>(~old_checksum);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint32_t pseudo_header_sum(std::uint32_t src_addr, std::uint32_t dst_addr,
                                std::uint8_t protocol,
                                std::uint16_t transport_length) {
  std::uint32_t sum = 0;
  sum += src_addr >> 16;
  sum += src_addr & 0xffff;
  sum += dst_addr >> 16;
  sum += dst_addr & 0xffff;
  sum += protocol;
  sum += transport_length;
  return sum;
}

}  // namespace rloop::net
