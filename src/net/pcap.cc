#include "net/pcap.h"

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "net/byteio.h"
#include "util/failpoint.h"

namespace rloop::net {

namespace {

constexpr std::size_t kFileHeaderSize = 24;
constexpr std::size_t kRecordHeaderSize = 16;
constexpr std::size_t kEthernetHeaderSize = 14;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

void put_le32(std::ofstream& out, std::uint32_t v) {
  const std::array<char, 4> b = {
      static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
      static_cast<char>((v >> 16) & 0xff), static_cast<char>((v >> 24) & 0xff)};
  out.write(b.data(), b.size());
}

void put_le16(std::ofstream& out, std::uint16_t v) {
  const std::array<char, 2> b = {static_cast<char>(v & 0xff),
                                 static_cast<char>((v >> 8) & 0xff)};
  out.write(b.data(), b.size());
}

// Reads a little- or big-endian u32/u16 depending on the file's byte order.
std::uint32_t get_u32(const unsigned char* p, bool swapped) {
  if (swapped) {
    return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
           (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
  }
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

std::uint16_t get_u16be(const unsigned char* p) {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) |
                                    std::uint16_t{p[1]});
}

// Reads exactly `n` bytes unless the stream ends first; returns how many
// bytes landed in `out`. A read interrupted by a signal (EINTR bubbling up
// through the filebuf as failbit) is retried from where it stopped instead
// of being mistaken for a truncated capture.
std::streamsize read_full(std::istream& in, char* out, std::streamsize n) {
  std::streamsize got = 0;
  while (got < n) {
    errno = 0;
    in.read(out + got, n - got);
    got += in.gcount();
    if (got == n || in.eof()) break;
    if (in.fail() && errno == EINTR) {
      in.clear();
      continue;
    }
    break;  // genuine I/O error: report the short read
  }
  return got;
}

}  // namespace

void write_pcap(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pcap: cannot open " + path);

  put_le32(out, kPcapMagicNanos);
  put_le16(out, 2);   // version major
  put_le16(out, 4);   // version minor
  put_le32(out, 0);   // thiszone
  put_le32(out, 0);   // sigfigs
  put_le32(out, kSnapLen);
  put_le32(out, kLinktypeRaw);

  for (const auto& rec : trace.records()) {
    const std::int64_t abs_ns =
        trace.epoch_unix_s() * kSecond + rec.ts;
    const auto sec = static_cast<std::uint32_t>(abs_ns / kSecond);
    const auto nsec = static_cast<std::uint32_t>(abs_ns % kSecond);
    put_le32(out, sec);
    put_le32(out, nsec);
    put_le32(out, rec.cap_len);
    put_le32(out, rec.wire_len);
    out.write(reinterpret_cast<const char*>(rec.data.data()), rec.cap_len);
  }
  out.close();
  if (out.fail()) throw std::runtime_error("write_pcap: write failure " + path);
}

Trace read_pcap(const std::string& path, telemetry::Registry* registry) {
  telemetry::Counter* m_records = telemetry::get_counter(
      registry, "rloop_pcap_records_total", {},
      "pcap records read into the trace");
  telemetry::Counter* m_skipped_short = telemetry::get_counter(
      registry, "rloop_pcap_records_skipped_total",
      {{"reason", "short_ethernet"}}, "pcap records skipped while reading");
  telemetry::Counter* m_skipped_non_ipv4 = telemetry::get_counter(
      registry, "rloop_pcap_records_skipped_total", {{"reason", "non_ipv4"}},
      "pcap records skipped while reading");
  telemetry::Counter* m_truncated = telemetry::get_counter(
      registry, "rloop_pcap_truncated_records_total", {},
      "pcap records dropped because the capture ended mid-record");

  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_pcap: cannot open " + path);

  std::array<unsigned char, kFileHeaderSize> fh{};
  if (read_full(in, reinterpret_cast<char*>(fh.data()), fh.size()) !=
      static_cast<std::streamsize>(fh.size())) {
    throw std::runtime_error("read_pcap: truncated file header");
  }

  const std::uint32_t magic_le = get_u32(fh.data(), /*swapped=*/false);
  const std::uint32_t magic_be = get_u32(fh.data(), /*swapped=*/true);
  bool swapped = false;
  bool nanos = false;
  if (magic_le == kPcapMagicMicros) {
    nanos = false;
  } else if (magic_le == kPcapMagicNanos) {
    nanos = true;
  } else if (magic_be == kPcapMagicMicros) {
    swapped = true;
  } else if (magic_be == kPcapMagicNanos) {
    swapped = true;
    nanos = true;
  } else {
    throw std::runtime_error("read_pcap: bad magic in " + path);
  }

  const std::uint32_t linktype = get_u32(fh.data() + 20, swapped);
  if (linktype != kLinktypeRaw && linktype != kLinktypeEthernet) {
    throw std::runtime_error("read_pcap: unsupported linktype " +
                             std::to_string(linktype));
  }

  Trace trace("pcap:" + path, 0);
  bool have_epoch = false;
  TimeNs last_ts = 0;
  std::vector<unsigned char> buf;
  std::array<unsigned char, kRecordHeaderSize> rh{};

  for (;;) {
    const std::streamsize header_got =
        read_full(in, reinterpret_cast<char*>(rh.data()), rh.size());
    if (header_got == 0) break;  // clean end of capture
    if (header_got < static_cast<std::streamsize>(rh.size())) {
      // A partial record header at EOF is the same truncation case as a
      // partial body: count it rather than silently treating it as a clean
      // end.
      telemetry::inc(m_truncated);
      break;
    }
    // Injected read failure: the capture "ends" here mid-record.
    if (RLOOP_FAILPOINT("pcap.read")) {
      telemetry::inc(m_truncated);
      break;
    }
    const std::uint32_t sec = get_u32(rh.data(), swapped);
    const std::uint32_t frac = get_u32(rh.data() + 4, swapped);
    const std::uint32_t cap_len = get_u32(rh.data() + 8, swapped);
    const std::uint32_t wire_len = get_u32(rh.data() + 12, swapped);
    if (cap_len > (1u << 20)) {
      throw std::runtime_error("read_pcap: implausible record length");
    }
    buf.resize(cap_len);
    if (read_full(in, reinterpret_cast<char*>(buf.data()), cap_len) !=
        static_cast<std::streamsize>(cap_len)) {
      // The capture ends mid-record (killed tcpdump, full disk): keep what
      // was read and count the remnant instead of failing the whole trace.
      telemetry::inc(m_truncated);
      break;
    }

    if (!have_epoch) {
      trace.set_epoch_unix_s(static_cast<std::int64_t>(sec));
      have_epoch = true;
    }
    const std::int64_t frac_ns = nanos ? frac : std::int64_t{frac} * 1000;
    TimeNs ts = (static_cast<std::int64_t>(sec) - trace.epoch_unix_s()) *
                    kSecond +
                frac_ns;
    // Tolerate mild reordering in foreign captures: the in-memory trace is
    // timestamp-ordered by contract.
    if (ts < last_ts) ts = last_ts;
    last_ts = ts;

    const unsigned char* pkt = buf.data();
    std::size_t pkt_len = buf.size();
    std::uint32_t pkt_wire_len = wire_len;
    if (linktype == kLinktypeEthernet) {
      if (pkt_len < kEthernetHeaderSize) {
        telemetry::inc(m_skipped_short);
        continue;
      }
      if (get_u16be(pkt + 12) != kEtherTypeIpv4) {
        telemetry::inc(m_skipped_non_ipv4);
        continue;
      }
      pkt += kEthernetHeaderSize;
      pkt_len -= kEthernetHeaderSize;
      pkt_wire_len = pkt_wire_len >= kEthernetHeaderSize
                         ? pkt_wire_len - kEthernetHeaderSize
                         : 0;
    }
    telemetry::inc(m_records);
    trace.add(ts,
              std::span<const std::byte>(
                  reinterpret_cast<const std::byte*>(pkt), pkt_len),
              pkt_wire_len);
  }
  return trace;
}

}  // namespace rloop::net
