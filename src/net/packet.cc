#include "net/packet.h"

#include <array>
#include <stdexcept>

#include "net/checksum.h"

namespace rloop::net {

std::optional<std::uint16_t> ParsedPacket::transport_checksum() const {
  if (const auto* t = tcp()) return t->checksum;
  if (const auto* u = udp()) return u->checksum;
  if (const auto* i = icmp()) return i->checksum;
  return std::nullopt;
}

std::optional<ParsedPacket> parse_packet(std::span<const std::byte> buf) {
  std::size_t ip_header_length = 0;
  auto ip = Ipv4Header::parse(buf, &ip_header_length);
  if (!ip) return std::nullopt;

  ParsedPacket pkt;
  pkt.ip = *ip;

  // A non-first fragment carries no transport header.
  if (ip->fragment_offset != 0) return pkt;

  const auto rest = buf.subspan(std::min(ip_header_length, buf.size()));
  switch (static_cast<IpProto>(ip->protocol)) {
    case IpProto::tcp:
      if (auto t = TcpHeader::parse(rest)) pkt.transport = *t;
      break;
    case IpProto::udp:
      if (auto u = UdpHeader::parse(rest)) pkt.transport = *u;
      break;
    case IpProto::icmp:
      if (auto i = IcmpHeader::parse(rest)) pkt.transport = *i;
      break;
    default:
      break;
  }
  return pkt;
}

std::size_t serialize_packet(const ParsedPacket& pkt, std::span<std::byte> out) {
  std::size_t transport_size = 0;
  if (pkt.tcp()) transport_size = kTcpHeaderSize;
  else if (pkt.udp()) transport_size = kUdpHeaderSize;
  else if (pkt.icmp()) transport_size = kIcmpHeaderSize;

  const std::size_t total = kIpv4HeaderSize + transport_size;
  if (out.size() < total) {
    throw std::invalid_argument("serialize_packet: output buffer too small");
  }
  pkt.ip.serialize(out);
  auto rest = out.subspan(kIpv4HeaderSize);
  if (const auto* t = pkt.tcp()) t->serialize(rest);
  else if (const auto* u = pkt.udp()) u->serialize(rest);
  else if (const auto* i = pkt.icmp()) i->serialize(rest);
  return total;
}

namespace {

// Computes the checksum of a transport header plus `payload_len` zero bytes,
// seeded with the IPv4 pseudo-header.
template <typename Header>
std::uint16_t transport_checksum_of(const Ipv4Header& ip, const Header& header,
                                    std::size_t header_size,
                                    std::uint16_t payload_len) {
  std::array<std::byte, kTcpHeaderSize> buf{};
  Header copy = header;
  copy.checksum = 0;
  copy.serialize(buf);
  const auto transport_len =
      static_cast<std::uint16_t>(header_size + payload_len);
  std::uint32_t sum =
      pseudo_header_sum(ip.src.value, ip.dst.value, ip.protocol, transport_len);
  sum = ones_complement_sum(std::span<const std::byte>(buf.data(), header_size),
                            sum);
  // Zero payload contributes nothing to the sum.
  std::uint16_t checksum = fold_checksum(sum);
  // Per RFC 768 a computed UDP checksum of 0 is transmitted as 0xffff.
  if (checksum == 0) checksum = 0xffff;
  return checksum;
}

// ICMP checksums do not include a pseudo-header (RFC 792).
std::uint16_t icmp_checksum_of(const IcmpHeader& header) {
  std::array<std::byte, kIcmpHeaderSize> buf{};
  IcmpHeader copy = header;
  copy.checksum = 0;
  copy.serialize(buf);
  return internet_checksum(buf);
}

Ipv4Header base_ip_header(Ipv4Addr src, Ipv4Addr dst, IpProto proto,
                          std::uint16_t payload_and_transport,
                          std::uint8_t ttl, std::uint16_t ip_id) {
  Ipv4Header ip;
  ip.src = src;
  ip.dst = dst;
  ip.protocol = static_cast<std::uint8_t>(proto);
  ip.total_length =
      static_cast<std::uint16_t>(kIpv4HeaderSize + payload_and_transport);
  ip.ttl = ttl;
  ip.id = ip_id;
  ip.dont_fragment = true;
  ip.checksum = ip.compute_checksum();
  return ip;
}

}  // namespace

void finalize_transport_checksum(ParsedPacket& pkt) {
  const std::size_t transport_and_payload =
      pkt.ip.total_length > kIpv4HeaderSize
          ? pkt.ip.total_length - kIpv4HeaderSize
          : 0;
  if (auto* t = std::get_if<TcpHeader>(&pkt.transport)) {
    const auto payload = static_cast<std::uint16_t>(
        transport_and_payload > kTcpHeaderSize
            ? transport_and_payload - kTcpHeaderSize
            : 0);
    t->checksum = transport_checksum_of(pkt.ip, *t, kTcpHeaderSize, payload);
  } else if (auto* u = std::get_if<UdpHeader>(&pkt.transport)) {
    const auto payload = static_cast<std::uint16_t>(
        transport_and_payload > kUdpHeaderSize
            ? transport_and_payload - kUdpHeaderSize
            : 0);
    u->length = static_cast<std::uint16_t>(kUdpHeaderSize + payload);
    u->checksum = transport_checksum_of(pkt.ip, *u, kUdpHeaderSize, payload);
  } else if (auto* i = std::get_if<IcmpHeader>(&pkt.transport)) {
    i->checksum = icmp_checksum_of(*i);
  }
}

ParsedPacket make_tcp_packet(Ipv4Addr src, Ipv4Addr dst, std::uint16_t src_port,
                             std::uint16_t dst_port, std::uint32_t seq,
                             std::uint32_t ack, std::uint8_t flags,
                             std::uint16_t payload_len, std::uint8_t ttl,
                             std::uint16_t ip_id) {
  ParsedPacket pkt;
  pkt.ip = base_ip_header(src, dst, IpProto::tcp,
                          static_cast<std::uint16_t>(kTcpHeaderSize + payload_len),
                          ttl, ip_id);
  TcpHeader t;
  t.src_port = src_port;
  t.dst_port = dst_port;
  t.seq = seq;
  t.ack = ack;
  t.flags = flags;
  t.window = 65535;
  pkt.transport = t;
  finalize_transport_checksum(pkt);
  return pkt;
}

ParsedPacket make_udp_packet(Ipv4Addr src, Ipv4Addr dst, std::uint16_t src_port,
                             std::uint16_t dst_port, std::uint16_t payload_len,
                             std::uint8_t ttl, std::uint16_t ip_id) {
  ParsedPacket pkt;
  pkt.ip = base_ip_header(src, dst, IpProto::udp,
                          static_cast<std::uint16_t>(kUdpHeaderSize + payload_len),
                          ttl, ip_id);
  UdpHeader u;
  u.src_port = src_port;
  u.dst_port = dst_port;
  pkt.transport = u;
  finalize_transport_checksum(pkt);
  return pkt;
}

ParsedPacket make_icmp_packet(Ipv4Addr src, Ipv4Addr dst, IcmpType type,
                              std::uint8_t code, std::uint32_t rest,
                              std::uint16_t payload_len, std::uint8_t ttl,
                              std::uint16_t ip_id) {
  ParsedPacket pkt;
  pkt.ip = base_ip_header(src, dst, IpProto::icmp,
                          static_cast<std::uint16_t>(kIcmpHeaderSize + payload_len),
                          ttl, ip_id);
  IcmpHeader i;
  i.type = static_cast<std::uint8_t>(type);
  i.code = code;
  i.rest = rest;
  pkt.transport = i;
  finalize_transport_checksum(pkt);
  return pkt;
}

}  // namespace rloop::net
