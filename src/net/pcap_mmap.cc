#include "net/pcap_mmap.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "net/pcap.h"
#include "util/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#define RLOOP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace rloop::net {

namespace {

constexpr std::size_t kFileHeaderSize = 24;
constexpr std::size_t kRecordHeaderSize = 16;
constexpr std::size_t kEthernetHeaderSize = 14;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

std::uint32_t get_u32(const std::byte* p, bool swapped) {
  const auto b = [p](std::size_t i) {
    return std::uint32_t{std::to_integer<std::uint8_t>(p[i])};
  };
  if (swapped) return (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

std::uint16_t get_u16be(const std::byte* p) {
  return static_cast<std::uint16_t>(
      (std::uint16_t{std::to_integer<std::uint8_t>(p[0])} << 8) |
      std::uint16_t{std::to_integer<std::uint8_t>(p[1])});
}

}  // namespace

void (*pcap_mmap_test_hook)() = nullptr;

Trace parse_pcap_buffer(std::span<const std::byte> data,
                        const std::string& source_name,
                        telemetry::Registry* registry) {
  telemetry::Counter* m_records = telemetry::get_counter(
      registry, "rloop_pcap_records_total", {},
      "pcap records read into the trace");
  telemetry::Counter* m_skipped_short = telemetry::get_counter(
      registry, "rloop_pcap_records_skipped_total",
      {{"reason", "short_ethernet"}}, "pcap records skipped while reading");
  telemetry::Counter* m_skipped_non_ipv4 = telemetry::get_counter(
      registry, "rloop_pcap_records_skipped_total", {{"reason", "non_ipv4"}},
      "pcap records skipped while reading");
  telemetry::Counter* m_truncated = telemetry::get_counter(
      registry, "rloop_pcap_truncated_records_total", {},
      "pcap records dropped because the capture ended mid-record");

  if (data.size() < kFileHeaderSize) {
    throw std::runtime_error("read_pcap: truncated file header");
  }
  const std::byte* fh = data.data();

  const std::uint32_t magic_le = get_u32(fh, /*swapped=*/false);
  const std::uint32_t magic_be = get_u32(fh, /*swapped=*/true);
  bool swapped = false;
  bool nanos = false;
  if (magic_le == kPcapMagicMicros) {
    nanos = false;
  } else if (magic_le == kPcapMagicNanos) {
    nanos = true;
  } else if (magic_be == kPcapMagicMicros) {
    swapped = true;
  } else if (magic_be == kPcapMagicNanos) {
    swapped = true;
    nanos = true;
  } else {
    throw std::runtime_error("read_pcap: bad magic in " + source_name);
  }

  const std::uint32_t linktype = get_u32(fh + 20, swapped);
  if (linktype != kLinktypeRaw && linktype != kLinktypeEthernet) {
    throw std::runtime_error("read_pcap: unsupported linktype " +
                             std::to_string(linktype));
  }

  Trace trace(source_name, 0);
  bool have_epoch = false;
  TimeNs last_ts = 0;
  std::size_t off = kFileHeaderSize;

  while (off < data.size()) {
    if (data.size() - off < kRecordHeaderSize) {
      // The capture ends mid-header (killed tcpdump, full disk): keep what
      // was read and count the remnant instead of failing the whole trace.
      telemetry::inc(m_truncated);
      break;
    }
    const std::byte* rh = data.data() + off;
    const std::uint32_t sec = get_u32(rh, swapped);
    const std::uint32_t frac = get_u32(rh + 4, swapped);
    const std::uint32_t cap_len = get_u32(rh + 8, swapped);
    const std::uint32_t wire_len = get_u32(rh + 12, swapped);
    if (cap_len > (1u << 20)) {
      throw std::runtime_error("read_pcap: implausible record length");
    }
    off += kRecordHeaderSize;
    if (data.size() - off < cap_len) {
      telemetry::inc(m_truncated);
      break;
    }
    const std::byte* pkt = data.data() + off;
    std::size_t pkt_len = cap_len;
    off += cap_len;

    if (!have_epoch) {
      trace.set_epoch_unix_s(static_cast<std::int64_t>(sec));
      have_epoch = true;
    }
    const std::int64_t frac_ns = nanos ? frac : std::int64_t{frac} * 1000;
    TimeNs ts = (static_cast<std::int64_t>(sec) - trace.epoch_unix_s()) *
                    kSecond +
                frac_ns;
    // Tolerate mild reordering in foreign captures: the in-memory trace is
    // timestamp-ordered by contract.
    if (ts < last_ts) ts = last_ts;
    last_ts = ts;

    std::uint32_t pkt_wire_len = wire_len;
    if (linktype == kLinktypeEthernet) {
      if (pkt_len < kEthernetHeaderSize) {
        telemetry::inc(m_skipped_short);
        continue;
      }
      if (get_u16be(pkt + 12) != kEtherTypeIpv4) {
        telemetry::inc(m_skipped_non_ipv4);
        continue;
      }
      pkt += kEthernetHeaderSize;
      pkt_len -= kEthernetHeaderSize;
      pkt_wire_len = pkt_wire_len >= kEthernetHeaderSize
                         ? pkt_wire_len - kEthernetHeaderSize
                         : 0;
    }
    telemetry::inc(m_records);
    trace.add(ts, std::span<const std::byte>(pkt, pkt_len), pkt_wire_len);
  }
  return trace;
}

#if defined(RLOOP_HAVE_MMAP)

std::optional<Trace> read_pcap_mmap(const std::string& path,
                                    telemetry::Registry* registry) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("read_pcap: cannot open " + path);

  // Injected mmap failure: report the path unavailable so the caller takes
  // the ifstream fallback, exactly like a real mmap refusal.
  if (RLOOP_FAILPOINT("pcap.mmap")) {
    ::close(fd);
    return std::nullopt;
  }

  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return std::nullopt;  // pipe/socket/device: fall back to streaming
  }
  if (st.st_size == 0) {
    ::close(fd);
    throw std::runtime_error("read_pcap: truncated file header");
  }

  const auto size = static_cast<std::size_t>(st.st_size);
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map == MAP_FAILED) {
    ::close(fd);
    return std::nullopt;
  }
#if defined(MADV_SEQUENTIAL)
  ::madvise(map, size, MADV_SEQUENTIAL);
#endif

  if (pcap_mmap_test_hook) pcap_mmap_test_hook();

  // A writer may have truncated the file between open and here (rotating
  // capture tooling does exactly this). Pages past the new EOF are no
  // longer backed — touching them raises SIGBUS, not a read error — so
  // re-check the size while the fd is still open and parse only the span
  // the file still covers; the parser then counts the cut as an ordinary
  // truncated record instead of the process dying mid-read.
  std::size_t effective = size;
  struct stat st2{};
  if (::fstat(fd, &st2) == 0 && S_ISREG(st2.st_mode)) {
    effective = std::min(size, static_cast<std::size_t>(st2.st_size));
  }
  ::close(fd);  // the mapping keeps the file alive

  try {
    Trace trace = parse_pcap_buffer(
        std::span<const std::byte>(static_cast<const std::byte*>(map),
                                   effective),
        "pcap:" + path, registry);
    ::munmap(map, size);
    return trace;
  } catch (...) {
    ::munmap(map, size);
    throw;
  }
}

#else  // !RLOOP_HAVE_MMAP

std::optional<Trace> read_pcap_mmap(const std::string&,
                                    telemetry::Registry*) {
  return std::nullopt;
}

#endif

Trace read_pcap_fast(const std::string& path, telemetry::Registry* registry) {
  if (auto trace = read_pcap_mmap(path, registry)) {
    return *std::move(trace);
  }
  return read_pcap(path, registry);
}

}  // namespace rloop::net
