// Time representation shared across the library.
//
// All timestamps are signed 64-bit nanoseconds. Trace timestamps are relative
// to the trace epoch (a UNIX-seconds base stored in Trace metadata), which
// keeps arithmetic exact and deterministic across platforms.
#pragma once

#include <cstdint>

namespace rloop::net {

using TimeNs = std::int64_t;

inline constexpr TimeNs kMicrosecond = 1'000;
inline constexpr TimeNs kMillisecond = 1'000'000;
inline constexpr TimeNs kSecond = 1'000'000'000;
inline constexpr TimeNs kMinute = 60 * kSecond;

inline constexpr double to_seconds(TimeNs t) {
  return static_cast<double>(t) / 1e9;
}
inline constexpr double to_millis(TimeNs t) {
  return static_cast<double>(t) / 1e6;
}
inline constexpr TimeNs from_seconds(double s) {
  return static_cast<TimeNs>(s * 1e9);
}
inline constexpr TimeNs from_millis(double ms) {
  return static_cast<TimeNs>(ms * 1e6);
}

}  // namespace rloop::net
