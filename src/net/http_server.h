// A small, dependency-free embedded HTTP/1.1 server for the daemon's
// observability plane.
//
// Deliberately minimal: GET/HEAD only, no keep-alive (every response closes
// the connection), no TLS, no chunked requests. What it does do, it does
// defensively, because the listener shares a process with a detector that
// must not die:
//
//   * bounded request size — header bytes beyond `max_request_bytes` get a
//     431 and a closed socket, never an unbounded buffer;
//   * a hard header deadline — a slowloris client dripping one byte per
//     second is cut off `header_deadline_ms` after connect, enforced with
//     poll() so a stalled read cannot pin a thread forever;
//   * a connection cap — accept beyond `max_connections` answers 503
//     immediately instead of spawning unbounded threads;
//   * MSG_NOSIGNAL writes — a scraper that disconnects mid-response must
//     not SIGPIPE the daemon.
//
// Threading model: one blocking accept thread plus one short-lived thread
// per connection (request -> response -> close). That is the simplest model
// that lets a long-lived SSE stream (`handle_stream`) coexist with
// concurrent /metrics scrapes, and at an observability plane's request
// rates (single-digit Hz) thread churn is noise. Handlers run on
// connection threads — they must only touch thread-safe state (the
// telemetry registry, the daemon's snapshot hub).
//
// stop() closes the listen socket, shuts down every open connection, and
// joins all threads; it is safe to call from the main thread during a
// SIGTERM drain while clients are mid-request.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace rloop::net {

struct HttpRequest {
  std::string method;  // "GET" / "HEAD"
  std::string path;    // "/metrics" (query string stripped)
  std::string query;   // "a=b&c=d" (without the '?'), may be empty
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// Write side of a streaming (SSE) connection, handed to a StreamHandler.
// write() returns false when the client disconnected or the server is
// stopping — the handler must return promptly once that happens.
class HttpStreamWriter {
 public:
  virtual ~HttpStreamWriter() = default;
  virtual bool write(const std::string& data) = 0;
  virtual bool alive() const = 0;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  // Long-lived connection handler (e.g. an SSE event stream). The response
  // header (200, `content_type`) is written before the handler runs; the
  // connection closes when the handler returns.
  using StreamHandler =
      std::function<void(const HttpRequest&, HttpStreamWriter&)>;

  struct Options {
    std::string bind_address = "127.0.0.1";  // observability stays local by
                                             // default; bind 0.0.0.0 on your
                                             // own authority
    int port = 0;                       // 0 = ephemeral, see port()
    int max_connections = 16;           // concurrent; beyond this -> 503
    std::size_t max_request_bytes = 8192;  // request line + headers
    int header_deadline_ms = 2000;      // connect -> complete header
  };

  explicit HttpServer(Options options);
  ~HttpServer();  // calls stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Exact-path handlers (no prefix matching). Register before start().
  void handle(const std::string& path, Handler handler);
  void handle_stream(const std::string& path, std::string content_type,
                     StreamHandler handler);

  // Binds, listens, and starts the accept thread. False + *error on any
  // socket failure (port in use, permission).
  bool start(std::string* error);

  // Idempotent. Closes the listener, aborts in-flight connections, joins
  // every thread. After stop() the server cannot be restarted.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // Actual bound port (resolves an ephemeral request); 0 before start().
  int port() const { return port_; }

  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  // Connections rejected by the max_connections cap (503).
  std::uint64_t rejected_overload() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  // Requests dropped for protocol reasons (oversized, malformed, timeout).
  std::uint64_t bad_requests() const {
    return bad_requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Route {
    Handler handler;                  // exactly one of handler/stream set
    StreamHandler stream;
    std::string stream_content_type;
  };

  void accept_loop();
  void serve_connection(int fd);
  void reap_finished_threads();

  Options options_;
  std::map<std::string, Route> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
};

// Minimal blocking HTTP GET against 127.0.0.1:`port` (the test/bench/smoke
// client; also usable against any plain-HTTP host). Fills `status`, headers
// are discarded, `body` receives the full response body (the connection is
// read to EOF — the server side always closes). Returns false on connect/
// timeout/protocol failure with a message in *error.
bool http_get(int port, const std::string& path, int* status,
              std::string* body, std::string* error,
              int timeout_ms = 5000, const std::string& host = "127.0.0.1");

}  // namespace rloop::net
