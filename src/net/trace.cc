#include "net/trace.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace rloop::net {

void Trace::add(TimeNs ts, std::span<const std::byte> packet_bytes,
                std::uint32_t wire_len) {
  if (!records_.empty() && ts < records_.back().ts) {
    throw std::invalid_argument("Trace::add: timestamps must be non-decreasing");
  }
  TraceRecord rec;
  rec.ts = ts;
  rec.wire_len = wire_len;
  rec.cap_len = static_cast<std::uint8_t>(std::min(packet_bytes.size(), kSnapLen));
  std::copy_n(packet_bytes.begin(), rec.cap_len, rec.data.begin());
  total_wire_bytes_ += wire_len;
  records_.push_back(rec);
}

void Trace::add(TimeNs ts, const ParsedPacket& pkt, std::uint32_t wire_len) {
  std::array<std::byte, kMaxHeaderBytes> buf{};
  const std::size_t n = serialize_packet(pkt, buf);
  add(ts, std::span<const std::byte>(buf.data(), n), wire_len);
}

TimeNs Trace::duration() const {
  if (records_.size() < 2) return 0;
  return records_.back().ts - records_.front().ts;
}

double Trace::average_bandwidth_mbps() const {
  const TimeNs d = duration();
  if (d <= 0) return 0.0;
  return static_cast<double>(total_wire_bytes_) * 8.0 / to_seconds(d) / 1e6;
}

Trace sample_trace(const Trace& trace, double keep_prob, std::uint64_t seed) {
  if (keep_prob < 0.0 || keep_prob > 1.0) {
    throw std::invalid_argument("sample_trace: keep_prob outside [0,1]");
  }
  Trace out(trace.link_name() + " (sampled)", trace.epoch_unix_s());
  // Inline splitmix64 stream: one draw per record, no util dependency.
  std::uint64_t state = seed;
  auto next = [&state]() {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  // keep_prob == 1.0 would overflow the uint64 cast (2^64); handle exactly.
  const std::uint64_t threshold =
      keep_prob >= 1.0
          ? std::numeric_limits<std::uint64_t>::max()
          : static_cast<std::uint64_t>(keep_prob * 18446744073709551616.0);
  for (const auto& rec : trace.records()) {
    const std::uint64_t draw = next();
    const bool keep = keep_prob >= 1.0 || draw < threshold;
    if (keep) {
      out.add(rec.ts, rec.bytes(), rec.wire_len);
    }
  }
  return out;
}

}  // namespace rloop::net
