// Prefix-preserving trace anonymization.
//
// Traces like the paper's cannot be shared with raw customer addresses.
// The standard remedy (Crypto-PAn-style) maps addresses bit by bit so that
// two addresses sharing a k-bit prefix map to addresses sharing exactly a
// k-bit prefix — which preserves everything the loop detector relies on:
// replica identity (all replicas of a packet share addresses), /24
// aggregation, and longest-prefix structure.
//
// This implementation derives each flip bit from a keyed 64-bit mixer over
// the address prefix (a simplified, dependency-free stand-in for the AES
// PRF of Crypto-PAn; same structure, not cryptographic strength).
#pragma once

#include <cstdint>

#include "net/ipv4.h"
#include "net/trace.h"

namespace rloop::net {

class Anonymizer {
 public:
  explicit Anonymizer(std::uint64_t key) : key_(key) {}

  // Deterministic, prefix-preserving address mapping.
  Ipv4Addr map(Ipv4Addr addr) const;

  // Returns a copy of `trace` with every parseable record's source and
  // destination rewritten and the IP header checksum fixed up. Transport
  // checksums are left untouched (they cover the pseudo-header, which can
  // no longer be validated after anonymization; leaving them unchanged
  // keeps replica identity intact, since replicas share addresses).
  // Records whose IP header cannot be parsed are copied verbatim.
  Trace anonymize(const Trace& trace) const;

 private:
  std::uint64_t key_;
};

}  // namespace rloop::net
