#include "net/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace rloop::net {

namespace {

using Clock = std::chrono::steady_clock;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

// send() the whole buffer; MSG_NOSIGNAL so a vanished client surfaces as
// EPIPE instead of killing the process. Interrupted sends retry.
bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool send_all(int fd, const std::string& s) {
  return send_all(fd, s.data(), s.size());
}

// Half-close, then discard the client's unread bytes until its FIN (or a
// bounded deadline). close()ing a socket whose receive buffer still holds
// data makes the kernel answer with RST, and an RST racing the just-sent
// response destroys it before the client reads it — the over-cap 503 path
// always has the client's whole request unread, so a bare close there loses
// the 503 intermittently. FIN first, drain, and the eventual close() is
// quiet. A stop()-side shutdown(SHUT_RD) ends the drain early via EOF.
void fin_and_drain(int fd, int timeout_ms = 500) {
  ::shutdown(fd, SHUT_WR);
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  char sink[1024];
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                               deadline - Clock::now())
                               .count();
    if (remaining <= 0) break;
    struct pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (pr < 0 && errno == EINTR) continue;
    if (pr <= 0) break;
    const ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
  }
}

std::string render_response(const HttpResponse& r, bool head_only) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                    status_text(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += r.body;
  return out;
}

// Reads from `fd` until a blank line ends the header block, `max_bytes` is
// exceeded, or `deadline` passes. Returns the accumulated bytes; *status
// receives 0 on success or the HTTP error to answer with.
std::string read_header(int fd, std::size_t max_bytes,
                        Clock::time_point deadline, int* status) {
  std::string buf;
  char chunk[1024];
  *status = 0;
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                               deadline - Clock::now())
                               .count();
    if (remaining <= 0) {
      *status = 408;
      return buf;
    }
    struct pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (pr < 0 && errno == EINTR) continue;
    if (pr <= 0) {
      *status = 408;
      return buf;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      *status = 400;  // client closed before finishing the header
      return buf;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.find("\r\n\r\n") != std::string::npos ||
        buf.find("\n\n") != std::string::npos) {
      return buf;
    }
    if (buf.size() > max_bytes) {
      *status = 431;
      return buf;
    }
  }
}

// First request line -> (method, path, query). False on malformed input.
bool parse_request_line(const std::string& header, HttpRequest& out) {
  const std::size_t eol = header.find_first_of("\r\n");
  const std::string line =
      header.substr(0, eol == std::string::npos ? header.size() : eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) return false;
  const std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) return false;
  out.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t q = target.find('?');
  if (q != std::string::npos) {
    out.query = target.substr(q + 1);
    target.resize(q);
  }
  if (target.empty() || target[0] != '/') return false;
  out.path = std::move(target);
  return true;
}

class FdStreamWriter : public HttpStreamWriter {
 public:
  FdStreamWriter(int fd, const std::atomic<bool>& stopping)
      : fd_(fd), stopping_(stopping) {}

  bool write(const std::string& data) override {
    if (!alive_ || stopping_.load(std::memory_order_relaxed)) return false;
    if (!send_all(fd_, data)) alive_ = false;
    return alive_;
  }

  bool alive() const override {
    if (stopping_.load(std::memory_order_relaxed)) return false;
    if (!alive_) return false;
    // A disconnected SSE client shows up as readable-with-EOF (or error):
    // the server never expects request bytes mid-stream, so anything
    // readable here means the peer is gone or misbehaving — either way the
    // stream ends.
    struct pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 0);
    if (pr > 0 && (pfd.revents & (POLLIN | POLLERR | POLLHUP))) {
      char probe[64];
      const ssize_t n = ::recv(fd_, probe, sizeof(probe), MSG_DONTWAIT);
      if (n == 0) {
        alive_ = false;  // clean EOF: the peer closed
      } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR) {
        alive_ = false;
      }
    }
    return alive_;
  }

 private:
  int fd_;
  const std::atomic<bool>& stopping_;
  mutable bool alive_ = true;
};

}  // namespace

HttpServer::HttpServer(Options options) : options_(std::move(options)) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(const std::string& path, Handler handler) {
  Route route;
  route.handler = std::move(handler);
  routes_[path] = std::move(route);
}

void HttpServer::handle_stream(const std::string& path,
                               std::string content_type,
                               StreamHandler handler) {
  Route route;
  route.stream = std::move(handler);
  route.stream_content_type = std::move(content_type);
  routes_[path] = std::move(route);
}

bool HttpServer::start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error) *error = "http: " + what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    errno = EINVAL;
    return fail("bad bind address '" + options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail("bind " + options_.bind_address + ":" +
                std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 64) < 0) return fail("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    // shutdown() unblocks a blocked accept(); close() follows in the accept
    // thread's epilogue via this path being the only closer.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Abort in-flight connections: shutdown unblocks their reads/writes (and
  // flips stream writers dead); the threads then exit and are joined. fds
  // stay open until after the join so the numbers cannot be reused under a
  // racing thread.
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(connections_);
  }
  for (auto& c : conns) {
    if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
  }
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
    if (c->fd >= 0) ::close(c->fd);
  }
  running_.store(false, std::memory_order_release);
}

void HttpServer::reap_finished_threads() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      if ((*it)->fd >= 0) ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (stop()) or unrecoverable
    }
    reap_finished_threads();
    std::size_t active;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      active = connections_.size();
    }
    if (active >= static_cast<std::size_t>(options_.max_connections)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse overload;
      overload.status = 503;
      overload.body = "too many connections\n";
      send_all(fd, render_response(overload, false));
      fin_and_drain(fd);
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] {
      serve_connection(raw->fd);
      // FIN now (every response is Connection: close and clients read to
      // EOF), then drain leftover request bytes so the close at reap/stop
      // time cannot turn into an RST. The fd itself is closed only at
      // reap/stop so the number is not reused while this entry is tracked.
      fin_and_drain(raw->fd);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void HttpServer::serve_connection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Bound response writes too: a client that stops reading cannot pin a
  // connection thread past this.
  struct timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.header_deadline_ms);
  int err = 0;
  const std::string header =
      read_header(fd, options_.max_request_bytes, deadline, &err);

  HttpRequest request;
  if (err == 0 && !parse_request_line(header, request)) err = 400;
  if (err != 0) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse bad;
    bad.status = err;
    bad.body = std::string(status_text(err)) + "\n";
    send_all(fd, render_response(bad, false));
    return;
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  const bool head_only = request.method == "HEAD";
  if (request.method != "GET" && request.method != "HEAD") {
    HttpResponse resp;
    resp.status = 405;
    resp.body = "only GET and HEAD are supported\n";
    send_all(fd, render_response(resp, false));
    return;
  }

  const auto it = routes_.find(request.path);
  if (it == routes_.end()) {
    HttpResponse resp;
    resp.status = 404;
    resp.body = "not found\n";
    send_all(fd, render_response(resp, head_only));
    return;
  }

  const Route& route = it->second;
  if (route.stream) {
    const std::string head = "HTTP/1.1 200 OK\r\nContent-Type: " +
                             route.stream_content_type +
                             "\r\nCache-Control: no-cache\r\n"
                             "Connection: close\r\n\r\n";
    if (!send_all(fd, head) || head_only) return;
    FdStreamWriter writer(fd, stopping_);
    route.stream(request, writer);
    return;
  }

  HttpResponse resp = route.handler(request);
  send_all(fd, render_response(resp, head_only));
}

bool http_get(int port, const std::string& path, int* status,
              std::string* body, std::string* error, int timeout_ms,
              const std::string& host) {
  auto fail = [&](int fd, const std::string& what) {
    if (error) *error = "http_get " + path + ": " + what;
    if (fd >= 0) ::close(fd);
    return false;
  };
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return fail(fd, std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return fail(fd, "bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return fail(fd, std::string("connect: ") + std::strerror(errno));
  }

  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, request)) return fail(fd, "send failed");

  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::string response;
  char chunk[4096];
  for (;;) {
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                              Clock::now())
            .count();
    if (remaining <= 0) return fail(fd, "timeout");
    struct pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (pr < 0 && errno == EINTR) continue;
    if (pr <= 0) return fail(fd, "timeout");
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return fail(fd, std::string("recv: ") + std::strerror(errno));
    if (n == 0) break;  // server closed: response complete
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  if (response.rfind("HTTP/1.", 0) != 0) {
    if (error) *error = "http_get " + path + ": malformed status line";
    return false;
  }
  const std::size_t sp = response.find(' ');
  if (sp == std::string::npos || sp + 4 > response.size()) {
    if (error) *error = "http_get " + path + ": malformed status line";
    return false;
  }
  if (status) *status = std::atoi(response.c_str() + sp + 1);
  std::size_t body_start = response.find("\r\n\r\n");
  if (body_start == std::string::npos) {
    body_start = response.find("\n\n");
    if (body_start != std::string::npos) body_start += 2;
  } else {
    body_start += 4;
  }
  if (body) {
    *body = body_start == std::string::npos ? "" : response.substr(body_start);
  }
  return true;
}

}  // namespace rloop::net
