// Big-endian (network byte order) read/write helpers over byte buffers.
//
// All multi-byte fields in IP/TCP/UDP/ICMP headers are big-endian on the
// wire; in-memory structs keep host-order integers and go through these
// helpers at (de)serialization boundaries only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace rloop::net {

inline std::uint8_t read_u8(std::span<const std::byte> buf, std::size_t off) {
  return static_cast<std::uint8_t>(buf[off]);
}

inline std::uint16_t read_u16(std::span<const std::byte> buf, std::size_t off) {
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(buf[off]) << 8) |
      static_cast<std::uint16_t>(buf[off + 1]));
}

inline std::uint32_t read_u32(std::span<const std::byte> buf, std::size_t off) {
  return (static_cast<std::uint32_t>(buf[off]) << 24) |
         (static_cast<std::uint32_t>(buf[off + 1]) << 16) |
         (static_cast<std::uint32_t>(buf[off + 2]) << 8) |
         static_cast<std::uint32_t>(buf[off + 3]);
}

inline void write_u8(std::span<std::byte> buf, std::size_t off, std::uint8_t v) {
  buf[off] = static_cast<std::byte>(v);
}

inline void write_u16(std::span<std::byte> buf, std::size_t off, std::uint16_t v) {
  buf[off] = static_cast<std::byte>(v >> 8);
  buf[off + 1] = static_cast<std::byte>(v & 0xff);
}

inline void write_u32(std::span<std::byte> buf, std::size_t off, std::uint32_t v) {
  buf[off] = static_cast<std::byte>(v >> 24);
  buf[off + 1] = static_cast<std::byte>((v >> 16) & 0xff);
  buf[off + 2] = static_cast<std::byte>((v >> 8) & 0xff);
  buf[off + 3] = static_cast<std::byte>(v & 0xff);
}

}  // namespace rloop::net
