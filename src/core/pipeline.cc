#include "core/pipeline.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/detect_state.h"
#include "core/record_store.h"
#include "core/replica_key.h"
#include "core/stream_merger.h"
#include "core/stream_validator.h"
#include "telemetry/counter.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"
#include "util/simd.h"
#include "util/spsc_ring.h"
#include "util/thread_pool.h"

namespace rloop::core {

namespace {

// Records per epoch. Large enough that per-epoch synchronization (one ring
// push per worker per epoch) is noise against the per-record work; small
// enough that the driver's read-ahead (at most kRingDepth epochs per worker)
// keeps the hash/shard scratch it touches within cache reach of the workers
// consuming it.
constexpr std::size_t kEpochRecords = std::size_t{1} << 15;
constexpr std::size_t kRingDepth = 8;

telemetry::Histogram* stage_histogram(telemetry::Registry* registry,
                                      const char* stage) {
  return telemetry::get_histogram(
      registry, "rloop_pipeline_stage_latency_ns",
      telemetry::latency_bounds_ns(), {{"stage", stage}},
      "Wall-clock latency of one detection-pipeline stage per call");
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One epoch's work for one worker: the record indices (in trace order) whose
// shards that worker owns. Recycled through the worker's free ring; the
// index vector keeps its capacity across epochs and across runs.
struct EpochBatch {
  std::vector<std::uint32_t> indices;
};

// The SPSC pair between the driver and one worker. Batches cycle
// driver-pop(free) -> fill -> push(work) -> worker-pop(work) -> process ->
// push(free); with kRingDepth batches in circulation the work ring can never
// overflow, so both pushes are infallible, and an empty free ring is exactly
// the back-pressure that bounds the driver's read-ahead.
struct Lane {
  Lane() : work(kRingDepth), free(kRingDepth) {
    for (auto& b : storage) b = std::make_unique<EpochBatch>();
  }
  util::SpscRing<EpochBatch*> work;
  util::SpscRing<EpochBatch*> free;
  std::array<std::unique_ptr<EpochBatch>, kRingDepth> storage;
};

}  // namespace

struct PipelineWorkspace::Impl {
  // Pool identity: the pool is rebuilt only when the thread count or the
  // telemetry sinks change (they are baked into the workers at construction).
  unsigned pool_threads = 0;
  telemetry::Registry* pool_registry = nullptr;
  telemetry::TraceSink* pool_trace = nullptr;
  std::unique_ptr<util::ThreadPool> pool;

  RecordStore store;
  std::vector<std::uint64_t> hashes;      // replica_key_hash per record
  std::vector<std::uint32_t> shard_ids;   // mix64(hash) & (num_shards - 1)
  std::vector<EpochBatch*> claimed;       // driver's per-worker batch in hand

  std::vector<std::unique_ptr<Lane>> lanes;                 // one per worker
  std::vector<std::unique_ptr<detail::FlatDetectState>> states;  // per shard
  std::vector<std::vector<ReplicaStream>> shard_streams;
  std::vector<telemetry::Histogram*> detect_shard_hist;

  ValidatorScratch validator_scratch;
  MergerScratch merger_scratch;
};

PipelineWorkspace::PipelineWorkspace() : impl_(std::make_unique<Impl>()) {}
PipelineWorkspace::~PipelineWorkspace() = default;

LoopDetectionResult detect_loops_pipelined(const net::Trace& trace,
                                           const LoopDetectorConfig& config,
                                           PipelineWorkspace& workspace) {
  auto& ws = workspace.impl();
  telemetry::Registry* reg = config.registry;
  const unsigned num_threads = std::max(2u, config.parallel.num_threads);
  const unsigned num_workers = num_threads - 1;
  const unsigned num_shards = config.parallel.num_shards();
  const std::size_t n = trace.size();

  if (!ws.pool || ws.pool_threads != num_threads ||
      ws.pool_registry != reg || ws.pool_trace != config.trace) {
    ws.pool.reset();
    ws.pool =
        std::make_unique<util::ThreadPool>(num_threads, reg, config.trace);
    ws.pool_threads = num_threads;
    ws.pool_registry = reg;
    ws.pool_trace = config.trace;
  }

  LoopDetectionResult result;
  const telemetry::ScopedSpan root_span(config.trace, "detect_loops");

  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "detect"));
    const telemetry::ScopedSpan span(config.trace, "detect");

    // --- Workspace prep (all capacity-reusing once warm). -----------------
    ws.store.prepare(trace, n);
    ws.hashes.resize(n);
    ws.shard_ids.resize(n);
    result.records.resize(n);
    if (ws.lanes.size() != num_workers) {
      ws.lanes.clear();
      for (unsigned w = 0; w < num_workers; ++w) {
        ws.lanes.push_back(std::make_unique<Lane>());
      }
    }
    // Restore the all-batches-free invariant (an aborted previous run can
    // strand batches in a work ring).
    for (auto& lane : ws.lanes) {
      EpochBatch* b = nullptr;
      while (lane->work.try_pop(b)) {
      }
      while (lane->free.try_pop(b)) {
      }
      for (auto& owned : lane->storage) lane->free.try_push(owned.get());
    }
    ws.claimed.assign(num_workers, nullptr);

    ws.states.resize(num_shards);
    telemetry::Histogram* spacing = telemetry::get_histogram(
        reg, "rloop_detector_replica_spacing_ns",
        telemetry::spacing_bounds_ns(), {},
        "Spacing between successive replicas of one stream");
    for (auto& state : ws.states) {
      if (!state) state = std::make_unique<detail::FlatDetectState>();
      state->bind(config.detector, spacing, config.journal);
      state->reset();
    }
    ws.shard_streams.resize(num_shards);
    ws.detect_shard_hist.assign(num_shards, nullptr);
    for (unsigned s = 0; s < num_shards; ++s) {
      ws.detect_shard_hist[s] = telemetry::get_histogram(
          reg, "rloop_pipeline_shard_latency_ns",
          telemetry::latency_bounds_ns(),
          {{"stage", "detect"}, {"shard", std::to_string(s)}},
          "Wall-clock latency of one pipeline shard per sharded call");
    }

    // Stage-occupancy counters: busy is time spent hashing / partitioning
    // (driver) or parsing / detecting (workers); idle is time blocked on the
    // rings. Accumulated locally per thread, flushed once at thread exit.
    telemetry::Counter* ingest_busy = telemetry::get_counter(
        reg, "rloop_pipeline_stage_busy_ns_total", {{"stage", "ingest"}},
        "Nanoseconds a pipeline stage spent doing work");
    telemetry::Counter* ingest_idle = telemetry::get_counter(
        reg, "rloop_pipeline_stage_idle_ns_total", {{"stage", "ingest"}},
        "Nanoseconds a pipeline stage spent waiting on its queues");
    telemetry::Counter* detect_busy = telemetry::get_counter(
        reg, "rloop_pipeline_stage_busy_ns_total", {{"stage", "detect"}},
        "Nanoseconds a pipeline stage spent doing work");
    telemetry::Counter* detect_idle = telemetry::get_counter(
        reg, "rloop_pipeline_stage_idle_ns_total", {{"stage", "detect"}},
        "Nanoseconds a pipeline stage spent waiting on its queues");
    const bool timed = ingest_busy != nullptr;

    std::atomic<bool> abort{false};
    std::atomic<bool> done{false};

    // --- Driver (body 0): hash, shard-assign, partition, feed. ------------
    const auto run_driver = [&] {
      std::uint64_t busy = 0;
      std::uint64_t idle = 0;
      for (std::size_t lo = 0; lo < n; lo += kEpochRecords) {
        const std::size_t hi = std::min(n, lo + kEpochRecords);
        const telemetry::ScopedSpan epoch_span(config.trace, "hash_chunk");
        const std::int64_t t0 = timed ? now_ns() : 0;
        for (std::size_t i = lo; i < hi; ++i) {
          ws.hashes[i] = replica_key_hash(trace[i].bytes());
        }
        // num_shards is 1 << shard_bits (ParallelConfig), so the modulo in
        // shard_of_key_hash is this mask; the SIMD kernel computes the same
        // mix64-and-mask for four hashes per lane.
        util::simd::mix64_mask(ws.hashes.data() + lo, ws.shard_ids.data() + lo,
                               hi - lo, num_shards - 1);
        const std::int64_t t1 = timed ? now_ns() : 0;
        // Claim one batch per worker. An empty free ring means that worker
        // is kRingDepth epochs behind — waiting here is the back-pressure
        // that bounds the driver's read-ahead.
        for (unsigned w = 0; w < num_workers; ++w) {
          EpochBatch* b = nullptr;
          while (!ws.lanes[w]->free.try_pop(b)) {
            if (abort.load(std::memory_order_acquire)) return;
            std::this_thread::yield();
          }
          b->indices.clear();
          ws.claimed[w] = b;
        }
        const std::int64_t t2 = timed ? now_ns() : 0;
        // Partition: shard s belongs to worker s % num_workers. Parse
        // failures are not known yet (parsing happens on the worker), so
        // every index is routed; workers skip !ok records at detect time.
        for (std::size_t i = lo; i < hi; ++i) {
          ws.claimed[ws.shard_ids[i] % num_workers]->indices.push_back(
              static_cast<std::uint32_t>(i));
        }
        for (unsigned w = 0; w < num_workers; ++w) {
          ws.lanes[w]->work.try_push(ws.claimed[w]);  // never full: see Lane
        }
        if (timed) {
          const std::int64_t t3 = now_ns();
          busy += static_cast<std::uint64_t>((t1 - t0) + (t3 - t2));
          idle += static_cast<std::uint64_t>(t2 - t1);
        }
      }
      done.store(true, std::memory_order_release);
      telemetry::inc(ingest_busy, busy);
      telemetry::inc(ingest_idle, idle);
    };

    // --- Worker (bodies 1..W): parse, columnize, detect; then finish. -----
    const auto run_worker = [&](unsigned w) {
      Lane& lane = *ws.lanes[w];
      std::uint64_t busy = 0;
      const std::int64_t t_start = timed ? now_ns() : 0;
      for (;;) {
        EpochBatch* b = nullptr;
        if (lane.work.try_pop(b)) {
          const telemetry::ScopedSpan span(config.trace, "parse_chunk");
          const std::int64_t t0 = timed ? now_ns() : 0;
          for (const std::uint32_t idx : b->indices) {
            const ParsedRecord rec = parse_record(trace, idx);
            const std::uint64_t h = ws.hashes[idx];
            ws.store.set_row(idx, rec, h);
            result.records[idx] = rec;
            if (rec.ok) {
              ws.states[ws.shard_ids[idx]]->process(
                  ws.store, idx, make_replica_key(ws.store.bytes(idx), h));
            }
          }
          lane.free.try_push(b);  // never full: see Lane
          if (timed) busy += static_cast<std::uint64_t>(now_ns() - t0);
          continue;
        }
        if (abort.load(std::memory_order_acquire)) return;
        // `done` is set after the driver's final pushes, so done + an empty
        // (freshly re-checked) work ring means fully drained.
        if (done.load(std::memory_order_acquire) && lane.work.empty()) break;
        std::this_thread::yield();
      }
      for (unsigned s = w; s < num_shards; s += num_workers) {
        const telemetry::ScopedSpan span(config.trace, "detect_shard");
        const telemetry::ScopedTimer shard_timer(ws.detect_shard_hist[s]);
        const std::int64_t t0 = timed ? now_ns() : 0;
        ws.shard_streams[s] = ws.states[s]->finish();
        if (timed) busy += static_cast<std::uint64_t>(now_ns() - t0);
      }
      if (timed) {
        telemetry::inc(detect_busy, busy);
        telemetry::inc(detect_idle,
                       static_cast<std::uint64_t>(now_ns() - t_start) - busy);
      }
    };

    // The counter-runner parallel_for puts every body on its own pool
    // worker (n == pool size), so driver and workers genuinely overlap. A
    // body that throws flips `abort` first: the driver stops feeding and
    // every worker exits its spin, so the fan-out always joins, and
    // parallel_for rethrows the first error after the join. Span name is
    // null: the bodies emit their own finer-grained spans (hash_chunk /
    // parse_chunk / detect_shard) at depth 0 in their worker's lane.
    ws.pool->parallel_for(
        num_threads,
        [&](std::size_t t) {
          try {
            if (t == 0) {
              run_driver();
            } else {
              run_worker(static_cast<unsigned>(t) - 1);
            }
          } catch (...) {
            abort.store(true, std::memory_order_release);
            throw;
          }
        },
        nullptr);

    // --- Merge the per-shard outputs into the canonical stream order. -----
    detail::LocalCounts counts;
    std::size_t total_streams = 0;
    for (unsigned s = 0; s < num_shards; ++s) {
      counts.add(ws.states[s]->counts);
      total_streams += ws.shard_streams[s].size();
    }
    result.raw_streams.reserve(total_streams);
    for (unsigned s = 0; s < num_shards; ++s) {
      std::move(ws.shard_streams[s].begin(), ws.shard_streams[s].end(),
                std::back_inserter(result.raw_streams));
    }
    detail::sort_streams(result.raw_streams);

    telemetry::inc(
        telemetry::get_counter(reg, "rloop_detector_records_total", {},
                               "Parsed records scanned by the replica "
                               "detector"),
        counts.records);
    telemetry::inc(
        telemetry::get_counter(
            reg, "rloop_detector_replicas_matched_total", {},
            "Observations matched into an existing replica stream"),
        counts.replicas);
    telemetry::inc(
        telemetry::get_counter(
            reg, "rloop_detector_streams_opened_total", {},
            "Candidate streams opened (one per first-seen header)"),
        counts.opened);
    telemetry::inc(
        telemetry::get_counter(
            reg, "rloop_detector_streams_expired_total", {},
            "Candidate streams closed by the stream timeout"),
        counts.expired);
    telemetry::inc(
        telemetry::get_counter(
            reg, "rloop_detector_streams_emitted_total", {},
            "Closed streams with >= 2 replicas handed to validation"),
        counts.emitted);
  }

  result.total_records = n;
  for (const auto& rec : result.records) {
    if (!rec.ok) ++result.parse_failures;
  }
  telemetry::inc(telemetry::get_counter(
                     reg, "rloop_pipeline_parse_failures_total", {},
                     "Trace records whose IP header failed to parse"),
                 result.parse_failures);

  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "validate"));
    const telemetry::ScopedSpan span(config.trace, "validate");
    const StreamValidator validator(config.validator, reg, config.journal);
    result.valid_streams = validator.validate_sharded(
        ws.store, result.raw_streams, *ws.pool, num_shards,
        ws.validator_scratch, &result.validation);
  }
  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "merge"));
    const telemetry::ScopedSpan span(config.trace, "merge");
    const StreamMerger merger(config.merger, reg, config.journal);
    result.loops =
        merger.merge_sharded(ws.store, result.valid_streams, *ws.pool,
                             num_shards, ws.merger_scratch);
  }
  return result;
}

}  // namespace rloop::core
