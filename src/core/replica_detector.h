// Step 1 of the paper's algorithm: detect replicas and group them into
// replica streams.
//
// A stream grows while each new observation of the same normalized header
// has a TTL at least `min_ttl_delta` below the previous one (a loop spans at
// least two routers, so a replica returns with TTL reduced by >= 2).
// Observations with *equal* TTL are link-layer duplicates (token-ring
// drain failures, SONET protection-layer copies — paper §IV-A.2); they are
// kept in the stream so that step 2 can discard two-element streams, but a
// TTL *increase* or a stale stream (quiet longer than `stream_timeout`)
// starts a fresh stream for the same key (IP ID wrap / retransmission with
// identical bytes).
#pragma once

#include <cstdint>
#include <vector>

#include "core/parallel.h"
#include "core/record.h"
#include "core/record_store.h"
#include "core/replica_key.h"
#include "net/time.h"
#include "telemetry/decision_log.h"
#include "telemetry/registry.h"
#include "util/thread_pool.h"

namespace rloop::core {

struct Replica {
  std::uint32_t record_index = 0;
  net::TimeNs ts = 0;
  std::uint8_t ttl = 0;
};

struct ReplicaStream {
  ReplicaKey key;
  net::Ipv4Addr dst;
  net::Prefix dst24;
  std::vector<Replica> replicas;  // in time order

  std::size_t size() const { return replicas.size(); }
  net::TimeNs start() const { return replicas.front().ts; }
  net::TimeNs end() const { return replicas.back().ts; }
  net::TimeNs duration() const { return end() - start(); }

  // TTL differences between successive replicas (zero entries are
  // link-layer duplicates).
  std::vector<int> ttl_deltas() const;
  // The most common nonzero TTL delta — the loop's hop count. Returns 0 when
  // the stream contains only equal-TTL duplicates.
  int dominant_ttl_delta() const;
  // Mean spacing between successive replicas, the paper's Figure 4 metric.
  double mean_spacing_ns() const;
};

struct ReplicaDetectorConfig {
  // A key quiet for longer than this closes its stream. Loops the paper
  // found last seconds; 10 s is comfortably past any replica gap.
  net::TimeNs stream_timeout = 10 * net::kSecond;
  // Minimum TTL decrease between successive replicas (paper: 2).
  int min_ttl_delta = 2;
  // Accept equal-TTL observations as link-layer duplicates within a stream.
  bool keep_link_layer_duplicates = true;
};

class ReplicaDetector {
 public:
  // `registry` (optional) receives rloop_detector_* counters and the
  // inter-replica spacing histogram; metrics resolve once here, never in
  // detect(). `journal` (optional) receives per-match decisions: a
  // replica_accepted / replica_rejected event for every observation that had
  // an open candidate stream, and a stream_emitted event per closed stream
  // (ordinary first-seen packets are not journaled — they would flood the
  // ring with non-decisions).
  explicit ReplicaDetector(ReplicaDetectorConfig config = {},
                           telemetry::Registry* registry = nullptr,
                           telemetry::DecisionLog* journal = nullptr);

  // Returns every stream with at least two elements, ordered by start time.
  // The store is the columnized trace (RecordStore::build); records with
  // ok == false are ignored. The hot path runs on a flat open-addressing
  // table (util/flat_map.h) with arena-backed replica lists (util/arena.h);
  // output is field-identical to detect_reference() — the differential
  // tests in tests/test_memory_layout.cc prove it.
  std::vector<ReplicaStream> detect(const RecordStore& store) const;

  // Convenience wrapper: columnizes (trace, records) and runs detect().
  // `records` must be parse_trace(trace).
  std::vector<ReplicaStream> detect(
      const net::Trace& trace,
      const std::vector<ParsedRecord>& records) const;

  // Sharded detect(): partitions records by hash(ReplicaKey) % num_shards —
  // every observation of one normalized header lands in one shard, in trace
  // order, so per-shard streams are exactly the serial streams — runs the
  // shards on `pool`, and merges by the same (start time, first record
  // index) total order the serial path sorts by. The store's key-hash
  // column drives both shard assignment and per-shard key construction, so
  // FNV runs exactly once per record. Output is field-identical to detect()
  // for any (pool size, num_shards); the streams-expired counter alone may
  // differ, because the periodic table sweep (a memory bound, not an
  // algorithm step) fires per shard.
  std::vector<ReplicaStream> detect_sharded(const RecordStore& store,
                                            util::ThreadPool& pool,
                                            unsigned num_shards) const;

  // Convenience wrapper: columnizes on `pool` and runs detect_sharded().
  std::vector<ReplicaStream> detect_sharded(
      const net::Trace& trace, const std::vector<ParsedRecord>& records,
      util::ThreadPool& pool, unsigned num_shards) const;

  // The pre-flat-map engine (std::unordered_map of std::vector streams),
  // retained verbatim as the differential oracle: detect() must produce
  // field-identical output on every input, and bench/memory_layout.cc pins
  // the old and new engines side by side. Not used by the pipeline.
  std::vector<ReplicaStream> detect_reference(
      const net::Trace& trace,
      const std::vector<ParsedRecord>& records) const;

 private:
  ReplicaDetectorConfig config_;
  telemetry::Registry* registry_ = nullptr;
  telemetry::DecisionLog* journal_ = nullptr;
  telemetry::Counter* m_records_ = nullptr;
  telemetry::Counter* m_replicas_ = nullptr;
  telemetry::Counter* m_streams_opened_ = nullptr;
  telemetry::Counter* m_streams_expired_ = nullptr;
  telemetry::Counter* m_streams_emitted_ = nullptr;
  telemetry::Histogram* m_spacing_ = nullptr;
};

// Marks which record indices belong to any stream in `streams`.
std::vector<bool> stream_membership(std::size_t record_count,
                                    const std::vector<ReplicaStream>& streams);

// In-place equivalent: fills `out` (reusing its capacity) instead of
// allocating a fresh vector. Used by the pipeline workspace.
void stream_membership(std::size_t record_count,
                       const std::vector<ReplicaStream>& streams,
                       std::vector<bool>& out);

}  // namespace rloop::core
