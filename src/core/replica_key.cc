#include "core/replica_key.h"

#include <algorithm>

namespace rloop::core {

namespace {
std::uint64_t fnv1a(std::span<const std::byte> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

std::uint64_t replica_key_hash(std::span<const std::byte> captured) {
  const auto len = std::min(captured.size(), net::kSnapLen);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    // Same masking as make_replica_key: TTL (8) and checksum (10-11) zeroed.
    const auto b = (i == 8 || i == 10 || i == 11) ? std::byte{0} : captured[i];
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

ReplicaKey make_replica_key(std::span<const std::byte> captured) {
  ReplicaKey key;
  key.len = static_cast<std::uint8_t>(std::min(captured.size(), net::kSnapLen));
  std::copy_n(captured.begin(), key.len, key.normalized.begin());
  if (key.len > 8) key.normalized[8] = std::byte{0};    // TTL
  if (key.len > 10) key.normalized[10] = std::byte{0};  // checksum hi
  if (key.len > 11) key.normalized[11] = std::byte{0};  // checksum lo
  key.hash = fnv1a(std::span<const std::byte>(key.normalized.data(), key.len));
  return key;
}

ReplicaKey make_replica_key(std::span<const std::byte> captured,
                            std::uint64_t precomputed_hash) {
  ReplicaKey key;
  key.len = static_cast<std::uint8_t>(std::min(captured.size(), net::kSnapLen));
  std::copy_n(captured.begin(), key.len, key.normalized.begin());
  if (key.len > 8) key.normalized[8] = std::byte{0};    // TTL
  if (key.len > 10) key.normalized[10] = std::byte{0};  // checksum hi
  if (key.len > 11) key.normalized[11] = std::byte{0};  // checksum lo
  key.hash = precomputed_hash;
  return key;
}

}  // namespace rloop::core
