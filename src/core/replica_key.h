// Replica identity (Section IV-A.1 of the paper).
//
// Two packets are replicas of one looped packet when their headers are
// identical except for the TTL and IP header checksum, and their payloads
// are identical. With 40-byte captures, "headers and payload" is exactly the
// captured bytes with TTL and checksum masked out: the IP identification
// field separates distinct packets of a flow, and the transport checksum
// stands in for payload identity.
//
// The key therefore stores the captured bytes with the two fields zeroed and
// compares them exactly (the hash only buckets; equality is byte-precise, so
// there are no false merges from hash collisions).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "net/trace.h"

namespace rloop::core {

struct ReplicaKey {
  std::array<std::byte, net::kSnapLen> normalized{};
  std::uint8_t len = 0;
  std::uint64_t hash = 0;

  bool operator==(const ReplicaKey& other) const {
    return len == other.len && hash == other.hash &&
           normalized == other.normalized;
  }
};

// Builds the key from captured bytes (which must start at the IP header).
// The TTL byte (offset 8) and header checksum (offsets 10-11) are zeroed;
// everything else — including IP ID, ports, sequence numbers and transport
// checksum — participates in identity.
ReplicaKey make_replica_key(std::span<const std::byte> captured);

// Same key, but with the hash supplied by the caller (it must equal
// replica_key_hash(captured)). Skips the FNV pass — the sharded detector
// already hashed every record to assign shards, so per-shard key
// construction is a masked copy only.
ReplicaKey make_replica_key(std::span<const std::byte> captured,
                            std::uint64_t precomputed_hash);

// The hash make_replica_key(captured) would compute, without materializing
// the normalized copy. The parallel detector uses this to assign records to
// shards in one cheap pass before any per-shard key construction.
std::uint64_t replica_key_hash(std::span<const std::byte> captured);

struct ReplicaKeyHash {
  std::size_t operator()(const ReplicaKey& k) const noexcept {
    return static_cast<std::size_t>(k.hash);
  }
};

}  // namespace rloop::core
