// The flat per-shard replica-detection engine, shared by the barrier-style
// sharded path (ReplicaDetector::detect_sharded) and the staged dataflow
// (core/pipeline.cc), which keeps one warm state per shard across runs.
//
// Open streams live in one FlatMap keyed by ReplicaKey, replica lists in an
// arena. One candidate stream per first-seen header means millions of tiny
// allocations per trace on a general-purpose heap; here a stream is a
// bump-allocated node with two inline replicas (the overwhelming majority of
// candidates never grow past one), overflowing into arena-chunked spans, all
// reclaimed wholesale when the state is destroyed — or rewound in place by
// reset(), which is what lets a persistent pipeline workspace run the whole
// detect stage without heap traffic once warm.
//
// Field-identical output to the reference engine in replica_detector.cc
// (detect_reference), including every journal event payload and every
// counter, the expired count included: expiry is determined purely by
// last_ts against the current record's timestamp, and both engines hold the
// same open set at every record by induction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/record_store.h"
#include "core/replica_detector.h"
#include "core/replica_key.h"
#include "net/time.h"
#include "telemetry/decision_log.h"
#include "telemetry/registry.h"
#include "util/arena.h"
#include "util/flat_map.h"

namespace rloop::core::detail {

struct LocalCounts {
  std::uint64_t records = 0;
  std::uint64_t replicas = 0;
  std::uint64_t opened = 0;
  std::uint64_t expired = 0;
  std::uint64_t emitted = 0;

  void add(const LocalCounts& other) {
    records += other.records;
    replicas += other.replicas;
    opened += other.opened;
    expired += other.expired;
    emitted += other.emitted;
  }
};

// The canonical emission order: (start, first record index) is a strict
// total order — a record heads at most one stream — so sorted output does
// not depend on closing order, and the sharded paths' merge of per-shard
// sorted runs reproduces the serial order exactly.
inline void sort_streams(std::vector<ReplicaStream>& streams) {
  std::sort(streams.begin(), streams.end(),
            [](const ReplicaStream& a, const ReplicaStream& b) {
              if (a.start() != b.start()) return a.start() < b.start();
              return a.replicas.front().record_index <
                     b.replicas.front().record_index;
            });
}

// Overflow storage for replicas beyond the two inline slots.
struct ReplicaChunk {
  static constexpr std::uint32_t kCap = 6;
  ReplicaChunk* next = nullptr;
  std::uint32_t n = 0;
  Replica items[kCap];
};

// One open candidate stream. Several can be open for one key (IP ID reuse
// over a long trace); they chain newest-first through `older`, mirroring the
// back-to-front scan order of the reference engine's per-key vector.
struct FlatOpenStream {
  FlatOpenStream* older = nullptr;
  ReplicaChunk* head_chunk = nullptr;
  ReplicaChunk* tail_chunk = nullptr;
  std::uint32_t count = 0;
  net::TimeNs last_ts = 0;
  std::uint8_t last_ttl = 0;
  net::Ipv4Addr dst;
  net::Prefix dst24;
  Replica inline_replicas[2];

  void push(util::Arena& arena, const Replica& r) {
    if (count < 2) {
      inline_replicas[count] = r;
    } else {
      if (tail_chunk == nullptr || tail_chunk->n == ReplicaChunk::kCap) {
        auto* chunk = arena.create<ReplicaChunk>();
        if (tail_chunk != nullptr) {
          tail_chunk->next = chunk;
        } else {
          head_chunk = chunk;
        }
        tail_chunk = chunk;
      }
      tail_chunk->items[tail_chunk->n++] = r;
    }
    ++count;
  }

  net::TimeNs start() const { return inline_replicas[0].ts; }
  // Every accepted replica updates last_ts, so last_ts is always the final
  // replica's timestamp — the stream's end.
  net::TimeNs end() const { return last_ts; }
  std::uint32_t first_record_index() const {
    return inline_replicas[0].record_index;
  }

  std::vector<Replica> materialize() const {
    std::vector<Replica> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count && i < 2; ++i) {
      out.push_back(inline_replicas[i]);
    }
    for (const ReplicaChunk* c = head_chunk; c != nullptr; c = c->next) {
      out.insert(out.end(), c->items, c->items + c->n);
    }
    return out;
  }
};

static_assert(std::is_trivially_destructible_v<FlatOpenStream>,
              "arena-allocated");
static_assert(std::is_trivially_destructible_v<ReplicaChunk>,
              "arena-allocated");

// The per-record state machine on the flat layout. Default-constructible and
// rebindable so a pipeline workspace can keep a pool of warm states: bind()
// points it at the current run's config/telemetry, reset() rewinds it for
// the next run while keeping every backing allocation.
struct FlatDetectState {
  FlatDetectState() = default;
  FlatDetectState(const ReplicaDetectorConfig& cfg, telemetry::Histogram* sp,
                  telemetry::DecisionLog* jl) {
    bind(cfg, sp, jl);
  }

  void bind(const ReplicaDetectorConfig& cfg, telemetry::Histogram* sp,
            telemetry::DecisionLog* jl) {
    config = &cfg;
    spacing = sp;
    journal = jl;
  }

  // Rewinds for the next run; the arena, the open table and the closed
  // vector all keep their capacity (arena chunks are consolidated once,
  // then reused — see Arena::reset()).
  void reset() {
    arena.reset();
    open.clear();
    closed.clear();
    counts = LocalCounts{};
    since_sweep = 0;
  }

  const ReplicaDetectorConfig* config = nullptr;
  telemetry::Histogram* spacing = nullptr;
  telemetry::DecisionLog* journal = nullptr;

  util::Arena arena;
  util::FlatMap<ReplicaKey, FlatOpenStream*, ReplicaKeyHash> open;
  std::vector<ReplicaStream> closed;
  LocalCounts counts;

  // Periodic sweep keeps the open table bounded by the packet arrival rate
  // times the stream timeout rather than by the trace length: most entries
  // are ordinary packets that never produce a replica. Sweep timing affects
  // only memory and the expired counter, never which streams are emitted: a
  // timed-out stream can no longer be extended (the per-key expiry check
  // below closes it before any extension attempt).
  static constexpr std::uint32_t kSweepInterval = 1 << 16;
  std::uint32_t since_sweep = 0;

  void close_stream(const ReplicaKey& key, const FlatOpenStream* os) {
    if (os->count >= 2) {
      ++counts.emitted;
      telemetry::record(
          journal, {.kind = telemetry::DecisionKind::stream_emitted,
                    .dst24 = os->dst24,
                    .ts = os->end(),
                    .record_index = os->first_record_index(),
                    .detail = static_cast<std::int64_t>(os->count),
                    .detail2 = os->start()});
      ReplicaStream stream;
      stream.key = key;
      stream.dst = os->dst;
      stream.dst24 = os->dst24;
      stream.replicas = os->materialize();
      closed.push_back(std::move(stream));
    }
  }

  // Closes every timed-out stream in the chain and returns the surviving
  // chain, order preserved. Expired nodes stay in the arena (freed
  // wholesale); idempotent, as erase_if requires.
  FlatOpenStream* expire_chain(const ReplicaKey& key, FlatOpenStream* head,
                               net::TimeNs now) {
    FlatOpenStream* kept = nullptr;
    FlatOpenStream** tail = &kept;
    while (head != nullptr) {
      FlatOpenStream* next = head->older;
      if (now - head->last_ts > config->stream_timeout) {
        ++counts.expired;
        close_stream(key, head);
      } else {
        *tail = head;
        tail = &head->older;
      }
      head = next;
    }
    *tail = nullptr;
    return kept;
  }

  // `key` must be make_replica_key over record i's captured bytes; the
  // caller supplies it built from the store's precomputed hash column, so
  // FNV runs exactly once per record on every path.
  void process(const RecordStore& store, std::size_t i,
               const ReplicaKey& key) {
    ++counts.records;
    const net::TimeNs ts = store.ts(i);
    const std::uint8_t ttl = store.ttl(i);
    const auto index = static_cast<std::uint32_t>(i);

    if (++since_sweep >= kSweepInterval) {
      since_sweep = 0;
      open.erase_if([&](const ReplicaKey& k, FlatOpenStream*& head) {
        head = expire_chain(k, head, ts);
        return head == nullptr;
      });
    }

    const auto matches = [&](const ReplicaKey& k) { return k == key; };
    FlatOpenStream** entry = open.find_hashed(key.hash, matches);
    if (entry != nullptr) {
      // Expire stale streams for this key first.
      *entry = expire_chain(key, *entry, ts);

      // Try to extend the most recent compatible stream (newest first).
      for (FlatOpenStream* os = *entry; os != nullptr; os = os->older) {
        const int delta =
            static_cast<int>(os->last_ttl) - static_cast<int>(ttl);
        const bool looped = delta >= config->min_ttl_delta;
        const bool duplicate =
            config->keep_link_layer_duplicates && delta == 0;
        if (looped || duplicate) {
          ++counts.replicas;
          telemetry::observe(spacing, static_cast<double>(ts - os->last_ts));
          os->push(arena, {index, ts, ttl});
          if (looped) os->last_ttl = ttl;
          os->last_ts = ts;
          telemetry::record(
              journal, {.kind = telemetry::DecisionKind::replica_accepted,
                        .dst24 = store.dst24(i),
                        .ts = ts,
                        .record_index = index,
                        .detail = delta,
                        .detail2 = static_cast<std::int64_t>(os->count)});
          return;
        }
      }

      // A live candidate stream existed for this exact header, but the TTL
      // delta disqualified the observation — the one per-packet negative
      // decision worth journaling (first-seen packets are non-decisions).
      if (*entry != nullptr) {
        telemetry::record(
            journal, {.kind = telemetry::DecisionKind::replica_rejected,
                      .dst24 = store.dst24(i),
                      .ts = ts,
                      .record_index = index,
                      .detail = static_cast<int>((*entry)->last_ttl) -
                                static_cast<int>(ttl)});
      }
    }

    // Start a new stream headed by this packet.
    ++counts.opened;
    auto* os = arena.create<FlatOpenStream>();
    os->dst = store.dst(i);
    os->dst24 = store.dst24(i);
    os->inline_replicas[0] = {index, ts, ttl};
    os->count = 1;
    os->last_ttl = ttl;
    os->last_ts = ts;
    if (entry != nullptr) {
      os->older = *entry;
      *entry = os;  // no rehash since find_hashed: the slot pointer is valid
    } else {
      open.emplace_hashed(key.hash, matches, key, os);
    }
  }

  std::vector<ReplicaStream> finish() {
    open.for_each([&](const ReplicaKey& key, FlatOpenStream*& head) {
      for (const FlatOpenStream* os = head; os != nullptr; os = os->older) {
        close_stream(key, os);
      }
    });
    open.clear();
    sort_streams(closed);
    return std::move(closed);
  }
};

}  // namespace rloop::core::detail
