#include "core/metrics.h"

#include "net/time.h"

namespace rloop::core {

analysis::DiscreteHistogram ttl_delta_distribution(
    const std::vector<ReplicaStream>& streams) {
  analysis::DiscreteHistogram hist;
  for (const auto& s : streams) {
    const int delta = s.dominant_ttl_delta();
    if (delta > 0) hist.add(delta);
  }
  return hist;
}

analysis::EmpiricalCdf stream_size_cdf(
    const std::vector<ReplicaStream>& streams) {
  analysis::EmpiricalCdf cdf;
  for (const auto& s : streams) {
    cdf.add(static_cast<double>(s.size()));
  }
  return cdf;
}

analysis::EmpiricalCdf spacing_cdf_ms(
    const std::vector<ReplicaStream>& streams) {
  analysis::EmpiricalCdf cdf;
  for (const auto& s : streams) {
    if (s.size() >= 2) cdf.add(s.mean_spacing_ns() / 1e6);
  }
  return cdf;
}

analysis::EmpiricalCdf stream_duration_cdf_ms(
    const std::vector<ReplicaStream>& streams) {
  analysis::EmpiricalCdf cdf;
  for (const auto& s : streams) {
    cdf.add(net::to_millis(s.duration()));
  }
  return cdf;
}

analysis::EmpiricalCdf loop_duration_cdf_s(
    const std::vector<RoutingLoop>& loops) {
  analysis::EmpiricalCdf cdf;
  for (const auto& l : loops) {
    cdf.add(net::to_seconds(l.duration()));
  }
  return cdf;
}

const std::vector<std::string> kTrafficCategories = {
    "TCP", "ACK", "PSH", "RST", "URG", "SYN",
    "FIN", "UDP", "MCAST", "ICMP", "OTHER"};

std::vector<std::string> packet_categories(const net::ParsedPacket& pkt) {
  std::vector<std::string> cats;
  const bool multicast = (pkt.ip.dst.value >> 28) == 0xe;  // 224.0.0.0/4
  if (multicast) cats.push_back("MCAST");

  if (const auto* t = pkt.tcp()) {
    cats.push_back("TCP");
    if (t->has(net::kTcpAck)) cats.push_back("ACK");
    if (t->has(net::kTcpPsh)) cats.push_back("PSH");
    if (t->has(net::kTcpRst)) cats.push_back("RST");
    if (t->has(net::kTcpUrg)) cats.push_back("URG");
    if (t->has(net::kTcpSyn)) cats.push_back("SYN");
    if (t->has(net::kTcpFin)) cats.push_back("FIN");
  } else if (pkt.udp()) {
    cats.push_back("UDP");
  } else if (pkt.icmp()) {
    cats.push_back("ICMP");
  } else if (!multicast) {
    cats.push_back("OTHER");
  }
  return cats;
}

analysis::CategoricalCounter traffic_type_mix(
    const std::vector<ParsedRecord>& records) {
  analysis::CategoricalCounter counter;
  for (const auto& rec : records) {
    if (!rec.ok) continue;
    counter.add_sample();
    for (const auto& cat : packet_categories(rec.pkt)) {
      counter.add(cat);
    }
  }
  return counter;
}

analysis::CategoricalCounter looped_type_mix(
    const std::vector<ParsedRecord>& records,
    const std::vector<ReplicaStream>& valid_streams) {
  analysis::CategoricalCounter counter;
  const auto member = stream_membership(records.size(), valid_streams);
  for (const auto& rec : records) {
    if (!rec.ok || !member[rec.index]) continue;
    counter.add_sample();
    for (const auto& cat : packet_categories(rec.pkt)) {
      counter.add(cat);
    }
  }
  return counter;
}

std::vector<DstSample> dst_timeseries(
    const std::vector<ReplicaStream>& streams) {
  std::vector<DstSample> out;
  out.reserve(streams.size());
  for (const auto& s : streams) {
    out.push_back({net::to_seconds(s.start()), s.dst});
  }
  return out;
}

}  // namespace rloop::core
