// Transient vs persistent loop classification.
//
// The paper analyzes transient loops and leaves persistent ones (router
// misconfiguration, route oscillation; "eliminating a persistent loop
// requires human intervention") to future work. Given merged loops, this
// module applies the natural operational split: a loop is persistent when
// it lasts beyond any plausible protocol convergence time, or is still
// running when the trace ends after exceeding a minimum age.
#pragma once

#include <cstdint>
#include <vector>

#include "core/stream_merger.h"
#include "net/time.h"

namespace rloop::core {

enum class LoopClass : std::uint8_t { transient, persistent };

struct ClassifierConfig {
  // Longest credible convergence event: minutes of BGP churn. Anything
  // beyond is human-intervention territory.
  net::TimeNs persistent_threshold = 5 * net::kMinute;
  // A loop whose last replica falls within this margin of the trace end is
  // "still running" — classified persistent if it already outlived
  // `ongoing_min_age` (a short truncated transient stays transient).
  net::TimeNs trace_end_margin = 10 * net::kSecond;
  net::TimeNs ongoing_min_age = net::kMinute;
};

struct ClassifiedLoops {
  std::vector<LoopClass> classes;  // parallel to the input loop vector
  std::uint64_t transient = 0;
  std::uint64_t persistent = 0;

  double persistent_fraction() const {
    const auto total = transient + persistent;
    return total == 0 ? 0.0
                      : static_cast<double>(persistent) /
                            static_cast<double>(total);
  }
};

// `trace_end` is the timestamp of the last record in the trace.
ClassifiedLoops classify_loops(const std::vector<RoutingLoop>& loops,
                               net::TimeNs trace_end,
                               const ClassifierConfig& config = {});

}  // namespace rloop::core
