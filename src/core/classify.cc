#include "core/classify.h"

namespace rloop::core {

ClassifiedLoops classify_loops(const std::vector<RoutingLoop>& loops,
                               net::TimeNs trace_end,
                               const ClassifierConfig& config) {
  ClassifiedLoops out;
  out.classes.reserve(loops.size());
  for (const auto& loop : loops) {
    const bool over_threshold = loop.duration() >= config.persistent_threshold;
    const bool ongoing = loop.end >= trace_end - config.trace_end_margin &&
                         loop.duration() >= config.ongoing_min_age;
    if (over_threshold || ongoing) {
      out.classes.push_back(LoopClass::persistent);
      ++out.persistent;
    } else {
      out.classes.push_back(LoopClass::transient);
      ++out.transient;
    }
  }
  return out;
}

}  // namespace rloop::core
