// Online (single-pass, bounded-memory) loop detection.
//
// The offline pipeline needs the whole trace for validation step 2 and for
// merging. Operationally, though, a loop alarm is most useful while the loop
// is happening; the paper notes that a surge of replica streams (and of ICMP
// time-exceeded traffic) is a strong live indicator. StreamingDetector
// trades the full prefix-consistency validation for immediacy: it raises an
// alert as soon as any prefix accumulates a replica stream of
// `min_replicas`, with a per-prefix hold-down to avoid alert storms.
//
// Memory is bounded by (packet rate x stream timeout), independent of how
// long the detector runs.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/replica_detector.h"
#include "core/replica_key.h"
#include "net/prefix.h"
#include "net/time.h"
#include "telemetry/decision_log.h"
#include "telemetry/registry.h"

namespace rloop::core {

struct LoopAlert {
  net::Prefix prefix24;
  net::TimeNs first_seen = 0;  // first replica of the triggering stream
  net::TimeNs raised_at = 0;   // packet that crossed the threshold
  std::uint64_t replicas = 0;
  int ttl_delta = 0;
};

struct StreamingConfig {
  net::TimeNs stream_timeout = 10 * net::kSecond;
  int min_ttl_delta = 2;
  std::size_t min_replicas = 3;
  // At most one alert per prefix per hold-down interval.
  net::TimeNs alert_holddown = net::kMinute;
  // Out-of-order tolerance for live-capture jitter. A packet whose timestamp
  // is behind the stream by at most this much is clamped to the newest seen
  // timestamp and processed (rloop_streaming_reordered_total); one further
  // behind is dropped (rloop_streaming_reorder_dropped_total). on_packet
  // never throws on a timestamp regression.
  net::TimeNs reorder_tolerance_ns = 0;
  // Hard budget on tracked replica-candidate entries (0 = unbounded). When
  // an insert would exceed it, entries idle past stream_timeout go first,
  // then the oldest-touched entries, down to ~7/8 of the budget
  // (rloop_streaming_evicted_total) — so millions of distinct /24s fit a
  // fixed RSS at the cost of possibly restarting a starved stream's count.
  std::size_t max_open_entries = 0;
};

class StreamingDetector {
 public:
  using AlertCallback = std::function<void(const LoopAlert&)>;

  // One tracked replica-candidate stream (public so checkpoints can carry
  // the detector's open state byte-for-byte).
  struct OpenEntry {
    net::TimeNs first_ts = 0;
    net::TimeNs last_ts = 0;
    std::uint8_t last_ttl = 0;
    std::uint32_t replicas = 1;
    int last_delta = 0;
    net::Prefix prefix24;
  };

  // A complete, self-contained copy of the detector's mutable state: feed
  // the same packets to a restore()d detector and to the original and they
  // produce identical alerts. snapshot() sorts the open entries and
  // hold-downs so the same state always serializes to the same bytes
  // (unordered_map iteration order is not deterministic).
  struct Snapshot {
    net::TimeNs last_ts = 0;
    std::uint64_t packets_seen = 0;
    std::uint64_t alerts_raised = 0;
    std::uint64_t reordered = 0;
    std::uint64_t reorder_dropped = 0;
    std::uint64_t evicted = 0;
    std::uint64_t sampled_dropped = 0;
    std::uint64_t peak_open = 0;
    std::uint32_t since_sweep = 0;
    std::vector<std::pair<ReplicaKey, OpenEntry>> open;
    std::vector<std::pair<net::Prefix, net::TimeNs>> holddowns;
  };

  // `registry` (optional) receives rloop_streaming_* counters and the live
  // open-entry gauge — the operator-facing loop-surge signal. `journal`
  // (optional) receives an alert_raised / alert_suppressed event per
  // threshold crossing.
  StreamingDetector(StreamingConfig config, AlertCallback on_alert,
                    telemetry::Registry* registry = nullptr,
                    telemetry::DecisionLog* journal = nullptr);

  // Feed one captured packet (bytes start at the IP header). Timestamps may
  // regress by up to reorder_tolerance_ns (clamped) — never throws.
  void on_packet(net::TimeNs ts, std::span<const std::byte> bytes);

  // Replaces the tunable thresholds (reload path for a long-running daemon).
  // Takes effect for subsequent packets; tracked state is kept.
  void update_config(const StreamingConfig& config) { config_ = config; }
  const StreamingConfig& config() const { return config_; }

  // --- checkpoint/restore ---------------------------------------------------
  // Deterministic copy of all mutable state (see Snapshot). O(open_entries).
  Snapshot snapshot() const;
  // Replaces all mutable state with `snap` (config and callback are kept).
  // After restore, feeding the packets that followed the snapshot reproduces
  // the original alert sequence exactly.
  void restore(const Snapshot& snap);

  // --- graded degradation ---------------------------------------------------
  // Overload sampling (governor tier 3): process only one in `n` packets for
  // destinations that are not currently loop suspects; packets for suspect
  // /24s (an open entry with >=2 replicas, or a recent alert) always pass.
  // 0 or 1 restores full fidelity. Dropped packets are counted
  // (rloop_streaming_sampled_dropped_total) and never reach the parser.
  void set_sample_keep_one_in(std::uint32_t n) { sample_n_ = n; }
  std::uint32_t sample_keep_one_in() const { return sample_n_; }
  std::uint64_t sampled_dropped() const { return sampled_dropped_; }

  // Overload shedding (governor tier 1): detach/reattach the decision
  // journal without touching detection state.
  void set_journal(telemetry::DecisionLog* journal) { journal_ = journal; }

  // --- observability --------------------------------------------------------
  // One currently-open suspect stream, exported live via the daemon's
  // /loops endpoint: an open entry that has accumulated >= 2 replicas (the
  // same threshold that exempts a /24 from overload sampling).
  struct SuspectEntry {
    net::Prefix prefix24;
    net::TimeNs first_ts = 0;
    net::TimeNs last_ts = 0;
    std::uint32_t replicas = 0;
    int ttl_delta = 0;
  };

  // Deterministic copy of the open suspect entries: sorted by replicas
  // descending (hottest loop first), then prefix. `max` > 0 truncates —
  // callers copying at epoch boundaries bound the copy, not the caller's
  // patience. Same-thread-only, like every other detector accessor.
  std::vector<SuspectEntry> suspect_entries(std::size_t max = 0) const;

  std::uint64_t packets_seen() const { return packets_seen_; }
  std::uint64_t alerts_raised() const { return alerts_raised_; }
  // Out-of-order packets clamped into the stream / dropped as too late.
  std::uint64_t reordered() const { return reordered_; }
  std::uint64_t reorder_dropped() const { return reorder_dropped_; }
  // Entries evicted by the max_open_entries budget (not by normal timeout).
  std::uint64_t evicted() const { return evicted_; }
  // Open replica-candidate entries currently tracked (for memory tests).
  std::size_t open_entries() const { return open_.size(); }
  // High-water mark of open_entries() over the detector's lifetime; with a
  // budget configured this never exceeds max_open_entries.
  std::size_t peak_open_entries() const { return peak_open_; }

 private:
  void sweep(net::TimeNs now);
  void enforce_budget(net::TimeNs now);

  StreamingConfig config_;
  AlertCallback on_alert_;
  telemetry::DecisionLog* journal_ = nullptr;
  telemetry::Counter* m_packets_ = nullptr;
  telemetry::Counter* m_parse_failures_ = nullptr;
  telemetry::Counter* m_alerts_ = nullptr;
  telemetry::Counter* m_suppressed_ = nullptr;
  telemetry::Counter* m_reordered_ = nullptr;
  telemetry::Counter* m_reorder_dropped_ = nullptr;
  telemetry::Counter* m_evicted_ = nullptr;
  telemetry::Counter* m_sampled_ = nullptr;
  telemetry::Gauge* m_open_entries_ = nullptr;
  std::unordered_map<ReplicaKey, OpenEntry, ReplicaKeyHash> open_;
  std::unordered_map<net::Prefix, net::TimeNs> last_alert_;
  // /24s exempt from overload sampling: any open entry that has already
  // accumulated >=2 replicas, plus recently alerted prefixes. Rebuilt from
  // open_/last_alert_ on sweep so it cannot grow without bound.
  std::unordered_set<net::Prefix> suspects_;
  net::TimeNs last_ts_ = 0;
  std::uint64_t packets_seen_ = 0;
  std::uint64_t alerts_raised_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t reorder_dropped_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t sampled_dropped_ = 0;
  std::uint32_t sample_n_ = 0;
  std::uint32_t sample_tick_ = 0;
  std::size_t peak_open_ = 0;
  std::uint32_t since_sweep_ = 0;
};

}  // namespace rloop::core
