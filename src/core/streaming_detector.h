// Online (single-pass, bounded-memory) loop detection.
//
// The offline pipeline needs the whole trace for validation step 2 and for
// merging. Operationally, though, a loop alarm is most useful while the loop
// is happening; the paper notes that a surge of replica streams (and of ICMP
// time-exceeded traffic) is a strong live indicator. StreamingDetector
// trades the full prefix-consistency validation for immediacy: it raises an
// alert as soon as any prefix accumulates a replica stream of
// `min_replicas`, with a per-prefix hold-down to avoid alert storms.
//
// Memory is bounded by (packet rate x stream timeout), independent of how
// long the detector runs.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/replica_detector.h"
#include "core/replica_key.h"
#include "net/prefix.h"
#include "net/time.h"
#include "telemetry/decision_log.h"
#include "telemetry/registry.h"

namespace rloop::core {

struct LoopAlert {
  net::Prefix prefix24;
  net::TimeNs first_seen = 0;  // first replica of the triggering stream
  net::TimeNs raised_at = 0;   // packet that crossed the threshold
  std::uint64_t replicas = 0;
  int ttl_delta = 0;
};

struct StreamingConfig {
  net::TimeNs stream_timeout = 10 * net::kSecond;
  int min_ttl_delta = 2;
  std::size_t min_replicas = 3;
  // At most one alert per prefix per hold-down interval.
  net::TimeNs alert_holddown = net::kMinute;
};

class StreamingDetector {
 public:
  using AlertCallback = std::function<void(const LoopAlert&)>;

  // `registry` (optional) receives rloop_streaming_* counters and the live
  // open-entry gauge — the operator-facing loop-surge signal. `journal`
  // (optional) receives an alert_raised / alert_suppressed event per
  // threshold crossing.
  StreamingDetector(StreamingConfig config, AlertCallback on_alert,
                    telemetry::Registry* registry = nullptr,
                    telemetry::DecisionLog* journal = nullptr);

  // Feed one captured packet (bytes start at the IP header). Timestamps must
  // be non-decreasing; throws std::invalid_argument otherwise.
  void on_packet(net::TimeNs ts, std::span<const std::byte> bytes);

  std::uint64_t packets_seen() const { return packets_seen_; }
  std::uint64_t alerts_raised() const { return alerts_raised_; }
  // Open replica-candidate entries currently tracked (for memory tests).
  std::size_t open_entries() const { return open_.size(); }

 private:
  struct OpenEntry {
    net::TimeNs first_ts = 0;
    net::TimeNs last_ts = 0;
    std::uint8_t last_ttl = 0;
    std::uint32_t replicas = 1;
    int last_delta = 0;
    net::Prefix prefix24;
  };

  void sweep(net::TimeNs now);

  StreamingConfig config_;
  AlertCallback on_alert_;
  telemetry::DecisionLog* journal_ = nullptr;
  telemetry::Counter* m_packets_ = nullptr;
  telemetry::Counter* m_parse_failures_ = nullptr;
  telemetry::Counter* m_alerts_ = nullptr;
  telemetry::Counter* m_suppressed_ = nullptr;
  telemetry::Gauge* m_open_entries_ = nullptr;
  std::unordered_map<ReplicaKey, OpenEntry, ReplicaKeyHash> open_;
  std::unordered_map<net::Prefix, net::TimeNs> last_alert_;
  net::TimeNs last_ts_ = 0;
  std::uint64_t packets_seen_ = 0;
  std::uint64_t alerts_raised_ = 0;
  std::uint32_t since_sweep_ = 0;
};

}  // namespace rloop::core
