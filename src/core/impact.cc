#include "core/impact.h"

#include "net/time.h"

namespace rloop::core {

ImpactEstimate estimate_impact(const LoopDetectionResult& result) {
  ImpactEstimate impact;
  impact.looped_streams = result.valid_streams.size();

  for (const auto& stream : result.valid_streams) {
    const int delta = stream.dominant_ttl_delta();
    const int last_ttl = stream.replicas.back().ttl;
    // With delta == 0 (only equal-TTL duplicates survived validation, which
    // min_replicas >= 3 makes rare) we cannot reason about expiry; treat as
    // escape candidate.
    const bool expires = delta > 0 && last_ttl <= delta;
    if (expires) {
      ++impact.expired_in_loop;
      impact.loop_loss_per_minute.add(net::to_seconds(stream.end()),
                                      stream.size());
    } else {
      ++impact.escape_candidates;
      // The packet demonstrably spent at least `duration` looping.
      impact.escape_extra_delay_ms.add(net::to_millis(stream.duration()));
    }
  }
  return impact;
}

}  // namespace rloop::core
