// Parsed view of a trace: one ParsedRecord per captured packet.
//
// The detector parses the whole trace once up front; every later stage works
// on record indices, so a packet is identified by its position in the trace
// throughout the pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "net/prefix.h"
#include "net/time.h"
#include "net/trace.h"
#include "util/thread_pool.h"

namespace rloop::core {

struct ParsedRecord {
  net::TimeNs ts = 0;
  std::uint32_t wire_len = 0;
  std::uint8_t cap_len = 0;
  std::uint32_t index = 0;  // position in the trace
  bool ok = false;          // IP header parsed successfully
  net::ParsedPacket pkt;
  net::Prefix dst24;  // destination /24, the aggregation unit of the paper
};

// Parses trace record `i` in isolation. Records parse independently (framing
// happened at capture/pcap-read time), so any partition of indices across
// workers — parse_trace_parallel's fixed chunks or the staged dataflow's
// shard batches — reproduces parse_trace() exactly, record for record.
ParsedRecord parse_record(const net::Trace& trace, std::size_t i);

// Parses every record. Records whose IP header is malformed keep ok=false
// and are skipped by all detector stages (but still counted).
std::vector<ParsedRecord> parse_trace(const net::Trace& trace);

// parse_trace split into fixed index chunks run on `pool`. The trace is
// already framed into records (framing happened at capture/pcap-read time),
// so chunk boundaries need no fix-up: every record parses independently and
// writes only its own slot, making the output bytewise identical to
// parse_trace() for any chunk size. `chunk` is records per task; 0 picks a
// size that gives each worker several tasks for load balance.
std::vector<ParsedRecord> parse_trace_parallel(const net::Trace& trace,
                                               util::ThreadPool& pool,
                                               std::size_t chunk = 0);

}  // namespace rloop::core
