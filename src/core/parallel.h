// Sharding configuration and shard-assignment hashes for the parallel
// detection pipeline.
//
// The pipeline parallelizes by partitioning its keyed state, never by
// splitting a key's records across workers:
//  - step 1 shards by hash(ReplicaKey): all observations of one normalized
//    header land in one shard, in trace order, so every per-shard stream is
//    exactly the stream the serial detector builds;
//  - steps 2-3 shard by destination /24 prefix: validation and merging only
//    ever query the non-looped index for the stream's own prefix, so a
//    per-shard index restricted to that shard's prefixes answers identically.
// A deterministic total-order merge after each stage (documented at the call
// sites) makes the output bit-identical to the serial path for every
// (num_threads, shard_bits) — tests/test_parallel_pipeline.cc proves it.
#pragma once

#include <cstdint>

#include "net/prefix.h"

namespace rloop::core {

struct ParallelConfig {
  // Worker threads; <= 1 selects the serial path (no pool is created).
  unsigned num_threads = 1;
  // log2 of the shard count. More shards than threads lets fast shards
  // finish early and slow ones overlap; 2^4 = 16 is plenty for the core
  // counts this targets. Clamped to [0, 10].
  unsigned shard_bits = 4;

  bool enabled() const { return num_threads > 1; }
  unsigned num_shards() const {
    const unsigned bits = shard_bits > 10 ? 10 : shard_bits;
    return 1u << bits;
  }
};

// splitmix64 finalizer. The raw inputs below have structure in their low
// bits (FNV output, prefix length always 24), so shard selection must mix
// before masking.
inline std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Shard for a replica-key hash (ReplicaKey::hash / replica_key_hash()).
inline unsigned shard_of_key_hash(std::uint64_t hash, unsigned num_shards) {
  return static_cast<unsigned>(mix64(hash) % num_shards);
}

// Shard for a destination /24 prefix (validation + merge partitioning).
inline unsigned shard_of_prefix(const net::Prefix& prefix,
                                unsigned num_shards) {
  const auto packed =
      (static_cast<std::uint64_t>(prefix.addr.value) << 8) | prefix.len;
  return static_cast<unsigned>(mix64(packed) % num_shards);
}

}  // namespace rloop::core
