#include "core/record.h"

#include <algorithm>

namespace rloop::core {

ParsedRecord parse_record(const net::Trace& trace, std::size_t i) {
  const net::TraceRecord& raw = trace[i];
  ParsedRecord rec;
  rec.ts = raw.ts;
  rec.wire_len = raw.wire_len;
  rec.cap_len = raw.cap_len;
  rec.index = static_cast<std::uint32_t>(i);
  if (auto parsed = net::parse_packet(raw.bytes())) {
    rec.ok = true;
    rec.pkt = *parsed;
    rec.dst24 = net::Prefix::slash24(parsed->ip.dst);
  }
  return rec;
}

std::vector<ParsedRecord> parse_trace(const net::Trace& trace) {
  std::vector<ParsedRecord> records;
  records.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    records.push_back(parse_record(trace, i));
  }
  return records;
}

std::vector<ParsedRecord> parse_trace_parallel(const net::Trace& trace,
                                               util::ThreadPool& pool,
                                               std::size_t chunk) {
  const std::size_t n = trace.size();
  if (chunk == 0) {
    // ~4 tasks per worker so an unlucky chunk doesn't serialize the tail.
    chunk = std::max<std::size_t>(1, n / (4 * pool.size() + 1));
  }
  std::vector<ParsedRecord> records(n);
  const std::size_t tasks = (n + chunk - 1) / chunk;
  pool.parallel_for(tasks, [&](std::size_t t) {
    const std::size_t lo = t * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) {
      records[i] = parse_record(trace, i);
    }
  }, "parse_chunk");
  return records;
}

}  // namespace rloop::core
