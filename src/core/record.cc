#include "core/record.h"

namespace rloop::core {

std::vector<ParsedRecord> parse_trace(const net::Trace& trace) {
  std::vector<ParsedRecord> records;
  records.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const net::TraceRecord& raw = trace[i];
    ParsedRecord rec;
    rec.ts = raw.ts;
    rec.wire_len = raw.wire_len;
    rec.cap_len = raw.cap_len;
    rec.index = static_cast<std::uint32_t>(i);
    if (auto parsed = net::parse_packet(raw.bytes())) {
      rec.ok = true;
      rec.pkt = *parsed;
      rec.dst24 = net::Prefix::slash24(parsed->ip.dst);
    }
    records.push_back(rec);
  }
  return records;
}

}  // namespace rloop::core
