#include "core/replica_detector.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace rloop::core {

std::vector<int> ReplicaStream::ttl_deltas() const {
  std::vector<int> deltas;
  deltas.reserve(replicas.size() > 0 ? replicas.size() - 1 : 0);
  for (std::size_t i = 1; i < replicas.size(); ++i) {
    deltas.push_back(static_cast<int>(replicas[i - 1].ttl) -
                     static_cast<int>(replicas[i].ttl));
  }
  return deltas;
}

int ReplicaStream::dominant_ttl_delta() const {
  std::map<int, int> counts;
  for (int d : ttl_deltas()) {
    if (d > 0) ++counts[d];
  }
  int best = 0;
  int best_count = 0;
  for (const auto& [delta, count] : counts) {
    if (count > best_count) {
      best = delta;
      best_count = count;
    }
  }
  return best;
}

double ReplicaStream::mean_spacing_ns() const {
  if (replicas.size() < 2) return 0.0;
  return static_cast<double>(duration()) /
         static_cast<double>(replicas.size() - 1);
}

ReplicaDetector::ReplicaDetector(ReplicaDetectorConfig config,
                                 telemetry::Registry* registry)
    : config_(config),
      m_records_(telemetry::get_counter(
          registry, "rloop_detector_records_total", {},
          "Parsed records scanned by the replica detector")),
      m_replicas_(telemetry::get_counter(
          registry, "rloop_detector_replicas_matched_total", {},
          "Observations matched into an existing replica stream")),
      m_streams_opened_(telemetry::get_counter(
          registry, "rloop_detector_streams_opened_total", {},
          "Candidate streams opened (one per first-seen header)")),
      m_streams_expired_(telemetry::get_counter(
          registry, "rloop_detector_streams_expired_total", {},
          "Candidate streams closed by the stream timeout")),
      m_streams_emitted_(telemetry::get_counter(
          registry, "rloop_detector_streams_emitted_total", {},
          "Closed streams with >= 2 replicas handed to validation")),
      m_spacing_(telemetry::get_histogram(
          registry, "rloop_detector_replica_spacing_ns",
          telemetry::spacing_bounds_ns(), {},
          "Spacing between successive replicas of one stream")) {}

namespace {

struct OpenStream {
  ReplicaStream stream;
  std::uint8_t last_ttl = 0;
  net::TimeNs last_ts = 0;
};

}  // namespace

std::vector<ReplicaStream> ReplicaDetector::detect(
    const net::Trace& trace, const std::vector<ParsedRecord>& records) const {
  // Several streams can be open for one key (IP ID reuse over a long trace),
  // so each key maps to a small vector of open streams.
  std::unordered_map<ReplicaKey, std::vector<OpenStream>, ReplicaKeyHash> open;
  std::vector<ReplicaStream> closed;

  // detect() is a batch call, so counters are accumulated in plain locals
  // and flushed to the shared atomics once on return — the per-record loop
  // pays no atomic traffic for telemetry (only the per-match spacing
  // histogram, and matches are rare).
  struct LocalCounts {
    std::uint64_t records = 0;
    std::uint64_t replicas = 0;
    std::uint64_t opened = 0;
    std::uint64_t expired = 0;
    std::uint64_t emitted = 0;
  } counts;

  auto close_stream = [&closed, &counts](OpenStream&& os) {
    if (os.stream.size() >= 2) {
      ++counts.emitted;
      closed.push_back(std::move(os.stream));
    }
  };

  // Periodic sweep keeps the open table bounded by the packet arrival rate
  // times the stream timeout rather than by the trace length: most entries
  // are ordinary packets that never produce a replica.
  constexpr std::uint32_t kSweepInterval = 1 << 16;
  std::uint32_t since_sweep = 0;

  for (const ParsedRecord& rec : records) {
    if (!rec.ok) continue;
    ++counts.records;

    if (++since_sweep >= kSweepInterval) {
      since_sweep = 0;
      for (auto it = open.begin(); it != open.end();) {
        auto& vec = it->second;
        for (auto sit = vec.begin(); sit != vec.end();) {
          if (rec.ts - sit->last_ts > config_.stream_timeout) {
            ++counts.expired;
            close_stream(std::move(*sit));
            sit = vec.erase(sit);
          } else {
            ++sit;
          }
        }
        it = vec.empty() ? open.erase(it) : std::next(it);
      }
    }

    ReplicaKey key = make_replica_key(trace[rec.index].bytes());
    auto& streams = open[std::move(key)];

    // Expire stale streams for this key first.
    for (auto it = streams.begin(); it != streams.end();) {
      if (rec.ts - it->last_ts > config_.stream_timeout) {
        ++counts.expired;
        close_stream(std::move(*it));
        it = streams.erase(it);
      } else {
        ++it;
      }
    }

    // Try to extend the most recent compatible stream.
    bool extended = false;
    for (auto it = streams.rbegin(); it != streams.rend(); ++it) {
      const int delta =
          static_cast<int>(it->last_ttl) - static_cast<int>(rec.pkt.ip.ttl);
      const bool looped = delta >= config_.min_ttl_delta;
      const bool duplicate =
          config_.keep_link_layer_duplicates && delta == 0;
      if (looped || duplicate) {
        ++counts.replicas;
        telemetry::observe(m_spacing_,
                           static_cast<double>(rec.ts - it->last_ts));
        it->stream.replicas.push_back(
            {rec.index, rec.ts, rec.pkt.ip.ttl});
        if (looped) it->last_ttl = rec.pkt.ip.ttl;
        it->last_ts = rec.ts;
        extended = true;
        break;
      }
    }
    if (extended) continue;

    // Start a new stream headed by this packet.
    ++counts.opened;
    OpenStream os;
    os.stream.key = make_replica_key(trace[rec.index].bytes());
    os.stream.dst = rec.pkt.ip.dst;
    os.stream.dst24 = rec.dst24;
    os.stream.replicas.push_back({rec.index, rec.ts, rec.pkt.ip.ttl});
    os.last_ttl = rec.pkt.ip.ttl;
    os.last_ts = rec.ts;
    streams.push_back(std::move(os));
  }

  for (auto& [key, streams] : open) {
    for (auto& os : streams) {
      close_stream(std::move(os));
    }
  }

  telemetry::inc(m_records_, counts.records);
  telemetry::inc(m_replicas_, counts.replicas);
  telemetry::inc(m_streams_opened_, counts.opened);
  telemetry::inc(m_streams_expired_, counts.expired);
  telemetry::inc(m_streams_emitted_, counts.emitted);

  std::sort(closed.begin(), closed.end(),
            [](const ReplicaStream& a, const ReplicaStream& b) {
              if (a.start() != b.start()) return a.start() < b.start();
              return a.replicas.front().record_index <
                     b.replicas.front().record_index;
            });
  return closed;
}

std::vector<bool> stream_membership(std::size_t record_count,
                                    const std::vector<ReplicaStream>& streams) {
  std::vector<bool> member(record_count, false);
  for (const auto& stream : streams) {
    for (const auto& replica : stream.replicas) {
      member[replica.record_index] = true;
    }
  }
  return member;
}

}  // namespace rloop::core
