#include "core/replica_detector.h"

#include <algorithm>
#include <array>
#include <string>
#include <unordered_map>

#include "util/arena.h"
#include "util/flat_map.h"

namespace rloop::core {

std::vector<int> ReplicaStream::ttl_deltas() const {
  std::vector<int> deltas;
  deltas.reserve(replicas.size() > 0 ? replicas.size() - 1 : 0);
  for (std::size_t i = 1; i < replicas.size(); ++i) {
    deltas.push_back(static_cast<int>(replicas[i - 1].ttl) -
                     static_cast<int>(replicas[i].ttl));
  }
  return deltas;
}

int ReplicaStream::dominant_ttl_delta() const {
  // A TTL delta fits [1, 255]; a direct-indexed counter avoids the
  // allocating ordered map this used, and the ascending scan with a strict
  // `>` keeps the same tie-break (smallest delta wins).
  std::array<std::uint32_t, 256> counts{};
  for (std::size_t i = 1; i < replicas.size(); ++i) {
    const int d = static_cast<int>(replicas[i - 1].ttl) -
                  static_cast<int>(replicas[i].ttl);
    if (d > 0) ++counts[static_cast<std::size_t>(d)];
  }
  int best = 0;
  std::uint32_t best_count = 0;
  for (int d = 1; d < 256; ++d) {
    if (counts[static_cast<std::size_t>(d)] > best_count) {
      best = d;
      best_count = counts[static_cast<std::size_t>(d)];
    }
  }
  return best;
}

double ReplicaStream::mean_spacing_ns() const {
  if (replicas.size() < 2) return 0.0;
  return static_cast<double>(duration()) /
         static_cast<double>(replicas.size() - 1);
}

ReplicaDetector::ReplicaDetector(ReplicaDetectorConfig config,
                                 telemetry::Registry* registry,
                                 telemetry::DecisionLog* journal)
    : config_(config),
      registry_(registry),
      journal_(journal),
      m_records_(telemetry::get_counter(
          registry, "rloop_detector_records_total", {},
          "Parsed records scanned by the replica detector")),
      m_replicas_(telemetry::get_counter(
          registry, "rloop_detector_replicas_matched_total", {},
          "Observations matched into an existing replica stream")),
      m_streams_opened_(telemetry::get_counter(
          registry, "rloop_detector_streams_opened_total", {},
          "Candidate streams opened (one per first-seen header)")),
      m_streams_expired_(telemetry::get_counter(
          registry, "rloop_detector_streams_expired_total", {},
          "Candidate streams closed by the stream timeout")),
      m_streams_emitted_(telemetry::get_counter(
          registry, "rloop_detector_streams_emitted_total", {},
          "Closed streams with >= 2 replicas handed to validation")),
      m_spacing_(telemetry::get_histogram(
          registry, "rloop_detector_replica_spacing_ns",
          telemetry::spacing_bounds_ns(), {},
          "Spacing between successive replicas of one stream")) {}

namespace {

struct LocalCounts {
  std::uint64_t records = 0;
  std::uint64_t replicas = 0;
  std::uint64_t opened = 0;
  std::uint64_t expired = 0;
  std::uint64_t emitted = 0;

  void add(const LocalCounts& other) {
    records += other.records;
    replicas += other.replicas;
    opened += other.opened;
    expired += other.expired;
    emitted += other.emitted;
  }
};

// The canonical emission order: (start, first record index) is a strict
// total order — a record heads at most one stream — so sorted output does
// not depend on closing order, and the sharded path's merge of per-shard
// sorted runs reproduces the serial order exactly.
void sort_streams(std::vector<ReplicaStream>& streams) {
  std::sort(streams.begin(), streams.end(),
            [](const ReplicaStream& a, const ReplicaStream& b) {
              if (a.start() != b.start()) return a.start() < b.start();
              return a.replicas.front().record_index <
                     b.replicas.front().record_index;
            });
}

// ---------------------------------------------------------------------------
// Flat engine: open streams live in one FlatMap keyed by ReplicaKey, replica
// lists in an arena. One candidate stream per first-seen header means
// millions of tiny allocations per trace on the old engine; here a stream is
// a bump-allocated node with two inline replicas (the overwhelming majority
// of candidates never grow past one), overflowing into arena-chunked spans,
// all freed wholesale when the state is destroyed.

// Overflow storage for replicas beyond the two inline slots.
struct ReplicaChunk {
  static constexpr std::uint32_t kCap = 6;
  ReplicaChunk* next = nullptr;
  std::uint32_t n = 0;
  Replica items[kCap];
};

// One open candidate stream. Several can be open for one key (IP ID reuse
// over a long trace); they chain newest-first through `older`, mirroring the
// back-to-front scan order of the reference engine's per-key vector.
struct FlatOpenStream {
  FlatOpenStream* older = nullptr;
  ReplicaChunk* head_chunk = nullptr;
  ReplicaChunk* tail_chunk = nullptr;
  std::uint32_t count = 0;
  net::TimeNs last_ts = 0;
  std::uint8_t last_ttl = 0;
  net::Ipv4Addr dst;
  net::Prefix dst24;
  Replica inline_replicas[2];

  void push(util::Arena& arena, const Replica& r) {
    if (count < 2) {
      inline_replicas[count] = r;
    } else {
      if (tail_chunk == nullptr || tail_chunk->n == ReplicaChunk::kCap) {
        auto* chunk = arena.create<ReplicaChunk>();
        if (tail_chunk != nullptr) {
          tail_chunk->next = chunk;
        } else {
          head_chunk = chunk;
        }
        tail_chunk = chunk;
      }
      tail_chunk->items[tail_chunk->n++] = r;
    }
    ++count;
  }

  net::TimeNs start() const { return inline_replicas[0].ts; }
  // Every accepted replica updates last_ts, so last_ts is always the final
  // replica's timestamp — the stream's end.
  net::TimeNs end() const { return last_ts; }
  std::uint32_t first_record_index() const {
    return inline_replicas[0].record_index;
  }

  std::vector<Replica> materialize() const {
    std::vector<Replica> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count && i < 2; ++i) {
      out.push_back(inline_replicas[i]);
    }
    for (const ReplicaChunk* c = head_chunk; c != nullptr; c = c->next) {
      out.insert(out.end(), c->items, c->items + c->n);
    }
    return out;
  }
};

static_assert(std::is_trivially_destructible_v<FlatOpenStream>,
              "arena-allocated");
static_assert(std::is_trivially_destructible_v<ReplicaChunk>,
              "arena-allocated");

// The per-record state machine on the flat layout. Field-identical output to
// the reference engine below — including every journal event's payload and
// every counter, the expired count included: expiry is determined purely by
// last_ts against the current record's timestamp, and both engines hold the
// same open set at every record by induction.
struct FlatDetectState {
  FlatDetectState(const ReplicaDetectorConfig& cfg, telemetry::Histogram* sp,
                  telemetry::DecisionLog* jl)
      : config(cfg), spacing(sp), journal(jl) {}

  const ReplicaDetectorConfig& config;
  telemetry::Histogram* spacing;
  telemetry::DecisionLog* journal;

  util::Arena arena;
  util::FlatMap<ReplicaKey, FlatOpenStream*, ReplicaKeyHash> open;
  std::vector<ReplicaStream> closed;
  LocalCounts counts;

  // Periodic sweep keeps the open table bounded by the packet arrival rate
  // times the stream timeout rather than by the trace length: most entries
  // are ordinary packets that never produce a replica. Sweep timing affects
  // only memory and the expired counter, never which streams are emitted: a
  // timed-out stream can no longer be extended (the per-key expiry check
  // below closes it before any extension attempt).
  static constexpr std::uint32_t kSweepInterval = 1 << 16;
  std::uint32_t since_sweep = 0;

  void close_stream(const ReplicaKey& key, const FlatOpenStream* os) {
    if (os->count >= 2) {
      ++counts.emitted;
      telemetry::record(
          journal, {.kind = telemetry::DecisionKind::stream_emitted,
                    .dst24 = os->dst24,
                    .ts = os->end(),
                    .record_index = os->first_record_index(),
                    .detail = static_cast<std::int64_t>(os->count),
                    .detail2 = os->start()});
      ReplicaStream stream;
      stream.key = key;
      stream.dst = os->dst;
      stream.dst24 = os->dst24;
      stream.replicas = os->materialize();
      closed.push_back(std::move(stream));
    }
  }

  // Closes every timed-out stream in the chain and returns the surviving
  // chain, order preserved. Expired nodes stay in the arena (freed
  // wholesale); idempotent, as erase_if requires.
  FlatOpenStream* expire_chain(const ReplicaKey& key, FlatOpenStream* head,
                               net::TimeNs now) {
    FlatOpenStream* kept = nullptr;
    FlatOpenStream** tail = &kept;
    while (head != nullptr) {
      FlatOpenStream* next = head->older;
      if (now - head->last_ts > config.stream_timeout) {
        ++counts.expired;
        close_stream(key, head);
      } else {
        *tail = head;
        tail = &head->older;
      }
      head = next;
    }
    *tail = nullptr;
    return kept;
  }

  // `key` must be make_replica_key over record i's captured bytes; the
  // caller supplies it built from the store's precomputed hash column, so
  // FNV runs exactly once per record on every path.
  void process(const RecordStore& store, std::size_t i,
               const ReplicaKey& key) {
    ++counts.records;
    const net::TimeNs ts = store.ts(i);
    const std::uint8_t ttl = store.ttl(i);
    const auto index = static_cast<std::uint32_t>(i);

    if (++since_sweep >= kSweepInterval) {
      since_sweep = 0;
      open.erase_if([&](const ReplicaKey& k, FlatOpenStream*& head) {
        head = expire_chain(k, head, ts);
        return head == nullptr;
      });
    }

    const auto matches = [&](const ReplicaKey& k) { return k == key; };
    FlatOpenStream** entry = open.find_hashed(key.hash, matches);
    if (entry != nullptr) {
      // Expire stale streams for this key first.
      *entry = expire_chain(key, *entry, ts);

      // Try to extend the most recent compatible stream (newest first).
      for (FlatOpenStream* os = *entry; os != nullptr; os = os->older) {
        const int delta =
            static_cast<int>(os->last_ttl) - static_cast<int>(ttl);
        const bool looped = delta >= config.min_ttl_delta;
        const bool duplicate = config.keep_link_layer_duplicates && delta == 0;
        if (looped || duplicate) {
          ++counts.replicas;
          telemetry::observe(spacing, static_cast<double>(ts - os->last_ts));
          os->push(arena, {index, ts, ttl});
          if (looped) os->last_ttl = ttl;
          os->last_ts = ts;
          telemetry::record(
              journal, {.kind = telemetry::DecisionKind::replica_accepted,
                        .dst24 = store.dst24(i),
                        .ts = ts,
                        .record_index = index,
                        .detail = delta,
                        .detail2 = static_cast<std::int64_t>(os->count)});
          return;
        }
      }

      // A live candidate stream existed for this exact header, but the TTL
      // delta disqualified the observation — the one per-packet negative
      // decision worth journaling (first-seen packets are non-decisions).
      if (*entry != nullptr) {
        telemetry::record(
            journal, {.kind = telemetry::DecisionKind::replica_rejected,
                      .dst24 = store.dst24(i),
                      .ts = ts,
                      .record_index = index,
                      .detail = static_cast<int>((*entry)->last_ttl) -
                                static_cast<int>(ttl)});
      }
    }

    // Start a new stream headed by this packet.
    ++counts.opened;
    auto* os = arena.create<FlatOpenStream>();
    os->dst = store.dst(i);
    os->dst24 = store.dst24(i);
    os->inline_replicas[0] = {index, ts, ttl};
    os->count = 1;
    os->last_ttl = ttl;
    os->last_ts = ts;
    if (entry != nullptr) {
      os->older = *entry;
      *entry = os;  // no rehash since find_hashed: the slot pointer is valid
    } else {
      open.emplace_hashed(key.hash, matches, key, os);
    }
  }

  std::vector<ReplicaStream> finish() {
    open.for_each([&](const ReplicaKey& key, FlatOpenStream*& head) {
      for (const FlatOpenStream* os = head; os != nullptr; os = os->older) {
        close_stream(key, os);
      }
    });
    open.clear();
    sort_streams(closed);
    return std::move(closed);
  }
};

// ---------------------------------------------------------------------------
// Reference engine (pre-flat-map), retained verbatim as the differential
// oracle for detect_reference(). Do not modify without regenerating the
// golden fixtures — its output defines the pipeline's semantics.

struct OpenStream {
  ReplicaStream stream;
  std::uint8_t last_ttl = 0;
  net::TimeNs last_ts = 0;
};

struct DetectState {
  DetectState(const ReplicaDetectorConfig& cfg, telemetry::Histogram* sp,
              telemetry::DecisionLog* jl)
      : config(cfg), spacing(sp), journal(jl) {}

  const ReplicaDetectorConfig& config;
  telemetry::Histogram* spacing;
  telemetry::DecisionLog* journal;

  // Several streams can be open for one key (IP ID reuse over a long trace),
  // so each key maps to a small vector of open streams.
  std::unordered_map<ReplicaKey, std::vector<OpenStream>, ReplicaKeyHash> open;
  std::vector<ReplicaStream> closed;
  LocalCounts counts;

  static constexpr std::uint32_t kSweepInterval = 1 << 16;
  std::uint32_t since_sweep = 0;

  void close_stream(OpenStream&& os) {
    if (os.stream.size() >= 2) {
      ++counts.emitted;
      telemetry::record(
          journal,
          {.kind = telemetry::DecisionKind::stream_emitted,
           .dst24 = os.stream.dst24,
           .ts = os.stream.end(),
           .record_index = os.stream.replicas.front().record_index,
           .detail = static_cast<std::int64_t>(os.stream.size()),
           .detail2 = os.stream.start()});
      closed.push_back(std::move(os.stream));
    }
  }

  void process(const ParsedRecord& rec, const ReplicaKey& key) {
    ++counts.records;

    if (++since_sweep >= kSweepInterval) {
      since_sweep = 0;
      for (auto it = open.begin(); it != open.end();) {
        auto& vec = it->second;
        for (auto sit = vec.begin(); sit != vec.end();) {
          if (rec.ts - sit->last_ts > config.stream_timeout) {
            ++counts.expired;
            close_stream(std::move(*sit));
            sit = vec.erase(sit);
          } else {
            ++sit;
          }
        }
        it = vec.empty() ? open.erase(it) : std::next(it);
      }
    }

    auto& streams = open[key];

    // Expire stale streams for this key first.
    for (auto it = streams.begin(); it != streams.end();) {
      if (rec.ts - it->last_ts > config.stream_timeout) {
        ++counts.expired;
        close_stream(std::move(*it));
        it = streams.erase(it);
      } else {
        ++it;
      }
    }

    // Try to extend the most recent compatible stream.
    for (auto it = streams.rbegin(); it != streams.rend(); ++it) {
      const int delta =
          static_cast<int>(it->last_ttl) - static_cast<int>(rec.pkt.ip.ttl);
      const bool looped = delta >= config.min_ttl_delta;
      const bool duplicate = config.keep_link_layer_duplicates && delta == 0;
      if (looped || duplicate) {
        ++counts.replicas;
        telemetry::observe(spacing,
                           static_cast<double>(rec.ts - it->last_ts));
        it->stream.replicas.push_back({rec.index, rec.ts, rec.pkt.ip.ttl});
        if (looped) it->last_ttl = rec.pkt.ip.ttl;
        it->last_ts = rec.ts;
        telemetry::record(
            journal, {.kind = telemetry::DecisionKind::replica_accepted,
                      .dst24 = rec.dst24,
                      .ts = rec.ts,
                      .record_index = rec.index,
                      .detail = delta,
                      .detail2 = static_cast<std::int64_t>(it->stream.size())});
        return;
      }
    }

    if (!streams.empty()) {
      telemetry::record(
          journal, {.kind = telemetry::DecisionKind::replica_rejected,
                    .dst24 = rec.dst24,
                    .ts = rec.ts,
                    .record_index = rec.index,
                    .detail = static_cast<int>(streams.back().last_ttl) -
                              static_cast<int>(rec.pkt.ip.ttl)});
    }

    // Start a new stream headed by this packet.
    ++counts.opened;
    OpenStream os;
    os.stream.key = key;
    os.stream.dst = rec.pkt.ip.dst;
    os.stream.dst24 = rec.dst24;
    os.stream.replicas.push_back({rec.index, rec.ts, rec.pkt.ip.ttl});
    os.last_ttl = rec.pkt.ip.ttl;
    os.last_ts = rec.ts;
    streams.push_back(std::move(os));
  }

  std::vector<ReplicaStream> finish() {
    for (auto& [key, streams] : open) {
      for (auto& os : streams) {
        close_stream(std::move(os));
      }
    }
    open.clear();
    sort_streams(closed);
    return std::move(closed);
  }
};

}  // namespace

std::vector<ReplicaStream> ReplicaDetector::detect(
    const RecordStore& store) const {
  FlatDetectState state(config_, m_spacing_, journal_);
  const std::size_t n = store.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!store.ok(i)) continue;
    state.process(store, i,
                  make_replica_key(store.bytes(i), store.key_hash(i)));
  }
  auto closed = state.finish();

  telemetry::inc(m_records_, state.counts.records);
  telemetry::inc(m_replicas_, state.counts.replicas);
  telemetry::inc(m_streams_opened_, state.counts.opened);
  telemetry::inc(m_streams_expired_, state.counts.expired);
  telemetry::inc(m_streams_emitted_, state.counts.emitted);
  return closed;
}

std::vector<ReplicaStream> ReplicaDetector::detect(
    const net::Trace& trace, const std::vector<ParsedRecord>& records) const {
  return detect(RecordStore::build(trace, records));
}

std::vector<ReplicaStream> ReplicaDetector::detect_sharded(
    const RecordStore& store, util::ThreadPool& pool,
    unsigned num_shards) const {
  if (num_shards < 2) return detect(store);
  const std::size_t n = store.size();

  // Per-shard record-index lists, in trace (= time) order, sized exactly:
  // one counting pass over the hash column, then one reserve per shard.
  std::vector<std::uint32_t> shard_size(num_shards, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!store.ok(i)) continue;
    ++shard_size[shard_of_key_hash(store.key_hash(i), num_shards)];
  }
  std::vector<std::vector<std::uint32_t>> shard_records(num_shards);
  for (unsigned s = 0; s < num_shards; ++s) {
    shard_records[s].reserve(shard_size[s]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!store.ok(i)) continue;
    shard_records[shard_of_key_hash(store.key_hash(i), num_shards)].push_back(
        static_cast<std::uint32_t>(i));
  }

  // Parallel over shards: the serial state machine per shard, fed exactly
  // the records whose key hashes to it.
  std::vector<telemetry::Histogram*> shard_latency(num_shards, nullptr);
  for (unsigned s = 0; s < num_shards; ++s) {
    shard_latency[s] = telemetry::get_histogram(
        registry_, "rloop_pipeline_shard_latency_ns",
        telemetry::latency_bounds_ns(),
        {{"stage", "detect"}, {"shard", std::to_string(s)}},
        "Wall-clock latency of one pipeline shard per sharded call");
  }
  std::vector<std::vector<ReplicaStream>> shard_closed(num_shards);
  std::vector<LocalCounts> shard_counts(num_shards);
  pool.parallel_for(num_shards, [&](std::size_t s) {
    const telemetry::ScopedTimer timer(shard_latency[s]);
    FlatDetectState state(config_, m_spacing_, journal_);
    for (const std::uint32_t i : shard_records[s]) {
      // Reuse the store's hash: per-shard key construction is a masked copy.
      state.process(store, i,
                    make_replica_key(store.bytes(i), store.key_hash(i)));
    }
    shard_closed[s] = state.finish();
    shard_counts[s] = state.counts;
  }, "detect_shard");

  // Merge: concatenate and restore the canonical (start, first record index)
  // total order — identical to the serial sort because the comparator is a
  // strict total order over streams.
  LocalCounts counts;
  std::size_t total_streams = 0;
  for (unsigned s = 0; s < num_shards; ++s) {
    counts.add(shard_counts[s]);
    total_streams += shard_closed[s].size();
  }
  std::vector<ReplicaStream> closed;
  closed.reserve(total_streams);
  for (auto& shard : shard_closed) {
    std::move(shard.begin(), shard.end(), std::back_inserter(closed));
  }
  sort_streams(closed);

  telemetry::inc(m_records_, counts.records);
  telemetry::inc(m_replicas_, counts.replicas);
  telemetry::inc(m_streams_opened_, counts.opened);
  telemetry::inc(m_streams_expired_, counts.expired);
  telemetry::inc(m_streams_emitted_, counts.emitted);
  return closed;
}

std::vector<ReplicaStream> ReplicaDetector::detect_sharded(
    const net::Trace& trace, const std::vector<ParsedRecord>& records,
    util::ThreadPool& pool, unsigned num_shards) const {
  if (num_shards < 2) return detect(trace, records);
  return detect_sharded(RecordStore::build_parallel(trace, records, pool),
                        pool, num_shards);
}

std::vector<ReplicaStream> ReplicaDetector::detect_reference(
    const net::Trace& trace, const std::vector<ParsedRecord>& records) const {
  DetectState state(config_, m_spacing_, journal_);
  for (const ParsedRecord& rec : records) {
    if (!rec.ok) continue;
    state.process(rec, make_replica_key(trace[rec.index].bytes()));
  }
  auto closed = state.finish();

  telemetry::inc(m_records_, state.counts.records);
  telemetry::inc(m_replicas_, state.counts.replicas);
  telemetry::inc(m_streams_opened_, state.counts.opened);
  telemetry::inc(m_streams_expired_, state.counts.expired);
  telemetry::inc(m_streams_emitted_, state.counts.emitted);
  return closed;
}

std::vector<bool> stream_membership(std::size_t record_count,
                                    const std::vector<ReplicaStream>& streams) {
  std::vector<bool> member(record_count, false);
  for (const auto& stream : streams) {
    for (const auto& replica : stream.replicas) {
      member[replica.record_index] = true;
    }
  }
  return member;
}

}  // namespace rloop::core
