#include "core/replica_detector.h"

#include <algorithm>
#include <array>
#include <string>
#include <unordered_map>

#include "core/detect_state.h"
#include "util/arena.h"
#include "util/flat_map.h"
#include "util/simd.h"

namespace rloop::core {

using detail::FlatDetectState;
using detail::LocalCounts;
using detail::sort_streams;

std::vector<int> ReplicaStream::ttl_deltas() const {
  std::vector<int> deltas;
  deltas.reserve(replicas.size() > 0 ? replicas.size() - 1 : 0);
  for (std::size_t i = 1; i < replicas.size(); ++i) {
    deltas.push_back(static_cast<int>(replicas[i - 1].ttl) -
                     static_cast<int>(replicas[i].ttl));
  }
  return deltas;
}

int ReplicaStream::dominant_ttl_delta() const {
  // A TTL delta fits [1, 255]; a direct-indexed counter avoids the
  // allocating ordered map this used, and the ascending scan with a strict
  // `>` keeps the same tie-break (smallest delta wins). The pairwise
  // accumulation runs through the SIMD histogram kernel in 256-pair tiles
  // gathered from the replica array (each TTL is one strided byte of a
  // Replica), with one element of overlap so tile seams contribute their
  // pair exactly once.
  std::array<std::uint32_t, 256> counts{};
  const std::size_t n = replicas.size();
  std::uint8_t ttls[257];
  std::size_t i = 1;
  while (i < n) {
    const std::size_t pairs = std::min<std::size_t>(256, n - i);
    ttls[0] = replicas[i - 1].ttl;
    for (std::size_t j = 0; j < pairs; ++j) {
      ttls[j + 1] = replicas[i + j].ttl;
    }
    util::simd::ttl_delta_hist(ttls, pairs + 1, counts.data());
    i += pairs;
  }
  int best = 0;
  std::uint32_t best_count = 0;
  for (int d = 1; d < 256; ++d) {
    if (counts[static_cast<std::size_t>(d)] > best_count) {
      best = d;
      best_count = counts[static_cast<std::size_t>(d)];
    }
  }
  return best;
}

double ReplicaStream::mean_spacing_ns() const {
  if (replicas.size() < 2) return 0.0;
  return static_cast<double>(duration()) /
         static_cast<double>(replicas.size() - 1);
}

ReplicaDetector::ReplicaDetector(ReplicaDetectorConfig config,
                                 telemetry::Registry* registry,
                                 telemetry::DecisionLog* journal)
    : config_(config),
      registry_(registry),
      journal_(journal),
      m_records_(telemetry::get_counter(
          registry, "rloop_detector_records_total", {},
          "Parsed records scanned by the replica detector")),
      m_replicas_(telemetry::get_counter(
          registry, "rloop_detector_replicas_matched_total", {},
          "Observations matched into an existing replica stream")),
      m_streams_opened_(telemetry::get_counter(
          registry, "rloop_detector_streams_opened_total", {},
          "Candidate streams opened (one per first-seen header)")),
      m_streams_expired_(telemetry::get_counter(
          registry, "rloop_detector_streams_expired_total", {},
          "Candidate streams closed by the stream timeout")),
      m_streams_emitted_(telemetry::get_counter(
          registry, "rloop_detector_streams_emitted_total", {},
          "Closed streams with >= 2 replicas handed to validation")),
      m_spacing_(telemetry::get_histogram(
          registry, "rloop_detector_replica_spacing_ns",
          telemetry::spacing_bounds_ns(), {},
          "Spacing between successive replicas of one stream")) {}

// The flat engine itself (FlatDetectState and its helpers) lives in
// core/detect_state.h: the staged dataflow in core/pipeline.cc keeps one
// warm state per shard across runs, so it needs the type, not just the
// detect() entry points below.

namespace {

// ---------------------------------------------------------------------------
// Reference engine (pre-flat-map), retained verbatim as the differential
// oracle for detect_reference(). Do not modify without regenerating the
// golden fixtures — its output defines the pipeline's semantics.

struct OpenStream {
  ReplicaStream stream;
  std::uint8_t last_ttl = 0;
  net::TimeNs last_ts = 0;
};

struct DetectState {
  DetectState(const ReplicaDetectorConfig& cfg, telemetry::Histogram* sp,
              telemetry::DecisionLog* jl)
      : config(cfg), spacing(sp), journal(jl) {}

  const ReplicaDetectorConfig& config;
  telemetry::Histogram* spacing;
  telemetry::DecisionLog* journal;

  // Several streams can be open for one key (IP ID reuse over a long trace),
  // so each key maps to a small vector of open streams.
  std::unordered_map<ReplicaKey, std::vector<OpenStream>, ReplicaKeyHash> open;
  std::vector<ReplicaStream> closed;
  LocalCounts counts;

  static constexpr std::uint32_t kSweepInterval = 1 << 16;
  std::uint32_t since_sweep = 0;

  void close_stream(OpenStream&& os) {
    if (os.stream.size() >= 2) {
      ++counts.emitted;
      telemetry::record(
          journal,
          {.kind = telemetry::DecisionKind::stream_emitted,
           .dst24 = os.stream.dst24,
           .ts = os.stream.end(),
           .record_index = os.stream.replicas.front().record_index,
           .detail = static_cast<std::int64_t>(os.stream.size()),
           .detail2 = os.stream.start()});
      closed.push_back(std::move(os.stream));
    }
  }

  void process(const ParsedRecord& rec, const ReplicaKey& key) {
    ++counts.records;

    if (++since_sweep >= kSweepInterval) {
      since_sweep = 0;
      for (auto it = open.begin(); it != open.end();) {
        auto& vec = it->second;
        for (auto sit = vec.begin(); sit != vec.end();) {
          if (rec.ts - sit->last_ts > config.stream_timeout) {
            ++counts.expired;
            close_stream(std::move(*sit));
            sit = vec.erase(sit);
          } else {
            ++sit;
          }
        }
        it = vec.empty() ? open.erase(it) : std::next(it);
      }
    }

    auto& streams = open[key];

    // Expire stale streams for this key first.
    for (auto it = streams.begin(); it != streams.end();) {
      if (rec.ts - it->last_ts > config.stream_timeout) {
        ++counts.expired;
        close_stream(std::move(*it));
        it = streams.erase(it);
      } else {
        ++it;
      }
    }

    // Try to extend the most recent compatible stream.
    for (auto it = streams.rbegin(); it != streams.rend(); ++it) {
      const int delta =
          static_cast<int>(it->last_ttl) - static_cast<int>(rec.pkt.ip.ttl);
      const bool looped = delta >= config.min_ttl_delta;
      const bool duplicate = config.keep_link_layer_duplicates && delta == 0;
      if (looped || duplicate) {
        ++counts.replicas;
        telemetry::observe(spacing,
                           static_cast<double>(rec.ts - it->last_ts));
        it->stream.replicas.push_back({rec.index, rec.ts, rec.pkt.ip.ttl});
        if (looped) it->last_ttl = rec.pkt.ip.ttl;
        it->last_ts = rec.ts;
        telemetry::record(
            journal, {.kind = telemetry::DecisionKind::replica_accepted,
                      .dst24 = rec.dst24,
                      .ts = rec.ts,
                      .record_index = rec.index,
                      .detail = delta,
                      .detail2 = static_cast<std::int64_t>(it->stream.size())});
        return;
      }
    }

    if (!streams.empty()) {
      telemetry::record(
          journal, {.kind = telemetry::DecisionKind::replica_rejected,
                    .dst24 = rec.dst24,
                    .ts = rec.ts,
                    .record_index = rec.index,
                    .detail = static_cast<int>(streams.back().last_ttl) -
                              static_cast<int>(rec.pkt.ip.ttl)});
    }

    // Start a new stream headed by this packet.
    ++counts.opened;
    OpenStream os;
    os.stream.key = key;
    os.stream.dst = rec.pkt.ip.dst;
    os.stream.dst24 = rec.dst24;
    os.stream.replicas.push_back({rec.index, rec.ts, rec.pkt.ip.ttl});
    os.last_ttl = rec.pkt.ip.ttl;
    os.last_ts = rec.ts;
    streams.push_back(std::move(os));
  }

  std::vector<ReplicaStream> finish() {
    for (auto& [key, streams] : open) {
      for (auto& os : streams) {
        close_stream(std::move(os));
      }
    }
    open.clear();
    sort_streams(closed);
    return std::move(closed);
  }
};

}  // namespace

std::vector<ReplicaStream> ReplicaDetector::detect(
    const RecordStore& store) const {
  FlatDetectState state(config_, m_spacing_, journal_);
  const std::size_t n = store.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!store.ok(i)) continue;
    state.process(store, i,
                  make_replica_key(store.bytes(i), store.key_hash(i)));
  }
  auto closed = state.finish();

  telemetry::inc(m_records_, state.counts.records);
  telemetry::inc(m_replicas_, state.counts.replicas);
  telemetry::inc(m_streams_opened_, state.counts.opened);
  telemetry::inc(m_streams_expired_, state.counts.expired);
  telemetry::inc(m_streams_emitted_, state.counts.emitted);
  return closed;
}

std::vector<ReplicaStream> ReplicaDetector::detect(
    const net::Trace& trace, const std::vector<ParsedRecord>& records) const {
  return detect(RecordStore::build(trace, records));
}

std::vector<ReplicaStream> ReplicaDetector::detect_sharded(
    const RecordStore& store, util::ThreadPool& pool,
    unsigned num_shards) const {
  if (num_shards < 2) return detect(store);
  const std::size_t n = store.size();

  // Shard assignment is one vectorized pass over the hash column (shard
  // counts are powers of two from ParallelConfig, so the modulo is a mask;
  // the scalar fallback covers a caller-supplied odd count). !ok rows get a
  // shard computed from their zero hash, harmless: both passes below skip
  // them.
  std::vector<std::uint32_t> shard_ids(n);
  if (n > 0) {
    if ((num_shards & (num_shards - 1)) == 0) {
      util::simd::mix64_mask(store.key_hash_column().data(), shard_ids.data(),
                             n, num_shards - 1);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        shard_ids[i] = shard_of_key_hash(store.key_hash(i), num_shards);
      }
    }
  }

  // Per-shard record-index lists, in trace (= time) order, sized exactly:
  // one counting pass, then one reserve per shard.
  std::vector<std::uint32_t> shard_size(num_shards, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!store.ok(i)) continue;
    ++shard_size[shard_ids[i]];
  }
  std::vector<std::vector<std::uint32_t>> shard_records(num_shards);
  for (unsigned s = 0; s < num_shards; ++s) {
    shard_records[s].reserve(shard_size[s]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!store.ok(i)) continue;
    shard_records[shard_ids[i]].push_back(static_cast<std::uint32_t>(i));
  }

  // Parallel over shards: the serial state machine per shard, fed exactly
  // the records whose key hashes to it.
  std::vector<telemetry::Histogram*> shard_latency(num_shards, nullptr);
  for (unsigned s = 0; s < num_shards; ++s) {
    shard_latency[s] = telemetry::get_histogram(
        registry_, "rloop_pipeline_shard_latency_ns",
        telemetry::latency_bounds_ns(),
        {{"stage", "detect"}, {"shard", std::to_string(s)}},
        "Wall-clock latency of one pipeline shard per sharded call");
  }
  std::vector<std::vector<ReplicaStream>> shard_closed(num_shards);
  std::vector<LocalCounts> shard_counts(num_shards);
  pool.parallel_for(num_shards, [&](std::size_t s) {
    const telemetry::ScopedTimer timer(shard_latency[s]);
    FlatDetectState state(config_, m_spacing_, journal_);
    for (const std::uint32_t i : shard_records[s]) {
      // Reuse the store's hash: per-shard key construction is a masked copy.
      state.process(store, i,
                    make_replica_key(store.bytes(i), store.key_hash(i)));
    }
    shard_closed[s] = state.finish();
    shard_counts[s] = state.counts;
  }, "detect_shard");

  // Merge: concatenate and restore the canonical (start, first record index)
  // total order — identical to the serial sort because the comparator is a
  // strict total order over streams.
  LocalCounts counts;
  std::size_t total_streams = 0;
  for (unsigned s = 0; s < num_shards; ++s) {
    counts.add(shard_counts[s]);
    total_streams += shard_closed[s].size();
  }
  std::vector<ReplicaStream> closed;
  closed.reserve(total_streams);
  for (auto& shard : shard_closed) {
    std::move(shard.begin(), shard.end(), std::back_inserter(closed));
  }
  sort_streams(closed);

  telemetry::inc(m_records_, counts.records);
  telemetry::inc(m_replicas_, counts.replicas);
  telemetry::inc(m_streams_opened_, counts.opened);
  telemetry::inc(m_streams_expired_, counts.expired);
  telemetry::inc(m_streams_emitted_, counts.emitted);
  return closed;
}

std::vector<ReplicaStream> ReplicaDetector::detect_sharded(
    const net::Trace& trace, const std::vector<ParsedRecord>& records,
    util::ThreadPool& pool, unsigned num_shards) const {
  if (num_shards < 2) return detect(trace, records);
  return detect_sharded(RecordStore::build_parallel(trace, records, pool),
                        pool, num_shards);
}

std::vector<ReplicaStream> ReplicaDetector::detect_reference(
    const net::Trace& trace, const std::vector<ParsedRecord>& records) const {
  DetectState state(config_, m_spacing_, journal_);
  for (const ParsedRecord& rec : records) {
    if (!rec.ok) continue;
    state.process(rec, make_replica_key(trace[rec.index].bytes()));
  }
  auto closed = state.finish();

  telemetry::inc(m_records_, state.counts.records);
  telemetry::inc(m_replicas_, state.counts.replicas);
  telemetry::inc(m_streams_opened_, state.counts.opened);
  telemetry::inc(m_streams_expired_, state.counts.expired);
  telemetry::inc(m_streams_emitted_, state.counts.emitted);
  return closed;
}

std::vector<bool> stream_membership(std::size_t record_count,
                                    const std::vector<ReplicaStream>& streams) {
  std::vector<bool> member;
  stream_membership(record_count, streams, member);
  return member;
}

void stream_membership(std::size_t record_count,
                       const std::vector<ReplicaStream>& streams,
                       std::vector<bool>& out) {
  out.assign(record_count, false);
  for (const auto& stream : streams) {
    for (const auto& replica : stream.replicas) {
      out[replica.record_index] = true;
    }
  }
}

}  // namespace rloop::core
