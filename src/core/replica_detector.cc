#include "core/replica_detector.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>

namespace rloop::core {

std::vector<int> ReplicaStream::ttl_deltas() const {
  std::vector<int> deltas;
  deltas.reserve(replicas.size() > 0 ? replicas.size() - 1 : 0);
  for (std::size_t i = 1; i < replicas.size(); ++i) {
    deltas.push_back(static_cast<int>(replicas[i - 1].ttl) -
                     static_cast<int>(replicas[i].ttl));
  }
  return deltas;
}

int ReplicaStream::dominant_ttl_delta() const {
  std::map<int, int> counts;
  for (int d : ttl_deltas()) {
    if (d > 0) ++counts[d];
  }
  int best = 0;
  int best_count = 0;
  for (const auto& [delta, count] : counts) {
    if (count > best_count) {
      best = delta;
      best_count = count;
    }
  }
  return best;
}

double ReplicaStream::mean_spacing_ns() const {
  if (replicas.size() < 2) return 0.0;
  return static_cast<double>(duration()) /
         static_cast<double>(replicas.size() - 1);
}

ReplicaDetector::ReplicaDetector(ReplicaDetectorConfig config,
                                 telemetry::Registry* registry,
                                 telemetry::DecisionLog* journal)
    : config_(config),
      registry_(registry),
      journal_(journal),
      m_records_(telemetry::get_counter(
          registry, "rloop_detector_records_total", {},
          "Parsed records scanned by the replica detector")),
      m_replicas_(telemetry::get_counter(
          registry, "rloop_detector_replicas_matched_total", {},
          "Observations matched into an existing replica stream")),
      m_streams_opened_(telemetry::get_counter(
          registry, "rloop_detector_streams_opened_total", {},
          "Candidate streams opened (one per first-seen header)")),
      m_streams_expired_(telemetry::get_counter(
          registry, "rloop_detector_streams_expired_total", {},
          "Candidate streams closed by the stream timeout")),
      m_streams_emitted_(telemetry::get_counter(
          registry, "rloop_detector_streams_emitted_total", {},
          "Closed streams with >= 2 replicas handed to validation")),
      m_spacing_(telemetry::get_histogram(
          registry, "rloop_detector_replica_spacing_ns",
          telemetry::spacing_bounds_ns(), {},
          "Spacing between successive replicas of one stream")) {}

namespace {

struct OpenStream {
  ReplicaStream stream;
  std::uint8_t last_ttl = 0;
  net::TimeNs last_ts = 0;
};

struct LocalCounts {
  std::uint64_t records = 0;
  std::uint64_t replicas = 0;
  std::uint64_t opened = 0;
  std::uint64_t expired = 0;
  std::uint64_t emitted = 0;

  void add(const LocalCounts& other) {
    records += other.records;
    replicas += other.replicas;
    opened += other.opened;
    expired += other.expired;
    emitted += other.emitted;
  }
};

// The serial per-record state machine, factored out so the sharded path can
// run one instance per shard: feeding a shard exactly the records whose key
// hashes to it (in trace order) makes each instance's closed-stream set the
// per-key-identical subset of the serial run's.
struct DetectState {
  DetectState(const ReplicaDetectorConfig& cfg, telemetry::Histogram* sp,
              telemetry::DecisionLog* jl)
      : config(cfg), spacing(sp), journal(jl) {}

  const ReplicaDetectorConfig& config;
  telemetry::Histogram* spacing;
  telemetry::DecisionLog* journal;

  // Several streams can be open for one key (IP ID reuse over a long trace),
  // so each key maps to a small vector of open streams.
  std::unordered_map<ReplicaKey, std::vector<OpenStream>, ReplicaKeyHash> open;
  std::vector<ReplicaStream> closed;
  // Counters accumulate in plain locals and flush to the shared atomics once
  // per detect() call — the per-record loop pays no atomic traffic for
  // telemetry (only the per-match spacing histogram, and matches are rare).
  LocalCounts counts;

  // Periodic sweep keeps the open table bounded by the packet arrival rate
  // times the stream timeout rather than by the trace length: most entries
  // are ordinary packets that never produce a replica. Sweep timing affects
  // only memory and the expired counter, never which streams are emitted: a
  // timed-out stream can no longer be extended (the per-key expiry check
  // below closes it before any extension attempt).
  static constexpr std::uint32_t kSweepInterval = 1 << 16;
  std::uint32_t since_sweep = 0;

  void close_stream(OpenStream&& os) {
    if (os.stream.size() >= 2) {
      ++counts.emitted;
      telemetry::record(
          journal,
          {.kind = telemetry::DecisionKind::stream_emitted,
           .dst24 = os.stream.dst24,
           .ts = os.stream.end(),
           .record_index = os.stream.replicas.front().record_index,
           .detail = static_cast<std::int64_t>(os.stream.size()),
           .detail2 = os.stream.start()});
      closed.push_back(std::move(os.stream));
    }
  }

  // `key` must be make_replica_key over rec's captured bytes; the caller
  // supplies it so the sharded path can reuse the hash it already computed
  // for shard assignment instead of running FNV twice per record.
  void process(const ParsedRecord& rec, const ReplicaKey& key) {
    ++counts.records;

    if (++since_sweep >= kSweepInterval) {
      since_sweep = 0;
      for (auto it = open.begin(); it != open.end();) {
        auto& vec = it->second;
        for (auto sit = vec.begin(); sit != vec.end();) {
          if (rec.ts - sit->last_ts > config.stream_timeout) {
            ++counts.expired;
            close_stream(std::move(*sit));
            sit = vec.erase(sit);
          } else {
            ++sit;
          }
        }
        it = vec.empty() ? open.erase(it) : std::next(it);
      }
    }

    auto& streams = open[key];

    // Expire stale streams for this key first.
    for (auto it = streams.begin(); it != streams.end();) {
      if (rec.ts - it->last_ts > config.stream_timeout) {
        ++counts.expired;
        close_stream(std::move(*it));
        it = streams.erase(it);
      } else {
        ++it;
      }
    }

    // Try to extend the most recent compatible stream.
    for (auto it = streams.rbegin(); it != streams.rend(); ++it) {
      const int delta =
          static_cast<int>(it->last_ttl) - static_cast<int>(rec.pkt.ip.ttl);
      const bool looped = delta >= config.min_ttl_delta;
      const bool duplicate = config.keep_link_layer_duplicates && delta == 0;
      if (looped || duplicate) {
        ++counts.replicas;
        telemetry::observe(spacing,
                           static_cast<double>(rec.ts - it->last_ts));
        it->stream.replicas.push_back({rec.index, rec.ts, rec.pkt.ip.ttl});
        if (looped) it->last_ttl = rec.pkt.ip.ttl;
        it->last_ts = rec.ts;
        telemetry::record(
            journal, {.kind = telemetry::DecisionKind::replica_accepted,
                      .dst24 = rec.dst24,
                      .ts = rec.ts,
                      .record_index = rec.index,
                      .detail = delta,
                      .detail2 = static_cast<std::int64_t>(it->stream.size())});
        return;
      }
    }

    // A live candidate stream existed for this exact header, but the TTL
    // delta disqualified the observation — the one per-packet negative
    // decision worth journaling (first-seen packets are non-decisions).
    if (!streams.empty()) {
      telemetry::record(
          journal, {.kind = telemetry::DecisionKind::replica_rejected,
                    .dst24 = rec.dst24,
                    .ts = rec.ts,
                    .record_index = rec.index,
                    .detail = static_cast<int>(streams.back().last_ttl) -
                              static_cast<int>(rec.pkt.ip.ttl)});
    }

    // Start a new stream headed by this packet.
    ++counts.opened;
    OpenStream os;
    os.stream.key = key;
    os.stream.dst = rec.pkt.ip.dst;
    os.stream.dst24 = rec.dst24;
    os.stream.replicas.push_back({rec.index, rec.ts, rec.pkt.ip.ttl});
    os.last_ttl = rec.pkt.ip.ttl;
    os.last_ts = rec.ts;
    streams.push_back(std::move(os));
  }

  // Closes everything still open and sorts emissions into the pipeline's
  // canonical stream order. (start, first record index) is a strict total
  // order — a record heads at most one stream — so sorted output does not
  // depend on closing order, and the sharded path's merge of per-shard
  // sorted runs reproduces the serial order exactly.
  std::vector<ReplicaStream> finish() {
    for (auto& [key, streams] : open) {
      for (auto& os : streams) {
        close_stream(std::move(os));
      }
    }
    open.clear();
    std::sort(closed.begin(), closed.end(),
              [](const ReplicaStream& a, const ReplicaStream& b) {
                if (a.start() != b.start()) return a.start() < b.start();
                return a.replicas.front().record_index <
                       b.replicas.front().record_index;
              });
    return std::move(closed);
  }
};

}  // namespace

std::vector<ReplicaStream> ReplicaDetector::detect(
    const net::Trace& trace, const std::vector<ParsedRecord>& records) const {
  DetectState state(config_, m_spacing_, journal_);
  for (const ParsedRecord& rec : records) {
    if (!rec.ok) continue;
    state.process(rec, make_replica_key(trace[rec.index].bytes()));
  }
  auto closed = state.finish();

  telemetry::inc(m_records_, state.counts.records);
  telemetry::inc(m_replicas_, state.counts.replicas);
  telemetry::inc(m_streams_opened_, state.counts.opened);
  telemetry::inc(m_streams_expired_, state.counts.expired);
  telemetry::inc(m_streams_emitted_, state.counts.emitted);
  return closed;
}

std::vector<ReplicaStream> ReplicaDetector::detect_sharded(
    const net::Trace& trace, const std::vector<ParsedRecord>& records,
    util::ThreadPool& pool, unsigned num_shards) const {
  if (num_shards < 2) return detect(trace, records);

  // Pass 1 (parallel over record chunks): normalized-header hash per
  // record, computed once and reused both for shard assignment (pass 2) and
  // for per-shard key construction (pass 3) — the whole sharded path runs
  // FNV exactly once per record, same as serial.
  std::vector<std::uint64_t> hashes(records.size(), 0);
  {
    const std::size_t chunk =
        std::max<std::size_t>(1, records.size() / (4 * pool.size() + 1));
    const std::size_t tasks = (records.size() + chunk - 1) / chunk;
    pool.parallel_for(tasks, [&](std::size_t t) {
      const std::size_t lo = t * chunk;
      const std::size_t hi = std::min(records.size(), lo + chunk);
      for (std::size_t i = lo; i < hi; ++i) {
        if (!records[i].ok) continue;
        hashes[i] = replica_key_hash(trace[records[i].index].bytes());
      }
    }, "hash_chunk");
  }

  // Pass 2: per-shard record-index lists, in trace (= time) order.
  std::vector<std::vector<std::uint32_t>> shard_records(num_shards);
  for (auto& v : shard_records) v.reserve(records.size() / num_shards + 1);
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!records[i].ok) continue;
    shard_records[shard_of_key_hash(hashes[i], num_shards)].push_back(
        static_cast<std::uint32_t>(i));
  }

  // Pass 3 (parallel over shards): the serial state machine per shard.
  std::vector<telemetry::Histogram*> shard_latency(num_shards, nullptr);
  for (unsigned s = 0; s < num_shards; ++s) {
    shard_latency[s] = telemetry::get_histogram(
        registry_, "rloop_pipeline_shard_latency_ns",
        telemetry::latency_bounds_ns(),
        {{"stage", "detect"}, {"shard", std::to_string(s)}},
        "Wall-clock latency of one pipeline shard per sharded call");
  }
  std::vector<std::vector<ReplicaStream>> shard_closed(num_shards);
  std::vector<LocalCounts> shard_counts(num_shards);
  pool.parallel_for(num_shards, [&](std::size_t s) {
    const telemetry::ScopedTimer timer(shard_latency[s]);
    DetectState state(config_, m_spacing_, journal_);
    for (const std::uint32_t i : shard_records[s]) {
      // Reuse the pass-1 hash: per-shard key construction is a masked copy.
      state.process(records[i], make_replica_key(trace[records[i].index].bytes(),
                                                 hashes[i]));
    }
    shard_closed[s] = state.finish();
    shard_counts[s] = state.counts;
  }, "detect_shard");

  // Merge: concatenate and restore the canonical (start, first record index)
  // total order — identical to the serial sort because the comparator is a
  // strict total order over streams.
  LocalCounts counts;
  std::size_t total_streams = 0;
  for (unsigned s = 0; s < num_shards; ++s) {
    counts.add(shard_counts[s]);
    total_streams += shard_closed[s].size();
  }
  std::vector<ReplicaStream> closed;
  closed.reserve(total_streams);
  for (auto& shard : shard_closed) {
    std::move(shard.begin(), shard.end(), std::back_inserter(closed));
  }
  std::sort(closed.begin(), closed.end(),
            [](const ReplicaStream& a, const ReplicaStream& b) {
              if (a.start() != b.start()) return a.start() < b.start();
              return a.replicas.front().record_index <
                     b.replicas.front().record_index;
            });

  telemetry::inc(m_records_, counts.records);
  telemetry::inc(m_replicas_, counts.replicas);
  telemetry::inc(m_streams_opened_, counts.opened);
  telemetry::inc(m_streams_expired_, counts.expired);
  telemetry::inc(m_streams_emitted_, counts.emitted);
  return closed;
}

std::vector<bool> stream_membership(std::size_t record_count,
                                    const std::vector<ReplicaStream>& streams) {
  std::vector<bool> member(record_count, false);
  for (const auto& stream : streams) {
    for (const auto& replica : stream.replicas) {
      member[replica.record_index] = true;
    }
  }
  return member;
}

}  // namespace rloop::core
