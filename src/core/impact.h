// Trace-side performance-impact estimation (paper Section VI).
//
// From the trace alone (no ground truth) the detector can bound:
//  - whether a looped packet expired inside the loop (its last observed TTL
//    cannot survive another turn) or may have escaped when the loop healed;
//  - the extra delay an escaping packet accumulated (at least the time it
//    was observed looping);
//  - loop-induced loss over time (packets that expired in loops, per minute).
// The benchmarks additionally score these estimates against simulator ground
// truth, which the paper could not do.
#pragma once

#include <cstdint>

#include "analysis/cdf.h"
#include "analysis/stats.h"
#include "core/loop_detector.h"

namespace rloop::core {

struct ImpactEstimate {
  std::uint64_t looped_streams = 0;
  // Streams whose final replica could not survive another loop traversal.
  std::uint64_t expired_in_loop = 0;
  // Streams whose packet may have exited when the loop healed.
  std::uint64_t escape_candidates = 0;

  double escape_fraction() const {
    return looped_streams == 0
               ? 0.0
               : static_cast<double>(escape_candidates) /
                     static_cast<double>(looped_streams);
  }

  // Extra delay of escape candidates (ms): observed looping time plus the
  // remaining turns implied by the last TTL, capped at the observation.
  analysis::EmpiricalCdf escape_extra_delay_ms;

  // Looped packets that expired, binned per minute of trace time.
  analysis::RateSeries loop_loss_per_minute{60.0};
};

ImpactEstimate estimate_impact(const LoopDetectionResult& result);

}  // namespace rloop::core
