#include "core/loop_detector.h"

#include <memory>

#include "core/record_store.h"
#include "util/thread_pool.h"

namespace rloop::core {

namespace {

telemetry::Histogram* stage_histogram(telemetry::Registry* registry,
                                      const char* stage) {
  return telemetry::get_histogram(
      registry, "rloop_pipeline_stage_latency_ns",
      telemetry::latency_bounds_ns(), {{"stage", stage}},
      "Wall-clock latency of one detection-pipeline stage per call");
}

}  // namespace

std::uint64_t LoopDetectionResult::looped_packet_records() const {
  std::uint64_t total = 0;
  for (const auto& stream : valid_streams) {
    total += stream.size();
  }
  return total;
}

LoopDetectionResult detect_loops(const net::Trace& trace,
                                 const LoopDetectorConfig& config) {
  telemetry::Registry* reg = config.registry;
  const bool parallel = config.parallel.enabled();
  const unsigned num_shards = config.parallel.num_shards();
  // The pool exists only for the duration of one parallel call; its workers
  // park on the queue condition variable between stages.
  std::unique_ptr<util::ThreadPool> pool;
  if (parallel) {
    pool = std::make_unique<util::ThreadPool>(config.parallel.num_threads,
                                              reg, config.trace);
  }

  LoopDetectionResult result;
  const telemetry::ScopedSpan root_span(config.trace, "detect_loops");
  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "parse"));
    const telemetry::ScopedSpan span(config.trace, "parse");
    result.records = parallel ? parse_trace_parallel(trace, *pool)
                              : parse_trace(trace);
    result.total_records = result.records.size();
    for (const auto& rec : result.records) {
      if (!rec.ok) ++result.parse_failures;
    }
  }
  telemetry::inc(telemetry::get_counter(
                     reg, "rloop_pipeline_parse_failures_total", {},
                     "Trace records whose IP header failed to parse"),
                 result.parse_failures);

  // Columnize: transpose the parsed records into the SoA RecordStore the
  // detect/validate/merge scans run on, and compute the replica-key hash
  // column (once per record, reused by every later stage).
  RecordStore store;
  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "columnize"));
    const telemetry::ScopedSpan span(config.trace, "columnize");
    store = parallel
                ? RecordStore::build_parallel(trace, result.records, *pool)
                : RecordStore::build(trace, result.records);
  }

  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "detect"));
    const telemetry::ScopedSpan span(config.trace, "detect");
    const ReplicaDetector detector(config.detector, reg, config.journal);
    result.raw_streams = parallel
                             ? detector.detect_sharded(store, *pool, num_shards)
                             : detector.detect(store);
  }
  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "validate"));
    const telemetry::ScopedSpan span(config.trace, "validate");
    const StreamValidator validator(config.validator, reg, config.journal);
    result.valid_streams =
        parallel ? validator.validate_sharded(store, result.raw_streams, *pool,
                                              num_shards, &result.validation)
                 : validator.validate(store, result.raw_streams,
                                      &result.validation);
  }
  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "merge"));
    const telemetry::ScopedSpan span(config.trace, "merge");
    const StreamMerger merger(config.merger, reg, config.journal);
    result.loops = parallel ? merger.merge_sharded(store, result.valid_streams,
                                                   *pool, num_shards)
                            : merger.merge(store, result.valid_streams);
  }
  return result;
}

}  // namespace rloop::core
