#include "core/loop_detector.h"

#include "core/pipeline.h"
#include "core/record_store.h"

namespace rloop::core {

namespace {

telemetry::Histogram* stage_histogram(telemetry::Registry* registry,
                                      const char* stage) {
  return telemetry::get_histogram(
      registry, "rloop_pipeline_stage_latency_ns",
      telemetry::latency_bounds_ns(), {{"stage", stage}},
      "Wall-clock latency of one detection-pipeline stage per call");
}

}  // namespace

std::uint64_t LoopDetectionResult::looped_packet_records() const {
  std::uint64_t total = 0;
  for (const auto& stream : valid_streams) {
    total += stream.size();
  }
  return total;
}

LoopDetectionResult detect_loops(const net::Trace& trace,
                                 const LoopDetectorConfig& config) {
  if (config.parallel.enabled()) {
    // The staged dataflow (core/pipeline.h) replaces the old barrier-style
    // stage sequence: ingest/parse/detect overlap per epoch instead of
    // joining the pool between stages. A caller-provided workspace carries
    // warm state across calls; without one the workspace lives for this call.
    if (config.workspace != nullptr) {
      return detect_loops_pipelined(trace, config, *config.workspace);
    }
    PipelineWorkspace workspace;
    return detect_loops_pipelined(trace, config, workspace);
  }

  telemetry::Registry* reg = config.registry;
  LoopDetectionResult result;
  const telemetry::ScopedSpan root_span(config.trace, "detect_loops");
  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "parse"));
    const telemetry::ScopedSpan span(config.trace, "parse");
    result.records = parse_trace(trace);
    result.total_records = result.records.size();
    for (const auto& rec : result.records) {
      if (!rec.ok) ++result.parse_failures;
    }
  }
  telemetry::inc(telemetry::get_counter(
                     reg, "rloop_pipeline_parse_failures_total", {},
                     "Trace records whose IP header failed to parse"),
                 result.parse_failures);

  // Columnize: transpose the parsed records into the SoA RecordStore the
  // detect/validate/merge scans run on, and compute the replica-key hash
  // column (once per record, reused by every later stage).
  RecordStore store;
  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "columnize"));
    const telemetry::ScopedSpan span(config.trace, "columnize");
    store = RecordStore::build(trace, result.records);
  }

  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "detect"));
    const telemetry::ScopedSpan span(config.trace, "detect");
    const ReplicaDetector detector(config.detector, reg, config.journal);
    result.raw_streams = detector.detect(store);
  }
  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "validate"));
    const telemetry::ScopedSpan span(config.trace, "validate");
    const StreamValidator validator(config.validator, reg, config.journal);
    result.valid_streams =
        validator.validate(store, result.raw_streams, &result.validation);
  }
  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "merge"));
    const telemetry::ScopedSpan span(config.trace, "merge");
    const StreamMerger merger(config.merger, reg, config.journal);
    result.loops = merger.merge(store, result.valid_streams);
  }
  return result;
}

}  // namespace rloop::core
