#include "core/loop_detector.h"

namespace rloop::core {

namespace {

telemetry::Histogram* stage_histogram(telemetry::Registry* registry,
                                      const char* stage) {
  return telemetry::get_histogram(
      registry, "rloop_pipeline_stage_latency_ns",
      telemetry::latency_bounds_ns(), {{"stage", stage}},
      "Wall-clock latency of one detection-pipeline stage per call");
}

}  // namespace

std::uint64_t LoopDetectionResult::looped_packet_records() const {
  std::uint64_t total = 0;
  for (const auto& stream : valid_streams) {
    total += stream.size();
  }
  return total;
}

LoopDetectionResult detect_loops(const net::Trace& trace,
                                 const LoopDetectorConfig& config) {
  telemetry::Registry* reg = config.registry;
  LoopDetectionResult result;
  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "parse"));
    result.records = parse_trace(trace);
    result.total_records = result.records.size();
    for (const auto& rec : result.records) {
      if (!rec.ok) ++result.parse_failures;
    }
  }
  telemetry::inc(telemetry::get_counter(
                     reg, "rloop_pipeline_parse_failures_total", {},
                     "Trace records whose IP header failed to parse"),
                 result.parse_failures);

  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "detect"));
    const ReplicaDetector detector(config.detector, reg);
    result.raw_streams = detector.detect(trace, result.records);
  }
  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "validate"));
    const StreamValidator validator(config.validator, reg);
    result.valid_streams = validator.validate(result.records,
                                              result.raw_streams,
                                              &result.validation);
  }
  {
    const telemetry::ScopedTimer timer(stage_histogram(reg, "merge"));
    const StreamMerger merger(config.merger, reg);
    result.loops = merger.merge(result.records, result.valid_streams);
  }
  return result;
}

}  // namespace rloop::core
