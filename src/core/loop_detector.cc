#include "core/loop_detector.h"

namespace rloop::core {

std::uint64_t LoopDetectionResult::looped_packet_records() const {
  std::uint64_t total = 0;
  for (const auto& stream : valid_streams) {
    total += stream.size();
  }
  return total;
}

LoopDetectionResult detect_loops(const net::Trace& trace,
                                 const LoopDetectorConfig& config) {
  LoopDetectionResult result;
  result.records = parse_trace(trace);
  result.total_records = result.records.size();
  for (const auto& rec : result.records) {
    if (!rec.ok) ++result.parse_failures;
  }

  const ReplicaDetector detector(config.detector);
  result.raw_streams = detector.detect(trace, result.records);

  const StreamValidator validator(config.validator);
  result.valid_streams =
      validator.validate(result.records, result.raw_streams, &result.validation);

  const StreamMerger merger(config.merger);
  result.loops = merger.merge(result.records, result.valid_streams);
  return result;
}

}  // namespace rloop::core
