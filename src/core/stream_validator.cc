#include "core/stream_validator.h"

namespace rloop::core {

StreamValidator::StreamValidator(ValidatorConfig config) : config_(config) {}

std::vector<ReplicaStream> StreamValidator::validate(
    const std::vector<ParsedRecord>& records,
    std::vector<ReplicaStream> streams, ValidationStats* stats) const {
  ValidationStats local;
  local.input_streams = streams.size();

  // Membership covers every raw stream (>= 2 elements): even a stream that
  // itself fails validation consists of looped-looking packets, which must
  // not count as refuting evidence against an overlapping stream.
  const auto member = stream_membership(records.size(), streams);
  const NonLoopedIndex index(records, member);

  std::vector<ReplicaStream> valid;
  valid.reserve(streams.size());
  for (auto& stream : streams) {
    if (stream.size() < config_.min_replicas) {
      ++local.rejected_too_small;
      continue;
    }
    if (index.any_in(stream.dst24, stream.start(), stream.end())) {
      ++local.rejected_prefix_conflict;
      continue;
    }
    ++local.accepted;
    valid.push_back(std::move(stream));
  }
  if (stats) *stats = local;
  return valid;
}

}  // namespace rloop::core
