#include "core/stream_validator.h"

namespace rloop::core {

StreamValidator::StreamValidator(ValidatorConfig config,
                                 telemetry::Registry* registry)
    : config_(config),
      m_accepted_(telemetry::get_counter(
          registry, "rloop_validator_streams_accepted_total", {},
          "Streams surviving both validation conditions")),
      m_rejected_small_(telemetry::get_counter(
          registry, "rloop_validator_streams_rejected_total",
          {{"reason", "too_small"}},
          "Streams rejected, by validation condition")),
      m_rejected_conflict_(telemetry::get_counter(
          registry, "rloop_validator_streams_rejected_total",
          {{"reason", "prefix_conflict"}},
          "Streams rejected, by validation condition")) {}

std::vector<ReplicaStream> StreamValidator::validate(
    const std::vector<ParsedRecord>& records,
    std::vector<ReplicaStream> streams, ValidationStats* stats) const {
  ValidationStats local;
  local.input_streams = streams.size();

  // Membership covers every raw stream (>= 2 elements): even a stream that
  // itself fails validation consists of looped-looking packets, which must
  // not count as refuting evidence against an overlapping stream.
  const auto member = stream_membership(records.size(), streams);
  const NonLoopedIndex index(records, member);

  std::vector<ReplicaStream> valid;
  valid.reserve(streams.size());
  for (auto& stream : streams) {
    if (stream.size() < config_.min_replicas) {
      ++local.rejected_too_small;
      telemetry::inc(m_rejected_small_);
      continue;
    }
    if (index.any_in(stream.dst24, stream.start(), stream.end())) {
      ++local.rejected_prefix_conflict;
      telemetry::inc(m_rejected_conflict_);
      continue;
    }
    ++local.accepted;
    telemetry::inc(m_accepted_);
    valid.push_back(std::move(stream));
  }
  if (stats) *stats = local;
  return valid;
}

}  // namespace rloop::core
