#include "core/stream_validator.h"

#include <cstdint>
#include <memory>
#include <string>

namespace rloop::core {

StreamValidator::StreamValidator(ValidatorConfig config,
                                 telemetry::Registry* registry,
                                 telemetry::DecisionLog* journal)
    : config_(config),
      registry_(registry),
      journal_(journal),
      m_accepted_(telemetry::get_counter(
          registry, "rloop_validator_streams_accepted_total", {},
          "Streams surviving both validation conditions")),
      m_rejected_small_(telemetry::get_counter(
          registry, "rloop_validator_streams_rejected_total",
          {{"reason", "too_small"}},
          "Streams rejected, by validation condition")),
      m_rejected_conflict_(telemetry::get_counter(
          registry, "rloop_validator_streams_rejected_total",
          {{"reason", "prefix_conflict"}},
          "Streams rejected, by validation condition")) {}

namespace {

enum class Verdict : std::uint8_t { keep, too_small, prefix_conflict };

// Verdict events carry the stream's END time so they sort after the
// replica-level evidence in the journal's causal chain. A rejection also
// fires the flight-recorder auto-dump (no-op unless enabled).
Verdict judge(const ReplicaStream& stream, std::size_t min_replicas,
              const NonLoopedIndex& index, telemetry::DecisionLog* journal) {
  const auto rec = stream.replicas.front().record_index;
  if (stream.size() < min_replicas) {
    if (journal) {
      journal->record(
          {.kind = telemetry::DecisionKind::stream_rejected_min_replicas,
           .dst24 = stream.dst24,
           .ts = stream.end(),
           .record_index = rec,
           .detail = static_cast<std::int64_t>(stream.size()),
           .detail2 = static_cast<std::int64_t>(min_replicas)});
      journal->on_validation_reject(stream.dst24);
    }
    return Verdict::too_small;
  }
  const auto refuting =
      index.first_in(stream.dst24, stream.start(), stream.end());
  if (refuting) {
    if (journal) {
      journal->record(
          {.kind = telemetry::DecisionKind::stream_rejected_nonlooped,
           .dst24 = stream.dst24,
           .ts = stream.end(),
           .record_index = rec,
           .detail = *refuting,
           .detail2 = static_cast<std::int64_t>(stream.size())});
      journal->on_validation_reject(stream.dst24);
    }
    return Verdict::prefix_conflict;
  }
  if (journal) {
    journal->record({.kind = telemetry::DecisionKind::stream_accepted,
                     .dst24 = stream.dst24,
                     .ts = stream.end(),
                     .record_index = rec,
                     .detail = static_cast<std::int64_t>(stream.size())});
  }
  return Verdict::keep;
}

}  // namespace

std::vector<ReplicaStream> StreamValidator::validate(
    const std::vector<ParsedRecord>& records,
    std::vector<ReplicaStream> streams, ValidationStats* stats) const {
  // Membership covers every raw stream (>= 2 elements): even a stream that
  // itself fails validation consists of looped-looking packets, which must
  // not count as refuting evidence against an overlapping stream.
  const auto member = stream_membership(records.size(), streams);
  const NonLoopedIndex index(records, member);
  return validate_with_index(index, std::move(streams), stats);
}

std::vector<ReplicaStream> StreamValidator::validate(
    const RecordStore& store, std::vector<ReplicaStream> streams,
    ValidationStats* stats) const {
  const auto member = stream_membership(store.size(), streams);
  const NonLoopedIndex index(store, member);
  return validate_with_index(index, std::move(streams), stats);
}

std::vector<ReplicaStream> StreamValidator::validate_with_index(
    const NonLoopedIndex& index, std::vector<ReplicaStream> streams,
    ValidationStats* stats) const {
  ValidationStats local;
  local.input_streams = streams.size();

  std::vector<ReplicaStream> valid;
  valid.reserve(streams.size());
  for (auto& stream : streams) {
    switch (judge(stream, config_.min_replicas, index, journal_)) {
      case Verdict::too_small:
        ++local.rejected_too_small;
        telemetry::inc(m_rejected_small_);
        break;
      case Verdict::prefix_conflict:
        ++local.rejected_prefix_conflict;
        telemetry::inc(m_rejected_conflict_);
        break;
      case Verdict::keep:
        ++local.accepted;
        telemetry::inc(m_accepted_);
        valid.push_back(std::move(stream));
        break;
    }
  }
  if (stats) *stats = local;
  return valid;
}

std::vector<ReplicaStream> StreamValidator::validate_sharded(
    const std::vector<ParsedRecord>& records,
    std::vector<ReplicaStream> streams, util::ThreadPool& pool,
    unsigned num_shards, ValidationStats* stats) const {
  if (num_shards < 2) return validate(records, std::move(streams), stats);
  // The membership vector must be shared across shard-index builds, so it is
  // captured by the factory rather than rebuilt per shard.
  auto member = std::make_shared<const std::vector<bool>>(
      stream_membership(records.size(), streams));
  return validate_sharded_impl(
      [&records, member, num_shards](unsigned s, NonLoopedIndex& out) {
        out = NonLoopedIndex(records, *member, s, num_shards);
      },
      std::move(streams), pool, num_shards, nullptr, stats);
}

std::vector<ReplicaStream> StreamValidator::validate_sharded(
    const RecordStore& store, std::vector<ReplicaStream> streams,
    util::ThreadPool& pool, unsigned num_shards,
    ValidationStats* stats) const {
  if (num_shards < 2) return validate(store, std::move(streams), stats);
  auto member = std::make_shared<const std::vector<bool>>(
      stream_membership(store.size(), streams));
  return validate_sharded_impl(
      [&store, member, num_shards](unsigned s, NonLoopedIndex& out) {
        out = NonLoopedIndex(store, *member, s, num_shards);
      },
      std::move(streams), pool, num_shards, nullptr, stats);
}

std::vector<ReplicaStream> StreamValidator::validate_sharded(
    const RecordStore& store, std::vector<ReplicaStream> streams,
    util::ThreadPool& pool, unsigned num_shards, ValidatorScratch& scratch,
    ValidationStats* stats) const {
  stream_membership(store.size(), streams, scratch.membership);
  if (num_shards < 2) {
    scratch.shard_indexes.resize(1);
    scratch.shard_indexes[0].rebuild(store, scratch.membership);
    return validate_with_index(scratch.shard_indexes[0], std::move(streams),
                               stats);
  }
  const std::vector<bool>& member = scratch.membership;
  return validate_sharded_impl(
      [&store, &member, num_shards](unsigned s, NonLoopedIndex& out) {
        out.rebuild(store, member, s, num_shards);
      },
      std::move(streams), pool, num_shards, &scratch, stats);
}

std::vector<ReplicaStream> StreamValidator::validate_sharded_impl(
    const std::function<void(unsigned, NonLoopedIndex&)>& build_shard,
    std::vector<ReplicaStream> streams, util::ThreadPool& pool,
    unsigned num_shards, ValidatorScratch* scratch,
    ValidationStats* stats) const {
  ValidationStats local;
  local.input_streams = streams.size();

  std::vector<telemetry::Histogram*> local_latency;
  std::vector<telemetry::Histogram*>& shard_latency =
      scratch ? scratch->shard_latency : local_latency;
  shard_latency.assign(num_shards, nullptr);
  for (unsigned s = 0; s < num_shards; ++s) {
    shard_latency[s] = telemetry::get_histogram(
        registry_, "rloop_pipeline_shard_latency_ns",
        telemetry::latency_bounds_ns(),
        {{"stage", "validate"}, {"shard", std::to_string(s)}},
        "Wall-clock latency of one pipeline shard per sharded call");
  }

  // Each shard judges the streams whose prefix it owns, against an index of
  // its own prefixes only. Verdict slots are disjoint across shards.
  // Verdicts live in a byte buffer so the scratch can own it without
  // exposing the Verdict enum.
  std::vector<std::uint8_t> local_verdicts;
  std::vector<std::uint8_t>& verdicts =
      scratch ? scratch->verdicts : local_verdicts;
  verdicts.assign(streams.size(), static_cast<std::uint8_t>(Verdict::keep));
  if (scratch) scratch->shard_indexes.resize(num_shards);
  pool.parallel_for(num_shards, [&](std::size_t s) {
    const telemetry::ScopedTimer timer(shard_latency[s]);
    NonLoopedIndex local_index;
    NonLoopedIndex& index =
        scratch ? scratch->shard_indexes[s] : local_index;
    build_shard(static_cast<unsigned>(s), index);
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (shard_of_prefix(streams[i].dst24, num_shards) != s) continue;
      verdicts[i] = static_cast<std::uint8_t>(
          judge(streams[i], config_.min_replicas, index, journal_));
    }
  }, "validate_shard");

  // Serial assembly in input order reproduces validate()'s output exactly.
  std::vector<ReplicaStream> valid;
  valid.reserve(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    switch (static_cast<Verdict>(verdicts[i])) {
      case Verdict::too_small:
        ++local.rejected_too_small;
        break;
      case Verdict::prefix_conflict:
        ++local.rejected_prefix_conflict;
        break;
      case Verdict::keep:
        ++local.accepted;
        valid.push_back(std::move(streams[i]));
        break;
    }
  }
  telemetry::inc(m_accepted_, local.accepted);
  telemetry::inc(m_rejected_small_, local.rejected_too_small);
  telemetry::inc(m_rejected_conflict_, local.rejected_prefix_conflict);
  if (stats) *stats = local;
  return valid;
}

}  // namespace rloop::core
