// The full three-step detection pipeline (paper Section IV) as one call.
#pragma once

#include <cstdint>
#include <vector>

#include "core/parallel.h"
#include "core/record.h"
#include "core/replica_detector.h"
#include "core/stream_merger.h"
#include "core/stream_validator.h"
#include "net/trace.h"
#include "telemetry/decision_log.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace rloop::core {

class PipelineWorkspace;  // core/pipeline.h

struct LoopDetectorConfig {
  ReplicaDetectorConfig detector;
  ValidatorConfig validator;
  MergerConfig merger;
  // Sharded multi-threaded execution. num_threads <= 1 (the default) is the
  // original serial path; > 1 runs parse, detect, validate and merge on a
  // ThreadPool, sharded by replica-key hash (detect) and /24 prefix
  // (validate/merge). Results are field-identical to the serial path for
  // every thread/shard count — see parallel.h for the argument and
  // tests/test_parallel_pipeline.cc for the proof harness.
  ParallelConfig parallel;
  // Optional metrics sink. When set, every stage records a wall-clock
  // latency histogram (rloop_pipeline_stage_latency_ns{stage=...}), the
  // sharded path additionally records per-shard latency
  // (rloop_pipeline_shard_latency_ns{stage=...,shard=...}) and thread-pool
  // queue depth, and the stage objects register their own counters; when
  // null the pipeline runs with zero telemetry overhead.
  telemetry::Registry* registry = nullptr;
  // Optional span sink: a root "detect_loops" span, one span per stage
  // (parse/columnize/detect/validate/merge), and one span per parallel_for
  // task (parse_chunk/hash_chunk/detect_shard/validate_shard/merge_shard),
  // exportable as Chrome trace-event JSON (TraceSink::chrome_trace_json).
  // Null costs one predictable branch per would-be span.
  telemetry::TraceSink* trace = nullptr;
  // Optional decision journal: every stage records its per-stream /
  // per-replica-match verdicts with typed reasons (see decision_log.h).
  telemetry::DecisionLog* journal = nullptr;
  // Optional persistent workspace for the parallel path (core/pipeline.h).
  // The staged dataflow reuses its thread pool, SoA store, batch rings,
  // per-shard detect states and validator/merger scratch across calls, so a
  // warm run's steady-state allocation rate drops below the serial path's
  // (tests/test_memory_layout.cc pins this). Null makes detect_loops()
  // build a transient workspace per call; results are identical either way.
  PipelineWorkspace* workspace = nullptr;
};

struct LoopDetectionResult {
  // The parsed trace; all stream/loop record indices point into this.
  std::vector<ParsedRecord> records;
  // Step 1 output: every stream with >= 2 replicas.
  std::vector<ReplicaStream> raw_streams;
  // Step 2 output; loops' stream_indices point into this vector.
  std::vector<ReplicaStream> valid_streams;
  // Step 3 output.
  std::vector<RoutingLoop> loops;

  ValidationStats validation;
  std::uint64_t total_records = 0;
  std::uint64_t parse_failures = 0;

  // Total trace records that are replicas of looped packets (members of
  // validated streams, originals included) — Table I's "looped packets".
  std::uint64_t looped_packet_records() const;
  // Unique packets caught in loops (one per validated stream).
  std::uint64_t looped_unique_packets() const { return valid_streams.size(); }
};

// Runs parse -> detect -> validate -> merge on `trace`.
LoopDetectionResult detect_loops(const net::Trace& trace,
                                 const LoopDetectorConfig& config = {});

}  // namespace rloop::core
