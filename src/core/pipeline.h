// Staged, epoch-overlapped dataflow for the offline detection pipeline.
//
// The barrier-style parallel path in loop_detector.cc runs parse, columnize
// and detect as separate pool-wide stages with a full join between each; on
// traces where parse and hash dominate, the joins leave workers idle for
// most of the wall clock. The staged front here fuses ingest -> parse ->
// columnize -> shard-detect into one pass over the trace, pipelined by
// epoch:
//
//   driver (body 0)            workers (bodies 1..W)
//   ------------------         -------------------------------------------
//   epoch N+1: hash bytes,     epoch N: parse records, fill store rows,
//   SIMD shard-assign,         feed each record to its shard's detect
//   partition indices,    -->  state machine (FlatDetectState)
//   push batch per worker      ...
//   (bounded SPSC rings)       on drain: finish() each owned shard
//
// The driver stays one-to-eight epochs ahead of the workers (ring depth
// bounds the overlap and the memory), so epoch N+1's hashing runs
// concurrently with epoch N's parse/detect instead of waiting for it.
// Partitioning invariants:
//  - every record index is assigned to exactly one worker (shard s of the
//    record's replica-key hash goes to worker s % W), so every store row and
//    every records[] slot is written exactly once, by one thread;
//  - all records of one shard land on one worker in trace order, so each
//    FlatDetectState sees exactly the record sequence the serial detector
//    feeds it, and the concatenate + sort merge reproduces the serial
//    stream order (same argument as parallel.h).
// Validate and merge remain pool-wide sharded stages after the front — they
// need the full raw-stream set — but run on workspace-owned scratch so a
// warm run allocates nothing in either stage.
//
// PipelineWorkspace owns everything reusable across runs: the thread pool,
// the SoA store, the hash/shard scratch columns, the per-worker batch rings,
// one warm FlatDetectState per shard (arena + open-table capacity persist),
// and the validator/merger scratch. bench/bench_to_json.cc keeps one
// workspace across repetitions to pin the steady-state allocation rate;
// detect_loops() creates a transient one when the config carries none.
#pragma once

#include <memory>

#include "core/loop_detector.h"
#include "net/trace.h"

namespace rloop::core {

class PipelineWorkspace {
 public:
  PipelineWorkspace();
  ~PipelineWorkspace();
  PipelineWorkspace(const PipelineWorkspace&) = delete;
  PipelineWorkspace& operator=(const PipelineWorkspace&) = delete;

  struct Impl;
  Impl& impl() { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

// Runs the staged-dataflow pipeline on `trace`. Requires
// config.parallel.enabled(); output is field-identical to the serial
// detect_loops() for every (num_threads, shard_bits) — the differential
// harness in tests/test_parallel_pipeline.cc runs both and compares field
// by field. The workspace may be reused across calls and across differing
// configs (pool and per-shard state are rebuilt when the shape changes).
LoopDetectionResult detect_loops_pipelined(const net::Trace& trace,
                                           const LoopDetectorConfig& config,
                                           PipelineWorkspace& workspace);

}  // namespace rloop::core
