// Machine-readable export of detection results.
//
// Operators feed loop reports into tickets, dashboards and post-mortems;
// this module serializes a LoopDetectionResult as JSON (one self-contained
// document) or CSV (one row per loop / per stream). The JSON writer is
// deliberately minimal and dependency-free: flat structures, RFC 8259
// string escaping, no floating-point surprises (times are integer
// nanoseconds).
#pragma once

#include <iosfwd>
#include <string>

#include "core/loop_detector.h"

namespace rloop::core {

struct ReportOptions {
  // Include the per-stream array inside each loop object (larger output).
  bool include_streams = true;
  // Trace name / epoch recorded in the header object.
  std::string trace_name;
  std::int64_t trace_epoch_unix_s = 0;
};

// Writes the full result as a single JSON document.
void write_json_report(std::ostream& os, const LoopDetectionResult& result,
                       const ReportOptions& options = {});
std::string json_report(const LoopDetectionResult& result,
                        const ReportOptions& options = {});

// One CSV row per routing loop.
void write_loops_csv(std::ostream& os, const LoopDetectionResult& result);
// One CSV row per validated replica stream.
void write_streams_csv(std::ostream& os, const LoopDetectionResult& result);

// RFC 8259 string escaping (exposed for tests).
std::string json_escape(const std::string& text);

}  // namespace rloop::core
