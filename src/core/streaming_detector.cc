#include "core/streaming_detector.h"

#include <algorithm>
#include <new>
#include <vector>

#include "net/byteio.h"
#include "net/packet.h"
#include "util/failpoint.h"

namespace rloop::core {

StreamingDetector::StreamingDetector(StreamingConfig config,
                                     AlertCallback on_alert,
                                     telemetry::Registry* registry,
                                     telemetry::DecisionLog* journal)
    : config_(config),
      on_alert_(std::move(on_alert)),
      journal_(journal),
      m_packets_(telemetry::get_counter(
          registry, "rloop_streaming_packets_total", {},
          "Packets fed to the streaming detector")),
      m_parse_failures_(telemetry::get_counter(
          registry, "rloop_streaming_parse_failures_total", {},
          "Packets whose IP header failed to parse")),
      m_alerts_(telemetry::get_counter(
          registry, "rloop_streaming_alerts_total", {},
          "Loop alerts raised (callback invocations)")),
      m_suppressed_(telemetry::get_counter(
          registry, "rloop_streaming_holddown_suppressed_total", {},
          "Alerts suppressed by the per-prefix hold-down")),
      m_reordered_(telemetry::get_counter(
          registry, "rloop_streaming_reordered_total", {},
          "Out-of-order packets clamped to the newest seen timestamp")),
      m_reorder_dropped_(telemetry::get_counter(
          registry, "rloop_streaming_reorder_dropped_total", {},
          "Packets beyond the reorder tolerance, dropped unprocessed")),
      m_evicted_(telemetry::get_counter(
          registry, "rloop_streaming_evicted_total", {},
          "Entries evicted by the max_open_entries budget")),
      m_sampled_(telemetry::get_counter(
          registry, "rloop_streaming_sampled_dropped_total", {},
          "Non-suspect packets dropped by overload sampling")),
      m_open_entries_(telemetry::get_gauge(
          registry, "rloop_streaming_open_entries", {},
          "Replica-candidate entries currently tracked; a surge here is "
          "the live loop signal")) {}

void StreamingDetector::sweep(net::TimeNs now) {
  for (auto it = open_.begin(); it != open_.end();) {
    if (now - it->second.last_ts > config_.stream_timeout) {
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = last_alert_.begin(); it != last_alert_.end();) {
    if (now - it->second > 2 * config_.alert_holddown) {
      it = last_alert_.erase(it);
    } else {
      ++it;
    }
  }
  // Rebuild the sampling exemption set from what survived, so it tracks the
  // live suspect population and cannot grow without bound.
  suspects_.clear();
  for (const auto& [key, entry] : open_) {
    if (entry.replicas >= 2) suspects_.insert(entry.prefix24);
  }
  for (const auto& [prefix, ts] : last_alert_) suspects_.insert(prefix);
  telemetry::set(m_open_entries_, static_cast<std::int64_t>(open_.size()));
}

// Hard-budget eviction (the bounded-memory guarantee the daemon relies on).
// Runs only when an insert would cross max_open_entries: entries idle past
// stream_timeout can never extend a stream and go first; if that is not
// enough, an LRU-ish partition by last-touch evicts the oldest entries down
// to ~7/8 of the budget, so evictions happen in batches instead of on every
// packet at the boundary.
void StreamingDetector::enforce_budget(net::TimeNs now) {
  const std::size_t before = open_.size();
  for (auto it = open_.begin(); it != open_.end();) {
    if (now - it->second.last_ts > config_.stream_timeout) {
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  const std::size_t target =
      config_.max_open_entries -
      std::max<std::size_t>(1, config_.max_open_entries / 8);
  if (open_.size() > target) {
    std::vector<net::TimeNs> touched;
    touched.reserve(open_.size());
    for (const auto& [key, entry] : open_) touched.push_back(entry.last_ts);
    // The k-th oldest last-touch is the eviction cutoff.
    const std::size_t k = open_.size() - target;
    std::nth_element(touched.begin(), touched.begin() + (k - 1),
                     touched.end());
    const net::TimeNs cutoff = touched[k - 1];
    for (auto it = open_.begin(); it != open_.end() && open_.size() > target;) {
      if (it->second.last_ts <= cutoff) {
        it = open_.erase(it);
      } else {
        ++it;
      }
    }
  }
  const std::uint64_t evicted = before - open_.size();
  evicted_ += evicted;
  telemetry::inc(m_evicted_, evicted);
  telemetry::set(m_open_entries_, static_cast<std::int64_t>(open_.size()));
}

void StreamingDetector::on_packet(net::TimeNs ts,
                                  std::span<const std::byte> bytes) {
  ++packets_seen_;
  telemetry::inc(m_packets_);
  if (packets_seen_ > 1 && ts < last_ts_) {
    // Capture jitter: clamp small regressions into the stream, drop the rest.
    if (last_ts_ - ts > config_.reorder_tolerance_ns) {
      ++reorder_dropped_;
      telemetry::inc(m_reorder_dropped_);
      return;
    }
    ts = last_ts_;
    ++reordered_;
    telemetry::inc(m_reordered_);
  }
  last_ts_ = ts;

  if (++since_sweep_ >= (1u << 15)) {
    since_sweep_ = 0;
    sweep(ts);
  }

  // Overload sampling (governor tier 3): non-suspect destinations are
  // decimated 1-in-sample_n_ before any parsing or hashing. Suspect /24s
  // keep full fidelity so an in-progress loop's replica count stays exact.
  if (sample_n_ > 1 && bytes.size() >= net::kIpv4HeaderSize) {
    const net::Prefix dst24 =
        net::Prefix::slash24(net::Ipv4Addr(net::read_u32(bytes, 16)));
    if (!suspects_.contains(dst24) && ++sample_tick_ % sample_n_ != 0) {
      ++sampled_dropped_;
      telemetry::inc(m_sampled_);
      return;
    }
  }

  if (RLOOP_FAILPOINT("streaming.insert")) throw std::bad_alloc();

  const auto parsed = net::parse_packet(bytes);
  if (!parsed) {
    telemetry::inc(m_parse_failures_);
    return;
  }
  ReplicaKey key = make_replica_key(bytes);

  if (config_.max_open_entries > 0 &&
      open_.size() >= config_.max_open_entries && !open_.contains(key)) {
    enforce_budget(ts);
  }
  auto [it, inserted] = open_.try_emplace(std::move(key));
  peak_open_ = std::max(peak_open_, open_.size());
  telemetry::set(m_open_entries_, static_cast<std::int64_t>(open_.size()));
  OpenEntry& entry = it->second;
  if (inserted || ts - entry.last_ts > config_.stream_timeout) {
    entry = OpenEntry{};
    entry.first_ts = ts;
    entry.last_ts = ts;
    entry.last_ttl = parsed->ip.ttl;
    entry.prefix24 = net::Prefix::slash24(parsed->ip.dst);
    return;
  }

  const int delta =
      static_cast<int>(entry.last_ttl) - static_cast<int>(parsed->ip.ttl);
  if (delta < config_.min_ttl_delta) {
    if (delta < 0) {
      // TTL increased: a different original packet with identical bytes.
      entry = OpenEntry{};
      entry.first_ts = ts;
      entry.last_ts = ts;
      entry.last_ttl = parsed->ip.ttl;
      entry.prefix24 = net::Prefix::slash24(parsed->ip.dst);
    }
    // Equal/-1 TTL: link-layer duplicate or adjacent hop; not loop evidence.
    return;
  }

  entry.last_ttl = parsed->ip.ttl;
  entry.last_ts = ts;
  entry.last_delta = delta;
  ++entry.replicas;
  // Two replicas make the entry a loop suspect: exempt its /24 from overload
  // sampling so the stream's count stays exact under degradation.
  if (entry.replicas == 2) suspects_.insert(entry.prefix24);

  if (entry.replicas >= config_.min_replicas) {
    auto [alert_it, first_alert] = last_alert_.try_emplace(entry.prefix24, ts);
    if (!first_alert && ts - alert_it->second < config_.alert_holddown) {
      telemetry::inc(m_suppressed_);
      telemetry::record(
          journal_, {.kind = telemetry::DecisionKind::alert_suppressed,
                     .dst24 = entry.prefix24,
                     .ts = ts,
                     .record_index = static_cast<std::uint32_t>(packets_seen_),
                     .detail = ts - alert_it->second});
      return;
    }
    alert_it->second = ts;
    ++alerts_raised_;
    telemetry::inc(m_alerts_);
    telemetry::record(
        journal_, {.kind = telemetry::DecisionKind::alert_raised,
                   .dst24 = entry.prefix24,
                   .ts = ts,
                   .record_index = static_cast<std::uint32_t>(packets_seen_),
                   .detail = static_cast<std::int64_t>(entry.replicas),
                   .detail2 = entry.last_delta});
    if (on_alert_) {
      LoopAlert alert;
      alert.prefix24 = entry.prefix24;
      alert.first_seen = entry.first_ts;
      alert.raised_at = ts;
      alert.replicas = entry.replicas;
      alert.ttl_delta = entry.last_delta;
      on_alert_(alert);
    }
  }
}

std::vector<StreamingDetector::SuspectEntry>
StreamingDetector::suspect_entries(std::size_t max) const {
  std::vector<SuspectEntry> out;
  for (const auto& [key, entry] : open_) {
    if (entry.replicas < 2) continue;
    out.push_back({entry.prefix24, entry.first_ts, entry.last_ts,
                   entry.replicas, entry.last_delta});
  }
  std::sort(out.begin(), out.end(),
            [](const SuspectEntry& a, const SuspectEntry& b) {
              if (a.replicas != b.replicas) return a.replicas > b.replicas;
              if (a.prefix24 != b.prefix24) return a.prefix24 < b.prefix24;
              return a.first_ts < b.first_ts;
            });
  if (max > 0 && out.size() > max) out.resize(max);
  return out;
}

StreamingDetector::Snapshot StreamingDetector::snapshot() const {
  Snapshot snap;
  snap.last_ts = last_ts_;
  snap.packets_seen = packets_seen_;
  snap.alerts_raised = alerts_raised_;
  snap.reordered = reordered_;
  snap.reorder_dropped = reorder_dropped_;
  snap.evicted = evicted_;
  snap.sampled_dropped = sampled_dropped_;
  snap.peak_open = peak_open_;
  snap.since_sweep = since_sweep_;
  snap.open.reserve(open_.size());
  for (const auto& [key, entry] : open_) snap.open.emplace_back(key, entry);
  // Canonical order: identical state must serialize to identical bytes
  // regardless of hash-table iteration order.
  std::sort(snap.open.begin(), snap.open.end(),
            [](const auto& a, const auto& b) {
              if (a.first.hash != b.first.hash) {
                return a.first.hash < b.first.hash;
              }
              if (a.first.len != b.first.len) return a.first.len < b.first.len;
              return a.first.normalized < b.first.normalized;
            });
  snap.holddowns.reserve(last_alert_.size());
  for (const auto& [prefix, ts] : last_alert_) {
    snap.holddowns.emplace_back(prefix, ts);
  }
  std::sort(snap.holddowns.begin(), snap.holddowns.end());
  return snap;
}

void StreamingDetector::restore(const Snapshot& snap) {
  open_.clear();
  open_.reserve(snap.open.size());
  for (const auto& [key, entry] : snap.open) open_.emplace(key, entry);
  last_alert_.clear();
  last_alert_.reserve(snap.holddowns.size());
  for (const auto& [prefix, ts] : snap.holddowns) {
    last_alert_.emplace(prefix, ts);
  }
  suspects_.clear();
  for (const auto& [key, entry] : snap.open) {
    if (entry.replicas >= 2) suspects_.insert(entry.prefix24);
  }
  for (const auto& [prefix, ts] : snap.holddowns) suspects_.insert(prefix);
  last_ts_ = snap.last_ts;
  packets_seen_ = snap.packets_seen;
  alerts_raised_ = snap.alerts_raised;
  reordered_ = snap.reordered;
  reorder_dropped_ = snap.reorder_dropped;
  evicted_ = snap.evicted;
  sampled_dropped_ = snap.sampled_dropped;
  peak_open_ = static_cast<std::size_t>(snap.peak_open);
  since_sweep_ = snap.since_sweep;
  telemetry::set(m_open_entries_, static_cast<std::int64_t>(open_.size()));
}

}  // namespace rloop::core
