#include "core/report.h"

#include <ostream>
#include <sstream>

namespace rloop::core {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void write_stream_json(std::ostream& os, const ReplicaStream& stream) {
  os << "{\"dst\":\"" << stream.dst.to_string() << "\",\"prefix\":\""
     << stream.dst24.to_string() << "\",\"replicas\":" << stream.size()
     << ",\"start_ns\":" << stream.start() << ",\"end_ns\":" << stream.end()
     << ",\"ttl_delta\":" << stream.dominant_ttl_delta()
     << ",\"first_ttl\":" << static_cast<int>(stream.replicas.front().ttl)
     << ",\"last_ttl\":" << static_cast<int>(stream.replicas.back().ttl)
     << "}";
}

}  // namespace

void write_json_report(std::ostream& os, const LoopDetectionResult& result,
                       const ReportOptions& options) {
  os << "{\"trace\":{\"name\":\"" << json_escape(options.trace_name)
     << "\",\"epoch_unix_s\":" << options.trace_epoch_unix_s
     << ",\"records\":" << result.total_records
     << ",\"parse_failures\":" << result.parse_failures << "},";
  os << "\"summary\":{\"raw_streams\":" << result.raw_streams.size()
     << ",\"valid_streams\":" << result.valid_streams.size()
     << ",\"loops\":" << result.loops.size()
     << ",\"looped_packet_records\":" << result.looped_packet_records()
     << ",\"rejected_too_small\":" << result.validation.rejected_too_small
     << ",\"rejected_prefix_conflict\":"
     << result.validation.rejected_prefix_conflict << "},";
  os << "\"loops\":[";
  for (std::size_t i = 0; i < result.loops.size(); ++i) {
    const RoutingLoop& loop = result.loops[i];
    if (i) os << ",";
    os << "{\"prefix\":\"" << loop.prefix24.to_string()
       << "\",\"start_ns\":" << loop.start << ",\"end_ns\":" << loop.end
       << ",\"duration_ns\":" << loop.duration()
       << ",\"ttl_delta\":" << loop.ttl_delta
       << ",\"replica_count\":" << loop.replica_count
       << ",\"stream_count\":" << loop.stream_count();
    if (options.include_streams) {
      os << ",\"streams\":[";
      for (std::size_t s = 0; s < loop.stream_indices.size(); ++s) {
        if (s) os << ",";
        write_stream_json(os, result.valid_streams[loop.stream_indices[s]]);
      }
      os << "]";
    }
    os << "}";
  }
  os << "]}";
}

std::string json_report(const LoopDetectionResult& result,
                        const ReportOptions& options) {
  std::ostringstream os;
  write_json_report(os, result, options);
  return os.str();
}

void write_loops_csv(std::ostream& os, const LoopDetectionResult& result) {
  os << "prefix,start_ns,end_ns,duration_ns,ttl_delta,replica_count,"
        "stream_count\n";
  for (const auto& loop : result.loops) {
    os << loop.prefix24.to_string() << ',' << loop.start << ',' << loop.end
       << ',' << loop.duration() << ',' << loop.ttl_delta << ','
       << loop.replica_count << ',' << loop.stream_count() << '\n';
  }
}

void write_streams_csv(std::ostream& os, const LoopDetectionResult& result) {
  os << "dst,prefix,replicas,start_ns,end_ns,duration_ns,ttl_delta,"
        "first_ttl,last_ttl,mean_spacing_ns\n";
  for (const auto& stream : result.valid_streams) {
    os << stream.dst.to_string() << ',' << stream.dst24.to_string() << ','
       << stream.size() << ',' << stream.start() << ',' << stream.end() << ','
       << stream.duration() << ',' << stream.dominant_ttl_delta() << ','
       << static_cast<int>(stream.replicas.front().ttl) << ','
       << static_cast<int>(stream.replicas.back().ttl) << ','
       << static_cast<std::int64_t>(stream.mean_spacing_ns()) << '\n';
  }
}

}  // namespace rloop::core
