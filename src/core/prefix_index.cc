#include "core/prefix_index.h"

#include <algorithm>
#include <array>

#include "core/parallel.h"

namespace rloop::core {

namespace {

std::uint64_t pack(const net::Prefix& prefix) {
  return (static_cast<std::uint64_t>(prefix.addr.value) << 8) | prefix.len;
}

}  // namespace

void NonLoopedIndex::seal() {
  // Records were appended in time order, so entries with equal keys are
  // already ts-sorted; any STABLE sort by key alone therefore yields the
  // (key, ts) order the queries binary-search. Keys are packed
  // (addr << 8) | len — 40 significant bits — so three LSD counting passes
  // of 14 bits sort them outright, in linear time and with sequential
  // scatter traffic, where a comparison sort pays n log n cache-missing
  // compares. Each pass is a counting sort (stable by construction).
  constexpr int kRadixBits = 14;
  constexpr std::size_t kBuckets = std::size_t{1} << kRadixBits;
  constexpr int kPasses = 3;  // 3 * 14 = 42 bits >= the 40-bit key space
  if (entries_.size() < 2) return;

  scratch_.resize(entries_.size());
  std::array<std::uint32_t, kBuckets> histogram;
  for (int pass = 0; pass < kPasses; ++pass) {
    const int shift = pass * kRadixBits;
    histogram.fill(0);
    for (const Entry& e : entries_) {
      ++histogram[(e.key >> shift) & (kBuckets - 1)];
    }
    // Skip a pass whose digit is constant (common: the low byte is the
    // prefix length, identical for every /24 entry).
    if (histogram[(entries_[0].key >> shift) & (kBuckets - 1)] ==
        entries_.size()) {
      continue;
    }
    std::uint32_t offset = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint32_t count = histogram[b];
      histogram[b] = offset;
      offset += count;
    }
    for (const Entry& e : entries_) {
      scratch_[histogram[(e.key >> shift) & (kBuckets - 1)]++] = e;
    }
    entries_.swap(scratch_);
  }
}

NonLoopedIndex::NonLoopedIndex(const std::vector<ParsedRecord>& records,
                               const std::vector<bool>& is_member) {
  for (const ParsedRecord& rec : records) {
    if (!rec.ok) continue;
    if (is_member[rec.index]) continue;
    entries_.push_back({pack(rec.dst24), rec.ts});
  }
  seal();
}

NonLoopedIndex::NonLoopedIndex(const std::vector<ParsedRecord>& records,
                               const std::vector<bool>& is_member,
                               unsigned shard, unsigned num_shards) {
  for (const ParsedRecord& rec : records) {
    if (!rec.ok) continue;
    if (is_member[rec.index]) continue;
    if (shard_of_prefix(rec.dst24, num_shards) != shard) continue;
    entries_.push_back({pack(rec.dst24), rec.ts});
  }
  seal();
}

NonLoopedIndex::NonLoopedIndex(const RecordStore& store,
                               const std::vector<bool>& is_member) {
  rebuild(store, is_member);
}

NonLoopedIndex::NonLoopedIndex(const RecordStore& store,
                               const std::vector<bool>& is_member,
                               unsigned shard, unsigned num_shards) {
  rebuild(store, is_member, shard, num_shards);
}

void NonLoopedIndex::rebuild(const RecordStore& store,
                             const std::vector<bool>& is_member) {
  entries_.clear();
  const std::size_t n = store.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!store.ok(i)) continue;
    if (is_member[i]) continue;
    entries_.push_back({store.dst24_key(i), store.ts(i)});
  }
  seal();
}

void NonLoopedIndex::rebuild(const RecordStore& store,
                             const std::vector<bool>& is_member,
                             unsigned shard, unsigned num_shards) {
  entries_.clear();
  const std::size_t n = store.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!store.ok(i)) continue;
    if (is_member[i]) continue;
    // shard_of_prefix over the packed key: mix64(pack(prefix)) % num_shards.
    if (mix64(store.dst24_key(i)) % num_shards != shard) continue;
    entries_.push_back({store.dst24_key(i), store.ts(i)});
  }
  seal();
}

bool NonLoopedIndex::any_in(const net::Prefix& prefix24, net::TimeNs from,
                            net::TimeNs to) const {
  return first_in(prefix24, from, to).has_value();
}

std::optional<net::TimeNs> NonLoopedIndex::first_in(const net::Prefix& prefix24,
                                                    net::TimeNs from,
                                                    net::TimeNs to) const {
  const Entry probe{pack(prefix24), from};
  const auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), probe,
      [](const Entry& a, const Entry& b) {
        if (a.key != b.key) return a.key < b.key;
        return a.ts < b.ts;
      });
  if (lo == entries_.end() || lo->key != probe.key || lo->ts > to) {
    return std::nullopt;
  }
  return lo->ts;
}

std::size_t NonLoopedIndex::prefix_count() const {
  std::size_t count = 0;
  std::uint64_t prev = 0;
  bool first = true;
  for (const Entry& e : entries_) {
    if (first || e.key != prev) {
      ++count;
      prev = e.key;
      first = false;
    }
  }
  return count;
}

}  // namespace rloop::core
