#include "core/prefix_index.h"

#include <algorithm>

#include "core/parallel.h"

namespace rloop::core {

NonLoopedIndex::NonLoopedIndex(const std::vector<ParsedRecord>& records,
                               const std::vector<bool>& is_member) {
  for (const ParsedRecord& rec : records) {
    if (!rec.ok) continue;
    if (is_member[rec.index]) continue;
    by_prefix_[rec.dst24].push_back(rec.ts);
  }
  // Records arrive in time order, so each vector is already sorted; assert
  // cheaply in debug builds by relying on binary search correctness in any().
}

NonLoopedIndex::NonLoopedIndex(const std::vector<ParsedRecord>& records,
                               const std::vector<bool>& is_member,
                               unsigned shard, unsigned num_shards) {
  for (const ParsedRecord& rec : records) {
    if (!rec.ok) continue;
    if (is_member[rec.index]) continue;
    if (shard_of_prefix(rec.dst24, num_shards) != shard) continue;
    by_prefix_[rec.dst24].push_back(rec.ts);
  }
}

bool NonLoopedIndex::any_in(const net::Prefix& prefix24, net::TimeNs from,
                            net::TimeNs to) const {
  const auto it = by_prefix_.find(prefix24);
  if (it == by_prefix_.end()) return false;
  const auto& times = it->second;
  const auto lo = std::lower_bound(times.begin(), times.end(), from);
  return lo != times.end() && *lo <= to;
}

std::optional<net::TimeNs> NonLoopedIndex::first_in(const net::Prefix& prefix24,
                                                    net::TimeNs from,
                                                    net::TimeNs to) const {
  const auto it = by_prefix_.find(prefix24);
  if (it == by_prefix_.end()) return std::nullopt;
  const auto& times = it->second;
  const auto lo = std::lower_bound(times.begin(), times.end(), from);
  if (lo == times.end() || *lo > to) return std::nullopt;
  return *lo;
}

}  // namespace rloop::core
