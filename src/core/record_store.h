// Structure-of-arrays view of a parsed trace for the detection hot path.
//
// The detect/validate/merge scans read a handful of narrow fields per record
// (timestamp, TTL, destination /24, replica-key hash); ParsedRecord carries
// all of them plus the full ParsedPacket, so an array-of-structs scan drags
// ~10x the bytes it reads through the cache. RecordStore transposes the
// fields the scans touch into contiguous per-field columns:
//
//   ts        int64   capture timestamp
//   dst       uint32  raw destination address
//   dst24     uint32  destination address masked to /24
//   ttl       uint8   IP TTL
//   ok        uint8   1 when the IP header parsed
//   key_hash  uint64  replica_key_hash over the captured bytes (0 when !ok)
//
// The key-hash column is computed once at build time — the serial and
// sharded detectors both consume it, so FNV runs exactly once per record on
// every path. The store also keeps a pointer to the source trace: replica
// keys are still materialized from the raw captured bytes (byte-precise
// equality, no false merges), and `bytes(i)` hands those out. The trace must
// therefore outlive the store.
//
// ParsedRecord remains the public API of parse results; the store is built
// from (trace, records) by the pipeline's columnize stage and is bytewise
// deterministic: build() and build_parallel() produce identical columns for
// any pool size (each record writes only its own row).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/record.h"
#include "net/prefix.h"
#include "net/time.h"
#include "net/trace.h"
#include "util/thread_pool.h"

namespace rloop::core {

class RecordStore {
 public:
  RecordStore() = default;

  // Columnizes `records` (which must be parse_trace(trace)); retains a
  // pointer to `trace` for bytes().
  static RecordStore build(const net::Trace& trace,
                           const std::vector<ParsedRecord>& records);

  // build() with the key-hash column computed in parallel chunks on `pool`
  // (span name "hash_chunk" — hashing is the dominant cost of the build).
  // Output is bytewise identical to build() for any pool size.
  static RecordStore build_parallel(const net::Trace& trace,
                                    const std::vector<ParsedRecord>& records,
                                    util::ThreadPool& pool,
                                    std::size_t chunk = 0);

  // Staged-dataflow support (core/pipeline.cc): sizes every column for `n`
  // records of `trace` without filling them; rows are then written by
  // set_row, each exactly once, by the worker that owns the record
  // (disjoint-row discipline — no two threads ever touch one index).
  // Column capacity is reused across calls, so a persistent workspace's
  // store allocates nothing once warm.
  void prepare(const net::Trace& trace, std::size_t n);

  // Fills row i from a parsed record plus its precomputed replica-key hash;
  // the hash is stored only when the record parsed ok, matching build().
  void set_row(std::size_t i, const ParsedRecord& rec,
               std::uint64_t key_hash) {
    ts_[i] = rec.ts;
    ok_[i] = rec.ok ? 1 : 0;
    dst_[i] = rec.pkt.ip.dst.value;
    dst24_[i] = rec.dst24.addr.value;
    ttl_[i] = rec.pkt.ip.ttl;
    key_hash_[i] = rec.ok ? key_hash : 0;
  }

  std::size_t size() const { return ts_.size(); }
  bool empty() const { return ts_.empty(); }

  bool ok(std::size_t i) const { return ok_[i] != 0; }
  net::TimeNs ts(std::size_t i) const { return ts_[i]; }
  std::uint8_t ttl(std::size_t i) const { return ttl_[i]; }
  net::Ipv4Addr dst(std::size_t i) const { return net::Ipv4Addr(dst_[i]); }
  net::Prefix dst24(std::size_t i) const {
    return net::Prefix::of(net::Ipv4Addr(dst24_[i]), 24);
  }
  // Packed (addr << 8 | 24) form of dst24, the NonLoopedIndex sort key.
  std::uint64_t dst24_key(std::size_t i) const {
    return (static_cast<std::uint64_t>(dst24_[i]) << 8) | 24u;
  }
  std::uint64_t key_hash(std::size_t i) const { return key_hash_[i]; }

  // The record's captured bytes (starting at the IP header) in the source
  // trace; valid only while the trace lives.
  std::span<const std::byte> bytes(std::size_t i) const {
    return (*trace_)[i].bytes();
  }

  // Raw column access for tests and benchmarks.
  const std::vector<std::uint64_t>& key_hash_column() const {
    return key_hash_;
  }
  const std::vector<net::TimeNs>& ts_column() const { return ts_; }

 private:
  // Fills every column except key_hash in one pass; hashing (the dominant
  // build cost) is layered on top serially or in parallel chunks.
  static RecordStore columnize(const net::Trace& trace,
                               const std::vector<ParsedRecord>& records);

  const net::Trace* trace_ = nullptr;
  std::vector<net::TimeNs> ts_;
  std::vector<std::uint32_t> dst_;
  std::vector<std::uint32_t> dst24_;
  std::vector<std::uint8_t> ttl_;
  std::vector<std::uint8_t> ok_;
  std::vector<std::uint64_t> key_hash_;
};

}  // namespace rloop::core
