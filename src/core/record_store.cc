#include "core/record_store.h"

#include <algorithm>

#include "core/replica_key.h"

namespace rloop::core {

RecordStore RecordStore::columnize(const net::Trace& trace,
                                   const std::vector<ParsedRecord>& records) {
  RecordStore store;
  store.trace_ = &trace;
  const std::size_t n = records.size();
  store.ts_.resize(n);
  store.dst_.resize(n);
  store.dst24_.resize(n);
  store.ttl_.resize(n);
  store.ok_.resize(n);
  store.key_hash_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const ParsedRecord& rec = records[i];
    store.ts_[i] = rec.ts;
    store.ok_[i] = rec.ok ? 1 : 0;
    store.dst_[i] = rec.pkt.ip.dst.value;
    store.dst24_[i] = rec.dst24.addr.value;
    store.ttl_[i] = rec.pkt.ip.ttl;
  }
  return store;
}

RecordStore RecordStore::build(const net::Trace& trace,
                               const std::vector<ParsedRecord>& records) {
  RecordStore store = columnize(trace, records);
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (store.ok_[i] != 0) {
      store.key_hash_[i] = replica_key_hash(trace[i].bytes());
    }
  }
  return store;
}

RecordStore RecordStore::build_parallel(const net::Trace& trace,
                                        const std::vector<ParsedRecord>& records,
                                        util::ThreadPool& pool,
                                        std::size_t chunk) {
  RecordStore store = columnize(trace, records);
  const std::size_t n = records.size();
  if (chunk == 0) {
    chunk = std::max<std::size_t>(1, n / (4 * pool.size() + 1));
  }
  const std::size_t tasks = (n + chunk - 1) / chunk;
  pool.parallel_for(tasks, [&](std::size_t t) {
    const std::size_t lo = t * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) {
      if (store.ok_[i] != 0) {
        store.key_hash_[i] = replica_key_hash(trace[i].bytes());
      }
    }
  }, "hash_chunk");
  return store;
}

}  // namespace rloop::core
