#include "core/record_store.h"

#include <algorithm>

#include "core/replica_key.h"
#include "util/simd.h"

namespace rloop::core {

void RecordStore::prepare(const net::Trace& trace, std::size_t n) {
  trace_ = &trace;
  ts_.resize(n);
  dst_.resize(n);
  dst24_.resize(n);
  ttl_.resize(n);
  ok_.resize(n);
  key_hash_.resize(n);
}

RecordStore RecordStore::columnize(const net::Trace& trace,
                                   const std::vector<ParsedRecord>& records) {
  RecordStore store;
  store.trace_ = &trace;
  const std::size_t n = records.size();
  store.ts_.resize(n);
  store.dst_.resize(n);
  store.dst24_.resize(n);
  store.ttl_.resize(n);
  store.ok_.resize(n);
  store.key_hash_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const ParsedRecord& rec = records[i];
    store.ts_[i] = rec.ts;
    store.ok_[i] = rec.ok ? 1 : 0;
    store.dst_[i] = rec.pkt.ip.dst.value;
    store.ttl_[i] = rec.pkt.ip.ttl;
  }
  // dst24 extraction is one vectorized mask pass over the dst column: a
  // parsed record's dst24 is Prefix::slash24(dst), i.e. dst with the low
  // byte cleared. Records that failed to parse then get their (default
  // prefix) value restored scalar, preserving build()'s exact bytes; the
  // scan is branch-predictable because parse failures are rare.
  util::simd::mask_lo8_zero(store.dst_.data(), store.dst24_.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    if (store.ok_[i] == 0) store.dst24_[i] = records[i].dst24.addr.value;
  }
  return store;
}

RecordStore RecordStore::build(const net::Trace& trace,
                               const std::vector<ParsedRecord>& records) {
  RecordStore store = columnize(trace, records);
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (store.ok_[i] != 0) {
      store.key_hash_[i] = replica_key_hash(trace[i].bytes());
    }
  }
  return store;
}

RecordStore RecordStore::build_parallel(const net::Trace& trace,
                                        const std::vector<ParsedRecord>& records,
                                        util::ThreadPool& pool,
                                        std::size_t chunk) {
  RecordStore store = columnize(trace, records);
  const std::size_t n = records.size();
  if (chunk == 0) {
    chunk = std::max<std::size_t>(1, n / (4 * pool.size() + 1));
  }
  const std::size_t tasks = (n + chunk - 1) / chunk;
  pool.parallel_for(tasks, [&](std::size_t t) {
    const std::size_t lo = t * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) {
      if (store.ok_[i] != 0) {
        store.key_hash_[i] = replica_key_hash(trace[i].bytes());
      }
    }
  }, "hash_chunk");
  return store;
}

}  // namespace rloop::core
