// Step 3 of the paper's algorithm: merge replica streams into routing loops.
//
// Streams to the same /24 that overlap in time are almost certainly the same
// loop. Streams separated by less than `merge_gap` (paper: one minute; 2 and
// 5 minutes changed little) are also merged, provided no non-looped packet
// to the prefix falls in the gap — otherwise the loop demonstrably healed
// in between.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/parallel.h"
#include "core/prefix_index.h"
#include "core/record_store.h"
#include "core/replica_detector.h"
#include "net/prefix.h"
#include "net/time.h"
#include "telemetry/decision_log.h"
#include "telemetry/registry.h"
#include "util/thread_pool.h"

namespace rloop::core {

struct RoutingLoop {
  net::Prefix prefix24;
  net::TimeNs start = 0;
  net::TimeNs end = 0;
  // Indices into the validated-stream vector passed to merge().
  std::vector<std::uint32_t> stream_indices;
  std::uint64_t replica_count = 0;
  // Mode of the member streams' dominant TTL deltas: the loop's hop count.
  int ttl_delta = 0;

  net::TimeNs duration() const { return end - start; }
  std::size_t stream_count() const { return stream_indices.size(); }
};

struct MergerConfig {
  net::TimeNs merge_gap = net::kMinute;
};

// Reusable buffers for the store-based merge_sharded(): the membership
// bitmap, one NonLoopedIndex per shard (rebuilt in place), per-shard
// grouping scratch and output vectors, and the resolved shard-latency
// histogram pointers. A warm call through a scratch reuses all of their
// capacity; results are identical to the scratch-free overloads.
struct MergerScratch {
  std::vector<bool> membership;
  std::vector<NonLoopedIndex> shard_indexes;
  std::vector<std::vector<std::uint32_t>> shard_order;
  std::vector<std::vector<std::uint32_t>> shard_group;
  std::vector<std::vector<RoutingLoop>> shard_loops;
  std::vector<std::uint64_t> shard_merges;
  std::vector<telemetry::Histogram*> shard_latency;
};

class StreamMerger {
 public:
  // `registry` (optional) receives merge and loop counters. `journal`
  // (optional) receives one event per merge decision: loop_extended when a
  // stream folds into an open loop, loop_split_gap / loop_split_healthy when
  // it cannot (with the gap and refuting evidence), loop_emitted per loop.
  explicit StreamMerger(MergerConfig config = {},
                        telemetry::Registry* registry = nullptr,
                        telemetry::DecisionLog* journal = nullptr);

  // `valid_streams` is the validator's output; `records` the parsed trace
  // (needed to check gaps for non-looped traffic). Returns loops ordered by
  // (prefix, start time).
  std::vector<RoutingLoop> merge(
      const std::vector<ParsedRecord>& records,
      const std::vector<ReplicaStream>& valid_streams) const;

  // Columnized equivalent: identical loops, with the NonLoopedIndex built
  // from the SoA store's columns instead of ParsedRecords.
  std::vector<RoutingLoop> merge(
      const RecordStore& store,
      const std::vector<ReplicaStream>& valid_streams) const;

  // Sharded merge(): partitions prefixes across shards (merging is
  // independent per /24 — streams of different prefixes never merge), each
  // shard using a NonLoopedIndex of its own prefixes for the gap checks.
  // Per-shard loops are concatenated and sorted by the same (prefix, start)
  // total order merge() uses, so output is field-identical for any pool
  // size and shard count. Loops' stream_indices are global indices into
  // `valid_streams`, exactly as in the serial path.
  std::vector<RoutingLoop> merge_sharded(
      const std::vector<ParsedRecord>& records,
      const std::vector<ReplicaStream>& valid_streams, util::ThreadPool& pool,
      unsigned num_shards) const;

  // Columnized equivalent of merge_sharded().
  std::vector<RoutingLoop> merge_sharded(
      const RecordStore& store,
      const std::vector<ReplicaStream>& valid_streams, util::ThreadPool& pool,
      unsigned num_shards) const;

  // As above, reusing `scratch` buffers across calls (pipeline workspace
  // path). Output loops and order are identical.
  std::vector<RoutingLoop> merge_sharded(
      const RecordStore& store,
      const std::vector<ReplicaStream>& valid_streams, util::ThreadPool& pool,
      unsigned num_shards, MergerScratch& scratch) const;

 private:
  // Shared merge loops; the record-based and store-based overloads differ
  // only in how the NonLoopedIndex is built, so both delegate here and
  // cannot drift. `build_shard` fills the provided index for one shard;
  // `scratch` (optional) supplies per-shard index/grouping/output storage,
  // otherwise locals are used.
  std::vector<RoutingLoop> merge_with_index(
      const NonLoopedIndex& index,
      const std::vector<ReplicaStream>& valid_streams) const;
  std::vector<RoutingLoop> merge_sharded_impl(
      const std::function<void(unsigned, NonLoopedIndex&)>& build_shard,
      const std::vector<ReplicaStream>& valid_streams, util::ThreadPool& pool,
      unsigned num_shards, MergerScratch* scratch) const;

  MergerConfig config_;
  telemetry::Registry* registry_ = nullptr;
  telemetry::DecisionLog* journal_ = nullptr;
  telemetry::Counter* m_merges_ = nullptr;
  telemetry::Counter* m_loops_ = nullptr;
};

}  // namespace rloop::core
