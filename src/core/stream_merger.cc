#include "core/stream_merger.h"

#include <algorithm>
#include <map>

namespace rloop::core {

StreamMerger::StreamMerger(MergerConfig config, telemetry::Registry* registry)
    : config_(config),
      m_merges_(telemetry::get_counter(
          registry, "rloop_merger_merges_total", {},
          "Stream pairs merged into an already-open loop")),
      m_loops_(telemetry::get_counter(registry, "rloop_merger_loops_total", {},
                                      "Routing loops emitted")) {}

std::vector<RoutingLoop> StreamMerger::merge(
    const std::vector<ParsedRecord>& records,
    const std::vector<ReplicaStream>& valid_streams) const {
  // Gap checks use non-looped traffic, where "looped" means membership in a
  // validated stream: the question is whether forwarding for the prefix was
  // demonstrably healthy between two streams.
  const auto member = stream_membership(records.size(), valid_streams);
  const NonLoopedIndex index(records, member);

  // Group stream indices by prefix, keeping time order within each group.
  std::map<net::Prefix, std::vector<std::uint32_t>> by_prefix;
  for (std::uint32_t i = 0; i < valid_streams.size(); ++i) {
    by_prefix[valid_streams[i].dst24].push_back(i);
  }

  std::vector<RoutingLoop> loops;
  for (auto& [prefix, indices] : by_prefix) {
    std::sort(indices.begin(), indices.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return valid_streams[a].start() < valid_streams[b].start();
              });

    RoutingLoop current;
    bool open = false;
    auto flush = [&]() {
      if (!open) return;
      // The loop's hop count: mode of member streams' dominant deltas.
      std::map<int, int> delta_counts;
      for (std::uint32_t si : current.stream_indices) {
        const int d = valid_streams[si].dominant_ttl_delta();
        if (d > 0) ++delta_counts[d];
      }
      int best = 0;
      int best_count = 0;
      for (const auto& [delta, count] : delta_counts) {
        if (count > best_count) {
          best = delta;
          best_count = count;
        }
      }
      current.ttl_delta = best;
      telemetry::inc(m_loops_);
      loops.push_back(current);
      open = false;
    };

    for (std::uint32_t si : indices) {
      const ReplicaStream& s = valid_streams[si];
      if (open) {
        const bool overlaps = s.start() <= current.end;
        const bool near = !overlaps &&
                          s.start() - current.end < config_.merge_gap &&
                          !index.any_in(prefix, current.end + 1, s.start() - 1);
        if (overlaps || near) {
          telemetry::inc(m_merges_);
          current.end = std::max(current.end, s.end());
          current.stream_indices.push_back(si);
          current.replica_count += s.size();
          continue;
        }
        flush();
      }
      current = RoutingLoop{};
      current.prefix24 = prefix;
      current.start = s.start();
      current.end = s.end();
      current.stream_indices = {si};
      current.replica_count = s.size();
      open = true;
    }
    flush();
  }

  std::sort(loops.begin(), loops.end(),
            [](const RoutingLoop& a, const RoutingLoop& b) {
              if (a.prefix24 != b.prefix24)
                return a.prefix24 < b.prefix24;
              return a.start < b.start;
            });
  return loops;
}

}  // namespace rloop::core
