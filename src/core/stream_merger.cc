#include "core/stream_merger.h"

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <string>

namespace rloop::core {

StreamMerger::StreamMerger(MergerConfig config, telemetry::Registry* registry,
                           telemetry::DecisionLog* journal)
    : config_(config),
      registry_(registry),
      journal_(journal),
      m_merges_(telemetry::get_counter(
          registry, "rloop_merger_merges_total", {},
          "Stream pairs merged into an already-open loop")),
      m_loops_(telemetry::get_counter(registry, "rloop_merger_loops_total", {},
                                      "Routing loops emitted")) {}

namespace {

// Merges one prefix's streams (indices into `valid_streams`, any order) into
// loops appended to `loops`. Shared verbatim by the serial and sharded paths
// so they cannot drift; `merges` counts pairs folded into an open loop.
void merge_prefix_group(const net::Prefix& prefix,
                        std::vector<std::uint32_t>& indices,
                        const std::vector<ReplicaStream>& valid_streams,
                        const NonLoopedIndex& index, net::TimeNs merge_gap,
                        std::vector<RoutingLoop>& loops,
                        std::uint64_t& merges,
                        telemetry::DecisionLog* journal) {
  std::sort(indices.begin(), indices.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return valid_streams[a].start() < valid_streams[b].start();
            });

  RoutingLoop current;
  bool open = false;
  auto flush = [&]() {
    if (!open) return;
    // The loop's hop count: mode of member streams' dominant deltas. Deltas
    // fit [1, 255], so a direct-indexed counter replaces the ordered map;
    // the ascending scan keeps the same smallest-delta tie-break.
    std::array<std::uint32_t, 256> delta_counts{};
    for (std::uint32_t si : current.stream_indices) {
      const int d = valid_streams[si].dominant_ttl_delta();
      if (d > 0) ++delta_counts[static_cast<std::size_t>(d)];
    }
    int best = 0;
    std::uint32_t best_count = 0;
    for (int d = 1; d < 256; ++d) {
      if (delta_counts[static_cast<std::size_t>(d)] > best_count) {
        best = d;
        best_count = delta_counts[static_cast<std::size_t>(d)];
      }
    }
    current.ttl_delta = best;
    telemetry::record(
        journal,
        {.kind = telemetry::DecisionKind::loop_emitted,
         .dst24 = prefix,
         .ts = current.end,
         .record_index = valid_streams[current.stream_indices.front()]
                             .replicas.front()
                             .record_index,
         .detail = static_cast<std::int64_t>(current.stream_count()),
         .detail2 = static_cast<std::int64_t>(current.replica_count)});
    loops.push_back(current);
    open = false;
  };

  for (std::uint32_t si : indices) {
    const ReplicaStream& s = valid_streams[si];
    const std::uint32_t rec = s.replicas.front().record_index;
    if (open) {
      const bool overlaps = s.start() <= current.end;
      const net::TimeNs gap = overlaps ? 0 : s.start() - current.end;
      // first_in doubles as the any_in check and the journal's evidence
      // (which healthy packet proved the loop healed inside the gap).
      const auto healthy =
          overlaps || gap >= merge_gap
              ? std::nullopt
              : index.first_in(prefix, current.end + 1, s.start() - 1);
      const bool near = !overlaps && gap < merge_gap && !healthy;
      if (overlaps || near) {
        ++merges;
        current.end = std::max(current.end, s.end());
        current.stream_indices.push_back(si);
        current.replica_count += s.size();
        telemetry::record(
            journal,
            {.kind = telemetry::DecisionKind::loop_extended,
             .dst24 = prefix,
             .ts = s.end(),
             .record_index = rec,
             .detail = gap,
             .detail2 = static_cast<std::int64_t>(current.stream_count())});
        continue;
      }
      if (journal) {
        if (healthy) {
          journal->record({.kind = telemetry::DecisionKind::loop_split_healthy,
                           .dst24 = prefix,
                           .ts = s.end(),
                           .record_index = rec,
                           .detail = gap,
                           .detail2 = *healthy});
        } else {
          journal->record({.kind = telemetry::DecisionKind::loop_split_gap,
                           .dst24 = prefix,
                           .ts = s.end(),
                           .record_index = rec,
                           .detail = gap,
                           .detail2 = merge_gap});
        }
      }
      flush();
    }
    current = RoutingLoop{};
    current.prefix24 = prefix;
    current.start = s.start();
    current.end = s.end();
    current.stream_indices = {si};
    current.replica_count = s.size();
    open = true;
  }
  flush();
}

void sort_loops(std::vector<RoutingLoop>& loops) {
  std::sort(loops.begin(), loops.end(),
            [](const RoutingLoop& a, const RoutingLoop& b) {
              if (a.prefix24 != b.prefix24) return a.prefix24 < b.prefix24;
              return a.start < b.start;
            });
}

}  // namespace

std::vector<RoutingLoop> StreamMerger::merge(
    const std::vector<ParsedRecord>& records,
    const std::vector<ReplicaStream>& valid_streams) const {
  // Gap checks use non-looped traffic, where "looped" means membership in a
  // validated stream: the question is whether forwarding for the prefix was
  // demonstrably healthy between two streams.
  const auto member = stream_membership(records.size(), valid_streams);
  const NonLoopedIndex index(records, member);
  return merge_with_index(index, valid_streams);
}

std::vector<RoutingLoop> StreamMerger::merge(
    const RecordStore& store,
    const std::vector<ReplicaStream>& valid_streams) const {
  const auto member = stream_membership(store.size(), valid_streams);
  const NonLoopedIndex index(store, member);
  return merge_with_index(index, valid_streams);
}

std::vector<RoutingLoop> StreamMerger::merge_with_index(
    const NonLoopedIndex& index,
    const std::vector<ReplicaStream>& valid_streams) const {
  // Group stream indices by prefix, keeping time order within each group.
  std::map<net::Prefix, std::vector<std::uint32_t>> by_prefix;
  for (std::uint32_t i = 0; i < valid_streams.size(); ++i) {
    by_prefix[valid_streams[i].dst24].push_back(i);
  }

  std::vector<RoutingLoop> loops;
  std::uint64_t merges = 0;
  for (auto& [prefix, indices] : by_prefix) {
    merge_prefix_group(prefix, indices, valid_streams, index,
                       config_.merge_gap, loops, merges, journal_);
  }
  telemetry::inc(m_merges_, merges);
  telemetry::inc(m_loops_, loops.size());

  sort_loops(loops);
  return loops;
}

std::vector<RoutingLoop> StreamMerger::merge_sharded(
    const std::vector<ParsedRecord>& records,
    const std::vector<ReplicaStream>& valid_streams, util::ThreadPool& pool,
    unsigned num_shards) const {
  if (num_shards < 2) return merge(records, valid_streams);
  auto member = std::make_shared<const std::vector<bool>>(
      stream_membership(records.size(), valid_streams));
  return merge_sharded_impl(
      [&records, member, num_shards](unsigned s) {
        return NonLoopedIndex(records, *member, s, num_shards);
      },
      valid_streams, pool, num_shards);
}

std::vector<RoutingLoop> StreamMerger::merge_sharded(
    const RecordStore& store,
    const std::vector<ReplicaStream>& valid_streams, util::ThreadPool& pool,
    unsigned num_shards) const {
  if (num_shards < 2) return merge(store, valid_streams);
  auto member = std::make_shared<const std::vector<bool>>(
      stream_membership(store.size(), valid_streams));
  return merge_sharded_impl(
      [&store, member, num_shards](unsigned s) {
        return NonLoopedIndex(store, *member, s, num_shards);
      },
      valid_streams, pool, num_shards);
}

std::vector<RoutingLoop> StreamMerger::merge_sharded_impl(
    const std::function<NonLoopedIndex(unsigned)>& shard_index,
    const std::vector<ReplicaStream>& valid_streams, util::ThreadPool& pool,
    unsigned num_shards) const {
  std::vector<telemetry::Histogram*> shard_latency(num_shards, nullptr);
  for (unsigned s = 0; s < num_shards; ++s) {
    shard_latency[s] = telemetry::get_histogram(
        registry_, "rloop_pipeline_shard_latency_ns",
        telemetry::latency_bounds_ns(),
        {{"stage", "merge"}, {"shard", std::to_string(s)}},
        "Wall-clock latency of one pipeline shard per sharded call");
  }

  std::vector<std::vector<RoutingLoop>> shard_loops(num_shards);
  std::vector<std::uint64_t> shard_merges(num_shards, 0);
  pool.parallel_for(num_shards, [&](std::size_t s) {
    const telemetry::ScopedTimer timer(shard_latency[s]);
    const NonLoopedIndex index = shard_index(static_cast<unsigned>(s));
    // Group this shard's prefixes only, with global stream indices.
    std::map<net::Prefix, std::vector<std::uint32_t>> by_prefix;
    for (std::uint32_t i = 0; i < valid_streams.size(); ++i) {
      if (shard_of_prefix(valid_streams[i].dst24, num_shards) != s) continue;
      by_prefix[valid_streams[i].dst24].push_back(i);
    }
    for (auto& [prefix, indices] : by_prefix) {
      merge_prefix_group(prefix, indices, valid_streams, index,
                         config_.merge_gap, shard_loops[s], shard_merges[s],
                         journal_);
    }
  }, "merge_shard");

  std::vector<RoutingLoop> loops;
  std::uint64_t merges = 0;
  std::size_t total = 0;
  for (unsigned s = 0; s < num_shards; ++s) total += shard_loops[s].size();
  loops.reserve(total);
  for (unsigned s = 0; s < num_shards; ++s) {
    merges += shard_merges[s];
    std::move(shard_loops[s].begin(), shard_loops[s].end(),
              std::back_inserter(loops));
  }
  telemetry::inc(m_merges_, merges);
  telemetry::inc(m_loops_, loops.size());

  // (prefix, start) is a total order — two loops for one prefix are disjoint
  // in time — so this sort reproduces the serial output order exactly.
  sort_loops(loops);
  return loops;
}

}  // namespace rloop::core
