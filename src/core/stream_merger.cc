#include "core/stream_merger.h"

#include <algorithm>
#include <array>
#include <memory>
#include <string>

namespace rloop::core {

StreamMerger::StreamMerger(MergerConfig config, telemetry::Registry* registry,
                           telemetry::DecisionLog* journal)
    : config_(config),
      registry_(registry),
      journal_(journal),
      m_merges_(telemetry::get_counter(
          registry, "rloop_merger_merges_total", {},
          "Stream pairs merged into an already-open loop")),
      m_loops_(telemetry::get_counter(registry, "rloop_merger_loops_total", {},
                                      "Routing loops emitted")) {}

namespace {

// Merges one prefix's streams (indices into `valid_streams`, any order) into
// loops appended to `loops`. Shared verbatim by the serial and sharded paths
// so they cannot drift; `merges` counts pairs folded into an open loop.
void merge_prefix_group(const net::Prefix& prefix,
                        std::vector<std::uint32_t>& indices,
                        const std::vector<ReplicaStream>& valid_streams,
                        const NonLoopedIndex& index, net::TimeNs merge_gap,
                        std::vector<RoutingLoop>& loops,
                        std::uint64_t& merges,
                        telemetry::DecisionLog* journal) {
  std::sort(indices.begin(), indices.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return valid_streams[a].start() < valid_streams[b].start();
            });

  RoutingLoop current;
  bool open = false;
  auto flush = [&]() {
    if (!open) return;
    // The loop's hop count: mode of member streams' dominant deltas. Deltas
    // fit [1, 255], so a direct-indexed counter replaces the ordered map;
    // the ascending scan keeps the same smallest-delta tie-break.
    std::array<std::uint32_t, 256> delta_counts{};
    for (std::uint32_t si : current.stream_indices) {
      const int d = valid_streams[si].dominant_ttl_delta();
      if (d > 0) ++delta_counts[static_cast<std::size_t>(d)];
    }
    int best = 0;
    std::uint32_t best_count = 0;
    for (int d = 1; d < 256; ++d) {
      if (delta_counts[static_cast<std::size_t>(d)] > best_count) {
        best = d;
        best_count = delta_counts[static_cast<std::size_t>(d)];
      }
    }
    current.ttl_delta = best;
    telemetry::record(
        journal,
        {.kind = telemetry::DecisionKind::loop_emitted,
         .dst24 = prefix,
         .ts = current.end,
         .record_index = valid_streams[current.stream_indices.front()]
                             .replicas.front()
                             .record_index,
         .detail = static_cast<std::int64_t>(current.stream_count()),
         .detail2 = static_cast<std::int64_t>(current.replica_count)});
    loops.push_back(current);
    open = false;
  };

  for (std::uint32_t si : indices) {
    const ReplicaStream& s = valid_streams[si];
    const std::uint32_t rec = s.replicas.front().record_index;
    if (open) {
      const bool overlaps = s.start() <= current.end;
      const net::TimeNs gap = overlaps ? 0 : s.start() - current.end;
      // first_in doubles as the any_in check and the journal's evidence
      // (which healthy packet proved the loop healed inside the gap).
      const auto healthy =
          overlaps || gap >= merge_gap
              ? std::nullopt
              : index.first_in(prefix, current.end + 1, s.start() - 1);
      const bool near = !overlaps && gap < merge_gap && !healthy;
      if (overlaps || near) {
        ++merges;
        current.end = std::max(current.end, s.end());
        current.stream_indices.push_back(si);
        current.replica_count += s.size();
        telemetry::record(
            journal,
            {.kind = telemetry::DecisionKind::loop_extended,
             .dst24 = prefix,
             .ts = s.end(),
             .record_index = rec,
             .detail = gap,
             .detail2 = static_cast<std::int64_t>(current.stream_count())});
        continue;
      }
      if (journal) {
        if (healthy) {
          journal->record({.kind = telemetry::DecisionKind::loop_split_healthy,
                           .dst24 = prefix,
                           .ts = s.end(),
                           .record_index = rec,
                           .detail = gap,
                           .detail2 = *healthy});
        } else {
          journal->record({.kind = telemetry::DecisionKind::loop_split_gap,
                           .dst24 = prefix,
                           .ts = s.end(),
                           .record_index = rec,
                           .detail = gap,
                           .detail2 = merge_gap});
        }
      }
      flush();
    }
    current = RoutingLoop{};
    current.prefix24 = prefix;
    current.start = s.start();
    current.end = s.end();
    current.stream_indices = {si};
    current.replica_count = s.size();
    open = true;
  }
  flush();
}

void sort_loops(std::vector<RoutingLoop>& loops) {
  std::sort(loops.begin(), loops.end(),
            [](const RoutingLoop& a, const RoutingLoop& b) {
              if (a.prefix24 != b.prefix24) return a.prefix24 < b.prefix24;
              return a.start < b.start;
            });
}

// Groups the stream indices selected by `keep` by prefix and runs
// merge_prefix_group once per group. This replaces the ordered-map grouping
// the merger used to build: sorting the index list by (prefix, index) yields
// the same ascending-prefix iteration with ascending stream index inside
// each group — the exact order the map produced — without a node allocation
// per prefix. `order` and `group` are caller-owned scratch so warm calls
// reuse their capacity.
template <typename Keep>
void group_and_merge(const std::vector<ReplicaStream>& valid_streams,
                     const Keep& keep, std::vector<std::uint32_t>& order,
                     std::vector<std::uint32_t>& group,
                     const NonLoopedIndex& index, net::TimeNs merge_gap,
                     std::vector<RoutingLoop>& loops, std::uint64_t& merges,
                     telemetry::DecisionLog* journal) {
  order.clear();
  for (std::uint32_t i = 0; i < valid_streams.size(); ++i) {
    if (keep(i)) order.push_back(i);
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const net::Prefix& pa = valid_streams[a].dst24;
              const net::Prefix& pb = valid_streams[b].dst24;
              if (pa != pb) return pa < pb;
              return a < b;
            });
  std::size_t i = 0;
  while (i < order.size()) {
    const net::Prefix prefix = valid_streams[order[i]].dst24;
    std::size_t j = i + 1;
    while (j < order.size() && valid_streams[order[j]].dst24 == prefix) ++j;
    group.assign(order.begin() + static_cast<std::ptrdiff_t>(i),
                 order.begin() + static_cast<std::ptrdiff_t>(j));
    merge_prefix_group(prefix, group, valid_streams, index, merge_gap, loops,
                       merges, journal);
    i = j;
  }
}

}  // namespace

std::vector<RoutingLoop> StreamMerger::merge(
    const std::vector<ParsedRecord>& records,
    const std::vector<ReplicaStream>& valid_streams) const {
  // Gap checks use non-looped traffic, where "looped" means membership in a
  // validated stream: the question is whether forwarding for the prefix was
  // demonstrably healthy between two streams.
  const auto member = stream_membership(records.size(), valid_streams);
  const NonLoopedIndex index(records, member);
  return merge_with_index(index, valid_streams);
}

std::vector<RoutingLoop> StreamMerger::merge(
    const RecordStore& store,
    const std::vector<ReplicaStream>& valid_streams) const {
  const auto member = stream_membership(store.size(), valid_streams);
  const NonLoopedIndex index(store, member);
  return merge_with_index(index, valid_streams);
}

std::vector<RoutingLoop> StreamMerger::merge_with_index(
    const NonLoopedIndex& index,
    const std::vector<ReplicaStream>& valid_streams) const {
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> group;
  std::vector<RoutingLoop> loops;
  std::uint64_t merges = 0;
  group_and_merge(
      valid_streams, [](std::uint32_t) { return true; }, order, group, index,
      config_.merge_gap, loops, merges, journal_);
  telemetry::inc(m_merges_, merges);
  telemetry::inc(m_loops_, loops.size());

  sort_loops(loops);
  return loops;
}

std::vector<RoutingLoop> StreamMerger::merge_sharded(
    const std::vector<ParsedRecord>& records,
    const std::vector<ReplicaStream>& valid_streams, util::ThreadPool& pool,
    unsigned num_shards) const {
  if (num_shards < 2) return merge(records, valid_streams);
  auto member = std::make_shared<const std::vector<bool>>(
      stream_membership(records.size(), valid_streams));
  return merge_sharded_impl(
      [&records, member, num_shards](unsigned s, NonLoopedIndex& out) {
        out = NonLoopedIndex(records, *member, s, num_shards);
      },
      valid_streams, pool, num_shards, nullptr);
}

std::vector<RoutingLoop> StreamMerger::merge_sharded(
    const RecordStore& store,
    const std::vector<ReplicaStream>& valid_streams, util::ThreadPool& pool,
    unsigned num_shards) const {
  if (num_shards < 2) return merge(store, valid_streams);
  auto member = std::make_shared<const std::vector<bool>>(
      stream_membership(store.size(), valid_streams));
  return merge_sharded_impl(
      [&store, member, num_shards](unsigned s, NonLoopedIndex& out) {
        out = NonLoopedIndex(store, *member, s, num_shards);
      },
      valid_streams, pool, num_shards, nullptr);
}

std::vector<RoutingLoop> StreamMerger::merge_sharded(
    const RecordStore& store,
    const std::vector<ReplicaStream>& valid_streams, util::ThreadPool& pool,
    unsigned num_shards, MergerScratch& scratch) const {
  if (num_shards < 2) {
    stream_membership(store.size(), valid_streams, scratch.membership);
    scratch.shard_indexes.resize(1);
    scratch.shard_indexes[0].rebuild(store, scratch.membership);
    return merge_with_index(scratch.shard_indexes[0], valid_streams);
  }
  stream_membership(store.size(), valid_streams, scratch.membership);
  const std::vector<bool>& member = scratch.membership;
  return merge_sharded_impl(
      [&store, &member, num_shards](unsigned s, NonLoopedIndex& out) {
        out.rebuild(store, member, s, num_shards);
      },
      valid_streams, pool, num_shards, &scratch);
}

std::vector<RoutingLoop> StreamMerger::merge_sharded_impl(
    const std::function<void(unsigned, NonLoopedIndex&)>& build_shard,
    const std::vector<ReplicaStream>& valid_streams, util::ThreadPool& pool,
    unsigned num_shards, MergerScratch* scratch) const {
  std::vector<telemetry::Histogram*> local_latency;
  std::vector<telemetry::Histogram*>& shard_latency =
      scratch ? scratch->shard_latency : local_latency;
  shard_latency.assign(num_shards, nullptr);
  for (unsigned s = 0; s < num_shards; ++s) {
    shard_latency[s] = telemetry::get_histogram(
        registry_, "rloop_pipeline_shard_latency_ns",
        telemetry::latency_bounds_ns(),
        {{"stage", "merge"}, {"shard", std::to_string(s)}},
        "Wall-clock latency of one pipeline shard per sharded call");
  }

  std::vector<std::vector<RoutingLoop>> local_loops;
  std::vector<std::vector<RoutingLoop>>& shard_loops =
      scratch ? scratch->shard_loops : local_loops;
  shard_loops.resize(num_shards);
  for (auto& v : shard_loops) v.clear();
  std::vector<std::uint64_t> local_merges;
  std::vector<std::uint64_t>& shard_merges =
      scratch ? scratch->shard_merges : local_merges;
  shard_merges.assign(num_shards, 0);
  if (scratch) {
    scratch->shard_indexes.resize(num_shards);
    scratch->shard_order.resize(num_shards);
    scratch->shard_group.resize(num_shards);
  }
  pool.parallel_for(num_shards, [&](std::size_t s) {
    const telemetry::ScopedTimer timer(shard_latency[s]);
    NonLoopedIndex local_index;
    NonLoopedIndex& index =
        scratch ? scratch->shard_indexes[s] : local_index;
    build_shard(static_cast<unsigned>(s), index);
    // Group this shard's prefixes only, with global stream indices.
    std::vector<std::uint32_t> local_order;
    std::vector<std::uint32_t> local_group;
    std::vector<std::uint32_t>& order =
        scratch ? scratch->shard_order[s] : local_order;
    std::vector<std::uint32_t>& group =
        scratch ? scratch->shard_group[s] : local_group;
    group_and_merge(
        valid_streams,
        [&](std::uint32_t i) {
          return shard_of_prefix(valid_streams[i].dst24, num_shards) == s;
        },
        order, group, index, config_.merge_gap, shard_loops[s],
        shard_merges[s], journal_);
  }, "merge_shard");

  std::vector<RoutingLoop> loops;
  std::uint64_t merges = 0;
  std::size_t total = 0;
  for (unsigned s = 0; s < num_shards; ++s) total += shard_loops[s].size();
  loops.reserve(total);
  for (unsigned s = 0; s < num_shards; ++s) {
    merges += shard_merges[s];
    std::move(shard_loops[s].begin(), shard_loops[s].end(),
              std::back_inserter(loops));
  }
  telemetry::inc(m_merges_, merges);
  telemetry::inc(m_loops_, loops.size());

  // (prefix, start) is a total order — two loops for one prefix are disjoint
  // in time — so this sort reproduces the serial output order exactly.
  sort_loops(loops);
  return loops;
}

}  // namespace rloop::core
