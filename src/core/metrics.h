// Metrics over detection results: the quantities behind every figure in the
// paper's evaluation (Figures 2-9).
#pragma once

#include <string>
#include <vector>

#include "analysis/cdf.h"
#include "analysis/histogram.h"
#include "core/loop_detector.h"

namespace rloop::core {

// Figure 2: distribution of the dominant TTL delta across replica streams.
analysis::DiscreteHistogram ttl_delta_distribution(
    const std::vector<ReplicaStream>& streams);

// Figure 3: CDF of the number of replicas per stream.
analysis::EmpiricalCdf stream_size_cdf(
    const std::vector<ReplicaStream>& streams);

// Figure 4: CDF of per-stream mean inter-replica spacing, in milliseconds.
analysis::EmpiricalCdf spacing_cdf_ms(
    const std::vector<ReplicaStream>& streams);

// Figure 8: CDF of replica stream duration, in milliseconds.
analysis::EmpiricalCdf stream_duration_cdf_ms(
    const std::vector<ReplicaStream>& streams);

// Figure 9: CDF of merged routing loop duration, in seconds.
analysis::EmpiricalCdf loop_duration_cdf_s(
    const std::vector<RoutingLoop>& loops);

// The categories of Figures 5/6. A packet lands in several categories (a
// SYN-ACK counts under TCP, SYN and ACK, as in the paper).
extern const std::vector<std::string> kTrafficCategories;
std::vector<std::string> packet_categories(const net::ParsedPacket& pkt);

// Figure 5: category mix over all (parseable) records.
analysis::CategoricalCounter traffic_type_mix(
    const std::vector<ParsedRecord>& records);

// Figure 6: category mix over looped records (members of validated streams).
analysis::CategoricalCounter looped_type_mix(
    const std::vector<ParsedRecord>& records,
    const std::vector<ReplicaStream>& valid_streams);

// Figure 7: (time in seconds, destination address) per validated stream.
struct DstSample {
  double time_s = 0.0;
  net::Ipv4Addr dst;
};
std::vector<DstSample> dst_timeseries(
    const std::vector<ReplicaStream>& streams);

}  // namespace rloop::core
