// Per-/24 time index of non-looped packets.
//
// Both validation (step 2) and merging (step 3) need the same exact query:
// "was any packet to this destination /24 observed in [from, to] that is NOT
// part of a replica stream?" — because a routing loop for a prefix must
// affect *all* packets to that prefix while it lasts. The index stores, per
// prefix, the sorted timestamps of non-member packets.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/record.h"
#include "net/prefix.h"
#include "net/time.h"

namespace rloop::core {

class NonLoopedIndex {
 public:
  // `is_member[i]` marks record i as belonging to some replica stream.
  NonLoopedIndex(const std::vector<ParsedRecord>& records,
                 const std::vector<bool>& is_member);

  // As above, restricted to records whose dst24 lands in `shard` of
  // `num_shards` (core::shard_of_prefix). The parallel validator and merger
  // only ever query a stream's own prefix, so the shard that owns the prefix
  // answers exactly as the global index would.
  NonLoopedIndex(const std::vector<ParsedRecord>& records,
                 const std::vector<bool>& is_member, unsigned shard,
                 unsigned num_shards);

  // Any non-looped packet to `prefix24` with timestamp in [from, to]?
  bool any_in(const net::Prefix& prefix24, net::TimeNs from,
              net::TimeNs to) const;

  // Timestamp of the earliest such packet, for decision-journal evidence
  // ("which packet refuted the loop?"). nullopt when any_in() is false.
  std::optional<net::TimeNs> first_in(const net::Prefix& prefix24,
                                      net::TimeNs from, net::TimeNs to) const;

  std::size_t prefix_count() const { return by_prefix_.size(); }

 private:
  std::unordered_map<net::Prefix, std::vector<net::TimeNs>> by_prefix_;
};

}  // namespace rloop::core
