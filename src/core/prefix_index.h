// Per-/24 time index of non-looped packets.
//
// Both validation (step 2) and merging (step 3) need the same exact query:
// "was any packet to this destination /24 observed in [from, to] that is NOT
// part of a replica stream?" — because a routing loop for a prefix must
// affect *all* packets to that prefix while it lasts.
//
// Layout: one flat array of (packed prefix, timestamp) pairs, sorted once at
// build by (prefix, timestamp), then queried by binary search. Records
// arrive in time order, so sorting by the prefix key alone already yields
// per-prefix time order; the (key, ts) comparator just makes that explicit.
// Compared to the hash-map-of-vectors this replaces, the build is one
// append-only pass plus one sort (no per-prefix node allocation or
// rehashing), and a query is a single lower_bound over contiguous memory.
// The packed key is (addr << 8) | len — the same packing std::hash<Prefix>
// and shard_of_prefix use.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/record.h"
#include "core/record_store.h"
#include "net/prefix.h"
#include "net/time.h"

namespace rloop::core {

class NonLoopedIndex {
 public:
  // An empty index that answers "no" to every query; fill it with rebuild().
  // The pipeline workspace keeps one default-constructed index per shard
  // and rebuilds it every run, reusing entry and radix-scratch capacity.
  NonLoopedIndex() = default;

  // `is_member[i]` marks record i as belonging to some replica stream.
  NonLoopedIndex(const std::vector<ParsedRecord>& records,
                 const std::vector<bool>& is_member);

  // As above, restricted to records whose dst24 lands in `shard` of
  // `num_shards` (core::shard_of_prefix). The parallel validator and merger
  // only ever query a stream's own prefix, so the shard that owns the prefix
  // answers exactly as the global index would.
  NonLoopedIndex(const std::vector<ParsedRecord>& records,
                 const std::vector<bool>& is_member, unsigned shard,
                 unsigned num_shards);

  // Columnized equivalents: same index, built from the SoA store's dst24 /
  // ts / ok columns (no ParsedRecord traversal).
  NonLoopedIndex(const RecordStore& store, const std::vector<bool>& is_member);
  NonLoopedIndex(const RecordStore& store, const std::vector<bool>& is_member,
                 unsigned shard, unsigned num_shards);

  // In-place equivalents of the store constructors: identical entries and
  // order, but the entry vector and the radix-sort scratch keep their
  // capacity from the previous build, so a warm rebuild allocates nothing.
  void rebuild(const RecordStore& store, const std::vector<bool>& is_member);
  void rebuild(const RecordStore& store, const std::vector<bool>& is_member,
               unsigned shard, unsigned num_shards);

  // Any non-looped packet to `prefix24` with timestamp in [from, to]?
  bool any_in(const net::Prefix& prefix24, net::TimeNs from,
              net::TimeNs to) const;

  // Timestamp of the earliest such packet, for decision-journal evidence
  // ("which packet refuted the loop?"). nullopt when any_in() is false.
  std::optional<net::TimeNs> first_in(const net::Prefix& prefix24,
                                      net::TimeNs from, net::TimeNs to) const;

  // Number of distinct prefixes with at least one non-looped packet.
  std::size_t prefix_count() const;

  std::size_t entry_count() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t key = 0;  // (addr << 8) | len
    net::TimeNs ts = 0;
  };

  void seal();  // sort by (key, ts) after the build pass

  std::vector<Entry> entries_;
  // Radix-sort scatter target, kept as a member so rebuild() reuses its
  // capacity (seal() ping-pongs entries_ and scratch_ per pass).
  std::vector<Entry> scratch_;
};

}  // namespace rloop::core
