// Step 2 of the paper's algorithm: validate replica streams.
//
// Two conditions (Section IV-A.2):
//  1. A stream must have at least `min_replicas` elements. Two-element
//     "streams" are usually link-layer duplication (token ring drain
//     failures, misconfigured SONET protection), not loops.
//  2. During the stream's lifetime, every packet to the same /24 destination
//     prefix must itself be looped: a routing loop black-holes the whole
//     prefix, so a non-looped packet to the prefix inside the interval
//     refutes the loop hypothesis.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/parallel.h"
#include "core/prefix_index.h"
#include "core/record_store.h"
#include "core/replica_detector.h"
#include "telemetry/decision_log.h"
#include "telemetry/registry.h"
#include "util/thread_pool.h"

namespace rloop::core {

struct ValidatorConfig {
  // The paper uses 3: eliminate streams "having only two elements".
  std::size_t min_replicas = 3;
};

struct ValidationStats {
  std::uint64_t input_streams = 0;
  std::uint64_t rejected_too_small = 0;
  std::uint64_t rejected_prefix_conflict = 0;
  std::uint64_t accepted = 0;
};

// Reusable buffers for the store-based validate_sharded(): the membership
// bitmap, one NonLoopedIndex per shard (rebuilt in place), the per-stream
// verdict array, and the resolved shard-latency histogram pointers. A warm
// call through a scratch allocates nothing; results are identical to the
// scratch-free overloads.
struct ValidatorScratch {
  std::vector<bool> membership;
  std::vector<NonLoopedIndex> shard_indexes;
  std::vector<std::uint8_t> verdicts;
  std::vector<telemetry::Histogram*> shard_latency;
};

class StreamValidator {
 public:
  // `registry` (optional) receives per-reason rejection counters. `journal`
  // (optional) receives one verdict event per stream (stream_accepted /
  // stream_rejected_min_replicas / stream_rejected_nonlooped, the latter
  // with the refuting packet's timestamp as evidence) and fires the
  // flight-recorder auto-dump on every rejection.
  explicit StreamValidator(ValidatorConfig config = {},
                           telemetry::Registry* registry = nullptr,
                           telemetry::DecisionLog* journal = nullptr);

  // `streams` is the raw output of ReplicaDetector::detect; `records` the
  // full parsed trace. Returns the surviving streams in input order and
  // fills `stats` when non-null.
  std::vector<ReplicaStream> validate(const std::vector<ParsedRecord>& records,
                                      std::vector<ReplicaStream> streams,
                                      ValidationStats* stats = nullptr) const;

  // Columnized equivalent: identical verdicts, with the NonLoopedIndex built
  // from the SoA store's columns instead of ParsedRecords.
  std::vector<ReplicaStream> validate(const RecordStore& store,
                                      std::vector<ReplicaStream> streams,
                                      ValidationStats* stats = nullptr) const;

  // Sharded validate(): partitions by destination /24 prefix. Each shard
  // builds a NonLoopedIndex restricted to its prefixes — the only prefix a
  // stream's validation ever queries is its own dst24, so the restricted
  // index answers identically to the global one — and records a keep/reject
  // verdict per stream. Verdicts are assembled back in input order, so the
  // output (and stats) are field-identical to validate() for any pool size
  // and shard count.
  std::vector<ReplicaStream> validate_sharded(
      const std::vector<ParsedRecord>& records,
      std::vector<ReplicaStream> streams, util::ThreadPool& pool,
      unsigned num_shards, ValidationStats* stats = nullptr) const;

  // Columnized equivalent of validate_sharded().
  std::vector<ReplicaStream> validate_sharded(
      const RecordStore& store, std::vector<ReplicaStream> streams,
      util::ThreadPool& pool, unsigned num_shards,
      ValidationStats* stats = nullptr) const;

  // As above, reusing `scratch` buffers across calls (pipeline workspace
  // path). Verdicts, stats and output order are identical.
  std::vector<ReplicaStream> validate_sharded(
      const RecordStore& store, std::vector<ReplicaStream> streams,
      util::ThreadPool& pool, unsigned num_shards, ValidatorScratch& scratch,
      ValidationStats* stats = nullptr) const;

 private:
  // Shared verdict loops; the record-based and store-based overloads differ
  // only in how the NonLoopedIndex is built, so both delegate here and
  // cannot drift. `build_shard` fills the provided index for one shard;
  // `scratch` (optional) supplies per-shard index storage and the verdict
  // buffer, otherwise locals are used.
  std::vector<ReplicaStream> validate_with_index(
      const NonLoopedIndex& index, std::vector<ReplicaStream> streams,
      ValidationStats* stats) const;
  std::vector<ReplicaStream> validate_sharded_impl(
      const std::function<void(unsigned, NonLoopedIndex&)>& build_shard,
      std::vector<ReplicaStream> streams, util::ThreadPool& pool,
      unsigned num_shards, ValidatorScratch* scratch,
      ValidationStats* stats) const;

  ValidatorConfig config_;
  telemetry::Registry* registry_ = nullptr;
  telemetry::DecisionLog* journal_ = nullptr;
  telemetry::Counter* m_accepted_ = nullptr;
  telemetry::Counter* m_rejected_small_ = nullptr;
  telemetry::Counter* m_rejected_conflict_ = nullptr;
};

}  // namespace rloop::core
