// Hot-path metric primitives: Counter, Gauge, Histogram, ScopedTimer.
//
// All primitives are thread-safe with relaxed atomics — an increment is one
// uncontended RMW, cheap enough for per-packet paths. None of them knows its
// own name; identity lives in the Registry (registry.h), which hands out
// stable pointers so instrumented code resolves a metric once and increments
// through the pointer forever.
//
// Disabled mode: instrumented code holds *pointers* that are null when no
// registry is attached, and updates them through the free helpers below
// (`inc`, `set`, `observe`), which reduce to a single predictable branch.
// ScopedTimer skips its clock reads entirely when the target histogram is
// null, so an un-instrumented run pays neither the atomics nor the
// clock_gettime calls.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

namespace rloop::telemetry {

// Monotonically increasing count of events.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// A value that goes up and down (table sizes, queue depths).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Fixed-boundary histogram: bucket i counts observations <= bounds[i]
// (first matching bucket), the last bucket is the +Inf overflow. Boundaries
// are fixed at construction so observe() is lock-free: a small linear scan
// (bucket counts are ~10-20) plus two relaxed RMWs.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)),
        buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      buckets_[i].store(0, std::memory_order_relaxed);
    }
  }

  void observe(double v) {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // fetch_add on atomic<double> is C++20 but not universally lowered well;
    // a CAS loop is portable and the sum is off the per-bucket fast path.
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  }

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Null-tolerant update helpers: the way instrumented code touches metrics.
inline void inc(Counter* c, std::uint64_t n = 1) {
  if (c) c->inc(n);
}
inline void set(Gauge* g, std::int64_t v) {
  if (g) g->set(v);
}
inline void observe(Histogram* h, double v) {
  if (h) h->observe(v);
}

// RAII timer recording elapsed wall-nanoseconds into a histogram. With a
// null histogram it never touches the clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h) {
    if (h_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (h_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      h_->observe(static_cast<double>(ns));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

// Geometric bucket boundaries: count values start, start*factor, ...
inline std::vector<double> exponential_bounds(double start, double factor,
                                              std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

// Default boundaries for wall-clock latency histograms: 1 us .. ~16 s.
inline std::vector<double> latency_bounds_ns() {
  return exponential_bounds(1e3, 4.0, 12);
}

// Default boundaries for inter-packet / inter-replica spacing in ns:
// 10 us .. ~160 s (loop replica spacing is dominated by cycle RTT).
inline std::vector<double> spacing_bounds_ns() {
  return exponential_bounds(1e4, 4.0, 12);
}

}  // namespace rloop::telemetry
