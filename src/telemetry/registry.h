// Process-wide metric registry.
//
// The Registry owns every metric, keyed by (name, sorted label set), and
// hands out stable raw pointers: instrumented code resolves each metric once
// (constructor / setup time, under a mutex) and then increments through the
// pointer with no lookup on the hot path. Re-registering the same
// (name, labels) returns the same pointer; registering the same identity
// under a different metric type throws.
//
// Null-registry mode: every layer in this repo takes a `Registry*` that
// defaults to nullptr. The null-tolerant resolve helpers at the bottom turn
// a null registry into null metric pointers, and the update helpers in
// counter.h turn null metric pointers into no-ops — so a build without
// telemetry attached pays one predictable branch per event and zero atomics
// (benchmarked in bench/micro_detector.cc).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/counter.h"
#include "telemetry/metric_types.h"

namespace rloop::telemetry {

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Each accessor registers on first use and returns the existing metric
  // afterwards. Thread-safe. Throws std::invalid_argument when the same
  // (name, labels) identity is already registered as a different type.
  Counter* counter(std::string_view name, LabelSet labels = {},
                   std::string_view help = "");
  Gauge* gauge(std::string_view name, LabelSet labels = {},
               std::string_view help = "");
  // `bounds` must be strictly increasing; ignored (the original histogram is
  // returned) when the identity already exists.
  Histogram* histogram(std::string_view name, std::vector<double> bounds,
                       LabelSet labels = {}, std::string_view help = "");

  // Point-in-time copy of every metric, sorted by (name, labels) so export
  // output is deterministic. Safe to call concurrently with registration
  // from other threads (both serialize on the registry mutex; Entry
  // addresses never move), so an HTTP exporter thread can snapshot while
  // the consumer thread registers a late metric — covered by the TSan
  // export-vs-register hammer in tests/test_registry_race.cc.
  std::vector<MetricSnapshot> snapshot() const;

  std::size_t size() const;

  // Monotonic count of successful new registrations. Unchanged generation
  // between two snapshots means the metric *set* is identical (values may
  // differ), which lets an exporter cache name/label rendering.
  std::uint64_t generation() const;

 private:
  struct Entry {
    MetricType type = MetricType::counter;
    std::string name;
    LabelSet labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(std::string_view name, LabelSet& labels,
                        std::string_view help, MetricType type);

  mutable std::mutex mu_;
  // Keyed by name + rendered label set; std::map keeps snapshots sorted and
  // never invalidates Entry addresses (metrics live for the Registry's life).
  std::map<std::string, Entry> metrics_;
  std::uint64_t generation_ = 0;
};

// Null-tolerant resolve helpers, mirroring counter.h's update helpers.
inline Counter* get_counter(Registry* r, std::string_view name,
                            LabelSet labels = {}, std::string_view help = "") {
  return r ? r->counter(name, std::move(labels), help) : nullptr;
}
inline Gauge* get_gauge(Registry* r, std::string_view name,
                        LabelSet labels = {}, std::string_view help = "") {
  return r ? r->gauge(name, std::move(labels), help) : nullptr;
}
inline Histogram* get_histogram(Registry* r, std::string_view name,
                                std::vector<double> bounds,
                                LabelSet labels = {},
                                std::string_view help = "") {
  return r ? r->histogram(name, std::move(bounds), std::move(labels), help)
           : nullptr;
}

}  // namespace rloop::telemetry
