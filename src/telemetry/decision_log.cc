#include "telemetry/decision_log.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace rloop::telemetry {

namespace {

// Local prefix rendering: telemetry sits below rloop_net in the link order
// (rloop_net links rloop_telemetry), so this file must not call
// net::Prefix::to_string() from prefix.cc. The struct itself is header-only.
std::string render_prefix(const net::Prefix& p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u/%u", (p.addr.value >> 24) & 255,
                (p.addr.value >> 16) & 255, (p.addr.value >> 8) & 255,
                p.addr.value & 255, p.len);
  return buf;
}

std::string render_s(net::TimeNs t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", static_cast<double>(t) / 1e9);
  return buf;
}

// Kind-specific evidence text (see the detail table in decision_log.h).
std::string render_evidence(const DecisionEvent& ev) {
  char buf[160];
  switch (ev.kind) {
    case DecisionKind::replica_accepted:
      std::snprintf(buf, sizeof(buf), "ttl delta %lld, stream now %lld replicas",
                    static_cast<long long>(ev.detail),
                    static_cast<long long>(ev.detail2));
      break;
    case DecisionKind::replica_rejected:
      std::snprintf(buf, sizeof(buf),
                    "ttl delta %lld below minimum, fresh stream opened",
                    static_cast<long long>(ev.detail));
      break;
    case DecisionKind::stream_emitted:
      std::snprintf(buf, sizeof(buf), "%lld replicas, started t=%s",
                    static_cast<long long>(ev.detail),
                    render_s(ev.detail2).c_str());
      break;
    case DecisionKind::stream_accepted:
      std::snprintf(buf, sizeof(buf), "%lld replicas survive both conditions",
                    static_cast<long long>(ev.detail));
      break;
    case DecisionKind::stream_rejected_min_replicas:
      std::snprintf(buf, sizeof(buf), "%lld replicas < required %lld",
                    static_cast<long long>(ev.detail),
                    static_cast<long long>(ev.detail2));
      break;
    case DecisionKind::stream_rejected_nonlooped:
      std::snprintf(buf, sizeof(buf),
                    "non-looped packet to the /24 at t=%s refutes the loop",
                    render_s(ev.detail).c_str());
      break;
    case DecisionKind::loop_extended:
      if (ev.detail == 0) {
        std::snprintf(buf, sizeof(buf), "overlaps open loop, now %lld streams",
                      static_cast<long long>(ev.detail2));
      } else {
        std::snprintf(buf, sizeof(buf),
                      "gap %s clean, merged, now %lld streams",
                      render_s(ev.detail).c_str(),
                      static_cast<long long>(ev.detail2));
      }
      break;
    case DecisionKind::loop_split_gap:
      std::snprintf(buf, sizeof(buf), "gap %s >= merge gap %s, new loop",
                    render_s(ev.detail).c_str(), render_s(ev.detail2).c_str());
      break;
    case DecisionKind::loop_split_healthy:
      std::snprintf(buf, sizeof(buf),
                    "healthy packet at t=%s inside %s gap, new loop",
                    render_s(ev.detail2).c_str(), render_s(ev.detail).c_str());
      break;
    case DecisionKind::loop_emitted:
      std::snprintf(buf, sizeof(buf), "%lld streams, %lld replicas",
                    static_cast<long long>(ev.detail),
                    static_cast<long long>(ev.detail2));
      break;
    case DecisionKind::alert_raised:
      std::snprintf(buf, sizeof(buf), "%lld replicas, ttl delta %lld",
                    static_cast<long long>(ev.detail),
                    static_cast<long long>(ev.detail2));
      break;
    case DecisionKind::alert_suppressed:
      std::snprintf(buf, sizeof(buf), "last alert %s ago",
                    render_s(ev.detail).c_str());
      break;
  }
  return buf;
}

// (ts, kind, record) is the causal order: evidence before verdicts at equal
// timestamps (DecisionKind values are declared in pipeline-stage order).
void causal_sort(std::vector<DecisionEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const DecisionEvent& a, const DecisionEvent& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.record_index < b.record_index;
            });
}

std::string render_chain(const net::Prefix& prefix24,
                         const std::vector<DecisionEvent>& chain) {
  std::string out = "decision journal for " + render_prefix(prefix24) + " — " +
                    std::to_string(chain.size()) + " event(s)\n";
  std::uint64_t loops = 0;
  std::uint64_t rejects = 0;
  for (const DecisionEvent& ev : chain) {
    char line[256];
    std::snprintf(line, sizeof(line), "  t=%-12s rec=%-8u %-26s %s\n",
                  render_s(ev.ts).c_str(), ev.record_index,
                  decision_reason(ev.kind), render_evidence(ev).c_str());
    out += line;
    if (ev.kind == DecisionKind::loop_emitted) ++loops;
    if (ev.kind == DecisionKind::stream_rejected_min_replicas ||
        ev.kind == DecisionKind::stream_rejected_nonlooped) {
      ++rejects;
    }
  }
  out += "  verdict: " + std::to_string(loops) + " loop(s) emitted, " +
         std::to_string(rejects) + " stream(s) rejected\n";
  return out;
}

}  // namespace

const char* decision_reason(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::replica_accepted: return "replica_accepted";
    case DecisionKind::replica_rejected: return "ttl_delta_below_min";
    case DecisionKind::stream_emitted: return "stream_emitted";
    case DecisionKind::stream_accepted: return "validated";
    case DecisionKind::stream_rejected_min_replicas: return "min_replicas";
    case DecisionKind::stream_rejected_nonlooped:
      return "nonlooped_packet_in_window";
    case DecisionKind::loop_extended: return "merged";
    case DecisionKind::loop_split_gap: return "merge_gap_exceeded";
    case DecisionKind::loop_split_healthy: return "nonlooped_packet_in_gap";
    case DecisionKind::loop_emitted: return "loop_emitted";
    case DecisionKind::alert_raised: return "alert_raised";
    case DecisionKind::alert_suppressed: return "alert_holddown";
  }
  return "unknown";
}

DecisionLog::DecisionLog(Options options)
    : options_(std::move(options)),
      capacity_(options_.capacity > 0 ? options_.capacity : 1) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void DecisionLog::record(const DecisionEvent& ev) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[recorded_ % capacity_] = ev;
  }
  ++recorded_;
}

std::vector<DecisionEvent> DecisionLog::snapshot_locked() const {
  if (recorded_ <= capacity_) return ring_;
  // Ring wrapped: oldest retained event sits right after the write cursor.
  std::vector<DecisionEvent> out;
  out.reserve(capacity_);
  const std::size_t head = recorded_ % capacity_;
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

std::vector<DecisionEvent> DecisionLog::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return snapshot_locked();
}

std::uint64_t DecisionLog::recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t DecisionLog::overwritten() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
}

std::vector<DecisionEvent> DecisionLog::events_for(
    const net::Prefix& prefix24) const {
  std::vector<DecisionEvent> out;
  for (const DecisionEvent& ev : snapshot()) {
    if (ev.dst24 == prefix24) out.push_back(ev);
  }
  causal_sort(out);
  return out;
}

std::vector<DecisionKind> DecisionLog::reasons(
    const net::Prefix& prefix24) const {
  std::vector<DecisionKind> out;
  for (const DecisionEvent& ev : events_for(prefix24)) {
    out.push_back(ev.kind);
  }
  return out;
}

std::string DecisionLog::explain(const net::Prefix& prefix24) const {
  return render_chain(prefix24, events_for(prefix24));
}

std::string DecisionLog::dump() const {
  const auto events = snapshot();
  std::set<net::Prefix> prefixes;
  for (const DecisionEvent& ev : events) prefixes.insert(ev.dst24);

  std::string out = "flight recorder: " + std::to_string(events.size()) +
                    " event(s) retained, " + std::to_string(overwritten()) +
                    " overwritten, " + std::to_string(prefixes.size()) +
                    " prefix(es)\n";
  for (const net::Prefix& prefix : prefixes) {
    std::vector<DecisionEvent> chain;
    for (const DecisionEvent& ev : events) {
      if (ev.dst24 == prefix) chain.push_back(ev);
    }
    causal_sort(chain);
    out += render_chain(prefix, chain);
  }
  return out;
}

void DecisionLog::on_validation_reject(const net::Prefix& prefix24) {
  if (!options_.dump_on_reject) return;
  const std::string chain = explain(prefix24);
  if (options_.dump_sink) {
    options_.dump_sink(chain);
  } else {
    std::fputs(chain.c_str(), stderr);
  }
}

}  // namespace rloop::telemetry
