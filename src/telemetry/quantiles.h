// Mergeable fixed-bucket quantile estimation over histogram snapshots.
//
// The repo's histograms are fixed-boundary (counter.h): observe() is a
// lock-free bucket increment, and a snapshot is (bounds, per-bucket counts).
// That representation is *mergeable* — two histograms with identical bounds
// merge by adding their bucket vectors, which is how per-shard latency
// histograms combine into one fleet view — and it supports quantile
// estimation with a hard, statable error bound:
//
//   The q-quantile lies in the bucket whose cumulative count first reaches
//   ceil(q * count). We interpolate linearly inside that bucket, so the
//   estimate is exact to within one bucket width. With the exponential
//   bounds used for latency (factor 4), that is a worst-case relative error
//   of 4x on the raw estimate — coarse, but monotone and cheap, and the
//   same trade Prometheus' histogram_quantile() makes. Tighter buckets buy
//   tighter answers without touching this code.
//
// summarize_histograms() derives a Prometheus *summary* family
// `<name>_quantiles{quantile="0.5|0.95|0.99"}` from every histogram in a
// snapshot vector, which is how /metrics answers "what is p99 epoch latency"
// without the scraper needing histogram_quantile() support.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "telemetry/metric_types.h"

namespace rloop::telemetry {

// Estimated q-quantile (0 < q < 1) of a fixed-bucket histogram given
// non-cumulative per-bucket counts (buckets.size() == bounds.size() + 1,
// final bucket = +Inf overflow). Returns NaN for an empty histogram.
//
// Interpolation: within the containing bucket [lo, hi] the estimate moves
// linearly with the rank. The +Inf overflow bucket has no upper edge, so
// ranks landing there return the highest finite bound (the estimator never
// invents a value larger than anything it can know).
inline double estimate_quantile(const std::vector<double>& bounds,
                                const std::vector<std::uint64_t>& buckets,
                                double q) {
  if (buckets.size() != bounds.size() + 1) {
    throw std::invalid_argument(
        "quantiles: buckets.size() must be bounds.size() + 1");
  }
  if (!(q > 0.0 && q < 1.0)) {
    throw std::invalid_argument("quantiles: q must be in (0, 1)");
  }
  std::uint64_t count = 0;
  for (const std::uint64_t b : buckets) count += b;
  if (count == 0) return std::nan("");

  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t prev = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i == bounds.size()) {
      // Overflow bucket: clamp to the largest finite boundary.
      return bounds.empty() ? std::nan("") : bounds.back();
    }
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    if (buckets[i] == 0) return hi;
    const double frac =
        (rank - static_cast<double>(prev)) / static_cast<double>(buckets[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds.empty() ? std::nan("") : bounds.back();
}

// Merges histogram snapshot `from` into `into` (same metric observed by two
// shards / two processes). Requires identical bounds; sums buckets, count
// and sum. The merged histogram answers quantile queries for the union of
// observations — the property that makes fixed buckets the right estimator
// for a sharded or fleet-aggregated detector.
inline void merge_histogram(MetricSnapshot& into, const MetricSnapshot& from) {
  if (into.type != MetricType::histogram ||
      from.type != MetricType::histogram || into.bounds != from.bounds ||
      into.buckets.size() != from.buckets.size()) {
    throw std::invalid_argument(
        "quantiles: merge requires histograms with identical bounds");
  }
  for (std::size_t i = 0; i < into.buckets.size(); ++i) {
    into.buckets[i] += from.buckets[i];
  }
  into.count += from.count;
  into.sum += from.sum;
}

// Default ranks exported for every latency histogram.
inline const std::vector<double>& default_quantile_ranks() {
  static const std::vector<double> ranks = {0.5, 0.95, 0.99};
  return ranks;
}

// Derives one summary snapshot per histogram in `snaps`, named
// `<histogram name>_quantiles`, carrying (rank, estimate) pairs plus the
// histogram's sum/count. Histograms with zero observations are skipped
// (a NaN sample would be legal Prometheus but useless). Non-histogram
// entries are ignored.
inline std::vector<MetricSnapshot> summarize_histograms(
    const std::vector<MetricSnapshot>& snaps,
    const std::vector<double>& ranks = default_quantile_ranks()) {
  std::vector<MetricSnapshot> out;
  for (const auto& snap : snaps) {
    if (snap.type != MetricType::histogram || snap.count == 0) continue;
    MetricSnapshot summary;
    summary.name = snap.name + "_quantiles";
    summary.labels = snap.labels;
    summary.type = MetricType::summary;
    summary.help = "Estimated quantiles (fixed-bucket interpolation, exact "
                   "to one bucket width) of " +
                   snap.name;
    summary.count = snap.count;
    summary.sum = snap.sum;
    for (const double q : ranks) {
      summary.quantiles.emplace_back(
          q, estimate_quantile(snap.bounds, snap.buckets, q));
    }
    out.push_back(std::move(summary));
  }
  return out;
}

}  // namespace rloop::telemetry
