#include "telemetry/build_info.h"

namespace rloop::telemetry {

namespace {

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RLOOP_ASAN_ACTIVE 1
#endif
#if __has_feature(thread_sanitizer)
#define RLOOP_TSAN_ACTIVE 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define RLOOP_ASAN_ACTIVE 1
#endif
#if defined(__SANITIZE_THREAD__)
#define RLOOP_TSAN_ACTIVE 1
#endif

const char* sanitizer_flavor() {
#if defined(RLOOP_ASAN_ACTIVE)
  return "address,undefined";
#elif defined(RLOOP_TSAN_ACTIVE)
  return "thread";
#else
  return "none";
#endif
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info = {
#if defined(RLOOP_VERSION)
      RLOOP_VERSION,
#else
      "dev",
#endif
#if defined(RLOOP_GIT_SHA)
      RLOOP_GIT_SHA,
#else
      "unknown",
#endif
      sanitizer_flavor(),
#if defined(RLOOP_FAILPOINTS)
      "on",
#else
      "off",
#endif
  };
  return info;
}

Gauge* register_build_info(Registry* registry) {
  if (!registry) return nullptr;
  const BuildInfo& info = build_info();
  Gauge* g = registry->gauge(
      "rloop_build_info",
      {{"version", info.version},
       {"git_sha", info.git_sha},
       {"sanitizers", info.sanitizers},
       {"failpoints", info.failpoints}},
      "Constant 1; labels identify the running build (join target)");
  g->set(1);
  return g;
}

}  // namespace rloop::telemetry
