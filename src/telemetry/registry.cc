#include "telemetry/registry.h"

#include <algorithm>
#include <stdexcept>

namespace rloop::telemetry {

namespace {

// Canonical map key: name{k1="v1",k2="v2"} with labels sorted by key.
std::string make_key(std::string_view name, const LabelSet& labels) {
  std::string key(name);
  if (!labels.empty()) {
    key += '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i) key += ',';
      key += labels[i].first;
      key += "=\"";
      key += labels[i].second;
      key += '"';
    }
    key += '}';
  }
  return key;
}

}  // namespace

Registry::Entry& Registry::find_or_create(std::string_view name,
                                          LabelSet& labels,
                                          std::string_view help,
                                          MetricType type) {
  std::sort(labels.begin(), labels.end());
  const std::string key = make_key(name, labels);
  auto [it, inserted] = metrics_.try_emplace(key);
  Entry& entry = it->second;
  if (inserted) {
    entry.type = type;
    entry.name = std::string(name);
    entry.labels = labels;
    entry.help = std::string(help);
    ++generation_;
  } else if (entry.type != type) {
    throw std::invalid_argument("telemetry: metric '" + key +
                                "' re-registered as a different type");
  }
  return entry;
}

Counter* Registry::counter(std::string_view name, LabelSet labels,
                           std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = find_or_create(name, labels, help, MetricType::counter);
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return entry.counter.get();
}

Gauge* Registry::gauge(std::string_view name, LabelSet labels,
                       std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = find_or_create(name, labels, help, MetricType::gauge);
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return entry.gauge.get();
}

Histogram* Registry::histogram(std::string_view name,
                               std::vector<double> bounds, LabelSet labels,
                               std::string_view help) {
  if (!std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
    throw std::invalid_argument(
        "telemetry: histogram bounds must be strictly increasing");
  }
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = find_or_create(name, labels, help, MetricType::histogram);
  if (!entry.histogram) {
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return entry.histogram.get();
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(metrics_.size());
  for (const auto& [key, entry] : metrics_) {
    MetricSnapshot snap;
    snap.name = entry.name;
    snap.labels = entry.labels;
    snap.type = entry.type;
    snap.help = entry.help;
    switch (entry.type) {
      case MetricType::counter:
        snap.value = static_cast<double>(entry.counter->value());
        break;
      case MetricType::gauge:
        snap.value = static_cast<double>(entry.gauge->value());
        break;
      case MetricType::histogram: {
        const Histogram& h = *entry.histogram;
        snap.bounds = h.bounds();
        snap.buckets.resize(snap.bounds.size() + 1);
        for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
          snap.buckets[i] = h.bucket(i);
        }
        snap.count = h.count();
        snap.sum = h.sum();
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

std::uint64_t Registry::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

}  // namespace rloop::telemetry
