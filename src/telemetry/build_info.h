// Build identity as a metric: `rloop_build_info{...} 1`.
//
// The Prometheus idiom for "which binary is this" is a constant gauge of
// value 1 whose labels carry the identity — version, git sha, and the build
// flavors that change behavior (sanitizers, failpoint sites). Joining on it
// in PromQL annotates any other series with the build that produced it, and
// a fleet dashboard can count binaries per version with sum by (git_sha).
//
// The values are baked in at compile time (RLOOP_GIT_SHA / RLOOP_VERSION
// come from CMake; sanitizer and failpoint flags from the compiler's own
// predefines), so the gauge is truthful for the binary actually running,
// not for whatever the source tree looks like at scrape time.
#pragma once

#include <string>

#include "telemetry/registry.h"

namespace rloop::telemetry {

struct BuildInfo {
  std::string version;     // RLOOP_VERSION (CMake project version)
  std::string git_sha;     // short sha at configure time, "unknown" outside git
  std::string sanitizers;  // "address,undefined", "thread", or "none"
  std::string failpoints;  // "on" when RLOOP_FAILPOINTS sites are compiled in
};

// The identity of this binary (values fixed at compile time).
const BuildInfo& build_info();

// Registers rloop_build_info{version=,git_sha=,sanitizers=,failpoints=} = 1
// in `registry` (no-op on null). Idempotent — re-registration returns the
// same gauge. Returns the gauge for tests.
Gauge* register_build_info(Registry* registry);

}  // namespace rloop::telemetry
