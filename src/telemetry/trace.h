// Scoped-span tracing: wall-clock provenance for the detection pipeline and
// the simulator event loop.
//
// Metrics (registry.h) answer "how many / how long on average"; spans answer
// "what ran when, on which thread, inside what". A ScopedSpan records one
// completed interval — name, category, sequential thread id, nesting depth,
// monotonic start, duration — into a TraceSink. The sink's snapshot exports
// as Chrome trace-event JSON ("ph":"X" complete events), loadable directly
// in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Null-sink discipline (same contract as the null Registry): every layer
// takes a `TraceSink*` that defaults to nullptr, and a ScopedSpan built on a
// null sink reads no clock, touches no thread-locals, and records nothing —
// one predictable branch per span site. Spans are deliberately coarse
// (pipeline stages, per-shard tasks, simulator events), never per-packet.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rloop::telemetry {

// One completed span. `name` and `category` must be string literals (or
// otherwise outlive the sink): spans are recorded on hot-ish paths and must
// not allocate.
struct SpanEvent {
  const char* name = "";
  const char* category = "";
  std::uint32_t tid = 0;       // sequential thread id (trace_thread_id())
  std::uint32_t depth = 0;     // nesting depth at open; 0 = top level
  std::int64_t start_ns = 0;   // steady-clock nanoseconds
  std::int64_t duration_ns = 0;
};

// Bounded, thread-safe collector of completed spans. When full, new spans
// are dropped (and counted) rather than evicting old ones: a trace whose
// beginning is intact stays interpretable in Perfetto, and the drop counter
// makes truncation explicit instead of silent.
class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 1u << 18);
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void record(const SpanEvent& ev);

  // Copy of every recorded span, sorted by (start, tid) so output (and any
  // test pinned to it) is deterministic regardless of destructor interleave.
  std::vector<SpanEvent> snapshot() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // to_chrome_trace_json(snapshot()).
  std::string chrome_trace_json() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
  std::atomic<std::uint64_t> dropped_{0};
};

// Sequential id (0, 1, 2, ...) of the calling thread, assigned on first use.
// Chrome trace viewers lay out one lane per tid; small stable ids beat
// opaque std::thread::id hashes.
std::uint32_t trace_thread_id();

// RAII span: opens at construction, records into `sink` at destruction.
// With a null sink it is a no-op (no clock reads, no depth bookkeeping).
class ScopedSpan {
 public:
  explicit ScopedSpan(TraceSink* sink, const char* name,
                      const char* category = "pipeline");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceSink* sink_;
  const char* name_;
  const char* category_;
  std::uint32_t depth_ = 0;
  std::chrono::steady_clock::time_point start_;
};

// Chrome trace-event JSON (the {"traceEvents":[...]} object form). Each span
// becomes a complete event: {"name","cat","ph":"X","pid":1,"tid","ts","dur"}
// with ts/dur in microseconds, plus the nesting depth under "args".
std::string to_chrome_trace_json(const std::vector<SpanEvent>& events);

}  // namespace rloop::telemetry
