#include "telemetry/exporter.h"

#include <cmath>
#include <cstdio>

namespace rloop::telemetry {

namespace {

// Compact numeric rendering: integers without a trailing ".0" (counter and
// bucket values are conceptually integral), everything else shortest-round-
// trip-ish %.17g is overkill for metrics; %g keeps output readable.
std::string render_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::counter: return "counter";
    case MetricType::gauge: return "gauge";
    case MetricType::histogram: return "histogram";
    case MetricType::summary: return "summary";
  }
  return "untyped";
}

// Label-value escaping per the Prometheus exposition format: backslash,
// double-quote and newline must be escaped or the line (and every line
// after it) is unparseable.
std::string prom_escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// HELP text escaping: only backslash and newline (quotes are legal there).
std::string prom_escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_labels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += prom_escape_label(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

// Label rendering with one extra label appended (histogram `le`).
std::string render_labels_with(const LabelSet& labels, const std::string& key,
                               const std::string& value) {
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    out += k;
    out += "=\"";
    out += prom_escape_label(v);
    out += "\",";
  }
  out += key;
  out += "=\"";
  out += value;
  out += "\"}";
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string to_prometheus(const std::vector<MetricSnapshot>& snaps) {
  std::string out;
  const std::string* last_name = nullptr;
  for (const auto& snap : snaps) {
    // Snapshots arrive sorted by name; emit HELP/TYPE once per family.
    if (!last_name || *last_name != snap.name) {
      if (!snap.help.empty()) {
        out += "# HELP " + snap.name + " " + prom_escape_help(snap.help) + "\n";
      }
      out += "# TYPE " + snap.name + " " + type_name(snap.type) + "\n";
      last_name = &snap.name;
    }
    if (snap.type == MetricType::histogram) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
        cumulative += snap.buckets[i];
        const std::string le = i < snap.bounds.size()
                                   ? render_number(snap.bounds[i])
                                   : std::string("+Inf");
        out += snap.name + "_bucket" +
               render_labels_with(snap.labels, "le", le) + " " +
               render_number(static_cast<double>(cumulative)) + "\n";
      }
      out += snap.name + "_sum" + render_labels(snap.labels) + " " +
             render_number(snap.sum) + "\n";
      out += snap.name + "_count" + render_labels(snap.labels) + " " +
             render_number(static_cast<double>(snap.count)) + "\n";
    } else if (snap.type == MetricType::summary) {
      for (const auto& [q, v] : snap.quantiles) {
        out += snap.name + render_labels_with(snap.labels, "quantile",
                                              render_number(q)) +
               " " + render_number(v) + "\n";
      }
      out += snap.name + "_sum" + render_labels(snap.labels) + " " +
             render_number(snap.sum) + "\n";
      out += snap.name + "_count" + render_labels(snap.labels) + " " +
             render_number(static_cast<double>(snap.count)) + "\n";
    } else {
      out += snap.name + render_labels(snap.labels) + " " +
             render_number(snap.value) + "\n";
    }
  }
  return out;
}

std::string to_json(const std::vector<MetricSnapshot>& snaps) {
  std::string out = "[";
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const auto& snap = snaps[i];
    if (i) out += ',';
    out += "\n  {\"name\":\"" + json_escape(snap.name) + "\",\"type\":\"" +
           type_name(snap.type) + "\"";
    if (!snap.labels.empty()) {
      out += ",\"labels\":{";
      for (std::size_t j = 0; j < snap.labels.size(); ++j) {
        if (j) out += ',';
        out += "\"" + json_escape(snap.labels[j].first) + "\":\"" +
               json_escape(snap.labels[j].second) + "\"";
      }
      out += '}';
    }
    if (snap.type == MetricType::summary) {
      out += ",\"count\":" + render_number(static_cast<double>(snap.count));
      out += ",\"sum\":" + render_number(snap.sum);
      out += ",\"quantiles\":{";
      for (std::size_t j = 0; j < snap.quantiles.size(); ++j) {
        if (j) out += ',';
        out += "\"" + render_number(snap.quantiles[j].first) + "\":" +
               (std::isfinite(snap.quantiles[j].second)
                    ? render_number(snap.quantiles[j].second)
                    : std::string("null"));
      }
      out += '}';
    } else if (snap.type == MetricType::histogram) {
      out += ",\"count\":" + render_number(static_cast<double>(snap.count));
      out += ",\"sum\":" + render_number(snap.sum);
      out += ",\"bounds\":[";
      for (std::size_t j = 0; j < snap.bounds.size(); ++j) {
        if (j) out += ',';
        out += render_number(snap.bounds[j]);
      }
      out += "],\"buckets\":[";
      for (std::size_t j = 0; j < snap.buckets.size(); ++j) {
        if (j) out += ',';
        out += render_number(static_cast<double>(snap.buckets[j]));
      }
      out += ']';
    } else {
      out += ",\"value\":" + render_number(snap.value);
    }
    out += '}';
  }
  out += "\n]\n";
  return out;
}

PeriodicExporter::PeriodicExporter(const Registry* registry,
                                   net::TimeNs interval, Format format,
                                   Sink sink)
    : registry_(registry),
      interval_(interval),
      format_(format),
      sink_(std::move(sink)) {}

bool PeriodicExporter::pump(net::TimeNs now) {
  if (!started_) {
    // First pump establishes the phase; the first export fires one full
    // interval later.
    started_ = true;
    next_due_ = now + interval_;
    return false;
  }
  if (now < next_due_) return false;
  flush(now);
  // Re-anchor on `now` rather than accumulating missed intervals.
  next_due_ = now + interval_;
  return true;
}

void PeriodicExporter::flush(net::TimeNs) {
  const auto snaps = registry_->snapshot();
  sink_(format_ == Format::prometheus ? to_prometheus(snaps)
                                      : to_json(snaps));
  ++exports_;
}

}  // namespace rloop::telemetry
