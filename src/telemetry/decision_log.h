// Per-packet / per-stream decision journal: the "why" behind every verdict
// the detection pipeline reaches.
//
// Counters (registry.h) say HOW MANY streams were rejected; spans (trace.h)
// say WHEN each stage ran; the decision journal says WHY packet 1234's
// stream to 198.96.38.0/24 was rejected — with a typed reason
// ("min_replicas", "nonlooped_packet_in_window", "merge_gap_exceeded", ...)
// and the evidence (the refuting packet's timestamp, the gap that was too
// wide). The paper's hardest claims are these negative ones, and they are
// undebuggable from aggregates alone.
//
// The journal is a bounded ring buffer — a flight recorder: when full, the
// oldest events are overwritten so the most recent decisions are always
// available for a post-mortem dump. Recording is thread-safe (the sharded
// pipeline journals from worker threads); `explain()` sorts events into the
// causal (time, kind, record) order, so its output is identical for the
// serial and parallel pipelines.
//
// Null discipline: every layer takes a `DecisionLog*` defaulting to nullptr
// and checks it once per decision — a run without a journal pays one
// predictable branch per decision (decisions are per-stream / per-replica
// match, far rarer than packets).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "net/prefix.h"
#include "net/time.h"

namespace rloop::telemetry {

// What happened. Values are ordered by pipeline stage (detect -> validate ->
// merge -> alert); the causal sort in explain() uses that order to break
// timestamp ties, so keep new kinds in stage order.
enum class DecisionKind : std::uint8_t {
  // -- step 1: replica detection -------------------------------------------
  replica_accepted = 0,  // observation matched into an open replica stream
  replica_rejected,      // open stream(s) for the key, none compatible
                         //   (reason ttl_delta_below_min) -> fresh stream
  stream_emitted,        // closed >= 2-replica stream handed to validation
  // -- step 2: validation ---------------------------------------------------
  stream_accepted,               // passed both validation conditions
  stream_rejected_min_replicas,  // fewer than min_replicas elements
  stream_rejected_nonlooped,     // non-looped packet to the /24 inside the
                                 //   stream's lifetime
  // -- step 3: merging ------------------------------------------------------
  loop_extended,       // stream folded into an already-open loop
  loop_split_gap,      // gap to previous loop >= merge_gap -> new loop
  loop_split_healthy,  // non-looped packet inside the gap -> new loop
  loop_emitted,        // routing loop finalized
  // -- streaming detector ---------------------------------------------------
  alert_raised,
  alert_suppressed,  // per-prefix hold-down swallowed the alert
};

// Stable typed-reason string for a kind ("min_replicas",
// "nonlooped_packet_in_window", "merge_gap_exceeded", ...). Used by
// explain()/dump() and pinned by tests.
const char* decision_reason(DecisionKind kind);

// One decision. `detail`/`detail2` are kind-specific evidence:
//   replica_accepted:             ttl delta, stream size after the append
//   replica_rejected:             ttl delta against the most recent stream
//   stream_emitted:               replica count, stream start (ns)
//   stream_accepted:              replica count
//   stream_rejected_min_replicas: replica count, required minimum
//   stream_rejected_nonlooped:    refuting packet timestamp (ns), replicas
//   loop_extended:                gap to the open loop (ns; 0 = overlap),
//                                 loop stream count after the merge
//   loop_split_gap:               gap (ns), configured merge_gap (ns)
//   loop_split_healthy:           gap (ns), refuting packet timestamp (ns)
//   loop_emitted:                 stream count, replica count
//   alert_raised:                 replicas, ttl delta
//   alert_suppressed:             ns since the previous alert
// `ts` orders the causal chain: packet time for replica events, stream END
// time for stream/loop events (so a verdict sorts after the evidence).
struct DecisionEvent {
  DecisionKind kind = DecisionKind::replica_accepted;
  net::Prefix dst24;  // the /24 the decision concerns (explain() filter key)
  net::TimeNs ts = 0;
  std::uint32_t record_index = 0;  // triggering trace record (stream events:
                                   // the stream's first record)
  std::int64_t detail = 0;
  std::int64_t detail2 = 0;
};

class DecisionLog {
 public:
  struct Options {
    // Ring slots. Decisions are per-replica-match / per-stream, so 16k slots
    // cover minutes of heavy looping.
    std::size_t capacity = 1u << 14;
    // Flight-recorder auto-dump: when a stream is rejected at validation,
    // the causal chain for its /24 is rendered and handed to `dump_sink`
    // (default: stderr) without anyone having to ask.
    bool dump_on_reject = false;
    std::function<void(const std::string&)> dump_sink;
  };

  DecisionLog() : DecisionLog(Options{}) {}
  explicit DecisionLog(Options options);
  DecisionLog(const DecisionLog&) = delete;
  DecisionLog& operator=(const DecisionLog&) = delete;

  // Thread-safe; overwrites the oldest event when the ring is full.
  void record(const DecisionEvent& ev);

  // Every retained event, oldest to newest (ring order, not causal order).
  std::vector<DecisionEvent> snapshot() const;

  std::uint64_t recorded() const;     // total ever recorded
  std::uint64_t overwritten() const;  // recorded() - retained
  std::size_t capacity() const { return capacity_; }

  // Retained events for `prefix24` in causal (ts, kind, record) order —
  // deterministic for serial and sharded runs alike.
  std::vector<DecisionEvent> events_for(const net::Prefix& prefix24) const;
  // Just the kinds of events_for(): the reason sequence tests pin.
  std::vector<DecisionKind> reasons(const net::Prefix& prefix24) const;

  // Human-readable causal chain for one /24: one line per decision with its
  // typed reason and evidence, ending in a verdict summary.
  std::string explain(const net::Prefix& prefix24) const;
  // Full flight-recorder dump: every retained prefix's chain.
  std::string dump() const;

  // Hook for the validator: fires the auto-dump when enabled, else no-op.
  void on_validation_reject(const net::Prefix& prefix24);

 private:
  const Options options_;
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<DecisionEvent> ring_;
  std::uint64_t recorded_ = 0;

  std::vector<DecisionEvent> snapshot_locked() const;
};

// Null-tolerant record helper, mirroring telemetry::inc for metrics.
inline void record(DecisionLog* log, const DecisionEvent& ev) {
  if (log) log->record(ev);
}

}  // namespace rloop::telemetry
