// Shared vocabulary of the telemetry subsystem: metric kinds, label sets,
// and the snapshot structs exporters consume.
//
// A metric is identified by (name, label set). Names follow the Prometheus
// convention: `rloop_<layer>_<what>[_total|_ns]`, snake_case, with `_total`
// for monotonic counters and `_ns` for nanosecond-valued histograms. Labels
// carry low-cardinality dimensions only (a rejection reason, a pipeline
// stage) — never addresses, prefixes, or anything per-flow.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rloop::telemetry {

enum class MetricType : std::uint8_t { counter, gauge, histogram, summary };

// Ordered (key, value) pairs. Registry sorts by key on registration, so two
// label sets written in different order are the same metric.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

// Point-in-time copy of one metric, decoupled from the live atomics so
// exporters can format it without holding any lock.
struct MetricSnapshot {
  std::string name;
  LabelSet labels;
  MetricType type = MetricType::counter;
  std::string help;

  // counter / gauge value (counters are non-negative).
  double value = 0.0;

  // histogram only: per-bucket (non-cumulative) counts. buckets.size() ==
  // bounds.size() + 1; the final bucket is the +Inf overflow.
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;

  // summary only: (quantile rank, estimated value) pairs, rank ascending.
  // Summaries are never live metrics — the Registry only hands out counters,
  // gauges and histograms; summary snapshots are derived at export time from
  // histogram snapshots (telemetry/quantiles.h), so they need no atomics.
  std::vector<std::pair<double, double>> quantiles;
};

}  // namespace rloop::telemetry
