// Snapshot serialization: Prometheus text exposition format and JSON, plus
// a caller-pumped PeriodicExporter.
//
// Exporters work on MetricSnapshot vectors (registry.h), never on live
// metrics, so serialization needs no locks and a snapshot can be formatted
// twice (e.g. printed and written to a file) consistently.
//
// PeriodicExporter has no thread of its own: the owner pumps it with a
// monotonic clock — packet timestamps in live_monitor, the simulator's
// event-queue time in a simulation — so periodic output is deterministic
// under simulated time and needs no synchronization.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/time.h"
#include "telemetry/metric_types.h"
#include "telemetry/registry.h"

namespace rloop::telemetry {

// Prometheus text exposition format (# HELP / # TYPE, cumulative `le`
// histogram buckets, _sum/_count series).
std::string to_prometheus(const std::vector<MetricSnapshot>& snaps);

// JSON array of metric objects; histograms carry per-bucket counts.
std::string to_json(const std::vector<MetricSnapshot>& snaps);

class PeriodicExporter {
 public:
  enum class Format { prometheus, json };
  using Sink = std::function<void(const std::string&)>;

  // Snapshots `registry` and feeds the formatted text to `sink` once per
  // `interval` of pumped time. `registry` must outlive the exporter.
  PeriodicExporter(const Registry* registry, net::TimeNs interval,
                   Format format, Sink sink);

  // Advances the exporter's clock to `now` (any monotonic TimeNs source).
  // Emits at most one export per call — a large time jump does not replay
  // missed intervals. Returns true when an export fired.
  bool pump(net::TimeNs now);

  // Unconditional export at time `now` (used for a final snapshot).
  void flush(net::TimeNs now);

  std::uint64_t exports() const { return exports_; }

 private:
  const Registry* registry_;
  net::TimeNs interval_;
  Format format_;
  Sink sink_;
  net::TimeNs next_due_ = 0;
  bool started_ = false;
  std::uint64_t exports_ = 0;
};

}  // namespace rloop::telemetry
