#include "telemetry/trace.h"

#include <algorithm>
#include <cstdio>

namespace rloop::telemetry {

namespace {

// Per-thread nesting depth for span events. Only touched when a sink is
// attached, so the disabled path never faults the thread-local in.
thread_local std::uint32_t t_span_depth = 0;

std::string json_escape(const char* s) {
  std::string out;
  for (const char* p = s; *p; ++p) {
    switch (*p) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += *p;
    }
  }
  return out;
}

}  // namespace

std::uint32_t trace_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceSink::TraceSink(std::size_t capacity) : capacity_(capacity) {
  events_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void TraceSink::record(const SpanEvent& ev) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() < capacity_) {
      events_.push_back(ev);
      return;
    }
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanEvent> TraceSink::snapshot() const {
  std::vector<SpanEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out = events_;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.depth < b.depth;
            });
  return out;
}

std::size_t TraceSink::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceSink::chrome_trace_json() const {
  return to_chrome_trace_json(snapshot());
}

ScopedSpan::ScopedSpan(TraceSink* sink, const char* name, const char* category)
    : sink_(sink), name_(name), category_(category) {
  if (sink_) {
    depth_ = t_span_depth++;
    start_ = std::chrono::steady_clock::now();
  }
}

ScopedSpan::~ScopedSpan() {
  if (!sink_) return;
  const auto end = std::chrono::steady_clock::now();
  --t_span_depth;
  SpanEvent ev;
  ev.name = name_;
  ev.category = category_;
  ev.tid = trace_thread_id();
  ev.depth = depth_;
  ev.start_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    start_.time_since_epoch())
                    .count();
  ev.duration_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count();
  sink_->record(ev);
}

std::string to_chrome_trace_json(const std::vector<SpanEvent>& events) {
  // ts/dur are microseconds in the trace-event format; three decimals keep
  // the underlying nanosecond resolution.
  const auto us = [](std::int64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    return std::string(buf);
  };
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& ev = events[i];
    if (i) out += ',';
    out += "\n {\"name\":\"" + json_escape(ev.name) + "\",\"cat\":\"" +
           json_escape(ev.category) + "\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(ev.tid) + ",\"ts\":" + us(ev.start_ns) +
           ",\"dur\":" + us(ev.duration_ns) +
           ",\"args\":{\"depth\":" + std::to_string(ev.depth) + "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace rloop::telemetry
