#include "correlate/correlate.h"

#include <algorithm>

namespace rloop::correlate {

const char* cause_name(Cause cause) {
  switch (cause) {
    case Cause::bgp_withdrawal: return "BGP withdrawal";
    case Cause::bgp_reannounce: return "BGP re-announcement";
    case Cause::igp_link_down: return "IGP link failure";
    case Cause::igp_link_up: return "IGP link restoration";
    case Cause::misconfiguration: return "misconfiguration";
    case Cause::unexplained: return "unexplained";
  }
  return "?";
}

std::vector<LoopExplanation> explain_loops(
    const std::vector<core::RoutingLoop>& loops,
    const std::vector<sim::ControlEvent>& control_log,
    const CorrelationConfig& config) {
  using Kind = sim::ControlEvent::Kind;
  std::vector<LoopExplanation> out;
  out.reserve(loops.size());

  for (std::size_t i = 0; i < loops.size(); ++i) {
    const core::RoutingLoop& loop = loops[i];
    LoopExplanation ex;
    ex.loop_index = i;

    // Best candidate per rule tier; events are time-ordered in the log but
    // we scan all (logs are small) and keep the latest preceding match.
    const sim::ControlEvent* bgp = nullptr;
    const sim::ControlEvent* igp = nullptr;
    const sim::ControlEvent* misconfig = nullptr;
    for (const auto& ev : control_log) {
      if (ev.time > loop.start) continue;
      const net::TimeNs lag = loop.start - ev.time;
      switch (ev.kind) {
        case Kind::bgp_withdraw:
        case Kind::bgp_reannounce:
          if (ev.prefix.covers(loop.prefix24) && lag <= config.max_bgp_lag) {
            if (!bgp || ev.time > bgp->time) bgp = &ev;
          }
          break;
        case Kind::link_down:
        case Kind::link_up:
          if (lag <= config.max_igp_lag) {
            if (!igp || ev.time > igp->time) igp = &ev;
          }
          break;
        case Kind::misconfig_set:
          if (ev.prefix.covers(loop.prefix24)) {
            // A standing misconfiguration explains loops until cleared; no
            // lag bound.
            if (!misconfig || ev.time > misconfig->time) misconfig = &ev;
          }
          break;
        case Kind::misconfig_clear:
          if (ev.prefix.covers(loop.prefix24)) misconfig = nullptr;
          break;
        default:
          break;
      }
    }

    if (bgp) {
      ex.cause = bgp->kind == Kind::bgp_withdraw ? Cause::bgp_withdrawal
                                                 : Cause::bgp_reannounce;
      ex.event_time = bgp->time;
      ex.event_prefix = bgp->prefix;
    } else if (misconfig) {
      ex.cause = Cause::misconfiguration;
      ex.event_time = misconfig->time;
      ex.event_prefix = misconfig->prefix;
    } else if (igp) {
      ex.cause = igp->kind == Kind::link_down ? Cause::igp_link_down
                                              : Cause::igp_link_up;
      ex.event_time = igp->time;
      ex.event_link = igp->link;
    } else {
      ex.cause = Cause::unexplained;
    }
    if (ex.cause != Cause::unexplained) {
      ex.onset_latency = loop.start - ex.event_time;
    }
    out.push_back(ex);
  }
  return out;
}

CorrelationSummary summarize(const std::vector<LoopExplanation>& explanations) {
  CorrelationSummary summary;
  summary.total = explanations.size();
  double latency_sum = 0.0;
  std::uint64_t explained = 0;
  for (const auto& ex : explanations) {
    ++summary.by_cause[static_cast<int>(ex.cause)];
    if (ex.cause != Cause::unexplained) {
      latency_sum += net::to_seconds(ex.onset_latency);
      ++explained;
    }
  }
  if (explained > 0) {
    summary.mean_onset_latency_s = latency_sum / static_cast<double>(explained);
  }
  return summary;
}

}  // namespace rloop::correlate
