// Correlating detected loops with control-plane routing data.
//
// The paper closes by proposing exactly this: "we are extending our data
// collection techniques to include complete BGP and IS-IS routing data.
// This will enable a more detailed analysis of routing loops ... and allow
// us to provide explanations of the causes and effects of routing loops."
// The simulator exports that feed (sim::ControlEvent); this module matches
// each detected RoutingLoop to the control-plane event that plausibly
// caused it and reports onset latency (event -> first replica), which
// approximates the unconverged window before the loop became visible.
//
// Matching rules, most-specific first:
//  1. a BGP withdrawal/re-announcement of the loop's own prefix preceding
//     the loop start within `max_bgp_lag`;
//  2. otherwise the nearest preceding IGP link event within `max_igp_lag`;
//  3. otherwise a misconfiguration installation covering the prefix;
//  4. otherwise unexplained.
#pragma once

#include <cstdint>
#include <vector>

#include "core/stream_merger.h"
#include "net/time.h"
#include "sim/network.h"

namespace rloop::correlate {

enum class Cause : std::uint8_t {
  bgp_withdrawal,
  bgp_reannounce,
  igp_link_down,
  igp_link_up,
  misconfiguration,
  unexplained,
};

const char* cause_name(Cause cause);

struct LoopExplanation {
  std::size_t loop_index = 0;  // into the vector passed to explain_loops
  Cause cause = Cause::unexplained;
  net::TimeNs event_time = 0;     // triggering control event (if explained)
  net::TimeNs onset_latency = 0;  // loop start - event time
  net::Prefix event_prefix;       // BGP / misconfiguration causes
  routing::LinkId event_link = -1;  // IGP causes
};

struct CorrelationConfig {
  // BGP convergence runs seconds-to-minutes; IGP converges in seconds.
  net::TimeNs max_bgp_lag = 2 * net::kMinute;
  net::TimeNs max_igp_lag = 15 * net::kSecond;
};

std::vector<LoopExplanation> explain_loops(
    const std::vector<core::RoutingLoop>& loops,
    const std::vector<sim::ControlEvent>& control_log,
    const CorrelationConfig& config = {});

struct CorrelationSummary {
  std::uint64_t total = 0;
  std::uint64_t by_cause[6] = {};
  double mean_onset_latency_s = 0.0;  // over explained loops

  double explained_fraction() const {
    return total == 0 ? 0.0
                      : 1.0 - static_cast<double>(
                                  by_cause[static_cast<int>(
                                      Cause::unexplained)]) /
                                  static_cast<double>(total);
  }
};

CorrelationSummary summarize(const std::vector<LoopExplanation>& explanations);

}  // namespace rloop::correlate
