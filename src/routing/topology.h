// Network topology: routers (nodes) and point-to-point links with
// propagation delay, bandwidth, queue capacity and IGP cost.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "net/time.h"

namespace rloop::routing {

using NodeId = int;
using LinkId = int;

struct Link {
  LinkId id = -1;
  NodeId a = -1;
  NodeId b = -1;
  net::TimeNs prop_delay = 0;
  double bandwidth_bps = 0.0;
  int queue_capacity_pkts = 0;
  std::uint32_t igp_cost = 1;
  bool up = true;

  NodeId other(NodeId n) const { return n == a ? b : a; }
};

struct Node {
  NodeId id = -1;
  std::string name;
  // Loopback address used as ICMP source and probe target identity.
  net::Ipv4Addr loopback;
};

class Topology {
 public:
  // Adds a node; its loopback defaults to 10.255.<id/256>.<id%256>.
  NodeId add_node(std::string name);

  // Adds a bidirectional link. Throws std::invalid_argument for bad node ids,
  // a == b, non-positive bandwidth, or queue capacity < 1.
  LinkId add_link(NodeId a, NodeId b, net::TimeNs prop_delay,
                  double bandwidth_bps, int queue_capacity_pkts,
                  std::uint32_t igp_cost = 1);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }

  const Node& node(NodeId id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  const Link& link(LinkId id) const { return links_.at(static_cast<std::size_t>(id)); }
  Link& link(LinkId id) { return links_.at(static_cast<std::size_t>(id)); }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Link>& links() const { return links_; }

  // (neighbor, link) pairs for a node, in insertion order.
  struct Adjacency {
    NodeId neighbor;
    LinkId link;
  };
  const std::vector<Adjacency>& neighbors(NodeId id) const {
    return adjacency_.at(static_cast<std::size_t>(id));
  }

  std::optional<LinkId> find_link(NodeId a, NodeId b) const;

  void set_link_up(LinkId id, bool up) { link(id).up = up; }

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<Adjacency>> adjacency_;
};

}  // namespace rloop::routing
