#include "routing/bgp_lite.h"

#include <algorithm>

namespace rloop::routing {

std::vector<FibUpdate> bgp_event_schedule(const Topology& topo, NodeId origin,
                                          net::TimeNs event_time,
                                          const BgpConfig& config,
                                          util::Rng& rng) {
  std::vector<FibUpdate> schedule;
  schedule.reserve(topo.node_count());
  for (const auto& node : topo.nodes()) {
    if (node.id == origin) {
      // The egress itself sees the E-BGP session drop almost immediately.
      schedule.push_back(
          {node.id, event_time + rng.uniform_int(net::kMillisecond,
                                                 50 * net::kMillisecond)});
      continue;
    }
    const auto lo = config.ibgp_prop_mean > config.ibgp_prop_jitter
                        ? config.ibgp_prop_mean - config.ibgp_prop_jitter
                        : net::TimeNs{0};
    net::TimeNs t = event_time +
                    rng.uniform_int(lo, config.ibgp_prop_mean +
                                            config.ibgp_prop_jitter);
    if (config.mrai_max > 0) t += rng.uniform_int(0, config.mrai_max);
    if (config.slow_extra_mean > 0 &&
        std::find(config.slow_nodes.begin(), config.slow_nodes.end(),
                  node.id) != config.slow_nodes.end()) {
      t += static_cast<net::TimeNs>(
          rng.exponential(static_cast<double>(config.slow_extra_mean)));
    }
    schedule.push_back({node.id, t});
  }
  return schedule;
}

}  // namespace rloop::routing
