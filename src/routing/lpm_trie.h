// Longest-prefix-match forwarding table (binary trie).
//
// Values are opaque 32-bit handles; the simulator stores an encoded next-hop
// (link id or local-delivery sentinel). The trie is the FIB of every
// simulated router, so lookup is the hot path of the whole simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/prefix.h"

namespace rloop::routing {

class LpmTrie {
 public:
  LpmTrie();
  ~LpmTrie();
  LpmTrie(LpmTrie&&) noexcept;
  LpmTrie& operator=(LpmTrie&&) noexcept;
  LpmTrie(const LpmTrie&) = delete;
  LpmTrie& operator=(const LpmTrie&) = delete;

  // Inserts or overwrites the entry for `prefix`.
  void insert(const net::Prefix& prefix, std::uint32_t value);

  // Removes the entry; returns false when no exact entry existed.
  bool remove(const net::Prefix& prefix);

  // Longest-prefix-match lookup; nullopt when nothing matches.
  std::optional<std::uint32_t> lookup(net::Ipv4Addr addr) const;

  // Like lookup but also reports which prefix matched.
  std::optional<std::pair<net::Prefix, std::uint32_t>> lookup_entry(
      net::Ipv4Addr addr) const;

  // Exact-match retrieval (no LPM), for protocol code updating routes.
  std::optional<std::uint32_t> find_exact(const net::Prefix& prefix) const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear();

  // All (prefix, value) entries in lexicographic (addr, len) order.
  std::vector<std::pair<net::Prefix, std::uint32_t>> entries() const;

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace rloop::routing
