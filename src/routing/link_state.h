// Link-state routing: shortest-path-first computation and a convergence
// model for link failure/restoration events.
//
// Transient loops (the paper's subject) exist because routers update their
// FIBs at *different* times after a topology change: failure detection,
// per-hop LSA flooding, SPF recomputation and FIB download each contribute
// delay (Section II-B of the paper; Alaettinoglu et al.; Iannaccone et al.).
// This module computes, for a given event, the instant at which each router's
// FIB reflects the new topology. The simulator applies the per-router FIB
// swaps at those instants; loops then *emerge* rather than being scripted.
#pragma once

#include <cstdint>
#include <vector>

#include "net/time.h"
#include "routing/topology.h"
#include "util/random.h"

namespace rloop::routing {

struct SpfResult {
  // For each destination node: the first-hop link from the root, or -1 when
  // the destination is the root itself or unreachable.
  std::vector<LinkId> next_hop_link;
  // IGP distance; max() when unreachable.
  std::vector<std::uint64_t> distance;

  bool reachable(NodeId dest) const {
    return next_hop_link.at(static_cast<std::size_t>(dest)) >= 0;
  }
};

// Dijkstra over up links with deterministic tie-breaking (lower node id
// wins), so repeated runs produce identical FIBs.
SpfResult compute_spf(const Topology& topo, NodeId root);

// A router's FIB becoming consistent with the new topology at `time`.
struct FibUpdate {
  NodeId node = -1;
  net::TimeNs time = 0;
};

struct ConvergenceConfig {
  // Time for a link endpoint to detect loss of the link (point-to-point
  // links detect in milliseconds; protocol hello timers bound the worst
  // case — paper §II-B).
  net::TimeNs detect_delay_mean = 30 * net::kMillisecond;
  net::TimeNs detect_delay_jitter = 20 * net::kMillisecond;
  // Per-hop LSA flooding cost: propagation + pacing + processing.
  net::TimeNs flood_per_hop_mean = 15 * net::kMillisecond;
  net::TimeNs flood_per_hop_jitter = 10 * net::kMillisecond;
  // SPF scheduling/computation delay once the LSA arrives.
  net::TimeNs spf_delay_mean = 100 * net::kMillisecond;
  net::TimeNs spf_delay_jitter = 80 * net::kMillisecond;
  // FIB download time; implementation-dependent and often the dominant term
  // (paper cites [7]: overall convergence of seconds).
  net::TimeNs fib_update_mean = 400 * net::kMillisecond;
  net::TimeNs fib_update_jitter = 350 * net::kMillisecond;
};

// Schedule of per-router FIB updates after `link` changes state at
// `event_time`. The returned vector has one entry per router that can reach
// the event (always all routers in a connected topology), in unspecified
// order. Deterministic given the Rng state.
std::vector<FibUpdate> link_event_schedule(const Topology& topo, LinkId link,
                                           net::TimeNs event_time,
                                           const ConvergenceConfig& config,
                                           util::Rng& rng);

}  // namespace rloop::routing
