// BGP-lite: externally-learned prefixes and the convergence model for
// withdrawal/announcement events propagated over a full I-BGP mesh.
//
// The paper attributes its longest transient loops to EGP events (Labovitz
// et al. measured minutes of BGP convergence). Here a prefix is reachable
// via an ordered preference list of egress routers; when the best egress
// withdraws, every router independently — after I-BGP propagation,
// processing jitter and an MRAI-like delay — switches its FIB entry toward
// the next-preferred egress. Routers that have switched coexist with routers
// that have not, which is precisely the inconsistency that loops traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "net/prefix.h"
#include "net/time.h"
#include "routing/link_state.h"
#include "routing/topology.h"
#include "util/random.h"

namespace rloop::routing {

// An external prefix and where it exits the AS, best egress first.
struct ExternalRoute {
  net::Prefix prefix;
  std::vector<NodeId> egress_preference;
};

struct BgpConfig {
  // One-hop I-BGP propagation (full mesh) plus per-router processing.
  net::TimeNs ibgp_prop_mean = 150 * net::kMillisecond;
  net::TimeNs ibgp_prop_jitter = 100 * net::kMillisecond;
  // Additional uniform [0, mrai_max] delay modelling rate-limited updates and
  // slow BGP convergence; seconds-to-tens-of-seconds in practice.
  net::TimeNs mrai_max = 8 * net::kSecond;
  // Route-reflector clients (or otherwise slow speakers): updates reach
  // these nodes through an extra reflection hop, adding an exponential
  // delay with this mean on top of the mesh propagation. Empty = full mesh.
  std::vector<NodeId> slow_nodes;
  net::TimeNs slow_extra_mean = 0;
};

// Per-router instants at which the FIB entry for a withdrawn prefix switches
// to the new egress. `origin` (the egress that lost the route) switches after
// only a local detection delay; everyone else waits for I-BGP + MRAI.
std::vector<FibUpdate> bgp_event_schedule(const Topology& topo, NodeId origin,
                                          net::TimeNs event_time,
                                          const BgpConfig& config,
                                          util::Rng& rng);

}  // namespace rloop::routing
