#include "routing/link_state.h"

#include <limits>
#include <queue>

namespace rloop::routing {

SpfResult compute_spf(const Topology& topo, NodeId root) {
  const auto n = topo.node_count();
  SpfResult result;
  result.next_hop_link.assign(n, -1);
  result.distance.assign(n, std::numeric_limits<std::uint64_t>::max());
  result.distance[static_cast<std::size_t>(root)] = 0;

  // (distance, node) min-heap; ties resolved by node id for determinism.
  using Entry = std::pair<std::uint64_t, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.push({0, root});
  std::vector<bool> done(n, false);

  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (done[static_cast<std::size_t>(u)]) continue;
    done[static_cast<std::size_t>(u)] = true;

    for (const auto& adj : topo.neighbors(u)) {
      const Link& l = topo.link(adj.link);
      if (!l.up) continue;
      const NodeId v = adj.neighbor;
      const std::uint64_t nd = dist + l.igp_cost;
      auto& dv = result.distance[static_cast<std::size_t>(v)];
      const LinkId first_hop =
          (u == root) ? adj.link
                      : result.next_hop_link[static_cast<std::size_t>(u)];
      if (nd < dv) {
        dv = nd;
        result.next_hop_link[static_cast<std::size_t>(v)] = first_hop;
        heap.push({nd, v});
      } else if (nd == dv && !done[static_cast<std::size_t>(v)]) {
        // Deterministic equal-cost tie-break: keep the lower first-hop link.
        auto& hop = result.next_hop_link[static_cast<std::size_t>(v)];
        if (first_hop >= 0 && (hop < 0 || first_hop < hop)) hop = first_hop;
      }
    }
  }
  return result;
}

namespace {

// Hop counts from `start` over up links, ignoring `skip_link` (the failed
// link cannot carry the LSA that reports its own failure).
std::vector<int> bfs_hops(const Topology& topo, NodeId start, LinkId skip_link) {
  std::vector<int> hops(topo.node_count(), -1);
  std::queue<NodeId> queue;
  hops[static_cast<std::size_t>(start)] = 0;
  queue.push(start);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (const auto& adj : topo.neighbors(u)) {
      if (adj.link == skip_link) continue;
      if (!topo.link(adj.link).up) continue;
      if (hops[static_cast<std::size_t>(adj.neighbor)] >= 0) continue;
      hops[static_cast<std::size_t>(adj.neighbor)] =
          hops[static_cast<std::size_t>(u)] + 1;
      queue.push(adj.neighbor);
    }
  }
  return hops;
}

net::TimeNs jittered(net::TimeNs mean, net::TimeNs jitter, util::Rng& rng) {
  if (jitter <= 0) return mean;
  const auto lo = mean > jitter ? mean - jitter : net::TimeNs{0};
  return rng.uniform_int(lo, mean + jitter);
}

}  // namespace

std::vector<FibUpdate> link_event_schedule(const Topology& topo, LinkId link,
                                           net::TimeNs event_time,
                                           const ConvergenceConfig& config,
                                           util::Rng& rng) {
  const Link& l = topo.link(link);
  const net::TimeNs detect_a =
      event_time + jittered(config.detect_delay_mean,
                            config.detect_delay_jitter, rng);
  const net::TimeNs detect_b =
      event_time + jittered(config.detect_delay_mean,
                            config.detect_delay_jitter, rng);

  const auto hops_a = bfs_hops(topo, l.a, link);
  const auto hops_b = bfs_hops(topo, l.b, link);

  std::vector<FibUpdate> schedule;
  schedule.reserve(topo.node_count());
  for (const auto& node : topo.nodes()) {
    const auto i = static_cast<std::size_t>(node.id);
    net::TimeNs learn = std::numeric_limits<net::TimeNs>::max();
    if (hops_a[i] >= 0) {
      net::TimeNs t = detect_a;
      for (int h = 0; h < hops_a[i]; ++h) {
        t += jittered(config.flood_per_hop_mean, config.flood_per_hop_jitter,
                      rng);
      }
      learn = std::min(learn, t);
    }
    if (hops_b[i] >= 0) {
      net::TimeNs t = detect_b;
      for (int h = 0; h < hops_b[i]; ++h) {
        t += jittered(config.flood_per_hop_mean, config.flood_per_hop_jitter,
                      rng);
      }
      learn = std::min(learn, t);
    }
    if (learn == std::numeric_limits<net::TimeNs>::max()) continue;  // isolated

    const net::TimeNs fib_time =
        learn + jittered(config.spf_delay_mean, config.spf_delay_jitter, rng) +
        jittered(config.fib_update_mean, config.fib_update_jitter, rng);
    schedule.push_back({node.id, fib_time});
  }
  return schedule;
}

}  // namespace rloop::routing
