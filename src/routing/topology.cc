#include "routing/topology.h"

#include <stdexcept>

namespace rloop::routing {

NodeId Topology::add_node(std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.id = id;
  n.name = std::move(name);
  n.loopback = net::Ipv4Addr(10, 255, static_cast<std::uint8_t>(id / 256),
                             static_cast<std::uint8_t>(id % 256));
  nodes_.push_back(std::move(n));
  adjacency_.emplace_back();
  return id;
}

LinkId Topology::add_link(NodeId a, NodeId b, net::TimeNs prop_delay,
                          double bandwidth_bps, int queue_capacity_pkts,
                          std::uint32_t igp_cost) {
  if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= nodes_.size() ||
      static_cast<std::size_t>(b) >= nodes_.size()) {
    throw std::invalid_argument("Topology::add_link: bad node id");
  }
  if (a == b) throw std::invalid_argument("Topology::add_link: self-loop");
  if (!(bandwidth_bps > 0)) {
    throw std::invalid_argument("Topology::add_link: bandwidth must be > 0");
  }
  if (queue_capacity_pkts < 1) {
    throw std::invalid_argument("Topology::add_link: queue capacity < 1");
  }
  Link l;
  l.id = static_cast<LinkId>(links_.size());
  l.a = a;
  l.b = b;
  l.prop_delay = prop_delay;
  l.bandwidth_bps = bandwidth_bps;
  l.queue_capacity_pkts = queue_capacity_pkts;
  l.igp_cost = igp_cost;
  links_.push_back(l);
  adjacency_[static_cast<std::size_t>(a)].push_back({b, l.id});
  adjacency_[static_cast<std::size_t>(b)].push_back({a, l.id});
  return l.id;
}

std::optional<LinkId> Topology::find_link(NodeId a, NodeId b) const {
  if (a < 0 || static_cast<std::size_t>(a) >= nodes_.size()) return std::nullopt;
  for (const auto& adj : adjacency_[static_cast<std::size_t>(a)]) {
    if (adj.neighbor == b) return adj.link;
  }
  return std::nullopt;
}

}  // namespace rloop::routing
