#include "routing/lpm_trie.h"

#include <algorithm>

namespace rloop::routing {

struct LpmTrie::Node {
  std::unique_ptr<Node> child[2];
  std::optional<std::uint32_t> value;
};

LpmTrie::LpmTrie() : root_(std::make_unique<Node>()) {}
LpmTrie::~LpmTrie() = default;
LpmTrie::LpmTrie(LpmTrie&&) noexcept = default;
LpmTrie& LpmTrie::operator=(LpmTrie&&) noexcept = default;

namespace {
// Bit i (0 = most significant) of an address.
inline int bit_at(std::uint32_t addr, int i) { return (addr >> (31 - i)) & 1; }
}  // namespace

void LpmTrie::insert(const net::Prefix& prefix, std::uint32_t value) {
  Node* node = root_.get();
  for (int i = 0; i < prefix.len; ++i) {
    const int b = bit_at(prefix.addr.value, i);
    if (!node->child[b]) node->child[b] = std::make_unique<Node>();
    node = node->child[b].get();
  }
  if (!node->value) ++size_;
  node->value = value;
}

bool LpmTrie::remove(const net::Prefix& prefix) {
  // Track the path so empty nodes can be pruned on the way back.
  std::vector<std::pair<Node*, int>> path;
  Node* node = root_.get();
  for (int i = 0; i < prefix.len; ++i) {
    const int b = bit_at(prefix.addr.value, i);
    if (!node->child[b]) return false;
    path.emplace_back(node, b);
    node = node->child[b].get();
  }
  if (!node->value) return false;
  node->value.reset();
  --size_;
  // Prune childless, valueless nodes.
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    Node* child = it->first->child[it->second].get();
    if (child->value || child->child[0] || child->child[1]) break;
    it->first->child[it->second].reset();
  }
  return true;
}

std::optional<std::uint32_t> LpmTrie::lookup(net::Ipv4Addr addr) const {
  if (auto entry = lookup_entry(addr)) return entry->second;
  return std::nullopt;
}

std::optional<std::pair<net::Prefix, std::uint32_t>> LpmTrie::lookup_entry(
    net::Ipv4Addr addr) const {
  const Node* node = root_.get();
  std::optional<std::pair<net::Prefix, std::uint32_t>> best;
  int depth = 0;
  if (node->value) {
    best = {net::Prefix::of(addr, 0), *node->value};
  }
  while (depth < 32) {
    const int b = bit_at(addr.value, depth);
    node = node->child[b].get();
    if (!node) break;
    ++depth;
    if (node->value) {
      best = {net::Prefix::of(addr, static_cast<std::uint8_t>(depth)),
              *node->value};
    }
  }
  return best;
}

std::optional<std::uint32_t> LpmTrie::find_exact(const net::Prefix& prefix) const {
  const Node* node = root_.get();
  for (int i = 0; i < prefix.len; ++i) {
    const int b = bit_at(prefix.addr.value, i);
    node = node->child[b].get();
    if (!node) return std::nullopt;
  }
  return node->value;
}

void LpmTrie::clear() {
  root_ = std::make_unique<Node>();
  size_ = 0;
}

std::vector<std::pair<net::Prefix, std::uint32_t>> LpmTrie::entries() const {
  std::vector<std::pair<net::Prefix, std::uint32_t>> out;
  out.reserve(size_);
  struct Frame {
    const Node* node;
    std::uint32_t addr;
    std::uint8_t depth;
  };
  std::vector<Frame> stack{{root_.get(), 0, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.node->value) {
      out.emplace_back(net::Prefix::of(net::Ipv4Addr{f.addr}, f.depth),
                       *f.node->value);
    }
    // Push child 1 first so child 0 is processed first (sorted output).
    if (f.node->child[1]) {
      stack.push_back({f.node->child[1].get(),
                       f.addr | (1u << (31 - f.depth)),
                       static_cast<std::uint8_t>(f.depth + 1)});
    }
    if (f.node->child[0]) {
      stack.push_back({f.node->child[0].get(), f.addr,
                       static_cast<std::uint8_t>(f.depth + 1)});
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return std::tie(a.first.addr.value, a.first.len) <
           std::tie(b.first.addr.value, b.first.len);
  });
  return out;
}

}  // namespace rloop::routing
