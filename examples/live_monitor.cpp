// live_monitor: online loop alarms from a packet stream.
//
// Replays a pcap file (or, with no argument, a freshly simulated Backbone 1
// trace) through the StreamingDetector and prints an alert line the moment
// any destination /24 accumulates a replica stream — the way an operator
// console would surface a loop while it is still happening.
//
// With --stats <seconds>, a telemetry registry is attached and a periodic
// Prometheus-text snapshot (alert counter, hold-down suppressions, live
// open-entry gauge — the loop-surge signal) is printed every <seconds> of
// *trace* time, driven by packet timestamps rather than a wall clock, so
// replays are deterministic.
//
// Usage: live_monitor [--stats <seconds>] [capture.pcap]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/streaming_detector.h"
#include "net/pcap_mmap.h"
#include "net/time.h"
#include "scenarios/backbone.h"
#include "telemetry/exporter.h"
#include "telemetry/registry.h"

using namespace rloop;

int main(int argc, char** argv) {
  double stats_interval_s = 0.0;
  const char* pcap_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stats") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: live_monitor [--stats <seconds>] "
                             "[capture.pcap]\n");
        return 2;
      }
      stats_interval_s = std::atof(argv[++i]);
      if (stats_interval_s <= 0) {
        std::fprintf(stderr, "error: --stats interval must be > 0\n");
        return 2;
      }
    } else {
      pcap_path = argv[i];
    }
  }

  telemetry::Registry registry;
  telemetry::Registry* reg = stats_interval_s > 0 ? &registry : nullptr;

  net::Trace trace;
  if (pcap_path) {
    std::printf("reading %s ...\n", pcap_path);
    try {
      trace = net::read_pcap_fast(pcap_path, reg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else {
    std::printf("no capture given; simulating Backbone 1 ...\n");
    auto run = scenarios::run_backbone(1);
    trace = run->trace();
  }
  std::printf("%zu packets, %.1f s of traffic on '%s'\n\n", trace.size(),
              net::to_seconds(trace.duration()), trace.link_name().c_str());

  core::StreamingConfig config;
  config.alert_holddown = 30 * net::kSecond;
  std::uint64_t alert_count = 0;
  core::StreamingDetector detector(
      config,
      [&alert_count](const core::LoopAlert& alert) {
        ++alert_count;
        std::printf(
            "[%9.3fs] LOOP suspected on %-18s  ttl_delta=%d  (stream began "
            "%.1f ms earlier)\n",
            net::to_seconds(alert.raised_at), alert.prefix24.to_string().c_str(),
            alert.ttl_delta,
            net::to_millis(alert.raised_at - alert.first_seen));
      },
      reg);

  telemetry::PeriodicExporter exporter(
      &registry,
      static_cast<net::TimeNs>(stats_interval_s * net::kSecond),
      telemetry::PeriodicExporter::Format::prometheus,
      [](const std::string& text) {
        std::printf("--- stats snapshot ---\n%s\n", text.c_str());
      });

  for (const auto& rec : trace.records()) {
    detector.on_packet(rec.ts, rec.bytes());
    if (reg) exporter.pump(rec.ts);
  }
  if (reg && !trace.records().empty()) {
    std::printf("--- final stats ---\n");
    exporter.flush(trace.records().back().ts);
  }

  std::printf("\n%llu packets scanned, %llu alerts, %zu entries resident\n",
              static_cast<unsigned long long>(detector.packets_seen()),
              static_cast<unsigned long long>(alert_count),
              detector.open_entries());
  return 0;
}
