// live_monitor: online loop alarms from a packet stream.
//
// Replays a pcap file (or, with no argument, a freshly simulated Backbone 1
// trace) through the StreamingDetector and prints an alert line the moment
// any destination /24 accumulates a replica stream — the way an operator
// console would surface a loop while it is still happening.
//
// Usage: live_monitor [capture.pcap]
#include <cstdio>
#include <memory>
#include <string>

#include "core/streaming_detector.h"
#include "net/pcap.h"
#include "net/time.h"
#include "scenarios/backbone.h"

using namespace rloop;

int main(int argc, char** argv) {
  net::Trace trace;
  if (argc > 1) {
    std::printf("reading %s ...\n", argv[1]);
    try {
      trace = net::read_pcap(argv[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else {
    std::printf("no capture given; simulating Backbone 1 ...\n");
    auto run = scenarios::run_backbone(1);
    trace = run->trace();
  }
  std::printf("%zu packets, %.1f s of traffic on '%s'\n\n", trace.size(),
              net::to_seconds(trace.duration()), trace.link_name().c_str());

  core::StreamingConfig config;
  config.alert_holddown = 30 * net::kSecond;
  std::uint64_t alert_count = 0;
  core::StreamingDetector detector(
      config, [&alert_count](const core::LoopAlert& alert) {
        ++alert_count;
        std::printf(
            "[%9.3fs] LOOP suspected on %-18s  ttl_delta=%d  (stream began "
            "%.1f ms earlier)\n",
            net::to_seconds(alert.raised_at), alert.prefix24.to_string().c_str(),
            alert.ttl_delta,
            net::to_millis(alert.raised_at - alert.first_seen));
      });

  for (const auto& rec : trace.records()) {
    detector.on_packet(rec.ts, rec.bytes());
  }

  std::printf("\n%llu packets scanned, %llu alerts, %zu entries resident\n",
              static_cast<unsigned long long>(detector.packets_seen()),
              static_cast<unsigned long long>(alert_count),
              detector.open_entries());
  return 0;
}
