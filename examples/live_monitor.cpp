// live_monitor: online loop alarms from a packet stream.
//
// Replays a pcap file (or, with no argument, a freshly simulated Backbone 1
// trace) through the daemon library and prints an alert line the moment any
// destination /24 accumulates a replica stream — the way an operator console
// would surface a loop while it is still happening.
//
// This is a thin wrapper over daemon::Daemon run in inline mode (no ring, no
// producer thread): there is exactly one streaming ingest path in the repo,
// and it lives in src/daemon/. For the full always-on service — ring ingest,
// back-pressure, budget eviction, signal lifecycle — use `rloopd`.
//
// With --stats <seconds>, a telemetry registry is attached and a periodic
// Prometheus-text snapshot (alert counter, hold-down suppressions, live
// open-entry gauge — the loop-surge signal) is printed every <seconds> of
// *trace* time, driven by packet timestamps rather than a wall clock, so
// replays are deterministic.
//
// Usage: live_monitor [--stats <seconds>] [capture.pcap]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "daemon/daemon.h"

using namespace rloop;

int main(int argc, char** argv) {
  double stats_interval_s = 0.0;
  const char* pcap_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stats") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: live_monitor [--stats <seconds>] "
                             "[capture.pcap]\n");
        return 2;
      }
      stats_interval_s = std::atof(argv[++i]);
      if (stats_interval_s <= 0) {
        std::fprintf(stderr, "error: --stats interval must be > 0\n");
        return 2;
      }
    } else {
      pcap_path = argv[i];
    }
  }

  telemetry::Registry registry;
  telemetry::Registry* reg = stats_interval_s > 0 ? &registry : nullptr;

  daemon::DaemonConfig config;
  config.use_ring = false;  // single-threaded replay, deterministic output
  config.streaming = core::StreamingConfig{};  // keep the classic thresholds
  config.streaming.alert_holddown = 30 * net::kSecond;
  config.stats_interval = net::from_seconds(stats_interval_s);

  std::unique_ptr<daemon::PacketSource> source;
  try {
    if (pcap_path) {
      std::printf("reading %s ...\n", pcap_path);
      source = daemon::make_pcap_source(pcap_path, /*speed=*/0, reg);
    } else {
      std::printf("no capture given; simulating Backbone 1 ...\n");
      source = daemon::make_sim_source(1, /*speed=*/0, reg);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("%zu packets from '%s'\n\n", source->expected_packets(),
              source->name().c_str());

  std::uint64_t alert_count = 0;
  daemon::Daemon d(
      std::move(config), std::move(source),
      [&alert_count](const core::LoopAlert& alert) {
        ++alert_count;
        std::printf(
            "[%9.3fs] LOOP suspected on %-18s  ttl_delta=%d  (stream began "
            "%.1f ms earlier)\n",
            net::to_seconds(alert.raised_at), alert.prefix24.to_string().c_str(),
            alert.ttl_delta,
            net::to_millis(alert.raised_at - alert.first_seen));
      },
      reg);
  if (reg) {
    d.set_stats_sink([](const std::string& text) {
      std::printf("--- stats snapshot ---\n%s\n", text.c_str());
    });
  }

  // run() flushes a final stats snapshot through the sink on completion.
  const daemon::DaemonStats stats = d.run();

  std::printf("\n%llu packets scanned, %llu alerts, %zu entries resident\n",
              static_cast<unsigned long long>(stats.consumed),
              static_cast<unsigned long long>(alert_count),
              stats.open_entries);
  return 0;
}
