// rloopd: the always-on loop-detection daemon.
//
// Pulls packets from a source (pcap replay or the built-in backbone
// simulator), pushes them through a lock-free SPSC ring into the streaming
// detector, and prints an alert line the moment any destination /24
// accumulates a replica stream. Built for unattended operation: bounded
// memory (entry budget + watermark eviction), explicit back-pressure with
// exact drop accounting, periodic Prometheus/JSON stats, and signal-driven
// lifecycle (SIGINT/SIGTERM drain, SIGHUP reload). See DESIGN.md "Daemon
// architecture" and the README ops guide.
//
// Usage:
//   rloopd [--source pcap|sim|scenario] [--pcap <file>] [--sim <k>]
//          [--scenario <name>] [--seed <n>] [--speed <x|max>]
//          [--ring <pow2-slots>] [--batch <n>] [--policy block|drop-newest]
//          [--budget <entries>] [--reorder-tolerance-ms <ms>]
//          [--stats <seconds>] [--stats-format prom|json]
//          [--stats-out <file|->] [--alerts-out <file>]
//          [--checkpoint-dir <dir>] [--checkpoint-interval <seconds>]
//          [--governor] [--config <file>] [--journal-out <file>]
//          [--http-port <port>] [--no-ring] [--quiet]
//
// With --http-port (0 = pick an ephemeral port, printed on stderr) rloopd
// serves a live observability plane on 127.0.0.1: /metrics /healthz /readyz
// /status /loops /events. See DESIGN.md "Observability plane".
//
// Signals:
//   SIGINT/SIGTERM  stop the source, drain the ring, dump final stats, exit 0
//   SIGHUP          re-read --config and apply reloadable keys live
//                   (including checkpoint_dir / checkpoint_interval_s)
//
// Restart/restore: with --checkpoint-dir set, rloopd snapshots detector
// state at epoch boundaries and on drain; on start it restores the newest
// valid snapshot, skips the already-consumed records, and suppresses alert
// lines already present in --alerts-out, so kill -9 + restart converges on
// the same alert set as an uninterrupted run (modulo records lost in the
// ring at the instant of death). A startup line on stderr says which
// happened: restored (seq, age) or cold start.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_set>

#include "daemon/daemon.h"
#include "daemon/observability.h"
#include "scenarios/scenario.h"
#include "telemetry/build_info.h"
#include "telemetry/decision_log.h"
#include "telemetry/exporter.h"
#include "util/fileio.h"

using namespace rloop;

namespace {

daemon::Daemon* g_daemon = nullptr;
// Set even when the signal lands before the Daemon exists (e.g. while the
// simulator source is still being built) so the stop is not lost.
volatile std::sig_atomic_t g_stop_flag = 0;

extern "C" void handle_stop(int) {
  g_stop_flag = 1;
  if (g_daemon) g_daemon->request_stop();
}
extern "C" void handle_reload(int) {
  if (g_daemon) g_daemon->request_reload();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: rloopd [--source pcap|sim|scenario] [--pcap <file>]\n"
      "              [--sim <k>] [--scenario <name>] [--seed <n>]\n"
      "              [--speed <x|max>] [--ring <pow2>] [--batch <n>]\n"
      "              [--policy block|drop-newest] [--budget <entries>]\n"
      "              [--reorder-tolerance-ms <ms>] [--stats <seconds>]\n"
      "              [--stats-format prom|json] [--stats-out <file|->]\n"
      "              [--alerts-out <file>] [--checkpoint-dir <dir>]\n"
      "              [--checkpoint-interval <seconds>] [--governor]\n"
      "              [--config <file>] [--journal-out <file>]\n"
      "              [--http-port <port>] [--no-ring] [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string source = "sim";
  std::string pcap_path;
  std::string scenario_name = "ddos_burst";
  std::uint64_t scenario_seed = 0;  // 0 = the scenario's pinned seed
  int sim_k = 1;
  double speed = 0;  // "max": replay as fast as the consumer can take it
  bool quiet = false;
  std::string journal_out;
  int http_port = -1;  // -1 = observability plane off
  daemon::DaemonConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--source" && (v = value())) {
      source = v;
      if (source != "pcap" && source != "sim" && source != "scenario") {
        return usage();
      }
    } else if (arg == "--pcap" && (v = value())) {
      pcap_path = v;
      source = "pcap";
    } else if (arg == "--sim" && (v = value())) {
      sim_k = std::atoi(v);
    } else if (arg == "--scenario" && (v = value())) {
      scenario_name = v;
      source = "scenario";
    } else if (arg == "--seed" && (v = value())) {
      scenario_seed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--speed" && (v = value())) {
      speed = std::strcmp(v, "max") == 0 ? 0 : std::atof(v);
    } else if (arg == "--ring" && (v = value())) {
      config.ring_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--batch" && (v = value())) {
      config.batch_size = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--policy" && (v = value())) {
      if (std::strcmp(v, "block") == 0) {
        config.back_pressure = daemon::BackPressure::block;
      } else if (std::strcmp(v, "drop-newest") == 0) {
        config.back_pressure = daemon::BackPressure::drop_newest;
      } else {
        return usage();
      }
    } else if (arg == "--budget" && (v = value())) {
      config.streaming.max_open_entries =
          static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--reorder-tolerance-ms" && (v = value())) {
      config.streaming.reorder_tolerance_ns = net::from_millis(std::atof(v));
    } else if (arg == "--stats" && (v = value())) {
      config.stats_interval = net::from_seconds(std::atof(v));
    } else if (arg == "--stats-format" && (v = value())) {
      if (std::strcmp(v, "json") == 0) {
        config.stats_format = daemon::StatsFormat::json;
      } else if (std::strcmp(v, "prom") == 0) {
        config.stats_format = daemon::StatsFormat::prometheus;
      } else {
        return usage();
      }
    } else if (arg == "--stats-out" && (v = value())) {
      config.stats_out = v;
    } else if (arg == "--alerts-out" && (v = value())) {
      config.alerts_out = v;
    } else if (arg == "--checkpoint-dir" && (v = value())) {
      config.checkpoint_dir = v;
    } else if (arg == "--checkpoint-interval" && (v = value())) {
      config.checkpoint_interval = net::from_seconds(std::atof(v));
    } else if (arg == "--governor") {
      config.governor_enabled = true;
    } else if (arg == "--config" && (v = value())) {
      config.config_file = v;
    } else if (arg == "--journal-out" && (v = value())) {
      journal_out = v;
    } else if (arg == "--http-port" && (v = value())) {
      http_port = std::atoi(v);
      if (http_port < 0 || http_port > 65535) return usage();
    } else if (arg == "--no-ring") {
      config.use_ring = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage();
    }
  }
  if (source == "pcap" && pcap_path.empty()) {
    std::fprintf(stderr, "error: --source pcap requires --pcap <file>\n");
    return 2;
  }
  if (!config.config_file.empty()) {
    std::string error;
    if (!daemon::apply_config_file(config.config_file, config, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
  }

  // Install handlers before the (possibly slow) source construction so an
  // early SIGINT/SIGTERM still produces a clean exit instead of the default
  // disposition.
  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);
  std::signal(SIGHUP, handle_reload);

  telemetry::Registry registry;
  telemetry::register_build_info(&registry);
  telemetry::DecisionLog journal;
  telemetry::DecisionLog* journal_ptr =
      journal_out.empty() ? nullptr : &journal;

  // The observability plane comes up before the Daemon is even constructed:
  // a slow checkpoint restore is visible as /readyz 503 "starting" instead
  // of a connection refused.
  daemon::ObservabilityHub obs_hub;
  std::unique_ptr<daemon::ObservabilityServer> obs_server;
  if (http_port >= 0) {
    daemon::ObservabilityServer::Options obs_options;
    obs_options.http.port = http_port;
    obs_server = std::make_unique<daemon::ObservabilityServer>(
        &obs_hub, &registry, obs_options);
    std::string error;
    if (!obs_server->start(&error)) {
      std::fprintf(stderr, "error: http server: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "rloopd: http listening on 127.0.0.1:%d\n",
                 obs_server->port());
  }

  std::unique_ptr<daemon::PacketSource> packets;
  try {
    if (source == "pcap") {
      packets = daemon::make_pcap_source(pcap_path, speed, &registry);
    } else if (source == "scenario") {
      const std::uint64_t seed =
          scenario_seed != 0
              ? scenario_seed
              : scenarios::canned_scenario(scenario_name).seed;
      if (!quiet) {
        std::printf("scenario %s seed=%llu\n", scenario_name.c_str(),
                    static_cast<unsigned long long>(seed));
      }
      packets =
          daemon::make_scenario_source(scenario_name, speed, seed, &registry);
    } else {
      packets = daemon::make_sim_source(sim_k, speed, &registry);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::ofstream alerts_file;
  // Alert lines already published by a previous incarnation: the restored
  // run replays the span between its snapshot and the crash, so those
  // alerts fire again — suppressing exact duplicates makes crash+restart
  // emit each alert exactly once across incarnations.
  std::unordered_set<std::string> emitted;

  daemon::Daemon d(
      std::move(config), std::move(packets),
      [&](const core::LoopAlert& alert) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "[%9.3fs] LOOP suspected on %-18s ttl_delta=%d "
                      "replicas=%llu (stream began %.1f ms earlier)",
                      net::to_seconds(alert.raised_at),
                      alert.prefix24.to_string().c_str(), alert.ttl_delta,
                      static_cast<unsigned long long>(alert.replicas),
                      net::to_millis(alert.raised_at - alert.first_seen));
        if (!emitted.empty() && emitted.count(line) > 0) return;
        if (obs_server) obs_hub.publish_event(line);
        if (!quiet) std::printf("%s\n", line);
        // Flushed per line: an alert must be on disk before the checkpoint
        // that covers it, or a kill -9 loses it for good (the restored run
        // resumes past the packet that raised it).
        if (alerts_file.is_open()) alerts_file << line << "\n" << std::flush;
      },
      &registry, journal_ptr);
  d.set_stats_sink([](const std::string& text) {
    std::printf("--- stats ---\n%s\n", text.c_str());
    std::fflush(stdout);
  });

  // The constructor decided cold start vs restore; say which on stderr so
  // an operator (or the crash-recovery soak) can tell at a glance.
  const daemon::Daemon::RestoreInfo& restore = d.restore_info();
  if (!d.config().checkpoint_dir.empty()) {
    if (restore.restored) {
      const auto now = static_cast<std::uint64_t>(std::time(nullptr));
      std::fprintf(stderr,
                   "rloopd: restored checkpoint seq=%llu age=%llus "
                   "(skipping %llu consumed records)\n",
                   static_cast<unsigned long long>(restore.seq),
                   static_cast<unsigned long long>(
                       now >= restore.wall_unix_s
                           ? now - restore.wall_unix_s
                           : 0),
                   static_cast<unsigned long long>(restore.source_offset));
    } else {
      std::fprintf(stderr, "rloopd: cold start (no valid checkpoint in %s)\n",
                   d.config().checkpoint_dir.c_str());
    }
  }

  if (!d.config().alerts_out.empty()) {
    const std::string& alerts_out = d.config().alerts_out;
    if (restore.restored) {
      // Keep lines from previous incarnations and load them for dedup.
      std::ifstream prev(alerts_out);
      std::string line;
      while (std::getline(prev, line)) {
        if (!line.empty()) emitted.insert(line);
      }
      alerts_file.open(alerts_out, std::ios::app);
    } else {
      alerts_file.open(alerts_out);
    }
    if (!alerts_file.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", alerts_out.c_str());
      return 1;
    }
  }

  d.attach_observability(&obs_hub);

  g_daemon = &d;
  if (g_stop_flag) d.request_stop();

  const daemon::DaemonStats stats = d.run();
  g_daemon = nullptr;
  // Stopped after run(): the final (draining) status was published, so a
  // scraper racing the shutdown sees drained counters, not a reset.
  if (obs_server) obs_server->stop();

  if (!quiet) {
    std::printf(
        "\n%llu pushed, %llu consumed, %llu dropped (invariant %s), "
        "%llu alerts, %llu evicted, peak %zu entries\n",
        static_cast<unsigned long long>(stats.pushed),
        static_cast<unsigned long long>(stats.consumed),
        static_cast<unsigned long long>(stats.dropped),
        stats.invariant_ok() ? "ok" : "VIOLATED",
        static_cast<unsigned long long>(stats.alerts),
        static_cast<unsigned long long>(stats.evicted),
        stats.peak_open_entries);
  }

  const daemon::DaemonConfig& final_config = d.config();
  if (!final_config.stats_out.empty()) {
    const std::string json =
        stats.to_json(telemetry::to_json(registry.snapshot()));
    if (final_config.stats_out == "-") {
      std::printf("%s\n", json.c_str());
    } else {
      // Atomic publication: a scraper polling the stats file sees either
      // the previous complete snapshot or this one, never a torn write.
      std::string error;
      if (!util::write_file_atomic(final_config.stats_out, json + "\n",
                                   &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
    }
  }
  if (journal_ptr) {
    std::string error;
    if (!util::write_file_atomic(journal_out, journal.dump(), &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }

  return stats.invariant_ok() ? 0 : 3;
}
