// pipeline_stats: full telemetry dump of an offline detection run.
//
// Simulates one of the paper's Backbone traces with the metrics registry
// attached to the simulator (event dispatch, per-reason drops, ground-truth
// loop crossings), runs the offline detection pipeline over the tapped
// trace with the same registry (per-stage latency histograms, replica and
// stream counters, per-reason validation rejects), and dumps the entire
// registry as JSON — the observability surface every perf PR measures
// against.
//
// Usage: pipeline_stats [k]       (backbone scenario 1..4, default 1)
#include <cstdio>
#include <cstdlib>

#include "core/loop_detector.h"
#include "scenarios/backbone.h"
#include "telemetry/exporter.h"
#include "telemetry/registry.h"

using namespace rloop;

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 1;
  if (k < 1 || k > 4) {
    std::fprintf(stderr, "usage: pipeline_stats [1..4]\n");
    return 2;
  }

  telemetry::Registry registry;

  std::fprintf(stderr, "simulating Backbone %d ...\n", k);
  const auto run = scenarios::run_backbone(k, &registry);

  std::fprintf(stderr, "running detection pipeline (%zu packets) ...\n",
               run->trace().size());
  core::LoopDetectorConfig config;
  config.registry = &registry;
  const auto result = core::detect_loops(run->trace(), config);
  std::fprintf(stderr, "%zu loops detected on %zu validated streams\n\n",
               result.loops.size(), result.valid_streams.size());

  std::fputs(telemetry::to_json(registry.snapshot()).c_str(), stdout);
  return 0;
}
