// backbone_study: the paper's full measurement study on the four simulated
// backbone traces — Table I, Table II and the data behind Figures 2-9.
//
// Usage: backbone_study [--threads N] [--trace-out spans.json] [output_dir]
// When an output directory is given, each trace is written as a pcap file
// and every figure's data as CSV, for external re-plotting. --threads N
// runs detection through the sharded parallel pipeline (N worker threads);
// results are bit-identical to the default serial path. --trace-out writes
// every pipeline span (all four runs) as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Scenario mode (the ground-truth gate harness, also run by CI):
//   backbone_study --list-scenarios
//   backbone_study --scenario <name|all> [--seed N] [--json-out <dir>]
// Runs canned scenarios (scenarios/scenario.h), gates every detector path
// on 100% recall of tap-detectable loops and the pinned precision floors,
// checks serial == parallel{2,4} reports and daemon == streaming alerts,
// prints a summary table, writes per-scenario truth/alert JSON when
// --json-out is given, and exits non-zero when any gate fails.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/csv.h"
#include "analysis/table.h"
#include "core/impact.h"
#include "core/loop_detector.h"
#include "core/metrics.h"
#include "daemon/daemon.h"
#include "net/pcap.h"
#include "scenarios/backbone.h"
#include "scenarios/scenario.h"
#include "telemetry/trace.h"

using namespace rloop;

namespace {

void write_figures(const std::string& dir, int k,
                   const core::LoopDetectionResult& result) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  const std::string base = dir + "/backbone" + std::to_string(k);

  {
    analysis::CsvWriter csv(base + "_fig2_ttl_delta.csv", {"ttl_delta", "fraction"});
    const auto hist = core::ttl_delta_distribution(result.valid_streams);
    for (const auto& [delta, count] : hist.counts()) {
      csv.add_row({std::to_string(delta),
                   analysis::format_double(hist.fraction(delta), 4)});
    }
    csv.close();
  }
  auto dump_cdf = [&](const analysis::EmpiricalCdf& cdf,
                      const std::string& path, const std::string& x_name) {
    analysis::CsvWriter csv(path, {x_name, "cdf"});
    for (const auto& [x, f] : cdf.points(128)) {
      csv.add_row({analysis::format_double(x, 4), analysis::format_double(f, 4)});
    }
    csv.close();
  };
  dump_cdf(core::stream_size_cdf(result.valid_streams),
           base + "_fig3_stream_size.csv", "replicas");
  dump_cdf(core::spacing_cdf_ms(result.valid_streams),
           base + "_fig4_spacing_ms.csv", "spacing_ms");
  dump_cdf(core::stream_duration_cdf_ms(result.valid_streams),
           base + "_fig8_stream_duration_ms.csv", "duration_ms");
  dump_cdf(core::loop_duration_cdf_s(result.loops),
           base + "_fig9_loop_duration_s.csv", "duration_s");
  {
    analysis::CsvWriter csv(base + "_fig7_dst_timeseries.csv",
                            {"time_s", "dst_addr"});
    for (const auto& sample : core::dst_timeseries(result.valid_streams)) {
      csv.add_row({analysis::format_double(sample.time_s, 3),
                   sample.dst.to_string()});
    }
    csv.close();
  }
  {
    analysis::CsvWriter csv(base + "_fig5_fig6_type_mix.csv",
                            {"category", "all_fraction", "looped_fraction"});
    const auto all = core::traffic_type_mix(result.records);
    const auto looped =
        core::looped_type_mix(result.records, result.valid_streams);
    for (const auto& cat : core::kTrafficCategories) {
      csv.add_row({cat, analysis::format_double(all.fraction(cat), 4),
                   analysis::format_double(looped.fraction(cat), 4)});
    }
    csv.close();
  }
}

// Feeds the scenario's analysis trace through the full daemon (producer
// thread -> SPSC ring -> consumer) and returns the alert lines, which must
// match the in-process streaming path byte for byte.
std::vector<std::string> daemon_alert_lines(
    const scenarios::ScenarioRun& run) {
  daemon::DaemonConfig config;
  config.streaming = scenarios::scenario_streaming_config(run.spec);
  std::vector<std::string> lines;
  daemon::Daemon d(
      std::move(config),
      std::make_unique<daemon::ReplaySource>(&run.analysis_trace(),
                                             "scenario:" + run.spec.name, 0.0),
      [&](const core::LoopAlert& alert) {
        lines.push_back(scenarios::render_alert(alert));
      });
  const daemon::DaemonStats stats = d.run();
  if (!stats.invariant_ok() || stats.dropped != 0) {
    lines.push_back("<daemon accounting violation>");
  }
  return lines;
}

// Returns the number of failing scenarios (process exit code).
int run_scenario_mode(const std::string& which, std::uint64_t seed_override,
                      const std::string& json_dir) {
  std::vector<std::string> names;
  if (which == "all") {
    names = scenarios::canned_scenario_names();
  } else {
    names.push_back(which);
  }
  if (!json_dir.empty()) std::filesystem::create_directories(json_dir);

  analysis::TextTable table({"Scenario", "Truth", "Detectable", "Serial",
                             "Streaming", "Precision", "Recall", "Gates"});
  int failing = 0;
  for (const std::string& name : names) {
    scenarios::ScenarioSpec spec = scenarios::canned_scenario(name);
    if (seed_override != 0) spec.seed = seed_override;
    std::printf("running scenario %s seed=%llu (%s)\n", spec.name.c_str(),
                static_cast<unsigned long long>(spec.seed),
                spec.summary.c_str());
    const auto run = scenarios::run_scenario(spec);
    auto ev = scenarios::evaluate_scenario(*run);

    const auto* streaming = ev.find("streaming");
    if (daemon_alert_lines(*run) != streaming->lines) {
      ev.failures.push_back("daemon alert lines differ from streaming");
      ev.pass = false;
    }

    const auto* serial = ev.find("serial");
    table.add_row({spec.name, std::to_string(serial->score.truth_loops),
                   std::to_string(serial->score.detectable),
                   std::to_string(serial->score.reports),
                   std::to_string(streaming->score.reports),
                   analysis::format_double(serial->score.precision(), 4),
                   analysis::format_double(serial->score.recall(), 4),
                   ev.pass ? "pass" : "FAIL"});
    for (const std::string& failure : ev.failures) {
      std::printf("  gate failure: %s\n", failure.c_str());
    }
    if (!ev.pass) ++failing;

    if (!json_dir.empty()) {
      const std::string path = json_dir + "/" + spec.name + ".json";
      std::ofstream out(path);
      if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      out << ev.to_json() << "\n";
    }
  }
  std::printf("\nScenario gates (100%% recall of tap-detectable loops, "
              "pinned precision floors)\n");
  table.print(std::cout);
  if (!json_dir.empty()) {
    std::printf("per-scenario truth/alert JSON written to %s/\n",
                json_dir.c_str());
  }
  return failing;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  std::string trace_out;
  std::string scenario;
  std::string json_dir;
  std::uint64_t seed_override = 0;
  unsigned num_threads = 0;  // 0 = serial pipeline
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--threads requires a value\n");
        return 2;
      }
      num_threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--threads=", 0) == 0) {
      num_threads = static_cast<unsigned>(
          std::strtoul(arg.c_str() + std::string("--threads=").size(), nullptr,
                       10));
    } else if (arg == "--trace-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace-out requires a path\n");
        return 2;
      }
      trace_out = argv[++i];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::string("--trace-out=").size());
    } else if (arg == "--list-scenarios") {
      for (const std::string& name : scenarios::canned_scenario_names()) {
        std::printf("%-26s %s\n", name.c_str(),
                    scenarios::canned_scenario(name).summary.c_str());
      }
      return 0;
    } else if (arg == "--scenario") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--scenario requires a name (or 'all')\n");
        return 2;
      }
      scenario = argv[++i];
    } else if (arg.rfind("--scenario=", 0) == 0) {
      scenario = arg.substr(std::string("--scenario=").size());
    } else if (arg == "--seed") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--seed requires a value\n");
        return 2;
      }
      seed_override = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed_override =
          std::strtoull(arg.c_str() + std::string("--seed=").size(), nullptr,
                        10);
    } else if (arg == "--json-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json-out requires a directory\n");
        return 2;
      }
      json_dir = argv[++i];
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_dir = arg.substr(std::string("--json-out=").size());
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "unknown option %s\nusage: backbone_study [--threads N] "
                   "[--trace-out spans.json] [output_dir]\n"
                   "       backbone_study --list-scenarios\n"
                   "       backbone_study --scenario <name|all> [--seed N] "
                   "[--json-out <dir>]\n",
                   arg.c_str());
      return 2;
    } else {
      out_dir = arg;
    }
  }
  if (!scenario.empty()) {
    try {
      return run_scenario_mode(scenario, seed_override, json_dir);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  telemetry::TraceSink trace_sink;
  core::LoopDetectorConfig detector_config;
  detector_config.parallel.num_threads = num_threads;
  if (!trace_out.empty()) detector_config.trace = &trace_sink;
  if (num_threads > 0) {
    std::printf("parallel pipeline: %u threads (output identical to serial)\n",
                num_threads);
  }

  analysis::TextTable table1({"Trace", "Length (min)", "Avg BW (Mbps)",
                              "Packets", "Looped Packets"});
  analysis::TextTable table2(
      {"Trace", "Replica Streams", "Routing Loops", "Loops <10s",
       "Escape est.", "GT loops"});

  for (int k = 1; k <= 4; ++k) {
    std::printf("running %s ...\n", scenarios::backbone_spec(k).name.c_str());
    const auto run = scenarios::run_backbone(k);
    const net::Trace& trace = run->trace();
    const auto result = core::detect_loops(trace, detector_config);
    const auto impact = core::estimate_impact(result);
    const auto truth = run->truth_loops();

    table1.add_row({run->spec.name,
                    analysis::format_double(net::to_seconds(trace.duration()) / 60.0, 1),
                    analysis::format_double(trace.average_bandwidth_mbps(), 2),
                    std::to_string(trace.size()),
                    std::to_string(result.looped_packet_records())});

    std::uint64_t short_loops = 0;
    for (const auto& loop : result.loops) {
      if (loop.duration() < 10 * net::kSecond) ++short_loops;
    }
    table2.add_row(
        {run->spec.name, std::to_string(result.valid_streams.size()),
         std::to_string(result.loops.size()),
         result.loops.empty()
             ? "-"
             : analysis::format_percent(static_cast<double>(short_loops) /
                                        static_cast<double>(result.loops.size())),
         analysis::format_percent(impact.escape_fraction()),
         std::to_string(truth.size())});

    std::printf("  loops:");
    for (const auto& loop : result.loops) {
      std::printf(" %.2fs(d%d)", net::to_seconds(loop.duration()),
                  loop.ttl_delta);
    }
    std::printf("\n  truth:");
    for (std::size_t i = 0; i < truth.size() && i < 20; ++i) {
      std::printf(" %.2fs", net::to_seconds(truth[i].duration()));
    }
    std::printf("\n");

    if (!out_dir.empty()) {
      std::filesystem::create_directories(out_dir);
      net::write_pcap(trace, out_dir + "/backbone" + std::to_string(k) + ".pcap");
      write_figures(out_dir, k, result);
    }
  }

  std::printf("\nTable I: trace details\n");
  table1.print(std::cout);
  std::printf("\nTable II: replica streams vs merged routing loops\n");
  table2.print(std::cout);
  if (!out_dir.empty()) {
    std::printf("\npcap + figure CSVs written to %s/\n", out_dir.c_str());
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_out.c_str());
      return 1;
    }
    out << trace_sink.chrome_trace_json();
    std::printf("%zu pipeline spans written to %s (open in ui.perfetto.dev)\n",
                trace_sink.size(), trace_out.c_str());
  }
  return 0;
}
