// Quickstart: the paper's Figure 1 scenario, end to end.
//
// Three routers in a triangle. Prefix 203.0.113.0/24 normally exits at R
// (best egress) with R2 advertising an alternative route. A host behind R1
// streams UDP toward the prefix. At t = 2 s the R egress withdraws; R learns
// immediately, but R2 only learns after I-BGP propagation + MRAI delay.
// In that window R forwards prefix traffic to R2 (the new egress path) while
// R2 still forwards it to R — a transient two-router loop. A tap on the
// R -> R2 link records the replicas, and the detector reconstructs the loop.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/loop_detector.h"
#include "net/packet.h"
#include "net/time.h"
#include "routing/topology.h"
#include "sim/network.h"
#include "trafficgen/flow.h"
#include "util/random.h"

using namespace rloop;

int main() {
  // --- topology: Figure 1's three nodes -----------------------------------
  routing::Topology topo;
  const auto r = topo.add_node("R");    // border router, original egress
  const auto r1 = topo.add_node("R1");  // ingress (hosts behind it)
  const auto r2 = topo.add_node("R2");  // advertises the alternative route
  topo.add_link(r, r1, net::from_millis(0.5), 1e9, 200, 1);
  const auto r_r2 = topo.add_link(r, r2, net::from_millis(0.5), 1e9, 200, 1);
  topo.add_link(r1, r2, net::from_millis(0.5), 1e9, 200, 1);

  sim::NetworkConfig cfg;
  cfg.bgp.mrai_max = 3 * net::kSecond;  // R2 lags up to ~3 s behind R
  sim::Network network(std::move(topo), /*seed=*/42, cfg);

  // Prefix exits at R; R2 is the fallback. Sources live behind R1.
  const auto dst_prefix =
      *net::Prefix::parse("203.0.113.0/24");
  network.attach_external_route({dst_prefix, {r, r2}});
  const auto src_prefix = *net::Prefix::parse("198.51.100.0/24");
  network.attach_external_route({src_prefix, {r1}});
  network.install_all_routes();

  // Tap the R -> R2 link: the transient loop's cycle crosses it.
  const auto tap = network.add_tap(r_r2, r, "figure-1", 1'005'224'400);

  // --- traffic: a steady UDP stream into the prefix -----------------------
  util::Rng rng(7);
  trafficgen::FlowSpec flow;
  flow.type = trafficgen::FlowType::udp;
  flow.src = net::Ipv4Addr(198, 51, 100, 10);
  flow.dst = net::Ipv4Addr(203, 0, 113, 25);
  flow.src_port = 40000;
  flow.dst_port = 53;
  flow.packet_count = 4000;
  flow.start = net::kSecond;
  flow.mean_gap = net::kMillisecond;
  flow.initial_ttl = 64;
  flow.ingress = r1;
  trafficgen::emit_flow(network, flow, rng);

  // --- the event: R's external link fails at t = 2 s ----------------------
  network.withdraw_best_egress(dst_prefix, 2 * net::kSecond);

  network.run_until(10 * net::kSecond);

  // --- detection -----------------------------------------------------------
  const net::Trace& trace = network.tap_trace(tap);
  const auto result = core::detect_loops(trace);

  std::printf("tap captured            : %zu packets\n", trace.size());
  std::printf("replica streams (raw)   : %zu\n", result.raw_streams.size());
  std::printf("replica streams (valid) : %zu\n", result.valid_streams.size());
  std::printf("routing loops           : %zu\n", result.loops.size());
  std::printf("ground-truth crossings  : %llu\n",
              static_cast<unsigned long long>(network.stats().loop_crossings));

  for (const auto& loop : result.loops) {
    std::printf(
        "  loop on %-18s  start=%.3fs  duration=%.1fms  ttl_delta=%d  "
        "streams=%zu  replicas=%llu\n",
        loop.prefix24.to_string().c_str(), net::to_seconds(loop.start),
        net::to_millis(loop.duration()), loop.ttl_delta, loop.stream_count(),
        static_cast<unsigned long long>(loop.replica_count));
  }

  if (result.loops.empty()) {
    std::printf("no loop detected — unexpected for this scenario\n");
    return 1;
  }
  return 0;
}
