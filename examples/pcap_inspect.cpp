// pcap_inspect: offline trace triage CLI.
//
// Reads a pcap capture (RAW-IP or Ethernet, µs or ns, either byte order),
// prints the traffic-type mix (the paper's Figure 5 view), runs the full
// loop-detection pipeline and summarizes every routing loop, with detector
// thresholds exposed as flags and machine-readable exports.
//
// Usage:
//   pcap_inspect [options] <capture.pcap>
//   pcap_inspect --selftest            simulate, write and re-read a trace
//
// Options:
//   --min-replicas N      validation threshold (default 3, paper's value)
//   --min-ttl-delta N     replica TTL decrease threshold (default 2)
//   --merge-gap-s S       stream merge gap in seconds (default 60)
//   --json FILE           write the full result as JSON
//   --loops-csv FILE      write one CSV row per loop
//   --streams-csv FILE    write one CSV row per validated stream
//   --anonymize-to FILE   write a prefix-preserving anonymized pcap copy
//   --anonymize-key K     key for --anonymize-to (default 1)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/table.h"
#include "core/impact.h"
#include "core/loop_detector.h"
#include "core/metrics.h"
#include "core/report.h"
#include "net/anonymize.h"
#include "net/pcap.h"
#include "net/pcap_mmap.h"
#include "scenarios/backbone.h"

using namespace rloop;

namespace {

struct Options {
  std::string input;
  bool selftest = false;
  core::LoopDetectorConfig detector;
  std::string json_path;
  std::string loops_csv_path;
  std::string streams_csv_path;
  std::string anonymize_path;
  std::uint64_t anonymize_key = 1;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--min-replicas N] [--min-ttl-delta N] "
               "[--merge-gap-s S]\n"
               "          [--json F] [--loops-csv F] [--streams-csv F]\n"
               "          [--anonymize-to F [--anonymize-key K]]\n"
               "          <capture.pcap> | --selftest\n",
               argv0);
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options opts;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selftest") {
      opts.selftest = true;
    } else if (arg == "--min-replicas") {
      opts.detector.validator.min_replicas =
          static_cast<std::size_t>(std::strtoul(value(i), nullptr, 10));
    } else if (arg == "--min-ttl-delta") {
      opts.detector.detector.min_ttl_delta =
          static_cast<int>(std::strtol(value(i), nullptr, 10));
    } else if (arg == "--merge-gap-s") {
      opts.detector.merger.merge_gap =
          net::from_seconds(std::strtod(value(i), nullptr));
    } else if (arg == "--json") {
      opts.json_path = value(i);
    } else if (arg == "--loops-csv") {
      opts.loops_csv_path = value(i);
    } else if (arg == "--streams-csv") {
      opts.streams_csv_path = value(i);
    } else if (arg == "--anonymize-to") {
      opts.anonymize_path = value(i);
    } else if (arg == "--anonymize-key") {
      opts.anonymize_key = std::strtoull(value(i), nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else if (opts.input.empty()) {
      opts.input = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (opts.input.empty() && !opts.selftest) usage(argv[0]);
  return opts;
}

template <typename Fn>
bool write_file(const std::string& path, Fn&& fn) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  fn(out);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts = parse_options(argc, argv);

  if (opts.selftest) {
    auto spec = scenarios::backbone_spec(3);
    spec.duration = 90 * net::kSecond;
    auto run = scenarios::build_backbone(spec);
    scenarios::execute(*run);
    opts.input = (std::filesystem::temp_directory_path() /
                  "rloop_selftest.pcap")
                     .string();
    net::write_pcap(run->trace(), opts.input);
    std::printf("selftest: wrote %zu packets to %s\n", run->trace().size(),
                opts.input.c_str());
  }

  net::Trace trace;
  try {
    trace = net::read_pcap_fast(opts.input);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("trace    : %s\n", opts.input.c_str());
  std::printf("packets  : %zu (%.2f MB on the wire)\n", trace.size(),
              static_cast<double>(trace.total_wire_bytes()) / 1e6);
  std::printf("duration : %.1f s   avg %.2f Mbps\n\n",
              net::to_seconds(trace.duration()),
              trace.average_bandwidth_mbps());

  const auto result = core::detect_loops(trace, opts.detector);

  analysis::TextTable mix({"Type", "All traffic", "Looped traffic"});
  const auto all = core::traffic_type_mix(result.records);
  const auto looped = core::looped_type_mix(result.records, result.valid_streams);
  for (const auto& cat : core::kTrafficCategories) {
    mix.add_row({cat, analysis::format_percent(all.fraction(cat)),
                 looped.total() ? analysis::format_percent(looped.fraction(cat))
                                : "-"});
  }
  mix.print(std::cout);

  std::printf("\nmalformed records : %llu\n",
              static_cast<unsigned long long>(result.parse_failures));
  std::printf("replica streams   : %zu raw, %zu validated\n",
              result.raw_streams.size(), result.valid_streams.size());
  std::printf("routing loops     : %zu\n\n", result.loops.size());

  if (!result.loops.empty()) {
    analysis::TextTable loops(
        {"Prefix", "Start (s)", "Duration", "TTL delta", "Streams", "Replicas"});
    for (const auto& loop : result.loops) {
      loops.add_row({loop.prefix24.to_string(),
                     analysis::format_double(net::to_seconds(loop.start), 3),
                     analysis::format_double(net::to_seconds(loop.duration()), 3) + "s",
                     std::to_string(loop.ttl_delta),
                     std::to_string(loop.stream_count()),
                     std::to_string(loop.replica_count)});
    }
    loops.print(std::cout);

    const auto impact = core::estimate_impact(result);
    std::printf(
        "\nimpact: %llu looped packets expired in loops; %.1f%% of caught "
        "packets may have escaped\n",
        static_cast<unsigned long long>(impact.loop_loss_per_minute.total()),
        impact.escape_fraction() * 100.0);
  }

  // Machine-readable exports.
  bool ok = true;
  if (!opts.json_path.empty()) {
    core::ReportOptions report;
    report.trace_name = trace.link_name();
    report.trace_epoch_unix_s = trace.epoch_unix_s();
    ok &= write_file(opts.json_path, [&](std::ostream& os) {
      core::write_json_report(os, result, report);
    });
    if (ok) std::printf("json report       : %s\n", opts.json_path.c_str());
  }
  if (!opts.loops_csv_path.empty()) {
    ok &= write_file(opts.loops_csv_path, [&](std::ostream& os) {
      core::write_loops_csv(os, result);
    });
  }
  if (!opts.streams_csv_path.empty()) {
    ok &= write_file(opts.streams_csv_path, [&](std::ostream& os) {
      core::write_streams_csv(os, result);
    });
  }
  if (!opts.anonymize_path.empty()) {
    try {
      const net::Anonymizer anonymizer(opts.anonymize_key);
      net::write_pcap(anonymizer.anonymize(trace), opts.anonymize_path);
      std::printf("anonymized pcap   : %s\n", opts.anonymize_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
