// loop_forensics: the operator's post-mortem view.
//
// Simulates Backbone 2, detects loops in its tapped trace, classifies each
// as transient or persistent, and — using the control-plane feed the paper
// proposed collecting as future work — prints WHY each loop happened (which
// withdrawal/failure, and how long convergence took to reach the monitored
// link). Also demonstrates prefix-preserving anonymization: the analysis is
// re-run on an anonymized copy of the trace and shown to be unchanged.
//
// Usage: loop_forensics
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "core/classify.h"
#include "core/loop_detector.h"
#include "correlate/correlate.h"
#include "net/anonymize.h"
#include "scenarios/backbone.h"

using namespace rloop;

int main() {
  std::printf("simulating Backbone 2 ...\n");
  auto run = scenarios::run_backbone(2);
  const net::Trace& trace = run->trace();

  const auto result = core::detect_loops(trace);
  const auto classified = core::classify_loops(
      result.loops, trace.empty() ? 0 : trace.records().back().ts);
  const auto explanations =
      correlate::explain_loops(result.loops, run->network->control_log());

  std::printf("%zu packets captured, %zu replica streams, %zu loops\n\n",
              trace.size(), result.valid_streams.size(), result.loops.size());

  analysis::TextTable table({"#", "Prefix", "Start", "Duration", "Delta",
                             "Class", "Cause", "Onset"});
  for (std::size_t i = 0; i < result.loops.size(); ++i) {
    const auto& loop = result.loops[i];
    const auto& ex = explanations[i];
    table.add_row(
        {std::to_string(i),
         loop.prefix24.to_string(),
         analysis::format_double(net::to_seconds(loop.start), 1) + "s",
         analysis::format_double(net::to_seconds(loop.duration()), 2) + "s",
         std::to_string(loop.ttl_delta),
         classified.classes[i] == core::LoopClass::persistent ? "persistent"
                                                              : "transient",
         correlate::cause_name(ex.cause),
         ex.cause == correlate::Cause::unexplained
             ? "-"
             : analysis::format_double(net::to_seconds(ex.onset_latency), 2) +
                   "s"});
  }
  table.print(std::cout);

  const auto summary = correlate::summarize(explanations);
  std::printf("\nexplained from routing data: %s (mean onset %.2f s)\n",
              analysis::format_percent(summary.explained_fraction()).c_str(),
              summary.mean_onset_latency_s);

  // Anonymization demo: identical analysis on a shareable trace.
  std::printf("\nanonymizing trace (prefix-preserving) and re-running ...\n");
  const net::Anonymizer anonymizer(0x5eed);
  const auto anon_result = core::detect_loops(anonymizer.anonymize(trace));
  std::printf("anonymized trace: %zu streams, %zu loops (%s original)\n",
              anon_result.valid_streams.size(), anon_result.loops.size(),
              anon_result.loops.size() == result.loops.size() &&
                      anon_result.valid_streams.size() ==
                          result.valid_streams.size()
                  ? "matches"
                  : "DIFFERS FROM");
  return 0;
}
