// loop_forensics: the operator's post-mortem view.
//
// Simulates Backbone 2 (or reads a pcap when a path is given), detects loops
// in the trace, classifies each as transient or persistent, and — using the
// control-plane feed the paper proposed collecting as future work — prints
// WHY each loop happened (which withdrawal/failure, and how long convergence
// took to reach the monitored link). Also demonstrates prefix-preserving
// anonymization: the analysis is re-run on an anonymized copy of the trace
// and shown to be unchanged.
//
// Usage: loop_forensics [--threads N] [--explain PREFIX] [trace.pcap]
//   --threads N       run detection on the sharded parallel pipeline
//   --explain PREFIX  print the decision journal's causal chain for one /24
//                     ("198.96.38.0/24" or a bare address inside it): every
//                     replica match, validation verdict and merge decision,
//                     with its typed reason and evidence
// With a pcap argument the correlation and anonymization sections are
// skipped (they need the simulator's ground truth).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "analysis/table.h"
#include "core/classify.h"
#include "core/loop_detector.h"
#include "correlate/correlate.h"
#include "net/anonymize.h"
#include "net/pcap_mmap.h"
#include "scenarios/backbone.h"
#include "telemetry/decision_log.h"

using namespace rloop;

int main(int argc, char** argv) {
  unsigned num_threads = 0;  // 0 = serial pipeline
  std::string explain_arg;
  std::string pcap_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--threads requires a value\n");
        return 2;
      }
      num_threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--threads=", 0) == 0) {
      num_threads = static_cast<unsigned>(
          std::strtoul(arg.c_str() + std::string("--threads=").size(), nullptr,
                       10));
    } else if (arg == "--explain") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--explain requires a prefix\n");
        return 2;
      }
      explain_arg = argv[++i];
    } else if (arg.rfind("--explain=", 0) == 0) {
      explain_arg = arg.substr(std::string("--explain=").size());
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "unknown option %s\nusage: loop_forensics [--threads N] "
                   "[--explain PREFIX] [trace.pcap]\n",
                   arg.c_str());
      return 2;
    } else {
      pcap_path = arg;
    }
  }

  // A bare address means "the /24 containing it".
  std::optional<net::Prefix> explain_prefix;
  if (!explain_arg.empty()) {
    explain_prefix = net::Prefix::parse(
        explain_arg.find('/') == std::string::npos ? explain_arg + "/24"
                                                   : explain_arg);
    if (!explain_prefix) {
      std::fprintf(stderr, "--explain: cannot parse prefix '%s'\n",
                   explain_arg.c_str());
      return 2;
    }
    if (explain_prefix->len != 24) {
      std::fprintf(stderr, "--explain: want a /24, got %s\n",
                   explain_prefix->to_string().c_str());
      return 2;
    }
  }

  std::unique_ptr<scenarios::BackboneRun> run;
  net::Trace loaded;
  if (pcap_path.empty()) {
    std::printf("simulating Backbone 2 ...\n");
    run = scenarios::run_backbone(2);
  } else {
    std::printf("reading %s ...\n", pcap_path.c_str());
    loaded = net::read_pcap_fast(pcap_path);
  }
  const net::Trace& trace = run ? run->trace() : loaded;

  // The journal is always attached: forensics is exactly the workload the
  // flight recorder exists for.
  telemetry::DecisionLog journal;
  core::LoopDetectorConfig detector_config;
  detector_config.parallel.num_threads = num_threads;
  detector_config.journal = &journal;
  if (num_threads > 0) {
    std::printf("parallel pipeline: %u threads (output identical to serial)\n",
                num_threads);
  }

  const auto result = core::detect_loops(trace, detector_config);
  const auto classified = core::classify_loops(
      result.loops, trace.empty() ? 0 : trace.records().back().ts);

  std::printf("%zu packets captured, %zu replica streams, %zu loops\n\n",
              trace.size(), result.valid_streams.size(), result.loops.size());

  if (run) {
    const auto explanations =
        correlate::explain_loops(result.loops, run->network->control_log());

    analysis::TextTable table({"#", "Prefix", "Start", "Duration", "Delta",
                               "Class", "Cause", "Onset"});
    for (std::size_t i = 0; i < result.loops.size(); ++i) {
      const auto& loop = result.loops[i];
      const auto& ex = explanations[i];
      table.add_row(
          {std::to_string(i),
           loop.prefix24.to_string(),
           analysis::format_double(net::to_seconds(loop.start), 1) + "s",
           analysis::format_double(net::to_seconds(loop.duration()), 2) + "s",
           std::to_string(loop.ttl_delta),
           classified.classes[i] == core::LoopClass::persistent ? "persistent"
                                                                : "transient",
           correlate::cause_name(ex.cause),
           ex.cause == correlate::Cause::unexplained
               ? "-"
               : analysis::format_double(net::to_seconds(ex.onset_latency), 2) +
                     "s"});
    }
    table.print(std::cout);

    const auto summary = correlate::summarize(explanations);
    std::printf("\nexplained from routing data: %s (mean onset %.2f s)\n",
                analysis::format_percent(summary.explained_fraction()).c_str(),
                summary.mean_onset_latency_s);
  } else {
    analysis::TextTable table(
        {"#", "Prefix", "Start", "Duration", "Delta", "Class"});
    for (std::size_t i = 0; i < result.loops.size(); ++i) {
      const auto& loop = result.loops[i];
      table.add_row(
          {std::to_string(i),
           loop.prefix24.to_string(),
           analysis::format_double(net::to_seconds(loop.start), 1) + "s",
           analysis::format_double(net::to_seconds(loop.duration()), 2) + "s",
           std::to_string(loop.ttl_delta),
           classified.classes[i] == core::LoopClass::persistent
               ? "persistent"
               : "transient"});
    }
    table.print(std::cout);
  }

  if (explain_prefix) {
    std::printf("\n");
    std::fputs(journal.explain(*explain_prefix).c_str(), stdout);
  }

  if (run && !explain_prefix) {
    // Anonymization demo: identical analysis on a shareable trace.
    std::printf("\nanonymizing trace (prefix-preserving) and re-running ...\n");
    const net::Anonymizer anonymizer(0x5eed);
    const auto anon_result = core::detect_loops(anonymizer.anonymize(trace));
    std::printf("anonymized trace: %zu streams, %zu loops (%s original)\n",
                anon_result.valid_streams.size(), anon_result.loops.size(),
                anon_result.loops.size() == result.loops.size() &&
                        anon_result.valid_streams.size() ==
                            result.valid_streams.size()
                    ? "matches"
                    : "DIFFERS FROM");
  }
  return 0;
}
