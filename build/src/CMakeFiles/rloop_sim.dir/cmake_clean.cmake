file(REMOVE_RECURSE
  "CMakeFiles/rloop_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/rloop_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/rloop_sim.dir/sim/failure.cc.o"
  "CMakeFiles/rloop_sim.dir/sim/failure.cc.o.d"
  "CMakeFiles/rloop_sim.dir/sim/link.cc.o"
  "CMakeFiles/rloop_sim.dir/sim/link.cc.o.d"
  "CMakeFiles/rloop_sim.dir/sim/network.cc.o"
  "CMakeFiles/rloop_sim.dir/sim/network.cc.o.d"
  "CMakeFiles/rloop_sim.dir/sim/router.cc.o"
  "CMakeFiles/rloop_sim.dir/sim/router.cc.o.d"
  "librloop_sim.a"
  "librloop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rloop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
