# Empty compiler generated dependencies file for rloop_sim.
# This may be replaced when dependencies are built.
