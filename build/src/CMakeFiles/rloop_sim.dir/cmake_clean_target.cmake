file(REMOVE_RECURSE
  "librloop_sim.a"
)
