
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/rloop_sim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/rloop_sim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/failure.cc" "src/CMakeFiles/rloop_sim.dir/sim/failure.cc.o" "gcc" "src/CMakeFiles/rloop_sim.dir/sim/failure.cc.o.d"
  "/root/repo/src/sim/link.cc" "src/CMakeFiles/rloop_sim.dir/sim/link.cc.o" "gcc" "src/CMakeFiles/rloop_sim.dir/sim/link.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/rloop_sim.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/rloop_sim.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/router.cc" "src/CMakeFiles/rloop_sim.dir/sim/router.cc.o" "gcc" "src/CMakeFiles/rloop_sim.dir/sim/router.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rloop_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rloop_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
