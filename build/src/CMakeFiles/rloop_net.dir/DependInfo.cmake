
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/anonymize.cc" "src/CMakeFiles/rloop_net.dir/net/anonymize.cc.o" "gcc" "src/CMakeFiles/rloop_net.dir/net/anonymize.cc.o.d"
  "/root/repo/src/net/checksum.cc" "src/CMakeFiles/rloop_net.dir/net/checksum.cc.o" "gcc" "src/CMakeFiles/rloop_net.dir/net/checksum.cc.o.d"
  "/root/repo/src/net/ipv4.cc" "src/CMakeFiles/rloop_net.dir/net/ipv4.cc.o" "gcc" "src/CMakeFiles/rloop_net.dir/net/ipv4.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/CMakeFiles/rloop_net.dir/net/packet.cc.o" "gcc" "src/CMakeFiles/rloop_net.dir/net/packet.cc.o.d"
  "/root/repo/src/net/pcap.cc" "src/CMakeFiles/rloop_net.dir/net/pcap.cc.o" "gcc" "src/CMakeFiles/rloop_net.dir/net/pcap.cc.o.d"
  "/root/repo/src/net/prefix.cc" "src/CMakeFiles/rloop_net.dir/net/prefix.cc.o" "gcc" "src/CMakeFiles/rloop_net.dir/net/prefix.cc.o.d"
  "/root/repo/src/net/trace.cc" "src/CMakeFiles/rloop_net.dir/net/trace.cc.o" "gcc" "src/CMakeFiles/rloop_net.dir/net/trace.cc.o.d"
  "/root/repo/src/net/transport.cc" "src/CMakeFiles/rloop_net.dir/net/transport.cc.o" "gcc" "src/CMakeFiles/rloop_net.dir/net/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
