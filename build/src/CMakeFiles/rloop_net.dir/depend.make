# Empty dependencies file for rloop_net.
# This may be replaced when dependencies are built.
