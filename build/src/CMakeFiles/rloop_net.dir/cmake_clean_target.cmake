file(REMOVE_RECURSE
  "librloop_net.a"
)
