file(REMOVE_RECURSE
  "CMakeFiles/rloop_net.dir/net/anonymize.cc.o"
  "CMakeFiles/rloop_net.dir/net/anonymize.cc.o.d"
  "CMakeFiles/rloop_net.dir/net/checksum.cc.o"
  "CMakeFiles/rloop_net.dir/net/checksum.cc.o.d"
  "CMakeFiles/rloop_net.dir/net/ipv4.cc.o"
  "CMakeFiles/rloop_net.dir/net/ipv4.cc.o.d"
  "CMakeFiles/rloop_net.dir/net/packet.cc.o"
  "CMakeFiles/rloop_net.dir/net/packet.cc.o.d"
  "CMakeFiles/rloop_net.dir/net/pcap.cc.o"
  "CMakeFiles/rloop_net.dir/net/pcap.cc.o.d"
  "CMakeFiles/rloop_net.dir/net/prefix.cc.o"
  "CMakeFiles/rloop_net.dir/net/prefix.cc.o.d"
  "CMakeFiles/rloop_net.dir/net/trace.cc.o"
  "CMakeFiles/rloop_net.dir/net/trace.cc.o.d"
  "CMakeFiles/rloop_net.dir/net/transport.cc.o"
  "CMakeFiles/rloop_net.dir/net/transport.cc.o.d"
  "librloop_net.a"
  "librloop_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rloop_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
