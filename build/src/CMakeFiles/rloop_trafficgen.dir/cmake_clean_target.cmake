file(REMOVE_RECURSE
  "librloop_trafficgen.a"
)
