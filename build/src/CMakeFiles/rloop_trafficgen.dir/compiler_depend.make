# Empty compiler generated dependencies file for rloop_trafficgen.
# This may be replaced when dependencies are built.
