file(REMOVE_RECURSE
  "CMakeFiles/rloop_trafficgen.dir/trafficgen/address_model.cc.o"
  "CMakeFiles/rloop_trafficgen.dir/trafficgen/address_model.cc.o.d"
  "CMakeFiles/rloop_trafficgen.dir/trafficgen/flow.cc.o"
  "CMakeFiles/rloop_trafficgen.dir/trafficgen/flow.cc.o.d"
  "CMakeFiles/rloop_trafficgen.dir/trafficgen/ttl_model.cc.o"
  "CMakeFiles/rloop_trafficgen.dir/trafficgen/ttl_model.cc.o.d"
  "CMakeFiles/rloop_trafficgen.dir/trafficgen/workload.cc.o"
  "CMakeFiles/rloop_trafficgen.dir/trafficgen/workload.cc.o.d"
  "librloop_trafficgen.a"
  "librloop_trafficgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rloop_trafficgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
