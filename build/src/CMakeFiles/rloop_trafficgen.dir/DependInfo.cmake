
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trafficgen/address_model.cc" "src/CMakeFiles/rloop_trafficgen.dir/trafficgen/address_model.cc.o" "gcc" "src/CMakeFiles/rloop_trafficgen.dir/trafficgen/address_model.cc.o.d"
  "/root/repo/src/trafficgen/flow.cc" "src/CMakeFiles/rloop_trafficgen.dir/trafficgen/flow.cc.o" "gcc" "src/CMakeFiles/rloop_trafficgen.dir/trafficgen/flow.cc.o.d"
  "/root/repo/src/trafficgen/ttl_model.cc" "src/CMakeFiles/rloop_trafficgen.dir/trafficgen/ttl_model.cc.o" "gcc" "src/CMakeFiles/rloop_trafficgen.dir/trafficgen/ttl_model.cc.o.d"
  "/root/repo/src/trafficgen/workload.cc" "src/CMakeFiles/rloop_trafficgen.dir/trafficgen/workload.cc.o" "gcc" "src/CMakeFiles/rloop_trafficgen.dir/trafficgen/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rloop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rloop_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rloop_routing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
