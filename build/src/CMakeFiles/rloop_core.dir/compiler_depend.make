# Empty compiler generated dependencies file for rloop_core.
# This may be replaced when dependencies are built.
