file(REMOVE_RECURSE
  "librloop_core.a"
)
