file(REMOVE_RECURSE
  "CMakeFiles/rloop_core.dir/core/classify.cc.o"
  "CMakeFiles/rloop_core.dir/core/classify.cc.o.d"
  "CMakeFiles/rloop_core.dir/core/impact.cc.o"
  "CMakeFiles/rloop_core.dir/core/impact.cc.o.d"
  "CMakeFiles/rloop_core.dir/core/loop_detector.cc.o"
  "CMakeFiles/rloop_core.dir/core/loop_detector.cc.o.d"
  "CMakeFiles/rloop_core.dir/core/metrics.cc.o"
  "CMakeFiles/rloop_core.dir/core/metrics.cc.o.d"
  "CMakeFiles/rloop_core.dir/core/prefix_index.cc.o"
  "CMakeFiles/rloop_core.dir/core/prefix_index.cc.o.d"
  "CMakeFiles/rloop_core.dir/core/record.cc.o"
  "CMakeFiles/rloop_core.dir/core/record.cc.o.d"
  "CMakeFiles/rloop_core.dir/core/replica_detector.cc.o"
  "CMakeFiles/rloop_core.dir/core/replica_detector.cc.o.d"
  "CMakeFiles/rloop_core.dir/core/replica_key.cc.o"
  "CMakeFiles/rloop_core.dir/core/replica_key.cc.o.d"
  "CMakeFiles/rloop_core.dir/core/report.cc.o"
  "CMakeFiles/rloop_core.dir/core/report.cc.o.d"
  "CMakeFiles/rloop_core.dir/core/stream_merger.cc.o"
  "CMakeFiles/rloop_core.dir/core/stream_merger.cc.o.d"
  "CMakeFiles/rloop_core.dir/core/stream_validator.cc.o"
  "CMakeFiles/rloop_core.dir/core/stream_validator.cc.o.d"
  "CMakeFiles/rloop_core.dir/core/streaming_detector.cc.o"
  "CMakeFiles/rloop_core.dir/core/streaming_detector.cc.o.d"
  "librloop_core.a"
  "librloop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rloop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
