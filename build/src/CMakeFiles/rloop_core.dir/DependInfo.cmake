
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classify.cc" "src/CMakeFiles/rloop_core.dir/core/classify.cc.o" "gcc" "src/CMakeFiles/rloop_core.dir/core/classify.cc.o.d"
  "/root/repo/src/core/impact.cc" "src/CMakeFiles/rloop_core.dir/core/impact.cc.o" "gcc" "src/CMakeFiles/rloop_core.dir/core/impact.cc.o.d"
  "/root/repo/src/core/loop_detector.cc" "src/CMakeFiles/rloop_core.dir/core/loop_detector.cc.o" "gcc" "src/CMakeFiles/rloop_core.dir/core/loop_detector.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/rloop_core.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/rloop_core.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/prefix_index.cc" "src/CMakeFiles/rloop_core.dir/core/prefix_index.cc.o" "gcc" "src/CMakeFiles/rloop_core.dir/core/prefix_index.cc.o.d"
  "/root/repo/src/core/record.cc" "src/CMakeFiles/rloop_core.dir/core/record.cc.o" "gcc" "src/CMakeFiles/rloop_core.dir/core/record.cc.o.d"
  "/root/repo/src/core/replica_detector.cc" "src/CMakeFiles/rloop_core.dir/core/replica_detector.cc.o" "gcc" "src/CMakeFiles/rloop_core.dir/core/replica_detector.cc.o.d"
  "/root/repo/src/core/replica_key.cc" "src/CMakeFiles/rloop_core.dir/core/replica_key.cc.o" "gcc" "src/CMakeFiles/rloop_core.dir/core/replica_key.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/rloop_core.dir/core/report.cc.o" "gcc" "src/CMakeFiles/rloop_core.dir/core/report.cc.o.d"
  "/root/repo/src/core/stream_merger.cc" "src/CMakeFiles/rloop_core.dir/core/stream_merger.cc.o" "gcc" "src/CMakeFiles/rloop_core.dir/core/stream_merger.cc.o.d"
  "/root/repo/src/core/stream_validator.cc" "src/CMakeFiles/rloop_core.dir/core/stream_validator.cc.o" "gcc" "src/CMakeFiles/rloop_core.dir/core/stream_validator.cc.o.d"
  "/root/repo/src/core/streaming_detector.cc" "src/CMakeFiles/rloop_core.dir/core/streaming_detector.cc.o" "gcc" "src/CMakeFiles/rloop_core.dir/core/streaming_detector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rloop_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rloop_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
