# Empty compiler generated dependencies file for rloop_scenarios.
# This may be replaced when dependencies are built.
