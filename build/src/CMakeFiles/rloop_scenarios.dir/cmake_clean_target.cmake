file(REMOVE_RECURSE
  "librloop_scenarios.a"
)
