file(REMOVE_RECURSE
  "CMakeFiles/rloop_scenarios.dir/scenarios/backbone.cc.o"
  "CMakeFiles/rloop_scenarios.dir/scenarios/backbone.cc.o.d"
  "CMakeFiles/rloop_scenarios.dir/scenarios/random_backbone.cc.o"
  "CMakeFiles/rloop_scenarios.dir/scenarios/random_backbone.cc.o.d"
  "librloop_scenarios.a"
  "librloop_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rloop_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
