# Empty compiler generated dependencies file for rloop_routing.
# This may be replaced when dependencies are built.
