file(REMOVE_RECURSE
  "CMakeFiles/rloop_routing.dir/routing/bgp_lite.cc.o"
  "CMakeFiles/rloop_routing.dir/routing/bgp_lite.cc.o.d"
  "CMakeFiles/rloop_routing.dir/routing/link_state.cc.o"
  "CMakeFiles/rloop_routing.dir/routing/link_state.cc.o.d"
  "CMakeFiles/rloop_routing.dir/routing/lpm_trie.cc.o"
  "CMakeFiles/rloop_routing.dir/routing/lpm_trie.cc.o.d"
  "CMakeFiles/rloop_routing.dir/routing/topology.cc.o"
  "CMakeFiles/rloop_routing.dir/routing/topology.cc.o.d"
  "librloop_routing.a"
  "librloop_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rloop_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
