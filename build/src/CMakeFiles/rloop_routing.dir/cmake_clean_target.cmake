file(REMOVE_RECURSE
  "librloop_routing.a"
)
