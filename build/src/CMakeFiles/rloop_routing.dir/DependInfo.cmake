
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/bgp_lite.cc" "src/CMakeFiles/rloop_routing.dir/routing/bgp_lite.cc.o" "gcc" "src/CMakeFiles/rloop_routing.dir/routing/bgp_lite.cc.o.d"
  "/root/repo/src/routing/link_state.cc" "src/CMakeFiles/rloop_routing.dir/routing/link_state.cc.o" "gcc" "src/CMakeFiles/rloop_routing.dir/routing/link_state.cc.o.d"
  "/root/repo/src/routing/lpm_trie.cc" "src/CMakeFiles/rloop_routing.dir/routing/lpm_trie.cc.o" "gcc" "src/CMakeFiles/rloop_routing.dir/routing/lpm_trie.cc.o.d"
  "/root/repo/src/routing/topology.cc" "src/CMakeFiles/rloop_routing.dir/routing/topology.cc.o" "gcc" "src/CMakeFiles/rloop_routing.dir/routing/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rloop_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
