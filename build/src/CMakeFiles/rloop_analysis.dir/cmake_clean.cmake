file(REMOVE_RECURSE
  "CMakeFiles/rloop_analysis.dir/analysis/cdf.cc.o"
  "CMakeFiles/rloop_analysis.dir/analysis/cdf.cc.o.d"
  "CMakeFiles/rloop_analysis.dir/analysis/csv.cc.o"
  "CMakeFiles/rloop_analysis.dir/analysis/csv.cc.o.d"
  "CMakeFiles/rloop_analysis.dir/analysis/histogram.cc.o"
  "CMakeFiles/rloop_analysis.dir/analysis/histogram.cc.o.d"
  "CMakeFiles/rloop_analysis.dir/analysis/stats.cc.o"
  "CMakeFiles/rloop_analysis.dir/analysis/stats.cc.o.d"
  "CMakeFiles/rloop_analysis.dir/analysis/table.cc.o"
  "CMakeFiles/rloop_analysis.dir/analysis/table.cc.o.d"
  "librloop_analysis.a"
  "librloop_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rloop_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
