file(REMOVE_RECURSE
  "librloop_analysis.a"
)
