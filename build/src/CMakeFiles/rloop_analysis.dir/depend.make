# Empty dependencies file for rloop_analysis.
# This may be replaced when dependencies are built.
