
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cdf.cc" "src/CMakeFiles/rloop_analysis.dir/analysis/cdf.cc.o" "gcc" "src/CMakeFiles/rloop_analysis.dir/analysis/cdf.cc.o.d"
  "/root/repo/src/analysis/csv.cc" "src/CMakeFiles/rloop_analysis.dir/analysis/csv.cc.o" "gcc" "src/CMakeFiles/rloop_analysis.dir/analysis/csv.cc.o.d"
  "/root/repo/src/analysis/histogram.cc" "src/CMakeFiles/rloop_analysis.dir/analysis/histogram.cc.o" "gcc" "src/CMakeFiles/rloop_analysis.dir/analysis/histogram.cc.o.d"
  "/root/repo/src/analysis/stats.cc" "src/CMakeFiles/rloop_analysis.dir/analysis/stats.cc.o" "gcc" "src/CMakeFiles/rloop_analysis.dir/analysis/stats.cc.o.d"
  "/root/repo/src/analysis/table.cc" "src/CMakeFiles/rloop_analysis.dir/analysis/table.cc.o" "gcc" "src/CMakeFiles/rloop_analysis.dir/analysis/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
