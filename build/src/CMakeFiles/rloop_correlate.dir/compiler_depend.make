# Empty compiler generated dependencies file for rloop_correlate.
# This may be replaced when dependencies are built.
