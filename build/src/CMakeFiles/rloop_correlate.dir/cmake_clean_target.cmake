file(REMOVE_RECURSE
  "librloop_correlate.a"
)
