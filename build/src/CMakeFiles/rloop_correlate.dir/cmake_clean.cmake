file(REMOVE_RECURSE
  "CMakeFiles/rloop_correlate.dir/correlate/correlate.cc.o"
  "CMakeFiles/rloop_correlate.dir/correlate/correlate.cc.o.d"
  "librloop_correlate.a"
  "librloop_correlate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rloop_correlate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
