# Empty dependencies file for rloop_baseline.
# This may be replaced when dependencies are built.
