file(REMOVE_RECURSE
  "CMakeFiles/rloop_baseline.dir/baseline/comparison.cc.o"
  "CMakeFiles/rloop_baseline.dir/baseline/comparison.cc.o.d"
  "CMakeFiles/rloop_baseline.dir/baseline/prober.cc.o"
  "CMakeFiles/rloop_baseline.dir/baseline/prober.cc.o.d"
  "librloop_baseline.a"
  "librloop_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rloop_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
