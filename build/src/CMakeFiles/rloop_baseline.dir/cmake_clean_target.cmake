file(REMOVE_RECURSE
  "librloop_baseline.a"
)
