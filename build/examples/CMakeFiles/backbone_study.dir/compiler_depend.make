# Empty compiler generated dependencies file for backbone_study.
# This may be replaced when dependencies are built.
