file(REMOVE_RECURSE
  "CMakeFiles/backbone_study.dir/backbone_study.cpp.o"
  "CMakeFiles/backbone_study.dir/backbone_study.cpp.o.d"
  "backbone_study"
  "backbone_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backbone_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
