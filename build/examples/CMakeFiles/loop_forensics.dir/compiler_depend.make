# Empty compiler generated dependencies file for loop_forensics.
# This may be replaced when dependencies are built.
