file(REMOVE_RECURSE
  "CMakeFiles/loop_forensics.dir/loop_forensics.cpp.o"
  "CMakeFiles/loop_forensics.dir/loop_forensics.cpp.o.d"
  "loop_forensics"
  "loop_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
