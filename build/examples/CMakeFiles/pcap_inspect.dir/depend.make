# Empty dependencies file for pcap_inspect.
# This may be replaced when dependencies are built.
