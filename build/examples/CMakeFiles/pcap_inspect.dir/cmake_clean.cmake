file(REMOVE_RECURSE
  "CMakeFiles/pcap_inspect.dir/pcap_inspect.cpp.o"
  "CMakeFiles/pcap_inspect.dir/pcap_inspect.cpp.o.d"
  "pcap_inspect"
  "pcap_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
