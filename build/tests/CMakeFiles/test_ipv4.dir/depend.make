# Empty dependencies file for test_ipv4.
# This may be replaced when dependencies are built.
