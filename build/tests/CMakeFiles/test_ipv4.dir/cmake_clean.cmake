file(REMOVE_RECURSE
  "CMakeFiles/test_ipv4.dir/test_ipv4.cc.o"
  "CMakeFiles/test_ipv4.dir/test_ipv4.cc.o.d"
  "test_ipv4"
  "test_ipv4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ipv4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
