# Empty dependencies file for test_impact.
# This may be replaced when dependencies are built.
