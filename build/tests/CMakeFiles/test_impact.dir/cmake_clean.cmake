file(REMOVE_RECURSE
  "CMakeFiles/test_impact.dir/test_impact.cc.o"
  "CMakeFiles/test_impact.dir/test_impact.cc.o.d"
  "test_impact"
  "test_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
