file(REMOVE_RECURSE
  "CMakeFiles/test_spf.dir/test_spf.cc.o"
  "CMakeFiles/test_spf.dir/test_spf.cc.o.d"
  "test_spf"
  "test_spf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
