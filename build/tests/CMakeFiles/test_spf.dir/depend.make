# Empty dependencies file for test_spf.
# This may be replaced when dependencies are built.
