file(REMOVE_RECURSE
  "CMakeFiles/test_lpm.dir/test_lpm.cc.o"
  "CMakeFiles/test_lpm.dir/test_lpm.cc.o.d"
  "test_lpm"
  "test_lpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
