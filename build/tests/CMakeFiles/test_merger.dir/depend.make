# Empty dependencies file for test_merger.
# This may be replaced when dependencies are built.
