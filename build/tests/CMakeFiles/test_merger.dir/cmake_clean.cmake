file(REMOVE_RECURSE
  "CMakeFiles/test_merger.dir/test_merger.cc.o"
  "CMakeFiles/test_merger.dir/test_merger.cc.o.d"
  "test_merger"
  "test_merger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
