file(REMOVE_RECURSE
  "CMakeFiles/test_pcap.dir/test_pcap.cc.o"
  "CMakeFiles/test_pcap.dir/test_pcap.cc.o.d"
  "test_pcap"
  "test_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
