file(REMOVE_RECURSE
  "CMakeFiles/test_scenarios.dir/test_scenarios.cc.o"
  "CMakeFiles/test_scenarios.dir/test_scenarios.cc.o.d"
  "test_scenarios"
  "test_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
