# Empty dependencies file for test_replica_detector.
# This may be replaced when dependencies are built.
