file(REMOVE_RECURSE
  "CMakeFiles/test_replica_detector.dir/test_replica_detector.cc.o"
  "CMakeFiles/test_replica_detector.dir/test_replica_detector.cc.o.d"
  "test_replica_detector"
  "test_replica_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replica_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
