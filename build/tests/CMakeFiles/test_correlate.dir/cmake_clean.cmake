file(REMOVE_RECURSE
  "CMakeFiles/test_correlate.dir/test_correlate.cc.o"
  "CMakeFiles/test_correlate.dir/test_correlate.cc.o.d"
  "test_correlate"
  "test_correlate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_correlate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
