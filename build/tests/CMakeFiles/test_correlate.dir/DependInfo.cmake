
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_correlate.cc" "tests/CMakeFiles/test_correlate.dir/test_correlate.cc.o" "gcc" "tests/CMakeFiles/test_correlate.dir/test_correlate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rloop_correlate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rloop_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rloop_trafficgen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rloop_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rloop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rloop_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rloop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rloop_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rloop_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
