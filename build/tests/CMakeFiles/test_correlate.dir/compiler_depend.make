# Empty compiler generated dependencies file for test_correlate.
# This may be replaced when dependencies are built.
