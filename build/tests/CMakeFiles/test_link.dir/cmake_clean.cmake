file(REMOVE_RECURSE
  "CMakeFiles/test_link.dir/test_link.cc.o"
  "CMakeFiles/test_link.dir/test_link.cc.o.d"
  "test_link"
  "test_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
