# Empty dependencies file for test_anonymize.
# This may be replaced when dependencies are built.
