file(REMOVE_RECURSE
  "CMakeFiles/test_anonymize.dir/test_anonymize.cc.o"
  "CMakeFiles/test_anonymize.dir/test_anonymize.cc.o.d"
  "test_anonymize"
  "test_anonymize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anonymize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
