file(REMOVE_RECURSE
  "CMakeFiles/test_streaming.dir/test_streaming.cc.o"
  "CMakeFiles/test_streaming.dir/test_streaming.cc.o.d"
  "test_streaming"
  "test_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
