# Empty compiler generated dependencies file for test_trafficgen.
# This may be replaced when dependencies are built.
