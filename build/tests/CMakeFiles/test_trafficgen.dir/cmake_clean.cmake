file(REMOVE_RECURSE
  "CMakeFiles/test_trafficgen.dir/test_trafficgen.cc.o"
  "CMakeFiles/test_trafficgen.dir/test_trafficgen.cc.o.d"
  "test_trafficgen"
  "test_trafficgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trafficgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
