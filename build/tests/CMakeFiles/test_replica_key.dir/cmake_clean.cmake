file(REMOVE_RECURSE
  "CMakeFiles/test_replica_key.dir/test_replica_key.cc.o"
  "CMakeFiles/test_replica_key.dir/test_replica_key.cc.o.d"
  "test_replica_key"
  "test_replica_key.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replica_key.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
