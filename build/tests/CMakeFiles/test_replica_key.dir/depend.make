# Empty dependencies file for test_replica_key.
# This may be replaced when dependencies are built.
