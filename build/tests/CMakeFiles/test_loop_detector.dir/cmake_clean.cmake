file(REMOVE_RECURSE
  "CMakeFiles/test_loop_detector.dir/test_loop_detector.cc.o"
  "CMakeFiles/test_loop_detector.dir/test_loop_detector.cc.o.d"
  "test_loop_detector"
  "test_loop_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loop_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
