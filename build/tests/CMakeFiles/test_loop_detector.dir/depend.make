# Empty dependencies file for test_loop_detector.
# This may be replaced when dependencies are built.
