file(REMOVE_RECURSE
  "CMakeFiles/test_paper_invariants.dir/test_paper_invariants.cc.o"
  "CMakeFiles/test_paper_invariants.dir/test_paper_invariants.cc.o.d"
  "test_paper_invariants"
  "test_paper_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
