# Empty dependencies file for test_paper_invariants.
# This may be replaced when dependencies are built.
