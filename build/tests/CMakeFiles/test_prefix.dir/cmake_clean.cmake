file(REMOVE_RECURSE
  "CMakeFiles/test_prefix.dir/test_prefix.cc.o"
  "CMakeFiles/test_prefix.dir/test_prefix.cc.o.d"
  "test_prefix"
  "test_prefix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
