file(REMOVE_RECURSE
  "CMakeFiles/test_sim_network.dir/test_sim_network.cc.o"
  "CMakeFiles/test_sim_network.dir/test_sim_network.cc.o.d"
  "test_sim_network"
  "test_sim_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
