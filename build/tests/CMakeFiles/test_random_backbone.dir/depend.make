# Empty dependencies file for test_random_backbone.
# This may be replaced when dependencies are built.
