file(REMOVE_RECURSE
  "CMakeFiles/test_random_backbone.dir/test_random_backbone.cc.o"
  "CMakeFiles/test_random_backbone.dir/test_random_backbone.cc.o.d"
  "test_random_backbone"
  "test_random_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
