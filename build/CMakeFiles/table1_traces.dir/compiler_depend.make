# Empty compiler generated dependencies file for table1_traces.
# This may be replaced when dependencies are built.
