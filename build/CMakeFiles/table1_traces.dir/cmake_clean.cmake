file(REMOVE_RECURSE
  "CMakeFiles/table1_traces.dir/bench/table1_traces.cc.o"
  "CMakeFiles/table1_traces.dir/bench/table1_traces.cc.o.d"
  "bench/table1_traces"
  "bench/table1_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
