# Empty compiler generated dependencies file for impact_loss_delay.
# This may be replaced when dependencies are built.
