file(REMOVE_RECURSE
  "CMakeFiles/impact_loss_delay.dir/bench/impact_loss_delay.cc.o"
  "CMakeFiles/impact_loss_delay.dir/bench/impact_loss_delay.cc.o.d"
  "bench/impact_loss_delay"
  "bench/impact_loss_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impact_loss_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
