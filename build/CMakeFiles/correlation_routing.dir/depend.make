# Empty dependencies file for correlation_routing.
# This may be replaced when dependencies are built.
