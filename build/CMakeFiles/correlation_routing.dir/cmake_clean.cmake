file(REMOVE_RECURSE
  "CMakeFiles/correlation_routing.dir/bench/correlation_routing.cc.o"
  "CMakeFiles/correlation_routing.dir/bench/correlation_routing.cc.o.d"
  "bench/correlation_routing"
  "bench/correlation_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlation_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
