file(REMOVE_RECURSE
  "CMakeFiles/fig9_loop_duration.dir/bench/fig9_loop_duration.cc.o"
  "CMakeFiles/fig9_loop_duration.dir/bench/fig9_loop_duration.cc.o.d"
  "bench/fig9_loop_duration"
  "bench/fig9_loop_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_loop_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
