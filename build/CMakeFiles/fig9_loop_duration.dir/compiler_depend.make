# Empty compiler generated dependencies file for fig9_loop_duration.
# This may be replaced when dependencies are built.
