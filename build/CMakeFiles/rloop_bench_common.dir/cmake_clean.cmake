file(REMOVE_RECURSE
  "CMakeFiles/rloop_bench_common.dir/bench/common.cc.o"
  "CMakeFiles/rloop_bench_common.dir/bench/common.cc.o.d"
  "librloop_bench_common.a"
  "librloop_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rloop_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
