file(REMOVE_RECURSE
  "librloop_bench_common.a"
)
