# Empty compiler generated dependencies file for rloop_bench_common.
# This may be replaced when dependencies are built.
