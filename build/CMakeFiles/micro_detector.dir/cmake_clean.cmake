file(REMOVE_RECURSE
  "CMakeFiles/micro_detector.dir/bench/micro_detector.cc.o"
  "CMakeFiles/micro_detector.dir/bench/micro_detector.cc.o.d"
  "bench/micro_detector"
  "bench/micro_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
