# Empty dependencies file for micro_detector.
# This may be replaced when dependencies are built.
