file(REMOVE_RECURSE
  "CMakeFiles/fig2_ttl_delta.dir/bench/fig2_ttl_delta.cc.o"
  "CMakeFiles/fig2_ttl_delta.dir/bench/fig2_ttl_delta.cc.o.d"
  "bench/fig2_ttl_delta"
  "bench/fig2_ttl_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ttl_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
