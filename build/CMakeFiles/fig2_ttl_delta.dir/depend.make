# Empty dependencies file for fig2_ttl_delta.
# This may be replaced when dependencies are built.
