# Empty compiler generated dependencies file for fig4_spacing.
# This may be replaced when dependencies are built.
