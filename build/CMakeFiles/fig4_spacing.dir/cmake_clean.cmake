file(REMOVE_RECURSE
  "CMakeFiles/fig4_spacing.dir/bench/fig4_spacing.cc.o"
  "CMakeFiles/fig4_spacing.dir/bench/fig4_spacing.cc.o.d"
  "bench/fig4_spacing"
  "bench/fig4_spacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_spacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
