file(REMOVE_RECURSE
  "CMakeFiles/fig7_dst_timeseries.dir/bench/fig7_dst_timeseries.cc.o"
  "CMakeFiles/fig7_dst_timeseries.dir/bench/fig7_dst_timeseries.cc.o.d"
  "bench/fig7_dst_timeseries"
  "bench/fig7_dst_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_dst_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
