# Empty dependencies file for fig7_dst_timeseries.
# This may be replaced when dependencies are built.
