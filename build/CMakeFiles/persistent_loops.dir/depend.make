# Empty dependencies file for persistent_loops.
# This may be replaced when dependencies are built.
