file(REMOVE_RECURSE
  "CMakeFiles/persistent_loops.dir/bench/persistent_loops.cc.o"
  "CMakeFiles/persistent_loops.dir/bench/persistent_loops.cc.o.d"
  "bench/persistent_loops"
  "bench/persistent_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
