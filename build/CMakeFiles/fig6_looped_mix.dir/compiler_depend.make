# Empty compiler generated dependencies file for fig6_looped_mix.
# This may be replaced when dependencies are built.
