file(REMOVE_RECURSE
  "CMakeFiles/fig6_looped_mix.dir/bench/fig6_looped_mix.cc.o"
  "CMakeFiles/fig6_looped_mix.dir/bench/fig6_looped_mix.cc.o.d"
  "bench/fig6_looped_mix"
  "bench/fig6_looped_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_looped_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
