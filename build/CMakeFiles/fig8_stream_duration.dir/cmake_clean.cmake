file(REMOVE_RECURSE
  "CMakeFiles/fig8_stream_duration.dir/bench/fig8_stream_duration.cc.o"
  "CMakeFiles/fig8_stream_duration.dir/bench/fig8_stream_duration.cc.o.d"
  "bench/fig8_stream_duration"
  "bench/fig8_stream_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_stream_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
