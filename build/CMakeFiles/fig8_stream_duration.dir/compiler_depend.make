# Empty compiler generated dependencies file for fig8_stream_duration.
# This may be replaced when dependencies are built.
