file(REMOVE_RECURSE
  "CMakeFiles/ablation_sampling.dir/bench/ablation_sampling.cc.o"
  "CMakeFiles/ablation_sampling.dir/bench/ablation_sampling.cc.o.d"
  "bench/ablation_sampling"
  "bench/ablation_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
