file(REMOVE_RECURSE
  "CMakeFiles/fig5_traffic_mix.dir/bench/fig5_traffic_mix.cc.o"
  "CMakeFiles/fig5_traffic_mix.dir/bench/fig5_traffic_mix.cc.o.d"
  "bench/fig5_traffic_mix"
  "bench/fig5_traffic_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_traffic_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
