# Empty dependencies file for fig5_traffic_mix.
# This may be replaced when dependencies are built.
