file(REMOVE_RECURSE
  "CMakeFiles/fig3_stream_size.dir/bench/fig3_stream_size.cc.o"
  "CMakeFiles/fig3_stream_size.dir/bench/fig3_stream_size.cc.o.d"
  "bench/fig3_stream_size"
  "bench/fig3_stream_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_stream_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
