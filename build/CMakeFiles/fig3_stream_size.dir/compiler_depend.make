# Empty compiler generated dependencies file for fig3_stream_size.
# This may be replaced when dependencies are built.
