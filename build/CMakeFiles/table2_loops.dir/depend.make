# Empty dependencies file for table2_loops.
# This may be replaced when dependencies are built.
