file(REMOVE_RECURSE
  "CMakeFiles/table2_loops.dir/bench/table2_loops.cc.o"
  "CMakeFiles/table2_loops.dir/bench/table2_loops.cc.o.d"
  "bench/table2_loops"
  "bench/table2_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
