# Empty dependencies file for bidirectional_taps.
# This may be replaced when dependencies are built.
