file(REMOVE_RECURSE
  "CMakeFiles/bidirectional_taps.dir/bench/bidirectional_taps.cc.o"
  "CMakeFiles/bidirectional_taps.dir/bench/bidirectional_taps.cc.o.d"
  "bench/bidirectional_taps"
  "bench/bidirectional_taps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bidirectional_taps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
