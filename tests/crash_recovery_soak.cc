// Crash-recovery soak: proves the checkpoint/restore path end-to-end by
// repeatedly SIGKILLing a real rloopd mid-stream and restarting it against
// the same deterministic scenario source.
//
//   1. A reference rloopd consumes the whole scenario uninterrupted and
//      writes its alert lines to ref.txt.
//   2. Three incarnations run with --checkpoint-dir and are SIGKILLed at
//      failpoint-chosen epoch boundaries (RLOOP_FAILPOINTS_SPEC=
//      "daemon.epoch=kill@nth:K"; when failpoints are compiled out the
//      parent kills by hand once a checkpoint lands). Each restart must
//      report "restored checkpoint" on stderr.
//   3. The newest checkpoint is then corrupted with a byte flip; the final
//      incarnation must detect it by checksum ("skipping checkpoint"),
//      fall back to the older snapshot or a cold start, and finish with
//      exit 0 — never crash.
//   4. alerts.txt across all incarnations must byte-equal ref.txt (block
//      back-pressure drops nothing, so exactly-once alerting is exact),
//      and the alert set must score 100% recall against the scenario's
//      tap-crossing ground truth.
//
// Invoked with argv[1] = path to the rloopd binary; registered in ctest
// with the "slow" label.
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "net/prefix.h"
#include "net/time.h"
#include "scenarios/scenario.h"

namespace {

namespace fs = std::filesystem;

[[noreturn]] void fail(const std::string& msg) {
  std::fprintf(stderr, "crash_recovery_soak: FAIL: %s\n", msg.c_str());
  std::exit(1);
}

#define CHECK(cond, msg)                                             \
  do {                                                               \
    if (!(cond)) fail(std::string(msg) + " [" #cond "]");            \
  } while (0)

constexpr char kScenario[] = "link_flap_storm";

struct RunResult {
  int status = 0;          // raw waitpid status
  std::string stderr_out;  // captured child stderr
  bool exited(int code) const {
    return WIFEXITED(status) && WEXITSTATUS(status) == code;
  }
  bool killed() const {
    return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  }
};

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Fork/exec one rloopd incarnation. `failpoint_spec` lands in
// RLOOP_FAILPOINTS_SPEC ("" clears it); when `manual_kill_dir` is non-empty
// the parent SIGKILLs the child once a checkpoint file appears there (the
// failpoints-compiled-out fallback).
RunResult run_rloopd(const std::string& binary,
                     const std::vector<std::string>& args,
                     const std::string& failpoint_spec,
                     const fs::path& stderr_path,
                     const fs::path& manual_kill_dir = {}) {
  const pid_t pid = ::fork();
  CHECK(pid >= 0, "fork failed");
  if (pid == 0) {
    const int fd = ::open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd >= 0) {
      ::dup2(fd, 2);
      ::close(fd);
    }
    if (failpoint_spec.empty()) {
      ::unsetenv("RLOOP_FAILPOINTS_SPEC");
    } else {
      ::setenv("RLOOP_FAILPOINTS_SPEC", failpoint_spec.c_str(), 1);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    std::perror("execv rloopd");
    std::_Exit(127);
  }
  if (!manual_kill_dir.empty()) {
    // Wait for the first checkpoint of THIS incarnation, then a little more
    // progress, then kill. Bounded so a wedged child cannot hang the soak.
    const std::size_t before =
        std::distance(fs::directory_iterator(manual_kill_dir), {});
    for (int i = 0; i < 3000; ++i) {
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        return {status, slurp(stderr_path)};  // finished before the kill
      }
      if (std::distance(fs::directory_iterator(manual_kill_dir), {}) >
              before ||
          (before > 0 && i > 50)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        ::kill(pid, SIGKILL);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  RunResult r;
  CHECK(::waitpid(pid, &r.status, 0) == pid, "waitpid failed");
  r.stderr_out = slurp(stderr_path);
  return r;
}

// Inverts examples/rloopd.cpp's alert line:
//   [   12.345s] LOOP suspected on 10.1.2.0/24        ttl_delta=4
//   replicas=5 (stream began 8.0 ms earlier)
// Millisecond precision is plenty under the truth matcher's 2 s slack.
rloop::core::LoopAlert parse_alert_line(const std::string& line) {
  double raised_s = 0, began_ms = 0;
  char prefix[32] = {0};
  int ttl_delta = 0;
  unsigned long long replicas = 0;
  const int got = std::sscanf(
      line.c_str(),
      " [ %lf s] LOOP suspected on %31s ttl_delta=%d replicas=%llu "
      "(stream began %lf ms earlier)",
      &raised_s, prefix, &ttl_delta, &replicas, &began_ms);
  CHECK(got == 5, "unparseable alert line: " + line);
  unsigned a = 0, b = 0, c = 0, d = 0, bits = 0;
  CHECK(std::sscanf(prefix, "%u.%u.%u.%u/%u", &a, &b, &c, &d, &bits) == 5 &&
            bits == 24,
        "unparseable prefix in: " + line);
  rloop::core::LoopAlert alert;
  alert.prefix24 = rloop::net::Prefix::slash24(rloop::net::Ipv4Addr(
      static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
      static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d)));
  alert.raised_at = static_cast<rloop::net::TimeNs>(raised_s * 1e9 + 0.5);
  alert.first_seen =
      alert.raised_at - static_cast<rloop::net::TimeNs>(began_ms * 1e6 + 0.5);
  alert.ttl_delta = ttl_delta;
  alert.replicas = replicas;
  return alert;
}

fs::path newest_checkpoint(const fs::path& dir) {
  fs::path best;
  std::uint64_t best_seq = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    unsigned long long seq = 0;
    // Exact-name match only: a SIGKILLed incarnation can leave a
    // "ckpt-N.rlck.tmp.<pid>" behind, which restore never reads.
    if (std::sscanf(name.c_str(), "ckpt-%llu.rlck", &seq) == 1 &&
        name == "ckpt-" + std::to_string(seq) + ".rlck" && seq >= best_seq) {
      best_seq = seq;
      best = entry.path();
    }
  }
  CHECK(!best.empty(), "no checkpoint files in " + dir.string());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: crash_recovery_soak <rloopd-binary>\n");
    return 2;
  }
  const std::string rloopd = argv[1];
  CHECK(fs::exists(rloopd), "rloopd binary not found: " + rloopd);

  char tmpl[] = "/tmp/rloop_soak.XXXXXX";
  CHECK(::mkdtemp(tmpl) != nullptr, "mkdtemp failed");
  const fs::path work(tmpl);
  const fs::path ckpt_dir = work / "ckpt";
  fs::create_directories(ckpt_dir);

  // The daemon must detect under the same streaming settings the scenario
  // gates pin (scenarios::scenario_streaming_config), or the 1-minute
  // daemon-default hold-down would merge back-to-back loops on one prefix
  // and sink recall below 100%.
  const rloop::scenarios::ScenarioSpec spec =
      rloop::scenarios::canned_scenario(kScenario);
  const fs::path cfg_path = work / "soak.conf";
  {
    std::ofstream cfg(cfg_path);
    cfg << "min_replicas=" << spec.truth.min_crossings << "\n"
        << "alert_holddown_s=1\n"
        << "reorder_tolerance_ms=0\n"
        << "max_open_entries=0\n"
        << "checkpoint_interval_s=0\n";  // snapshot every epoch
  }

#if defined(RLOOP_FAILPOINTS)
  const bool have_failpoints = true;
#else
  const bool have_failpoints = false;
  std::fprintf(stderr,
               "crash_recovery_soak: failpoints compiled out; killing by "
               "parent timing instead of daemon.epoch=kill\n");
#endif

  const std::vector<std::string> common = {
      "--scenario",   kScenario, "--seed",   "0",
      "--policy",     "block",   "--config", cfg_path.string(),
      "--quiet"};

  // --- 1. uninterrupted reference run ---------------------------------------
  std::vector<std::string> ref_args = common;
  ref_args.insert(ref_args.end(),
                  {"--speed", "max", "--alerts-out", (work / "ref.txt").string()});
  const RunResult ref =
      run_rloopd(rloopd, ref_args, "", work / "ref.stderr");
  CHECK(ref.exited(0), "reference run failed: " + ref.stderr_out);
  const std::string ref_alerts = slurp(work / "ref.txt");
  CHECK(!ref_alerts.empty(), "reference run produced no alerts");

  // --- 2. three SIGKILLed incarnations --------------------------------------
  // maybe_checkpoint() runs before the daemon.epoch failpoint each epoch, so
  // kill@nth:K always leaves K fresh snapshots — every restart has newer
  // state than the last, and the loop makes forward progress.
  std::vector<std::string> crash_args = common;
  crash_args.insert(crash_args.end(),
                    {"--speed", have_failpoints ? "max" : "20",
                     "--alerts-out", (work / "alerts.txt").string(),
                     "--checkpoint-dir", ckpt_dir.string()});
  int kills = 0;
  const int nth[] = {2, 3, 4};
  for (int i = 0; i < 3; ++i) {
    const std::string spec_env =
        have_failpoints
            ? "daemon.epoch=kill@nth:" + std::to_string(nth[i])
            : "";
    const RunResult r = run_rloopd(
        rloopd, crash_args, spec_env,
        work / ("crash" + std::to_string(i) + ".stderr"),
        have_failpoints ? fs::path{} : ckpt_dir);
    if (r.killed()) {
      ++kills;
    } else {
      CHECK(r.exited(0), "crash incarnation neither killed nor clean: " +
                             r.stderr_out);
    }
    if (i > 0) {
      CHECK(r.stderr_out.find("restored checkpoint") != std::string::npos,
            "incarnation " + std::to_string(i) +
                " did not restore: " + r.stderr_out);
    }
  }
  CHECK(kills >= 3, "expected 3 SIGKILLed incarnations, got " +
                        std::to_string(kills));

  // --- 3. corrupt the newest checkpoint, then finish clean ------------------
  const fs::path victim = newest_checkpoint(ckpt_dir);
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    const auto size = fs::file_size(victim);
    const std::streamoff off = size > 30 ? 30 : static_cast<std::streamoff>(
                                                    size - 1);
    f.seekg(off);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(off);
    f.write(&byte, 1);
  }
  std::vector<std::string> final_args = common;
  final_args.insert(final_args.end(),
                    {"--speed", "max",
                     "--alerts-out", (work / "alerts.txt").string(),
                     "--checkpoint-dir", ckpt_dir.string()});
  const RunResult fin =
      run_rloopd(rloopd, final_args, "", work / "final.stderr");
  CHECK(fin.exited(0), "final incarnation failed: " + fin.stderr_out);
  CHECK(fin.stderr_out.find("skipping checkpoint") != std::string::npos,
        "corrupt checkpoint was not detected/skipped: " + fin.stderr_out);

  // --- 4. exactly-once alerts + ground-truth recall -------------------------
  const std::string soak_alerts = slurp(work / "alerts.txt");
  if (soak_alerts != ref_alerts) {
    std::fprintf(stderr, "--- reference alerts ---\n%s", ref_alerts.c_str());
    std::fprintf(stderr, "--- crash-run alerts ---\n%s", soak_alerts.c_str());
    fail("crash+restart alert set differs from the uninterrupted run");
  }

  std::vector<rloop::core::LoopAlert> alerts;
  {
    std::istringstream in(soak_alerts);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) alerts.push_back(parse_alert_line(line));
    }
  }
  const auto run = rloop::scenarios::run_scenario(spec);
  const rloop::scenarios::ScenarioScore score =
      rloop::scenarios::score_streaming(*run, run->crossings, alerts);
  CHECK(score.detectable > 0, "scenario produced no detectable truth loops");
  CHECK(score.recall() == 1.0,
        "recall " + std::to_string(score.recall()) + " (" +
            std::to_string(score.detected) + "/" +
            std::to_string(score.detectable) + " detectable loops)");
  CHECK(score.precision() >= spec.truth.precision_floor_streaming,
        "precision " + std::to_string(score.precision()) + " below floor");

  std::printf(
      "crash_recovery_soak: PASS (%d kills, %zu alerts, recall %llu/%llu, "
      "corrupt checkpoint skipped)\n",
      kills, alerts.size(),
      static_cast<unsigned long long>(score.detected),
      static_cast<unsigned long long>(score.detectable));
  fs::remove_all(work);
  return 0;
}
