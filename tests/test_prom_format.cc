// Prometheus exposition conformance: the hand-rendered /metrics output must
// survive a strict format parser (prom_lite.h), and the parser itself must
// actually reject the malformations it claims to.
#include <gtest/gtest.h>

#include <string>

#include "prom_lite.h"
#include "telemetry/build_info.h"
#include "telemetry/counter.h"
#include "telemetry/exporter.h"
#include "telemetry/quantiles.h"
#include "telemetry/registry.h"

namespace rloop::telemetry {
namespace {

using rloop::testing::PromFamily;
using rloop::testing::is_valid_prometheus;
using rloop::testing::parse_prometheus;

// A registry shaped like the daemon's: counters (with and without labels),
// a gauge, histograms, plus the derived quantile summaries and build info.
std::string render_full_registry() {
  Registry registry;
  register_build_info(&registry);
  registry.counter("rloop_test_packets_total", {}, "Packets seen")->inc(42);
  registry
      .counter("rloop_failpoint_trips_total", {{"name", "daemon.epoch"}},
               "Failpoint trips by site name")
      ->inc(1);
  registry
      .counter("rloop_failpoint_trips_total", {{"name", "daemon.ring.push"}},
               "Failpoint trips by site name")
      ->inc(2);
  registry.gauge("rloop_test_ring_occupancy", {}, "Ring occupancy")->set(7);
  Histogram* h = registry.histogram("rloop_test_epoch_latency_ns",
                                    {1e3, 4e3, 1.6e4}, {}, "Epoch latency");
  for (int i = 0; i < 1000; ++i) h->observe(2.0e3);
  h->observe(1.0e9);  // overflow bucket
  registry
      .gauge("rloop_test_escaped", {{"path", "a\\b\"c\nd"}},
             "Label escaping round-trip")
      ->set(1);

  auto snaps = registry.snapshot();
  auto summaries = summarize_histograms(snaps);
  for (auto& s : summaries) snaps.push_back(std::move(s));
  std::stable_sort(snaps.begin(), snaps.end(),
                   [](const MetricSnapshot& a, const MetricSnapshot& b) {
                     if (a.name != b.name) return a.name < b.name;
                     return a.labels < b.labels;
                   });
  return to_prometheus(snaps);
}

TEST(PromFormat, FullRegistryExportIsConformant) {
  const std::string text = render_full_registry();
  std::map<std::string, PromFamily> families;
  std::string error;
  ASSERT_TRUE(parse_prometheus(text, &families, &error)) << error << "\n"
                                                         << text;

  // Families landed with the right types and HELP/TYPE exactly once each
  // (the parser rejects duplicates, so presence == exactly once).
  EXPECT_EQ(families.at("rloop_test_packets_total").type, "counter");
  EXPECT_EQ(families.at("rloop_test_epoch_latency_ns").type, "histogram");
  EXPECT_EQ(families.at("rloop_test_epoch_latency_ns_quantiles").type,
            "summary");
  EXPECT_EQ(families.at("rloop_build_info").type, "gauge");

  // Both label sets of the failpoint counter share one family.
  EXPECT_EQ(families.at("rloop_failpoint_trips_total").samples.size(), 2u);

  // Summary carries the three default ranks.
  const auto& summary = families.at("rloop_test_epoch_latency_ns_quantiles");
  int quantile_samples = 0;
  for (const auto& sample : summary.samples) {
    for (const auto& [k, v] : sample.labels) {
      if (k == "quantile") ++quantile_samples;
    }
  }
  EXPECT_EQ(quantile_samples, 3);

  // build_info is the constant-1 join target.
  const auto& build = families.at("rloop_build_info");
  ASSERT_EQ(build.samples.size(), 1u);
  EXPECT_EQ(build.samples[0].value, 1.0);
  EXPECT_EQ(build.samples[0].labels.size(), 4u);
}

TEST(PromFormat, EscapedLabelValuesRoundTrip) {
  const std::string text = render_full_registry();
  std::map<std::string, PromFamily> families;
  std::string error;
  ASSERT_TRUE(parse_prometheus(text, &families, &error)) << error;
  const auto& samples = families.at("rloop_test_escaped").samples;
  ASSERT_EQ(samples.size(), 1u);
  ASSERT_EQ(samples[0].labels.size(), 1u);
  EXPECT_EQ(samples[0].labels[0].second, "a\\b\"c\nd");
}

TEST(PromFormat, EmptyExportIsValid) {
  EXPECT_TRUE(is_valid_prometheus(""));
  EXPECT_TRUE(is_valid_prometheus(to_prometheus({})));
}

// --- parser teeth: each malformation must be rejected -----------------------

TEST(PromFormat, RejectsMissingHelpOrType) {
  EXPECT_FALSE(is_valid_prometheus("# TYPE a counter\na 1\n"));  // no HELP
  EXPECT_FALSE(is_valid_prometheus("# HELP a h\na 1\n"));        // no TYPE
  EXPECT_TRUE(is_valid_prometheus("# HELP a h\n# TYPE a counter\na 1\n"));
}

TEST(PromFormat, RejectsDuplicateHelpAndType) {
  EXPECT_FALSE(is_valid_prometheus(
      "# HELP a h\n# HELP a again\n# TYPE a counter\na 1\n"));
  EXPECT_FALSE(is_valid_prometheus(
      "# HELP a h\n# TYPE a counter\n# TYPE a counter\na 1\n"));
  EXPECT_FALSE(is_valid_prometheus(
      "# HELP a h\n# TYPE a counter\na 1\n# HELP a late\n"));
}

TEST(PromFormat, RejectsInterleavedFamilies) {
  EXPECT_FALSE(is_valid_prometheus(
      "# HELP a h\n# TYPE a counter\n# HELP b h\n# TYPE b counter\n"
      "a 1\nb 1\na{x=\"y\"} 2\n"));
}

TEST(PromFormat, RejectsBadNamesAndLabels) {
  EXPECT_FALSE(is_valid_prometheus("# HELP 1a h\n# TYPE 1a counter\n1a 1\n"));
  EXPECT_FALSE(is_valid_prometheus(
      "# HELP a h\n# TYPE a counter\na{1x=\"v\"} 1\n"));
  EXPECT_FALSE(is_valid_prometheus(
      "# HELP a h\n# TYPE a counter\na{__x=\"v\"} 1\n"));
  EXPECT_FALSE(is_valid_prometheus(
      "# HELP a h\n# TYPE a counter\na{x=v} 1\n"));  // unquoted
  EXPECT_FALSE(is_valid_prometheus(
      "# HELP a h\n# TYPE a counter\na{x=\"v\\q\"} 1\n"));  // bad escape
  EXPECT_FALSE(is_valid_prometheus(
      "# HELP a h\n# TYPE a counter\na{x=\"v\",x=\"w\"} 1\n"));  // dup label
}

TEST(PromFormat, RejectsBadValues) {
  EXPECT_FALSE(is_valid_prometheus("# HELP a h\n# TYPE a counter\na one\n"));
  EXPECT_FALSE(is_valid_prometheus("# HELP a h\n# TYPE a counter\na -1\n"));
  EXPECT_FALSE(is_valid_prometheus(
      "# HELP a h\n# TYPE a counter\na 1 1700000000\n"));  // timestamp
  EXPECT_TRUE(is_valid_prometheus("# HELP a h\n# TYPE a gauge\na -1\n"));
  EXPECT_TRUE(is_valid_prometheus("# HELP a h\n# TYPE a gauge\na +Inf\n"));
}

TEST(PromFormat, RejectsMalformedHistograms) {
  const std::string head = "# HELP h h\n# TYPE h histogram\n";
  // Well-formed.
  EXPECT_TRUE(is_valid_prometheus(
      head + "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\n"
             "h_count 2\n"));
  // Non-cumulative buckets.
  EXPECT_FALSE(is_valid_prometheus(
      head + "h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\n"
             "h_count 2\n"));
  // Missing +Inf.
  EXPECT_FALSE(is_valid_prometheus(
      head + "h_bucket{le=\"1\"} 1\nh_sum 3\nh_count 1\n"));
  // +Inf bucket != count.
  EXPECT_FALSE(is_valid_prometheus(
      head + "h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 5\n"));
  // Missing _sum.
  EXPECT_FALSE(is_valid_prometheus(
      head + "h_bucket{le=\"+Inf\"} 2\nh_count 2\n"));
  // Bucket without le.
  EXPECT_FALSE(is_valid_prometheus(
      head + "h_bucket 2\nh_sum 3\nh_count 2\n"));
  // Foreign series under a histogram family.
  EXPECT_FALSE(is_valid_prometheus(
      head + "h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\nh_extra 1\n"));
}

TEST(PromFormat, RejectsMalformedSummaries) {
  const std::string head = "# HELP s s\n# TYPE s summary\n";
  EXPECT_TRUE(is_valid_prometheus(
      head + "s{quantile=\"0.5\"} 10\ns_sum 20\ns_count 2\n"));
  // Quantile outside [0,1].
  EXPECT_FALSE(is_valid_prometheus(
      head + "s{quantile=\"1.5\"} 10\ns_sum 20\ns_count 2\n"));
  // Missing quantile label.
  EXPECT_FALSE(
      is_valid_prometheus(head + "s 10\ns_sum 20\ns_count 2\n"));
  // Missing _count.
  EXPECT_FALSE(is_valid_prometheus(head + "s{quantile=\"0.5\"} 10\ns_sum 20\n"));
}

TEST(PromFormat, RejectsMissingFinalNewline) {
  EXPECT_FALSE(is_valid_prometheus("# HELP a h\n# TYPE a counter\na 1"));
}

}  // namespace
}  // namespace rloop::telemetry
