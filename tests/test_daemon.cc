// End-to-end tests of the rloopd daemon core: differential equivalence with
// a directly-fed StreamingDetector on the golden trace, exact drop
// accounting under a 10x overload burst, bounded memory under a soak of
// 10^6 packets across >10^5 distinct /24s (serial and threaded), and the
// stop/reload lifecycle.
#include "daemon/daemon.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/streaming_detector.h"
#include "json_lite.h"
#include "net/packet.h"
#include "net/pcap.h"
#include "telemetry/exporter.h"

namespace rloop::daemon {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(RLOOP_GOLDEN_DIR) + "/" + name;
}

// Renders an alert to one canonical line so "byte-identical alert set"
// is a string comparison.
std::string render(const core::LoopAlert& a) {
  std::ostringstream out;
  out << a.prefix24.to_string() << " first=" << a.first_seen
      << " raised=" << a.raised_at << " replicas=" << a.replicas
      << " delta=" << a.ttl_delta;
  return out.str();
}

std::vector<std::string> feed_directly(const net::Trace& trace,
                                       const core::StreamingConfig& cfg) {
  std::vector<std::string> alerts;
  core::StreamingDetector detector(
      cfg, [&](const core::LoopAlert& a) { alerts.push_back(render(a)); });
  for (const auto& rec : trace.records()) {
    detector.on_packet(rec.ts, rec.bytes());
  }
  return alerts;
}

// Generates `count` distinct UDP packets spread over `prefixes` /24s,
// 1 us apart, on the fly (no pacing: the producer runs flat out).
class SyntheticSource : public PacketSource {
 public:
  SyntheticSource(std::size_t count, std::size_t prefixes)
      : count_(count), prefixes_(prefixes) {}

  bool next(net::TraceRecord& out) override {
    if (i_ >= count_) return false;
    const std::size_t p = i_ % prefixes_;
    const auto pkt = net::make_udp_packet(
        net::Ipv4Addr(198, 51, 100, 1),
        net::Ipv4Addr(static_cast<std::uint8_t>(11 + (p >> 16)),
                      static_cast<std::uint8_t>(p >> 8),
                      static_cast<std::uint8_t>(p), 1),
        1000, 2000, 64, 64, static_cast<std::uint16_t>(i_));
    out.ts = static_cast<net::TimeNs>(i_) * net::kMicrosecond;
    out.wire_len = pkt.ip.total_length;
    out.cap_len =
        static_cast<std::uint8_t>(net::serialize_packet(pkt, out.data));
    ++i_;
    return true;
  }
  std::string name() const override { return "synthetic"; }
  std::size_t expected_packets() const override { return count_; }

 private:
  std::size_t count_;
  std::size_t prefixes_;
  std::size_t i_ = 0;
};

// The acceptance bar: the daemon path (ring, producer thread, batched
// epochs) must produce the byte-identical alert sequence to a
// StreamingDetector fed directly, for both ring and inline modes.
TEST(Daemon, GoldenTraceAlertsMatchDirectDetectorExactly) {
  const auto trace = net::read_pcap(golden_path("golden_trace.pcap"));
  ASSERT_GT(trace.size(), 0u);
  const core::StreamingConfig streaming =
      DaemonConfig::daemon_streaming_defaults();
  const auto expected = feed_directly(trace, streaming);
  ASSERT_FALSE(expected.empty()) << "golden trace must alert";

  for (const bool use_ring : {true, false}) {
    SCOPED_TRACE(use_ring ? "ring" : "inline");
    DaemonConfig config;
    config.use_ring = use_ring;
    config.ring_capacity = 1 << 10;
    config.back_pressure = BackPressure::block;  // lossless: exact replay
    config.streaming = streaming;
    std::vector<std::string> alerts;
    Daemon d(config,
             std::make_unique<ReplaySource>(trace, "golden", /*speed=*/0),
             [&](const core::LoopAlert& a) { alerts.push_back(render(a)); });
    const DaemonStats stats = d.run();

    EXPECT_EQ(alerts, expected);
    EXPECT_EQ(stats.pushed, trace.size());
    EXPECT_EQ(stats.consumed, trace.size());
    EXPECT_EQ(stats.dropped, 0u);
    EXPECT_TRUE(stats.invariant_ok());
    EXPECT_EQ(stats.alerts, expected.size());
  }
}

// The committed alert pin (tests/golden/golden_streaming_alerts.txt is what
// `rloopd --source pcap --speed max` prints; CI diffs the daemon's output
// against it byte-for-byte). Here we pin the semantic content — one alert
// per line, prefixes in raise order — so drift is caught locally before CI.
TEST(Daemon, GoldenAlertsMatchPinnedFile) {
  std::ifstream pin(golden_path("golden_streaming_alerts.txt"));
  ASSERT_TRUE(pin.good()) << "missing golden_streaming_alerts.txt";
  std::vector<std::string> lines;
  for (std::string line; std::getline(pin, line);) lines.push_back(line);
  ASSERT_FALSE(lines.empty());

  const auto trace = net::read_pcap(golden_path("golden_trace.pcap"));
  DaemonConfig config;  // rloopd defaults
  std::vector<core::LoopAlert> alerts;
  Daemon d(config, std::make_unique<ReplaySource>(trace, "golden", 0),
           [&](const core::LoopAlert& a) { alerts.push_back(a); });
  (void)d.run();

  ASSERT_EQ(alerts.size(), lines.size());
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    EXPECT_NE(lines[i].find(alerts[i].prefix24.to_string()),
              std::string::npos)
        << "alert " << i << " prefix mismatch: " << lines[i];
  }
}

// Overload burst: a replay producer (a ~50 ns memcpy per record) against
// the detection consumer (hundreds of ns per packet, plus per-epoch clock
// reads forced by batch_size=1) is an order of magnitude of speed mismatch
// into a tiny ring — drops are guaranteed, and every single record must be
// accounted for: pushed == consumed + dropped, exactly.
TEST(Daemon, BurstOverloadDropAccountingIsExact) {
  constexpr std::size_t kCount = 200'000;
  // Pre-built records make the producer pure memcpy (maximally bursty).
  net::Trace trace("burst", 0);
  {
    SyntheticSource gen(kCount, 1 << 14);
    net::TraceRecord rec;
    while (gen.next(rec)) trace.add(rec.ts, rec.bytes(), rec.wire_len);
  }

  DaemonConfig config;
  config.ring_capacity = 64;
  config.batch_size = 1;
  config.back_pressure = BackPressure::drop_newest;
  Daemon d(config,
           std::make_unique<ReplaySource>(std::move(trace), "burst", 0),
           nullptr);
  const DaemonStats stats = d.run();

  EXPECT_EQ(stats.pushed, kCount);
  EXPECT_EQ(stats.pushed, stats.consumed + stats.dropped)
      << "drop accounting must be exact";
  EXPECT_GT(stats.dropped, 0u) << "overload never happened";
  EXPECT_GT(stats.consumed, 0u);
  EXPECT_EQ(stats.consumed, d.detector().packets_seen());
}

// Soak: 10^6 packets across 1.2*10^5 distinct /24s against a 50k entry
// budget. Peak resident entries must never exceed the budget — the
// fixed-RSS guarantee that lets the daemon run for days.
void run_soak(bool use_ring) {
  constexpr std::size_t kPackets = 1'000'000;
  constexpr std::size_t kPrefixes = 120'000;
  constexpr std::size_t kBudget = 50'000;

  DaemonConfig config;
  config.use_ring = use_ring;
  config.back_pressure = BackPressure::block;  // lossless: all 10^6 processed
  config.streaming.max_open_entries = kBudget;
  Daemon d(config, std::make_unique<SyntheticSource>(kPackets, kPrefixes),
           nullptr);
  const DaemonStats stats = d.run();

  EXPECT_EQ(stats.consumed, kPackets);
  EXPECT_TRUE(stats.invariant_ok());
  EXPECT_LE(stats.peak_open_entries, kBudget)
      << "entry budget violated: daemon memory is unbounded";
  EXPECT_GT(stats.evicted, 0u) << "budget never engaged; soak too small";
  EXPECT_LE(stats.open_entries, kBudget);
}

TEST(Daemon, SoakBoundedMemorySerial) { run_soak(false); }
TEST(Daemon, SoakBoundedMemoryThreaded) { run_soak(true); }

// request_stop mid-stream (the SIGINT/SIGTERM path): the producer stops
// promptly, the consumer drains the ring, and accounting still balances.
TEST(Daemon, GracefulStopDrainsAndBalances) {
  constexpr std::size_t kCount = 50'000'000;  // would take minutes; we stop
  DaemonConfig config;
  config.back_pressure = BackPressure::block;
  Daemon d(config, std::make_unique<SyntheticSource>(kCount, 1 << 16),
           nullptr);
  std::thread stopper([&d] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    d.request_stop();
  });
  const DaemonStats stats = d.run();
  stopper.join();

  EXPECT_LT(stats.pushed, kCount) << "stop did not interrupt the source";
  EXPECT_GT(stats.consumed, 0u);
  EXPECT_TRUE(stats.invariant_ok())
      << "pushed=" << stats.pushed << " consumed=" << stats.consumed
      << " dropped=" << stats.dropped;
  // A blocked push abandoned by stop is the only legal drop here.
  EXPECT_LE(stats.dropped, 1u);
}

// request_reload (the SIGHUP path) re-reads the config file at the next
// epoch boundary and applies the reloadable keys to the live detector.
TEST(Daemon, ReloadAppliesConfigFileToLiveDetector) {
  const std::string path = ::testing::TempDir() + "/rloopd_reload.conf";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << "# reloadable keys\n"
        << "max_open_entries=123\n"
        << "min_replicas=4\n"
        << "stats_interval_s=2.5\n";
  }
  DaemonConfig config;
  config.config_file = path;
  Daemon d(config, std::make_unique<SyntheticSource>(10'000, 1 << 10),
           nullptr);
  d.request_reload();  // pending before run(): applied after the first epoch
  const DaemonStats stats = d.run();
  std::remove(path.c_str());

  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(d.detector().config().max_open_entries, 123u);
  EXPECT_EQ(d.detector().config().min_replicas, 4u);
  EXPECT_EQ(d.config().stats_interval, net::from_seconds(2.5));
}

TEST(Daemon, BadReloadFileLeavesConfigUntouched) {
  const std::string path = ::testing::TempDir() + "/rloopd_bad.conf";
  {
    std::ofstream out(path);
    out << "min_replicas=not_a_number\n";
  }
  DaemonConfig config;
  config.config_file = path;
  const std::size_t original = config.streaming.max_open_entries;
  Daemon d(config, std::make_unique<SyntheticSource>(10'000, 1 << 10),
           nullptr);
  d.request_reload();
  const DaemonStats stats = d.run();
  std::remove(path.c_str());

  EXPECT_EQ(stats.reloads, 1u);  // the signal was seen...
  EXPECT_EQ(d.detector().config().max_open_entries, original);  // ...ignored
  EXPECT_EQ(d.detector().config().min_replicas, 3u);
}

TEST(Daemon, StatsJsonIsValidAndCarriesTheInvariant) {
  DaemonConfig config;
  telemetry::Registry registry;
  Daemon d(config, std::make_unique<SyntheticSource>(5'000, 1 << 8), nullptr,
           &registry);
  const DaemonStats stats = d.run();

  const std::string json =
      stats.to_json(telemetry::to_json(registry.snapshot()));
  std::string error;
  EXPECT_TRUE(rloop::testing::is_valid_json(json, &error)) << error;
  EXPECT_NE(json.find("\"invariant_ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"pushed\":5000"), std::string::npos);
  EXPECT_NE(json.find("rloop_daemon_ring_dropped_total"), std::string::npos);
}

TEST(Daemon, RejectsNonPowerOfTwoRing) {
  DaemonConfig config;
  config.ring_capacity = 1000;
  EXPECT_THROW(Daemon(config, std::make_unique<SyntheticSource>(1, 1),
                      nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace rloop::daemon
