#include "sim/network.h"

#include <gtest/gtest.h>

#include "net/packet.h"
#include "net/prefix.h"

namespace rloop::sim {
namespace {

using net::Ipv4Addr;
using net::Prefix;

// Line: ingress - core - egress, with an external prefix at the egress and
// a source prefix at the ingress (so ICMP errors can route back).
struct LineNet {
  routing::Topology topo;
  routing::NodeId ingress, core, egress;
  routing::LinkId l0, l1;
  Prefix dst_prefix = *Prefix::parse("203.0.113.0/24");
  Prefix src_prefix = *Prefix::parse("198.51.100.0/24");

  LineNet() {
    ingress = topo.add_node("ingress");
    core = topo.add_node("core");
    egress = topo.add_node("egress");
    l0 = topo.add_link(ingress, core, net::kMillisecond, 1e9, 100, 1);
    l1 = topo.add_link(core, egress, net::kMillisecond, 1e9, 100, 1);
  }

  Network make(NetworkConfig cfg = {}) {
    Network network(topo, /*seed=*/1, cfg);
    network.attach_external_route({dst_prefix, {egress}});
    network.attach_external_route({src_prefix, {ingress}});
    network.install_all_routes();
    return network;
  }
};

net::ParsedPacket udp_to(Ipv4Addr dst, std::uint8_t ttl,
                         std::uint16_t id = 1) {
  return net::make_udp_packet(Ipv4Addr(198, 51, 100, 9), dst, 1000, 2000, 100,
                              ttl, id);
}

TEST(Network, DeliversAcrossPath) {
  LineNet line;
  auto network = line.make();
  const auto id = network.inject(udp_to(Ipv4Addr(203, 0, 113, 5), 64), 128,
                                 line.ingress, 1000);
  network.run_all();

  EXPECT_EQ(network.stats().delivered, 1u);
  const auto& fate = network.fates().at(id);
  EXPECT_EQ(fate.kind, FateKind::delivered);
  EXPECT_EQ(fate.final_node, line.egress);
  EXPECT_EQ(fate.loop_crossings, 0);
  // Delay: 2 serializations + 2 propagations > 2 ms.
  EXPECT_GT(fate.delay(), 2 * net::kMillisecond);
}

TEST(Network, TtlDecrementedPerForwardingHop) {
  LineNet line;
  auto network = line.make();
  const auto tap = network.add_tap(line.l1, line.core, "tap", 0);
  network.inject(udp_to(Ipv4Addr(203, 0, 113, 5), 64), 128, line.ingress, 0);
  network.run_all();

  const auto& trace = network.tap_trace(tap);
  ASSERT_EQ(trace.size(), 1u);
  const auto parsed = net::parse_packet(trace[0].bytes());
  ASSERT_TRUE(parsed.has_value());
  // Decremented at ingress and core: 64 -> 62 on the core->egress link.
  EXPECT_EQ(parsed->ip.ttl, 62);
  EXPECT_TRUE(parsed->ip.checksum_valid());
}

TEST(Network, TtlExpiryGeneratesIcmpTimeExceeded) {
  LineNet line;
  auto network = line.make();
  const auto id = network.inject(udp_to(Ipv4Addr(203, 0, 113, 5), 1), 128,
                                 line.ingress, 0);
  network.run_all();

  const auto& fate = network.fates().at(id);
  EXPECT_EQ(fate.kind, FateKind::ttl_expired);
  EXPECT_EQ(fate.final_node, line.ingress);
  EXPECT_EQ(network.stats().ttl_expired, 1u);
  EXPECT_EQ(network.stats().icmp_generated, 1u);
  // The ICMP error itself got a fate entry and was delivered back toward
  // the source prefix at the ingress router.
  ASSERT_EQ(network.fates().size(), 2u);
  const auto& icmp_fate = network.fates().at(1);
  EXPECT_TRUE(icmp_fate.is_icmp_generated);
  EXPECT_EQ(icmp_fate.kind, FateKind::delivered);
  EXPECT_EQ(icmp_fate.final_node, line.ingress);
}

TEST(Network, IcmpGenerationIsRateLimited) {
  LineNet line;
  NetworkConfig cfg;
  cfg.icmp_rate_limit = 100 * net::kMillisecond;
  auto network = line.make(cfg);
  // 10 expiring packets within 1 ms: only the first earns an ICMP error.
  for (int i = 0; i < 10; ++i) {
    network.inject(udp_to(Ipv4Addr(203, 0, 113, 5), 1,
                          static_cast<std::uint16_t>(i)),
                   128, line.ingress, i * 100);
  }
  network.run_all();
  EXPECT_EQ(network.stats().ttl_expired, 10u);
  EXPECT_EQ(network.stats().icmp_generated, 1u);
}

TEST(Network, IcmpGenerationCanBeDisabled) {
  LineNet line;
  NetworkConfig cfg;
  cfg.emit_icmp_time_exceeded = false;
  auto network = line.make(cfg);
  network.inject(udp_to(Ipv4Addr(203, 0, 113, 5), 1), 128, line.ingress, 0);
  network.run_all();
  EXPECT_EQ(network.stats().icmp_generated, 0u);
}

TEST(Network, NoRouteDrop) {
  LineNet line;
  auto network = line.make();
  const auto id = network.inject(udp_to(Ipv4Addr(8, 8, 8, 8), 64), 128,
                                 line.ingress, 0);
  network.run_all();
  EXPECT_EQ(network.fates().at(id).kind, FateKind::no_route_drop);
  EXPECT_EQ(network.stats().no_route_drops, 1u);
}

TEST(Network, TapIsDirectional) {
  LineNet line;
  auto network = line.make();
  const auto forward_tap = network.add_tap(line.l0, line.ingress, "fwd", 0);
  const auto reverse_tap = network.add_tap(line.l0, line.core, "rev", 0);
  network.inject(udp_to(Ipv4Addr(203, 0, 113, 5), 64), 128, line.ingress, 0);
  network.run_all();
  EXPECT_EQ(network.tap_trace(forward_tap).size(), 1u);
  EXPECT_EQ(network.tap_trace(reverse_tap).size(), 0u);
}

TEST(Network, TapTimestampsAreMonotone) {
  LineNet line;
  auto network = line.make();
  const auto tap = network.add_tap(line.l0, line.ingress, "tap", 0);
  for (int i = 0; i < 50; ++i) {
    network.inject(udp_to(Ipv4Addr(203, 0, 113, 5), 64,
                          static_cast<std::uint16_t>(i)),
                   1500, line.ingress, i * 10);  // heavy overlap
  }
  network.run_all();
  const auto& trace = network.tap_trace(tap);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    ASSERT_GE(trace[i].ts, trace[i - 1].ts);
  }
}

TEST(Network, LinkFailureDropsThenHeals) {
  // Square: ingress-core-egress plus an expensive bypass ingress-alt-egress.
  routing::Topology topo;
  const auto ingress = topo.add_node("ingress");
  const auto core = topo.add_node("core");
  const auto egress = topo.add_node("egress");
  const auto alt = topo.add_node("alt");
  topo.add_link(ingress, core, net::kMillisecond, 1e9, 100, 1);
  const auto core_egress =
      topo.add_link(core, egress, net::kMillisecond, 1e9, 100, 1);
  topo.add_link(ingress, alt, net::kMillisecond, 1e9, 100, 5);
  topo.add_link(alt, egress, net::kMillisecond, 1e9, 100, 5);

  Network network(topo, 3, {});
  const auto dst = *Prefix::parse("203.0.113.0/24");
  network.attach_external_route({dst, {egress}});
  network.install_all_routes();

  network.fail_link(core_egress, net::kSecond);
  // A packet right after the failure dies on the dead link (stale FIB).
  const auto dropped =
      network.inject(udp_to(Ipv4Addr(203, 0, 113, 1), 64, 1), 128, ingress,
                     net::kSecond + 50 * net::kMillisecond);
  // A packet well after convergence goes around via alt.
  const auto rerouted =
      network.inject(udp_to(Ipv4Addr(203, 0, 113, 1), 64, 2), 128, ingress,
                     20 * net::kSecond);
  network.run_all();

  EXPECT_EQ(network.fates().at(dropped).kind, FateKind::link_down_drop);
  EXPECT_EQ(network.fates().at(rerouted).kind, FateKind::delivered);
  EXPECT_EQ(network.fates().at(rerouted).final_node, egress);
}

TEST(Network, BgpWithdrawalCreatesGroundTruthLoop) {
  // The quickstart triangle: loop between old and new egress while the new
  // egress's FIB is stale.
  routing::Topology topo;
  const auto r = topo.add_node("R");
  const auto r1 = topo.add_node("R1");
  const auto r2 = topo.add_node("R2");
  topo.add_link(r, r1, net::kMillisecond, 1e9, 200, 1);
  topo.add_link(r, r2, net::kMillisecond, 1e9, 200, 1);
  topo.add_link(r1, r2, net::kMillisecond, 1e9, 200, 1);

  NetworkConfig cfg;
  cfg.bgp.mrai_max = 2 * net::kSecond;
  Network network(topo, 42, cfg);
  const auto dst = *Prefix::parse("203.0.113.0/24");
  network.attach_external_route({dst, {r, r2}});
  network.attach_external_route({*Prefix::parse("198.51.100.0/24"), {r1}});
  network.install_all_routes();

  network.withdraw_best_egress(dst, net::kSecond);
  for (int i = 0; i < 2000; ++i) {
    network.inject(udp_to(Ipv4Addr(203, 0, 113, 1), 64,
                          static_cast<std::uint16_t>(i)),
                   128, r1, net::kMillisecond * (900 + i));
  }
  network.run_all();

  EXPECT_GT(network.stats().loop_crossings, 0u);
  ASSERT_FALSE(network.loop_crossings().empty());
  EXPECT_EQ(network.loop_crossings().front().dst_prefix24, dst);
  // Looping packets expired (TTL 64 burns out in the 2-node loop).
  EXPECT_GT(network.stats().ttl_expired, 0u);
  // After full convergence, traffic is delivered at the fallback egress.
  const auto late = network.inject(udp_to(Ipv4Addr(203, 0, 113, 1), 64, 9999),
                                   128, r1, network.now() + net::kSecond);
  network.run_all();
  EXPECT_EQ(network.fates().at(late).kind, FateKind::delivered);
  EXPECT_EQ(network.fates().at(late).final_node, r2);
}

TEST(Network, WithdrawWithoutFallbackIsCounted) {
  LineNet line;
  auto network = line.make();
  network.withdraw_best_egress(line.dst_prefix, 100);
  network.run_all();
  EXPECT_EQ(network.stats().withdraw_without_fallback, 1u);
  // Route unchanged: still delivered.
  const auto id = network.inject(udp_to(Ipv4Addr(203, 0, 113, 1), 64), 128,
                                 line.ingress, network.now() + 10);
  network.run_all();
  EXPECT_EQ(network.fates().at(id).kind, FateKind::delivered);
}

TEST(Network, WithdrawUnknownPrefixThrowsWhenApplied) {
  LineNet line;
  auto network = line.make();
  network.withdraw_best_egress(*Prefix::parse("9.9.9.0/24"), 100);
  EXPECT_THROW(network.run_all(), std::invalid_argument);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run_once = [] {
    LineNet line;
    auto network = line.make();
    for (int i = 0; i < 100; ++i) {
      network.inject(udp_to(Ipv4Addr(203, 0, 113, 5), 64,
                            static_cast<std::uint16_t>(i)),
                     500, line.ingress, i * 1000);
    }
    network.run_all();
    return network.stats();
  };
  const auto s1 = run_once();
  const auto s2 = run_once();
  EXPECT_EQ(s1.delivered, s2.delivered);
  EXPECT_EQ(s1.injected, s2.injected);
}

}  // namespace
}  // namespace rloop::sim
