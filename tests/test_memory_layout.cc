// Differential proof for the hot-path memory overhaul.
//
// The flat-table/arena detector (ReplicaDetector::detect), the SoA
// RecordStore, and the flat NonLoopedIndex are all optimizations with an
// exact-behavior contract: field-identical output to the straightforward
// structures they replaced. detect_reference() keeps the pre-overhaul engine
// verbatim as the oracle; these tests diff the two on synthetic and fuzzed
// traces, serially and across shard counts, and pin the allocation win the
// arena + flat table exist for.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/loop_detector.h"
#include "core/parallel.h"
#include "core/pipeline.h"
#include "core/prefix_index.h"
#include "core/record.h"
#include "core/record_store.h"
#include "core/replica_detector.h"
#include "core/replica_key.h"
#include "net/packet.h"
#include "net/trace.h"
#include "result_equality.h"
#include "trace_builder.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace {
// Global allocation counter for the arena/flat-map win assertion. Relaxed
// atomics: the counted sections below run single-threaded.
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}

// The nothrow forms must be replaced too: libstdc++'s std::get_temporary_buffer
// (stable_sort's merge buffer) allocates with nothrow new but releases through
// plain operator delete — leaving these to the runtime while overriding the
// plain forms above is an alloc/dealloc mismatch under ASan.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  return std::aligned_alloc(a, (size + a - 1) / a * a);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace rloop::core {
namespace {

using rloop::testing::TraceBuilder;
using rloop::testing::expect_equal_stream_vectors;

// A trace mixing every branch of the per-key state machine: clean loops,
// equal-TTL duplicates, TTL increases, timeout splits, malformed records,
// many keys colliding on the same destination /24.
net::Trace& synthetic_trace(TraceBuilder& builder) {
  net::TimeNs t = 0;
  // Clean replica streams of varying length and hop count.
  builder.replica_stream(t, net::Ipv4Addr(10, 1, 1, 1), 200, 7, 6, 2,
                         50 * net::kMillisecond);
  builder.replica_stream(t + net::kSecond, net::Ipv4Addr(10, 1, 1, 9), 150,
                         8, 12, 3, 20 * net::kMillisecond);
  // Same key re-observed after a quiet gap past stream_timeout: two streams.
  builder.replica_stream(t, net::Ipv4Addr(10, 2, 2, 2), 120, 21, 4, 2,
                         30 * net::kMillisecond);
  builder.replica_stream(t + 30 * net::kSecond, net::Ipv4Addr(10, 2, 2, 2),
                         120, 21, 4, 2, 30 * net::kMillisecond);
  // Equal-TTL duplicates inside a loop (link-layer copies).
  builder.packet(t, net::Ipv4Addr(10, 3, 3, 3), 90, 5);
  builder.packet(t + net::kMillisecond, net::Ipv4Addr(10, 3, 3, 3), 90, 5);
  builder.packet(t + 2 * net::kMillisecond, net::Ipv4Addr(10, 3, 3, 3), 88, 5);
  builder.packet(t + 3 * net::kMillisecond, net::Ipv4Addr(10, 3, 3, 3), 86, 5);
  // TTL increase: retransmission reusing the IP-ID, must split the stream.
  builder.packet(t, net::Ipv4Addr(10, 4, 4, 4), 60, 99);
  builder.packet(t + net::kMillisecond, net::Ipv4Addr(10, 4, 4, 4), 58, 99);
  builder.packet(t + 2 * net::kMillisecond, net::Ipv4Addr(10, 4, 4, 4), 64,
                 99);
  builder.packet(t + 3 * net::kMillisecond, net::Ipv4Addr(10, 4, 4, 4), 62,
                 99);
  // Background singletons and malformed records.
  for (int i = 0; i < 200; ++i) {
    builder.packet(t + i * net::kMillisecond,
                   net::Ipv4Addr(172, 16, static_cast<std::uint8_t>(i), 1),
                   64, static_cast<std::uint16_t>(1000 + i));
  }
  builder.raw(t + 5 * net::kMillisecond, std::vector<std::byte>(7));
  builder.raw(t + 6 * net::kMillisecond, {});
  return builder.trace();
}

// The fuzz generator from tests/test_fuzz.cc: random mixes of decreases,
// increases, duplicates, and timeout gaps over a pool of destinations.
net::Trace& fuzz_trace(TraceBuilder& builder, std::uint64_t seed) {
  util::Rng rng(seed);
  net::TimeNs t = 0;
  for (int burst = 0; burst < 120; ++burst) {
    const net::Ipv4Addr dst(static_cast<std::uint8_t>(rng.uniform_int(1, 223)),
                            static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                            static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                            10);
    const auto ip_id = static_cast<std::uint16_t>(
        rng.bernoulli(0.3) ? 65533 + rng.uniform_int(0, 5)
                           : rng.uniform_int(0, 65535));
    auto ttl = static_cast<int>(rng.uniform_int(2, 255));
    const int len = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < len; ++i) {
      builder.packet(t, dst, static_cast<std::uint8_t>(ttl), ip_id);
      switch (rng.uniform_int(0, 4)) {
        case 0:
          ttl = std::max(2, ttl - static_cast<int>(rng.uniform_int(1, 3)));
          break;
        case 1:
          ttl = std::min(255, ttl + static_cast<int>(rng.uniform_int(1, 64)));
          break;
        case 2:
          break;
        case 3:
          t += 11 * net::kSecond;
          break;
        default:
          ttl = std::max(2, ttl - 1);
          break;
      }
      t += static_cast<net::TimeNs>(rng.uniform_int(1, 2'000'000));
    }
    if (rng.bernoulli(0.1)) {
      builder.raw(t, std::vector<std::byte>(
                         static_cast<std::size_t>(rng.uniform_int(0, 30))));
    }
  }
  return builder.trace();
}

TEST(MemoryLayout, FlatDetectorMatchesReferenceOnSyntheticTrace) {
  TraceBuilder builder;
  const net::Trace& trace = synthetic_trace(builder);
  const auto records = parse_trace(trace);

  const ReplicaDetector detector;
  const auto reference = detector.detect_reference(trace, records);
  const auto flat = detector.detect(trace, records);
  ASSERT_GT(reference.size(), 4u) << "fixture must exercise the detector";
  expect_equal_stream_vectors(reference, flat, "streams");
}

TEST(MemoryLayout, FlatDetectorMatchesReferenceOnFuzzedTraces) {
  for (const std::uint64_t seed : {3u, 17u, 101u, 443u, 1009u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    TraceBuilder builder;
    const net::Trace& trace = fuzz_trace(builder, seed);
    const auto records = parse_trace(trace);

    const ReplicaDetector detector;
    expect_equal_stream_vectors(detector.detect_reference(trace, records),
                                detector.detect(trace, records), "streams");
  }
}

TEST(MemoryLayout, ShardedFlatDetectorMatchesReferenceAcrossShardCounts) {
  util::ThreadPool pool(4);
  for (const std::uint64_t seed : {17u, 101u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    TraceBuilder builder;
    const net::Trace& trace = fuzz_trace(builder, seed);
    const auto records = parse_trace(trace);

    const ReplicaDetector detector;
    const auto reference = detector.detect_reference(trace, records);
    for (const unsigned shards : {2u, 4u, 8u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      expect_equal_stream_vectors(
          reference, detector.detect_sharded(trace, records, pool, shards),
          "streams");
    }
  }
}

TEST(MemoryLayout, RecordStoreColumnsMatchParsedRecords) {
  TraceBuilder builder;
  const net::Trace& trace = synthetic_trace(builder);
  const auto records = parse_trace(trace);
  const auto store = RecordStore::build(trace, records);

  ASSERT_EQ(store.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(store.ok(i), records[i].ok) << i;
    EXPECT_EQ(store.ts(i), records[i].ts) << i;
    if (!records[i].ok) {
      EXPECT_EQ(store.key_hash(i), 0u) << i;
      continue;
    }
    EXPECT_EQ(store.ttl(i), records[i].pkt.ip.ttl) << i;
    EXPECT_EQ(store.dst(i), records[i].pkt.ip.dst) << i;
    EXPECT_TRUE(store.dst24(i) == records[i].dst24) << i;
    EXPECT_EQ(store.dst24_key(i),
              (std::uint64_t{records[i].dst24.addr.value} << 8) | 24u)
        << i;
    EXPECT_EQ(store.key_hash(i), replica_key_hash(trace[i].bytes())) << i;
    EXPECT_EQ(store.bytes(i).size(), trace[i].bytes().size()) << i;
  }
}

TEST(MemoryLayout, RecordStoreParallelBuildIsBytewiseIdentical) {
  TraceBuilder builder;
  const net::Trace& trace = fuzz_trace(builder, 29);
  const auto records = parse_trace(trace);
  const auto serial = RecordStore::build(trace, records);

  util::ThreadPool pool(4);
  for (const std::size_t chunk : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{1000}}) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    const auto parallel = RecordStore::build_parallel(trace, records, pool,
                                                      chunk);
    ASSERT_EQ(parallel.size(), serial.size());
    EXPECT_EQ(parallel.key_hash_column(), serial.key_hash_column());
    EXPECT_EQ(parallel.ts_column(), serial.ts_column());
  }
}

// Oracle for the flat NonLoopedIndex: the hash-map-of-vectors layout it
// replaced, rebuilt here in its simplest possible form.
class MapIndexOracle {
 public:
  MapIndexOracle(const std::vector<ParsedRecord>& records,
                 const std::vector<bool>& is_member) {
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (!records[i].ok || is_member[i]) continue;
      by_prefix_[records[i].dst24].push_back(records[i].ts);
    }
  }

  std::optional<net::TimeNs> first_in(const net::Prefix& prefix24,
                                      net::TimeNs from, net::TimeNs to) const {
    const auto it = by_prefix_.find(prefix24);
    if (it == by_prefix_.end()) return std::nullopt;
    const auto& ts = it->second;  // in time order: records arrive sorted
    const auto lo = std::lower_bound(ts.begin(), ts.end(), from);
    if (lo == ts.end() || *lo > to) return std::nullopt;
    return *lo;
  }

  std::size_t prefix_count() const { return by_prefix_.size(); }

 private:
  std::unordered_map<net::Prefix, std::vector<net::TimeNs>> by_prefix_;
};

TEST(MemoryLayout, FlatIndexMatchesHashMapOracle) {
  TraceBuilder builder;
  const net::Trace& trace = fuzz_trace(builder, 57);
  const auto records = parse_trace(trace);

  // Mark a deterministic pseudo-random subset as stream members so both
  // member and non-member records exist for every prefix mix.
  util::Rng rng(58);
  std::vector<bool> member(records.size(), false);
  for (std::size_t i = 0; i < member.size(); ++i) {
    member[i] = rng.bernoulli(0.3);
  }

  const NonLoopedIndex index(records, member);
  const MapIndexOracle oracle(records, member);
  EXPECT_EQ(index.prefix_count(), oracle.prefix_count());

  // Query every record's own prefix around its own timestamp, plus random
  // windows (including empty and inverted ones).
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!records[i].ok) continue;
    const auto& p = records[i].dst24;
    const net::TimeNs ts = records[i].ts;
    for (const auto& [from, to] :
         {std::pair<net::TimeNs, net::TimeNs>{ts, ts},
          {ts - net::kSecond, ts + net::kSecond},
          {ts + 1, ts + net::kSecond},
          {ts, ts - 1}}) {
      const auto got = index.first_in(p, from, to);
      const auto want = oracle.first_in(p, from, to);
      EXPECT_EQ(got, want) << "record " << i;
      EXPECT_EQ(index.any_in(p, from, to), want.has_value()) << "record " << i;
    }
  }
}

TEST(MemoryLayout, ShardedFlatIndexAnswersOwnPrefixLikeGlobal) {
  TraceBuilder builder;
  const net::Trace& trace = fuzz_trace(builder, 91);
  const auto records = parse_trace(trace);
  const std::vector<bool> member(records.size(), false);
  const auto store = RecordStore::build(trace, records);

  const NonLoopedIndex global(records, member);
  const NonLoopedIndex global_store(store, member);
  EXPECT_EQ(global_store.entry_count(), global.entry_count());

  constexpr unsigned kShards = 4;
  std::vector<NonLoopedIndex> shards;
  std::vector<NonLoopedIndex> shards_store;
  for (unsigned s = 0; s < kShards; ++s) {
    shards.emplace_back(records, member, s, kShards);
    shards_store.emplace_back(store, member, s, kShards);
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!records[i].ok) continue;
    const auto& p = records[i].dst24;
    const unsigned s = shard_of_prefix(p, kShards);
    const net::TimeNs ts = records[i].ts;
    const auto want = global.first_in(p, ts - net::kSecond, ts + net::kSecond);
    EXPECT_EQ(shards[s].first_in(p, ts - net::kSecond, ts + net::kSecond),
              want)
        << i;
    EXPECT_EQ(
        shards_store[s].first_in(p, ts - net::kSecond, ts + net::kSecond),
        want)
        << i;
    EXPECT_EQ(global_store.first_in(p, ts - net::kSecond, ts + net::kSecond),
              want)
        << i;
  }
}

TEST(MemoryLayout, FlatEngineAllocatesFarLessThanReference) {
  TraceBuilder builder;
  const net::Trace& trace = fuzz_trace(builder, 201);
  const auto records = parse_trace(trace);
  const auto store = RecordStore::build(trace, records);
  const ReplicaDetector detector;

  // Warm both paths once so one-time setup does not skew the counts.
  (void)detector.detect_reference(trace, records);
  (void)detector.detect(store);

  const auto count = [&](auto&& fn) {
    const auto before = g_alloc_count.load(std::memory_order_relaxed);
    fn();
    return g_alloc_count.load(std::memory_order_relaxed) - before;
  };
  const auto ref_allocs =
      count([&] { (void)detector.detect_reference(trace, records); });
  const auto flat_allocs = count([&] { (void)detector.detect(store); });

  // The arena + flat table exist to collapse the per-key node and per-stream
  // vector churn; require at least a 2x reduction so a regression that
  // quietly reintroduces per-record allocation fails here.
  EXPECT_LT(flat_allocs * 2, ref_allocs)
      << "flat=" << flat_allocs << " reference=" << ref_allocs;
  EXPECT_GT(ref_allocs, 100u) << "fixture too small to measure allocation";
}

TEST(MemoryLayout, WarmPipelineAllocatesNoMoreThanSerial) {
  // The staged dataflow's whole point of carrying a workspace: once warm,
  // a parallel run's per-call allocation (pool reused, columns reused, batch
  // rings reused, per-shard arenas rewound in place, validator/merger
  // scratch reused) must not exceed the serial path's — parallelism may not
  // buy its speed with allocator churn. bench_to_json gates the same claim
  // on the big cached trace; this pins it in the fast tier.
  TraceBuilder builder;
  const net::Trace& trace = fuzz_trace(builder, 202);

  LoopDetectorConfig serial_config;
  PipelineWorkspace workspace;
  LoopDetectorConfig parallel_config;
  parallel_config.parallel.num_threads = 4;
  parallel_config.parallel.shard_bits = 2;
  parallel_config.workspace = &workspace;

  // Warm both paths twice: the first parallel run builds the pool and sizes
  // every buffer, the second proves the sizing stuck.
  (void)detect_loops(trace, serial_config);
  (void)detect_loops(trace, parallel_config);
  (void)detect_loops(trace, parallel_config);

  const auto count = [&](auto&& fn) {
    const auto before = g_alloc_count.load(std::memory_order_relaxed);
    fn();
    return g_alloc_count.load(std::memory_order_relaxed) - before;
  };
  const auto serial_allocs =
      count([&] { (void)detect_loops(trace, serial_config); });
  const auto parallel_allocs =
      count([&] { (void)detect_loops(trace, parallel_config); });

  EXPECT_LE(parallel_allocs, serial_allocs)
      << "warm parallel=" << parallel_allocs << " serial=" << serial_allocs;
  EXPECT_GT(serial_allocs, 10u) << "fixture too small to measure allocation";
}

}  // namespace
}  // namespace rloop::core
