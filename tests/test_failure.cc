#include "sim/failure.h"

#include <gtest/gtest.h>

namespace rloop::sim {
namespace {

using net::Prefix;

FailurePlanConfig base_config() {
  FailurePlanConfig cfg;
  cfg.candidate_links = {0, 1, 2};
  cfg.candidate_prefixes = {*Prefix::parse("10.1.0.0/24"),
                            *Prefix::parse("10.2.0.0/24")};
  cfg.start = net::kSecond;
  cfg.horizon = 100 * net::kSecond;
  return cfg;
}

TEST(FailurePlan, GeneratesRequestedCounts) {
  auto cfg = base_config();
  cfg.link_event_count = 5;
  cfg.bgp_event_count = 4;
  util::Rng rng(1);
  const auto plan = make_failure_plan(cfg, rng);
  EXPECT_EQ(plan.link_events.size(), 5u);
  EXPECT_EQ(plan.bgp_events.size(), 4u);  // batch mean 1 -> one per event
}

TEST(FailurePlan, EventTimesWithinWindowAndSorted) {
  auto cfg = base_config();
  cfg.link_event_count = 20;
  cfg.bgp_event_count = 20;
  util::Rng rng(2);
  const auto plan = make_failure_plan(cfg, rng);
  for (std::size_t i = 0; i < plan.link_events.size(); ++i) {
    const auto& ev = plan.link_events[i];
    EXPECT_GE(ev.fail_at, cfg.start);
    EXPECT_LE(ev.fail_at, cfg.horizon);
    EXPECT_GT(ev.restore_at, ev.fail_at);
    if (i > 0) {
      EXPECT_GE(ev.fail_at, plan.link_events[i - 1].fail_at);
    }
  }
  for (std::size_t i = 0; i < plan.bgp_events.size(); ++i) {
    const auto& ev = plan.bgp_events[i];
    EXPECT_GE(ev.withdraw_at, cfg.start);
    EXPECT_GT(ev.reannounce_at, ev.withdraw_at);
    if (i > 0) {
      EXPECT_GE(ev.withdraw_at, plan.bgp_events[i - 1].withdraw_at);
    }
  }
}

TEST(FailurePlan, BatchingWithdrawsSeveralPrefixesAtOnce) {
  auto cfg = base_config();
  cfg.bgp_event_count = 10;
  cfg.bgp_batch_mean = 4.0;
  util::Rng rng(3);
  const auto plan = make_failure_plan(cfg, rng);
  EXPECT_GT(plan.bgp_events.size(), 10u);
  // Batched events share withdraw times; count distinct times.
  std::size_t distinct = 0;
  net::TimeNs last = -1;
  for (const auto& ev : plan.bgp_events) {
    if (ev.withdraw_at != last) {
      ++distinct;
      last = ev.withdraw_at;
    }
  }
  EXPECT_LE(distinct, 10u);
}

TEST(FailurePlan, DeterministicGivenSeed) {
  auto cfg = base_config();
  cfg.link_event_count = 8;
  cfg.bgp_event_count = 8;
  util::Rng rng1(7), rng2(7);
  const auto p1 = make_failure_plan(cfg, rng1);
  const auto p2 = make_failure_plan(cfg, rng2);
  ASSERT_EQ(p1.link_events.size(), p2.link_events.size());
  for (std::size_t i = 0; i < p1.link_events.size(); ++i) {
    EXPECT_EQ(p1.link_events[i].link, p2.link_events[i].link);
    EXPECT_EQ(p1.link_events[i].fail_at, p2.link_events[i].fail_at);
  }
}

TEST(FailurePlan, ValidatesConfiguration) {
  util::Rng rng(1);
  auto cfg = base_config();
  cfg.link_event_count = 1;
  cfg.candidate_links.clear();
  EXPECT_THROW(make_failure_plan(cfg, rng), std::invalid_argument);

  cfg = base_config();
  cfg.bgp_event_count = 1;
  cfg.candidate_prefixes.clear();
  EXPECT_THROW(make_failure_plan(cfg, rng), std::invalid_argument);

  cfg = base_config();
  cfg.horizon = cfg.start;
  EXPECT_THROW(make_failure_plan(cfg, rng), std::invalid_argument);
}

TEST(FailurePlan, ApplySchedulesLinkOutage) {
  // Two-node network with one link; the plan takes it down and back up.
  routing::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto ab = topo.add_link(a, b, net::kMillisecond, 1e9, 100, 1);
  Network network(topo, 1, {});
  network.attach_external_route({*Prefix::parse("203.0.113.0/24"), {b}});
  network.install_all_routes();

  FailurePlan plan;
  plan.link_events.push_back({ab, net::kSecond, 5 * net::kSecond});
  plan.apply(network);

  auto probe = [&](net::TimeNs t) {
    return network.inject(
        net::make_udp_packet(net::Ipv4Addr(10, 255, 0, 0),
                             net::Ipv4Addr(203, 0, 113, 1), 1, 2, 10, 64,
                             static_cast<std::uint16_t>(t / 1000)),
        60, a, t);
  };
  const auto before = probe(net::kMillisecond * 500);
  const auto during = probe(net::kSecond * 2);
  const auto after = probe(net::kSecond * 30);
  network.run_all();

  EXPECT_EQ(network.fates().at(before).kind, FateKind::delivered);
  EXPECT_NE(network.fates().at(during).kind, FateKind::delivered);
  EXPECT_EQ(network.fates().at(after).kind, FateKind::delivered);
}

}  // namespace
}  // namespace rloop::sim
