// Cross-module integration tests: simulate -> capture -> (pcap roundtrip) ->
// detect -> score against ground truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>

#include "baseline/comparison.h"
#include "core/impact.h"
#include "core/loop_detector.h"
#include "core/metrics.h"
#include "net/pcap.h"
#include "scenarios/backbone.h"
#include "telemetry/registry.h"

namespace rloop {
namespace {

scenarios::BackboneSpec small_spec(int k) {
  auto spec = scenarios::backbone_spec(k);
  spec.duration = 60 * net::kSecond;
  spec.igp_events = 2;
  spec.bgp_events = 5;
  return spec;
}

// Max, over packets headed for `loop.prefix24` during the loop interval, of
// how many times one packet traversed the tapped link (the simulator logs
// every captured traversal with its packet id). This is the quantity the
// paper's detector can actually see — a packet must appear >= min_replicas
// (3) times on the monitored link for its stream to survive validation, so
// truth loops reaching this bar are exactly the tap-detectable ones.
std::uint64_t max_tap_crossings_by_one_packet(
    const scenarios::BackboneRun& run, const baseline::TruthLoop& loop,
    net::TimeNs slack) {
  std::map<std::uint64_t, std::uint64_t> per_packet;
  for (const auto& crossing : run.network->tap_crossings()) {
    if (crossing.dst_prefix24 != loop.prefix24) continue;
    if (crossing.time < loop.start - slack || crossing.time > loop.end + slack)
      continue;
    ++per_packet[crossing.packet_id];
  }
  std::uint64_t best = 0;
  for (const auto& [id, count] : per_packet) best = std::max(best, count);
  return best;
}

bool loop_detected(const std::vector<core::RoutingLoop>& reports,
                   const baseline::TruthLoop& truth, net::TimeNs slack) {
  return std::any_of(reports.begin(), reports.end(),
                     [&](const core::RoutingLoop& r) {
                       return r.prefix24 == truth.prefix24 &&
                              r.start <= truth.end + slack &&
                              r.end + slack >= truth.start;
                     });
}

// Ground-truth recall: every simulated loop whose traffic crossed the
// monitored link >= 3 times (by one packet — the paper's detectability
// threshold) MUST be reported, by the serial and every parallel variant.
// BGP-only failure plans keep every convergence loop on the tapped artery,
// so the tap's partial view is total here. The crossing ground truth is
// cross-checked against the telemetry export
// (rloop_sim_loop_crossings_total) before use.
TEST(Integration, GroundTruthRecallOfTapVisibleLoopsIsTotal) {
  for (const int k : {1, 4}) {
    SCOPED_TRACE("scenario=" + std::to_string(k));
    auto spec = scenarios::backbone_spec(k);
    spec.duration = 90 * net::kSecond;
    spec.igp_events = 0;
    spec.bgp_events = 8;
    telemetry::Registry registry;
    auto run = scenarios::build_backbone(spec, &registry);
    scenarios::execute(*run);

    // The simulator exports its crossing count through telemetry; the
    // in-memory log and the exported counter must agree before either is
    // trusted as ground truth.
    double exported = -1.0;
    for (const auto& m : registry.snapshot()) {
      if (m.name == "rloop_sim_loop_crossings_total") exported = m.value;
    }
    ASSERT_EQ(exported,
              static_cast<double>(run->network->loop_crossings().size()));

    const auto truth = run->truth_loops();
    constexpr net::TimeNs kSlack = 2 * net::kSecond;
    std::size_t detectable = 0;

    const auto serial = core::detect_loops(run->trace());
    for (const auto& t : truth) {
      if (max_tap_crossings_by_one_packet(*run, t, kSlack) < 3) continue;
      ++detectable;
      EXPECT_TRUE(loop_detected(serial.loops, t, kSlack))
          << "serial missed truth loop " << t.prefix24.to_string() << " ["
          << t.start << ", " << t.end << "] with " << t.crossings
          << " crossings";
    }
    ASSERT_GT(detectable, 0u) << "no detectable ground-truth loops; the "
                                 "recall assertion would be vacuous";

    for (const unsigned threads : {2u, 4u}) {
      core::LoopDetectorConfig config;
      config.parallel.num_threads = threads;
      const auto parallel = core::detect_loops(run->trace(), config);
      for (const auto& t : truth) {
        if (max_tap_crossings_by_one_packet(*run, t, kSlack) < 3) continue;
        EXPECT_TRUE(loop_detected(parallel.loops, t, kSlack))
            << "parallel(" << threads << ") missed truth loop "
            << t.prefix24.to_string();
      }
    }
  }
}

// Precision on a loop-free run: with no failures there are no loops, and
// the pipeline — serial and parallel — must report zero validated streams
// and zero loops (false streams would poison every paper table).
TEST(Integration, LoopFreeRunYieldsZeroFalseStreams) {
  auto spec = scenarios::backbone_spec(2);
  spec.duration = 60 * net::kSecond;
  spec.igp_events = 0;
  spec.bgp_events = 0;
  auto run = scenarios::build_backbone(spec);
  scenarios::execute(*run);
  ASSERT_TRUE(run->network->loop_crossings().empty())
      << "failure-free run unexpectedly looped";

  const auto serial = core::detect_loops(run->trace());
  EXPECT_EQ(serial.valid_streams.size(), 0u);
  EXPECT_EQ(serial.loops.size(), 0u);
  EXPECT_EQ(serial.validation.accepted, 0u);

  core::LoopDetectorConfig config;
  config.parallel.num_threads = 4;
  config.parallel.shard_bits = 4;
  const auto parallel = core::detect_loops(run->trace(), config);
  EXPECT_EQ(parallel.valid_streams.size(), 0u);
  EXPECT_EQ(parallel.loops.size(), 0u);
  EXPECT_EQ(parallel.validation.accepted, 0u);
}

TEST(Integration, DetectorFindsSimulatedLoopsWithHighPrecision) {
  auto run = scenarios::build_backbone(small_spec(1));
  scenarios::execute(*run);

  const auto result = core::detect_loops(run->trace());
  const auto truth = run->truth_loops();
  ASSERT_GT(truth.size(), 0u) << "scenario produced no ground-truth loops";
  ASSERT_GT(result.loops.size(), 0u) << "detector found nothing";

  const auto score = baseline::score_passive(truth, result.loops,
                                             /*slack=*/2 * net::kSecond);
  // Every reported loop must correspond to a real one (the validation step
  // exists precisely to kill false positives).
  EXPECT_EQ(score.unmatched_reports, 0u)
      << "false positives: " << score.unmatched_reports << "/" << score.reports;
  // The tap sees only loops whose cycle crosses it, so recall over ALL
  // network loops is partial — but it must be nonzero.
  EXPECT_GT(score.recall(), 0.0);
}

TEST(Integration, DetectedTtlDeltasMatchTopology) {
  // Scenarios 1-3 (no transit chain): every tap-visible loop cycle is the
  // X<->Y pair, so all detected deltas must be exactly 2.
  auto run = scenarios::build_backbone(small_spec(2));
  scenarios::execute(*run);
  const auto result = core::detect_loops(run->trace());
  ASSERT_GT(result.valid_streams.size(), 0u);
  const auto hist = core::ttl_delta_distribution(result.valid_streams);
  EXPECT_EQ(hist.mode(), 2);
  EXPECT_GT(hist.fraction(2), 0.95);
}

TEST(Integration, TransitChainYieldsMixedDeltas) {
  auto spec = small_spec(4);
  spec.duration = 3 * net::kMinute;
  spec.bgp_events = 10;
  auto run = scenarios::build_backbone(spec);
  scenarios::execute(*run);
  const auto result = core::detect_loops(run->trace());
  ASSERT_GT(result.valid_streams.size(), 0u);
  const auto hist = core::ttl_delta_distribution(result.valid_streams);
  // Backbone 4's signature: both delta-2 (X<->M) and delta-3 (X->M->Y->X).
  EXPECT_GT(hist.count(2), 0u);
  EXPECT_GT(hist.count(3), 0u);
}

TEST(Integration, PcapRoundtripPreservesDetection) {
  auto run = scenarios::build_backbone(small_spec(3));
  scenarios::execute(*run);

  const auto path = (std::filesystem::temp_directory_path() /
                     "rloop_integration_roundtrip.pcap")
                        .string();
  net::write_pcap(run->trace(), path);
  const auto reread = net::read_pcap(path);
  std::filesystem::remove(path);

  ASSERT_EQ(reread.size(), run->trace().size());
  const auto direct = core::detect_loops(run->trace());
  const auto via_pcap = core::detect_loops(reread);
  EXPECT_EQ(direct.valid_streams.size(), via_pcap.valid_streams.size());
  ASSERT_EQ(direct.loops.size(), via_pcap.loops.size());
  for (std::size_t i = 0; i < direct.loops.size(); ++i) {
    EXPECT_EQ(direct.loops[i].prefix24, via_pcap.loops[i].prefix24);
    EXPECT_EQ(direct.loops[i].replica_count, via_pcap.loops[i].replica_count);
  }
}

TEST(Integration, ReplicaCountsFollowInitialTtls) {
  // Streams from TTL-64 packets in a delta-2 loop top out around 30
  // replicas; TTL-128 around 62 (paper Figure 3's jumps).
  auto run = scenarios::build_backbone(small_spec(1));
  scenarios::execute(*run);
  const auto result = core::detect_loops(run->trace());
  std::size_t max_stream = 0;
  for (const auto& stream : result.valid_streams) {
    if (stream.dominant_ttl_delta() == 2) {
      max_stream = std::max(max_stream, stream.size());
    }
  }
  ASSERT_GT(max_stream, 0u);
  EXPECT_LE(max_stream, 64u + 2u);  // bounded by max initial TTL 128 / 2
}

TEST(Integration, GroundTruthEscapesMatchTraceEstimates) {
  auto spec = small_spec(1);
  spec.duration = 2 * net::kMinute;
  spec.bgp_events = 8;
  auto run = scenarios::build_backbone(spec);
  scenarios::execute(*run);

  // Ground truth: delivered packets that crossed a loop.
  std::uint64_t gt_escaped = 0, gt_looped = 0;
  for (const auto& fate : run->network->fates()) {
    if (fate.loop_crossings > 0) {
      ++gt_looped;
      if (fate.kind == sim::FateKind::delivered) ++gt_escaped;
    }
  }
  ASSERT_GT(gt_looped, 0u);

  const auto result = core::detect_loops(run->trace());
  const auto impact = core::estimate_impact(result);
  // The trace-side estimate cannot be exact (it sees one link), but both
  // must agree that escapes are a small minority.
  const double gt_fraction =
      static_cast<double>(gt_escaped) / static_cast<double>(gt_looped);
  EXPECT_LT(gt_fraction, 0.5);
  EXPECT_LT(impact.escape_fraction(), 0.5);
}

TEST(Integration, StatsAreConserved) {
  auto run = scenarios::build_backbone(small_spec(2));
  scenarios::execute(*run);
  const auto& stats = run->network->stats();
  // Every injected packet is accounted for exactly once: delivered, dropped,
  // or still in flight at the horizon (long-lived flows keep injecting past
  // the workload end).
  std::uint64_t in_flight = 0;
  for (const auto& fate : run->network->fates()) {
    if (fate.kind == sim::FateKind::in_flight) ++in_flight;
  }
  const auto accounted = stats.delivered + stats.total_dropped() + in_flight;
  EXPECT_EQ(accounted, stats.injected);
  // The overwhelming majority completed within the horizon.
  EXPECT_LT(in_flight, stats.injected / 20);
}

}  // namespace
}  // namespace rloop
