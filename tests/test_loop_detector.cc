#include "core/loop_detector.h"

#include <gtest/gtest.h>

#include "net/packet.h"
#include "sim/network.h"
#include "trace_builder.h"
#include "trafficgen/flow.h"

namespace rloop::core {
namespace {

using net::Ipv4Addr;
using rloop::testing::TraceBuilder;

TEST(LoopDetector, EndToEndOnSyntheticTrace) {
  TraceBuilder builder;
  const Ipv4Addr dst(203, 0, 113, 10);
  // Background traffic to other prefixes.
  for (int i = 0; i < 100; ++i) {
    builder.packet(i * 10'000, Ipv4Addr(198, 18, 0, 5),
                   64, static_cast<std::uint16_t>(i));
  }
  builder.replica_stream(500'000, dst, 60, 777, 8, 2, net::kMillisecond);

  const auto result = detect_loops(builder.trace());
  EXPECT_EQ(result.total_records, 108u);
  EXPECT_EQ(result.parse_failures, 0u);
  EXPECT_EQ(result.raw_streams.size(), 1u);
  EXPECT_EQ(result.valid_streams.size(), 1u);
  ASSERT_EQ(result.loops.size(), 1u);
  EXPECT_EQ(result.looped_packet_records(), 8u);
  EXPECT_EQ(result.looped_unique_packets(), 1u);
  EXPECT_EQ(result.validation.accepted, 1u);
}

TEST(LoopDetector, CountsParseFailures) {
  TraceBuilder builder;
  builder.packet(0, Ipv4Addr(1, 2, 3, 4), 64, 1);
  builder.raw(1000, std::vector<std::byte>(10));
  const auto result = detect_loops(builder.trace());
  EXPECT_EQ(result.total_records, 2u);
  EXPECT_EQ(result.parse_failures, 1u);
}

TEST(LoopDetector, EmptyTrace) {
  net::Trace trace("empty", 0);
  const auto result = detect_loops(trace);
  EXPECT_EQ(result.total_records, 0u);
  EXPECT_TRUE(result.loops.empty());
}

// Integration: simulate the Figure-1 scenario and check the detector's
// output against simulator ground truth.
TEST(LoopDetector, RecoversSimulatedBgpLoop) {
  routing::Topology topo;
  const auto r = topo.add_node("R");
  const auto r1 = topo.add_node("R1");
  const auto r2 = topo.add_node("R2");
  topo.add_link(r, r1, net::from_millis(0.5), 1e9, 200, 1);
  const auto r_r2 = topo.add_link(r, r2, net::from_millis(0.5), 1e9, 200, 1);
  topo.add_link(r1, r2, net::from_millis(0.5), 1e9, 200, 1);

  sim::NetworkConfig cfg;
  cfg.bgp.mrai_max = 2 * net::kSecond;
  sim::Network network(topo, 42, cfg);
  const auto dst_prefix = *net::Prefix::parse("203.0.113.0/24");
  network.attach_external_route({dst_prefix, {r, r2}});
  network.attach_external_route({*net::Prefix::parse("198.51.100.0/24"), {r1}});
  network.install_all_routes();
  const auto tap = network.add_tap(r_r2, r, "tap", 0);

  util::Rng rng(7);
  trafficgen::FlowSpec flow;
  flow.type = trafficgen::FlowType::udp;
  flow.src = Ipv4Addr(198, 51, 100, 10);
  flow.dst = Ipv4Addr(203, 0, 113, 25);
  flow.src_port = 40000;
  flow.dst_port = 53;
  flow.packet_count = 3000;
  flow.start = net::kSecond;
  flow.mean_gap = net::kMillisecond;
  flow.initial_ttl = 64;
  flow.ingress = r1;
  trafficgen::emit_flow(network, flow, rng);
  network.withdraw_best_egress(dst_prefix, 2 * net::kSecond);
  network.run_until(10 * net::kSecond);

  const auto result = detect_loops(network.tap_trace(tap));
  ASSERT_FALSE(result.loops.empty());
  EXPECT_EQ(result.loops.size(), 1u);
  const auto& loop = result.loops.front();
  EXPECT_EQ(loop.prefix24, dst_prefix);
  EXPECT_EQ(loop.ttl_delta, 2);

  // The detected interval must lie within the ground-truth loop interval.
  ASSERT_FALSE(network.loop_crossings().empty());
  net::TimeNs truth_start = network.loop_crossings().front().time;
  net::TimeNs truth_end = network.loop_crossings().back().time;
  EXPECT_GE(loop.start, truth_start - net::kSecond);
  EXPECT_LE(loop.end, truth_end + net::kSecond);

  // TTL-64 packets in a delta-2 loop leave ~30 replicas (paper Figure 3).
  const auto& stream = result.valid_streams.front();
  EXPECT_GE(stream.size(), 25u);
  EXPECT_LE(stream.size(), 33u);
}

TEST(LoopDetector, NoFalsePositivesOnLoopFreeSimulation) {
  routing::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto c = topo.add_node("c");
  topo.add_link(a, b, net::kMillisecond, 1e9, 500, 1);
  const auto bc = topo.add_link(b, c, net::kMillisecond, 1e9, 500, 1);

  sim::Network network(topo, 5, {});
  network.attach_external_route({*net::Prefix::parse("203.0.113.0/24"), {c}});
  network.attach_external_route({*net::Prefix::parse("198.51.100.0/24"), {a}});
  network.install_all_routes();
  const auto tap = network.add_tap(bc, b, "tap", 0);

  util::Rng rng(11);
  for (int f = 0; f < 50; ++f) {
    trafficgen::FlowSpec flow;
    flow.type = f % 3 == 0 ? trafficgen::FlowType::tcp
                           : trafficgen::FlowType::udp;
    flow.src = Ipv4Addr(198, 51, 100, static_cast<std::uint8_t>(f + 1));
    flow.dst = Ipv4Addr(203, 0, 113, static_cast<std::uint8_t>(f + 1));
    flow.src_port = static_cast<std::uint16_t>(10000 + f);
    flow.dst_port = 80;
    flow.packet_count = 40;
    flow.start = f * 10 * net::kMillisecond;
    flow.ingress = a;
    flow.first_ip_id = static_cast<std::uint16_t>(f * 1000);
    trafficgen::emit_flow(network, flow, rng);
  }
  network.run_all();

  const auto result = detect_loops(network.tap_trace(tap));
  EXPECT_EQ(network.stats().loop_crossings, 0u);
  EXPECT_TRUE(result.loops.empty());
  EXPECT_TRUE(result.valid_streams.empty());
}

}  // namespace
}  // namespace rloop::core
