#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "trace_builder.h"

namespace rloop::core {
namespace {

using net::Ipv4Addr;
using rloop::testing::TraceBuilder;

LoopDetectionResult sample_result() {
  TraceBuilder builder;
  builder.replica_stream(1000, Ipv4Addr(203, 0, 113, 10), 60, 7, 5, 2,
                         net::kMillisecond);
  builder.replica_stream(net::kSecond, Ipv4Addr(198, 18, 0, 9), 64, 8, 4, 3,
                         2 * net::kMillisecond);
  return detect_loops(builder.trace());
}

TEST(JsonEscape, EscapesControlAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonReport, ContainsSummaryAndLoops) {
  const auto result = sample_result();
  ReportOptions options;
  options.trace_name = "link \"7\"";
  options.trace_epoch_unix_s = 1'005'224'400;
  const auto json = json_report(result, options);

  EXPECT_NE(json.find("\"name\":\"link \\\"7\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch_unix_s\":1005224400"), std::string::npos);
  EXPECT_NE(json.find("\"loops\":"), std::string::npos);
  EXPECT_NE(json.find("\"prefix\":\"203.0.113.0/24\""), std::string::npos);
  EXPECT_NE(json.find("\"ttl_delta\":2"), std::string::npos);
  EXPECT_NE(json.find("\"ttl_delta\":3"), std::string::npos);
  EXPECT_NE(json.find("\"streams\":["), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(JsonReport, StreamsCanBeOmitted) {
  const auto result = sample_result();
  ReportOptions options;
  options.include_streams = false;
  const auto json = json_report(result, options);
  EXPECT_EQ(json.find("\"streams\":["), std::string::npos);
  EXPECT_NE(json.find("\"stream_count\":1"), std::string::npos);
}

TEST(JsonReport, EmptyResultIsValid) {
  net::Trace trace("empty", 0);
  const auto json = json_report(detect_loops(trace));
  EXPECT_NE(json.find("\"loops\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"records\":0"), std::string::npos);
}

TEST(LoopsCsv, OneRowPerLoopPlusHeader) {
  const auto result = sample_result();
  std::ostringstream os;
  write_loops_csv(os, result);
  const auto text = os.str();
  const auto lines = std::count(text.begin(), text.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), result.loops.size() + 1);
  EXPECT_NE(text.find("prefix,start_ns"), std::string::npos);
  EXPECT_NE(text.find("203.0.113.0/24,"), std::string::npos);
}

TEST(StreamsCsv, OneRowPerStreamPlusHeader) {
  const auto result = sample_result();
  std::ostringstream os;
  write_streams_csv(os, result);
  const auto text = os.str();
  const auto lines = std::count(text.begin(), text.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), result.valid_streams.size() + 1);
  EXPECT_NE(text.find("203.0.113.10,"), std::string::npos);
  EXPECT_NE(text.find("198.18.0.9,"), std::string::npos);
}

}  // namespace
}  // namespace rloop::core
