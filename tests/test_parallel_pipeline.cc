// Differential test harness for the sharded, multi-threaded pipeline: for
// every (num_threads, shard_bits) the parallel detect_loops() must produce
// FIELD-IDENTICAL results to the serial path — same raw streams (replica by
// replica, record index by record index), same validated streams, same
// loops, same ValidationStats. The sharding argument (parallel.h) says this
// holds for any trace; these tests check it on simulator-generated Backbone
// traces across seeds, on synthetic adversarial traces, and for the
// supporting primitives (parallel parse, key-hash consistency, pool
// exception propagation).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "core/loop_detector.h"
#include "core/parallel.h"
#include "core/replica_key.h"
#include "net/packet.h"
#include "result_equality.h"
#include "scenarios/backbone.h"
#include "trace_builder.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace rloop {
namespace {

using rloop::testing::TraceBuilder;
using rloop::testing::expect_equal_results;

constexpr unsigned kThreadCounts[] = {2, 4, 8};
constexpr unsigned kShardBits[] = {1, 4};

core::LoopDetectorConfig parallel_config(unsigned threads, unsigned bits) {
  core::LoopDetectorConfig config;
  config.parallel.num_threads = threads;
  config.parallel.shard_bits = bits;
  return config;
}

void expect_all_parallel_variants_match(const net::Trace& trace) {
  const auto serial = core::detect_loops(trace);
  for (const unsigned threads : kThreadCounts) {
    for (const unsigned bits : kShardBits) {
      SCOPED_TRACE("num_threads=" + std::to_string(threads) +
                   " shard_bits=" + std::to_string(bits));
      const auto parallel =
          core::detect_loops(trace, parallel_config(threads, bits));
      expect_equal_results(serial, parallel);
    }
  }
}

// The tentpole guarantee: on simulator-generated Backbone traces (real
// transient loops, full traffic mix) the parallel pipeline is
// shard-count-invariant and thread-count-invariant across >= 5 seeds.
TEST(ParallelPipeline, DifferentialOnBackboneTracesAcrossSeeds) {
  for (const std::uint64_t seed : {1u, 7u, 42u, 1234u, 99991u}) {
    auto spec = scenarios::backbone_spec(1 + static_cast<int>(seed % 4));
    spec.seed = seed;
    spec.duration = 45 * net::kSecond;
    spec.igp_events = 2;
    spec.bgp_events = 5;
    SCOPED_TRACE("seed=" + std::to_string(seed) + " scenario=" +
                 std::to_string(spec.index));
    auto run = scenarios::build_backbone(spec);
    scenarios::execute(*run);
    expect_all_parallel_variants_match(run->trace());
  }
}

// Adversarial synthetic trace: interleaved streams, equal-TTL duplicates,
// timeout splits, TTL increases (IP-ID reuse) and malformed records, all of
// which exercise the per-key state machine's edge transitions.
TEST(ParallelPipeline, DifferentialOnAdversarialSyntheticTrace) {
  TraceBuilder builder;
  const net::Ipv4Addr dst_a(203, 0, 113, 10);
  const net::Ipv4Addr dst_b(198, 18, 5, 20);
  // Two long interleaved streams.
  builder.replica_stream(0, dst_a, 64, 7, 12, 2, net::kMillisecond);
  builder.replica_stream(500, dst_b, 128, 9, 20, 3, 2 * net::kMillisecond);
  // Equal-TTL link-layer duplicates.
  builder.packet(5 * net::kMillisecond, dst_a, 60, 77);
  builder.packet(6 * net::kMillisecond, dst_a, 60, 77);
  // Timeout split: same key far apart.
  builder.replica_stream(net::kSecond, dst_b, 64, 11, 4, 2,
                         net::kMillisecond);
  builder.replica_stream(30 * net::kSecond, dst_b, 64, 11, 4, 2,
                         net::kMillisecond);
  // TTL increase (retransmission) mid-stream.
  builder.packet(40 * net::kSecond, dst_a, 30, 13);
  builder.packet(40 * net::kSecond + 1000, dst_a, 28, 13);
  builder.packet(40 * net::kSecond + 2000, dst_a, 64, 13);
  builder.packet(40 * net::kSecond + 3000, dst_a, 62, 13);
  // Healthy cross-traffic to a third prefix, plus malformed records.
  for (int i = 0; i < 200; ++i) {
    builder.packet(i * 137 * net::kMicrosecond, net::Ipv4Addr(192, 0, 2, 1),
                   64, static_cast<std::uint16_t>(i));
  }
  builder.raw(12 * net::kMillisecond, std::vector<std::byte>(9));
  builder.raw(13 * net::kMillisecond, std::vector<std::byte>(31));
  expect_all_parallel_variants_match(builder.trace());
}

// Degenerate shard/thread shapes: more shards than streams, more threads
// than hardware contexts, single shard under many threads.
TEST(ParallelPipeline, DegenerateShapesStillMatchSerial) {
  TraceBuilder builder;
  builder.replica_stream(0, net::Ipv4Addr(203, 0, 113, 10), 64, 7, 6, 2,
                         net::kMillisecond);
  const auto serial = core::detect_loops(builder.trace());
  const std::array<std::pair<unsigned, unsigned>, 3> shapes{
      {{2, 0}, {16, 1}, {3, 8}}};
  for (const auto& [threads, bits] : shapes) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads) +
                 " shard_bits=" + std::to_string(bits));
    const auto parallel =
        core::detect_loops(builder.trace(), parallel_config(threads, bits));
    expect_equal_results(serial, parallel);
  }
}

TEST(ParallelPipeline, EmptyTrace) {
  net::Trace trace("empty", 0);
  const auto result = core::detect_loops(trace, parallel_config(4, 4));
  EXPECT_EQ(result.total_records, 0u);
  EXPECT_TRUE(result.raw_streams.empty());
  EXPECT_TRUE(result.loops.empty());
}

TEST(ParallelPipeline, ParallelParseMatchesSerial) {
  TraceBuilder builder;
  util::Rng rng(17);
  for (int i = 0; i < 3000; ++i) {
    if (rng.bernoulli(0.05)) {
      builder.raw(i * 1000, std::vector<std::byte>(
                                static_cast<std::size_t>(
                                    rng.uniform_int(0, 20))));
    } else {
      builder.packet(i * 1000,
                     net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(i % 250),
                                   static_cast<std::uint8_t>(i % 200)),
                     static_cast<std::uint8_t>(rng.uniform_int(2, 255)),
                     static_cast<std::uint16_t>(i));
    }
  }
  const auto serial = core::parse_trace(builder.trace());
  util::ThreadPool pool(4);
  // Chunk sizes that do and do not divide the record count evenly.
  for (const std::size_t chunk : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{4096}}) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    const auto parallel =
        core::parse_trace_parallel(builder.trace(), pool, chunk);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].ok, serial[i].ok) << i;
      EXPECT_EQ(parallel[i].ts, serial[i].ts) << i;
      EXPECT_EQ(parallel[i].index, serial[i].index) << i;
      EXPECT_EQ(parallel[i].dst24, serial[i].dst24) << i;
      EXPECT_EQ(parallel[i].wire_len, serial[i].wire_len) << i;
    }
  }
}

// replica_key_hash (the shard-assignment fast path) must agree with the hash
// of the materialized key for arbitrary byte lengths, or records of one key
// could land in different shards and split a stream.
TEST(ParallelPipeline, ReplicaKeyHashMatchesMaterializedKey) {
  util::Rng rng(23);
  for (int trial = 0; trial < 5000; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 48));
    std::vector<std::byte> bytes(n);
    for (auto& b : bytes) b = static_cast<std::byte>(rng.next_u64());
    EXPECT_EQ(core::replica_key_hash(bytes), core::make_replica_key(bytes).hash);
  }
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  util::ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error("shard failed");
                        }),
      std::runtime_error);
  // The pool must remain usable after a failed fan-out.
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, QueueDepthGaugeRegistered) {
  telemetry::Registry registry;
  util::ThreadPool pool(2, &registry);
  pool.parallel_for(16, [](std::size_t) {});
  bool found_gauge = false;
  bool found_tasks = false;
  for (const auto& m : registry.snapshot()) {
    if (m.name == "rloop_threadpool_queue_depth") found_gauge = true;
    if (m.name == "rloop_threadpool_tasks_total") {
      found_tasks = true;
      EXPECT_GE(m.value, 16.0);
    }
  }
  EXPECT_TRUE(found_gauge);
  EXPECT_TRUE(found_tasks);
}

// The sharded path under a live registry must register per-shard latency
// histograms and still produce identical results (telemetry must never
// influence detection).
TEST(ParallelPipeline, PerShardTelemetryRegisteredAndHarmless) {
  TraceBuilder builder;
  builder.replica_stream(0, net::Ipv4Addr(203, 0, 113, 10), 64, 7, 8, 2,
                         net::kMillisecond);
  const auto serial = core::detect_loops(builder.trace());

  telemetry::Registry registry;
  auto config = parallel_config(4, 2);
  config.registry = &registry;
  const auto parallel = core::detect_loops(builder.trace(), config);
  expect_equal_results(serial, parallel);

  std::size_t shard_histograms = 0;
  std::size_t busy_counters = 0;
  std::size_t idle_counters = 0;
  for (const auto& m : registry.snapshot()) {
    if (m.name == "rloop_pipeline_shard_latency_ns") ++shard_histograms;
    if (m.name == "rloop_pipeline_stage_busy_ns_total") ++busy_counters;
    if (m.name == "rloop_pipeline_stage_idle_ns_total") ++idle_counters;
  }
  // 4 shards x 3 sharded stages (detect, validate, merge).
  EXPECT_EQ(shard_histograms, 12u);
  // Staged-dataflow occupancy: busy/idle per stage (ingest driver, detect
  // workers), surfaced through the existing registry — no new endpoint.
  EXPECT_EQ(busy_counters, 2u);
  EXPECT_EQ(idle_counters, 2u);
}

}  // namespace
}  // namespace rloop
