// Stdin format validator for the CI scrape-smoke job: feeds curl output
// through the same strict parsers the unit tests use.
//
//   format_check prom < metrics.txt   # Prometheus text exposition 0.0.4
//   format_check json < status.json   # strict JSON (RFC 8259 subset)
//
// Exit 0 on valid input, 1 with a diagnostic on stderr otherwise.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "json_lite.h"
#include "prom_lite.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s prom|json < input\n", argv[0]);
    return 2;
  }
  const std::string mode = argv[1];

  std::ostringstream buf;
  buf << std::cin.rdbuf();
  const std::string input = buf.str();

  std::string error;
  bool ok = false;
  if (mode == "prom") {
    ok = rloop::testing::is_valid_prometheus(input, &error);
  } else if (mode == "json") {
    ok = rloop::testing::is_valid_json(input, &error);
  } else {
    std::fprintf(stderr, "unknown mode '%s' (want prom|json)\n", mode.c_str());
    return 2;
  }
  if (!ok) {
    std::fprintf(stderr, "%s: invalid %s: %s\n", argv[0], mode.c_str(),
                 error.c_str());
    return 1;
  }
  return 0;
}
