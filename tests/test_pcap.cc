#include "net/pcap.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "net/packet.h"
#include "net/time.h"

namespace rloop::net {
namespace {

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("rloop_pcap_test_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
              ".pcap"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

ParsedPacket sample_packet(std::uint8_t ttl, std::uint16_t id) {
  return make_udp_packet(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(203, 0, 113, 5),
                         1234, 53, 64, ttl, id);
}

TEST_F(PcapTest, WriteReadRoundtrip) {
  Trace trace("rt", 1'005'224'400);
  for (int i = 0; i < 50; ++i) {
    trace.add(i * kMillisecond + i,  // ns-resolution offsets
              sample_packet(static_cast<std::uint8_t>(64 - i % 4),
                            static_cast<std::uint16_t>(i)),
              92);
  }
  write_pcap(trace, path_);
  const Trace back = read_pcap(path_);

  ASSERT_EQ(back.size(), trace.size());
  EXPECT_EQ(back.epoch_unix_s(), trace.epoch_unix_s());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back[i].ts, trace[i].ts) << i;
    EXPECT_EQ(back[i].wire_len, trace[i].wire_len) << i;
    EXPECT_EQ(back[i].cap_len, trace[i].cap_len) << i;
    EXPECT_EQ(back[i].data, trace[i].data) << i;
  }
}

TEST_F(PcapTest, NanosecondTimestampsPreserved) {
  Trace trace("ns", 1000);
  trace.add(123'456'789, sample_packet(64, 1), 92);
  write_pcap(trace, path_);
  const Trace back = read_pcap(path_);
  ASSERT_EQ(back.size(), 1u);
  // First record's second becomes the epoch; sub-second part is exact.
  EXPECT_EQ(back.epoch_unix_s() * kSecond + back[0].ts,
            1000 * kSecond + 123'456'789);
}

TEST_F(PcapTest, ReadsMicrosecondLittleEndianFiles) {
  // Hand-build a classic microsecond pcap with one raw-IP record.
  const auto pkt = sample_packet(60, 7);
  std::array<std::byte, kMaxHeaderBytes> pkt_buf{};
  const auto pkt_len = serialize_packet(pkt, pkt_buf);

  std::ofstream out(path_, std::ios::binary);
  auto le32 = [&](std::uint32_t v) {
    char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                 static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
    out.write(b, 4);
  };
  auto le16 = [&](std::uint16_t v) {
    char b[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
    out.write(b, 2);
  };
  le32(kPcapMagicMicros);
  le16(2);
  le16(4);
  le32(0);
  le32(0);
  le32(65535);
  le32(kLinktypeRaw);
  le32(500);      // seconds
  le32(250'000);  // microseconds
  le32(static_cast<std::uint32_t>(pkt_len));
  le32(static_cast<std::uint32_t>(pkt_len));
  out.write(reinterpret_cast<const char*>(pkt_buf.data()),
            static_cast<std::streamsize>(pkt_len));
  out.close();

  const Trace trace = read_pcap(path_);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.epoch_unix_s(), 500);
  EXPECT_EQ(trace[0].ts, 250 * kMillisecond);
  const auto parsed = parse_packet(trace[0].bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, pkt);
}

TEST_F(PcapTest, ReadsBigEndianFiles) {
  const auto pkt = sample_packet(60, 7);
  std::array<std::byte, kMaxHeaderBytes> pkt_buf{};
  const auto pkt_len = serialize_packet(pkt, pkt_buf);

  std::ofstream out(path_, std::ios::binary);
  auto be32 = [&](std::uint32_t v) {
    char b[4] = {static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                 static_cast<char>(v >> 8), static_cast<char>(v)};
    out.write(b, 4);
  };
  auto be16 = [&](std::uint16_t v) {
    char b[2] = {static_cast<char>(v >> 8), static_cast<char>(v)};
    out.write(b, 2);
  };
  be32(kPcapMagicMicros);
  be16(2);
  be16(4);
  be32(0);
  be32(0);
  be32(65535);
  be32(kLinktypeRaw);
  be32(42);
  be32(1);
  be32(static_cast<std::uint32_t>(pkt_len));
  be32(static_cast<std::uint32_t>(pkt_len));
  out.write(reinterpret_cast<const char*>(pkt_buf.data()),
            static_cast<std::streamsize>(pkt_len));
  out.close();

  const Trace trace = read_pcap(path_);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.epoch_unix_s(), 42);
}

TEST_F(PcapTest, ReadsEthernetFramesAndSkipsNonIpv4) {
  const auto pkt = sample_packet(61, 8);
  std::array<std::byte, kMaxHeaderBytes> pkt_buf{};
  const auto pkt_len = serialize_packet(pkt, pkt_buf);

  std::ofstream out(path_, std::ios::binary);
  auto le32 = [&](std::uint32_t v) {
    char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                 static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
    out.write(b, 4);
  };
  auto le16 = [&](std::uint16_t v) {
    char b[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
    out.write(b, 2);
  };
  le32(kPcapMagicNanos);
  le16(2);
  le16(4);
  le32(0);
  le32(0);
  le32(65535);
  le32(kLinktypeEthernet);

  auto write_frame = [&](std::uint16_t ethertype, bool include_payload) {
    const std::uint32_t frame_len =
        14 + (include_payload ? static_cast<std::uint32_t>(pkt_len) : 4);
    le32(7);
    le32(0);
    le32(frame_len);
    le32(frame_len);
    char eth[14] = {};
    eth[12] = static_cast<char>(ethertype >> 8);
    eth[13] = static_cast<char>(ethertype & 0xff);
    out.write(eth, 14);
    if (include_payload) {
      out.write(reinterpret_cast<const char*>(pkt_buf.data()),
                static_cast<std::streamsize>(pkt_len));
    } else {
      char junk[4] = {1, 2, 3, 4};
      out.write(junk, 4);
    }
  };
  write_frame(0x0806, false);  // ARP: skipped
  write_frame(0x0800, true);   // IPv4: kept
  out.close();

  const Trace trace = read_pcap(path_);
  ASSERT_EQ(trace.size(), 1u);
  const auto parsed = parse_packet(trace[0].bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, pkt);
}

TEST_F(PcapTest, RejectsBadMagic) {
  std::ofstream out(path_, std::ios::binary);
  const char junk[24] = {1, 2, 3};
  out.write(junk, sizeof junk);
  out.close();
  EXPECT_THROW(read_pcap(path_), std::runtime_error);
}

TEST_F(PcapTest, RejectsTruncatedHeader) {
  std::ofstream out(path_, std::ios::binary);
  const char junk[10] = {};
  out.write(junk, sizeof junk);
  out.close();
  EXPECT_THROW(read_pcap(path_), std::runtime_error);
}

TEST_F(PcapTest, RejectsMissingFile) {
  EXPECT_THROW(read_pcap("/nonexistent/dir/file.pcap"), std::runtime_error);
  Trace t("x", 0);
  EXPECT_THROW(write_pcap(t, "/nonexistent/dir/file.pcap"),
               std::runtime_error);
}

TEST_F(PcapTest, TruncatedFinalRecordIsCountedNotFatal) {
  // A capture that ends mid-record (killed tcpdump, full disk) must yield
  // every complete record plus a counted warning, not a failed read.
  Trace trace("rt", 0);
  trace.add(0, sample_packet(64, 1), 92);
  trace.add(kMillisecond, sample_packet(62, 2), 92);
  write_pcap(trace, path_);
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 3);  // chop into record 2's body

  telemetry::Registry reg;
  const Trace back = read_pcap(path_, &reg);
  EXPECT_EQ(back.size(), 1u) << "complete records must survive";
  EXPECT_EQ(back[0].data, trace[0].data);
  EXPECT_EQ(telemetry::get_counter(&reg, "rloop_pcap_truncated_records_total",
                                   {}, "")
                ->value(),
            1u);
}

TEST_F(PcapTest, TruncatedRecordHeaderIsCountedNotFatal) {
  Trace trace("rt", 0);
  trace.add(0, sample_packet(64, 1), 92);
  write_pcap(trace, path_);
  // Leave only 5 bytes of a would-be second record header.
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  const char junk[5] = {1, 2, 3, 4, 5};
  out.write(junk, sizeof junk);
  out.close();

  telemetry::Registry reg;
  const Trace back = read_pcap(path_, &reg);
  EXPECT_EQ(back.size(), 1u);
  EXPECT_EQ(telemetry::get_counter(&reg, "rloop_pcap_truncated_records_total",
                                   {}, "")
                ->value(),
            1u);
}

}  // namespace
}  // namespace rloop::net
