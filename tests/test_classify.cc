#include "core/classify.h"

#include "core/loop_detector.h"

#include <gtest/gtest.h>

#include "net/packet.h"
#include "net/prefix.h"
#include "sim/network.h"

namespace rloop::core {
namespace {

RoutingLoop loop_at(net::TimeNs start, net::TimeNs end) {
  RoutingLoop loop;
  loop.prefix24 = *net::Prefix::parse("203.0.113.0/24");
  loop.start = start;
  loop.end = end;
  return loop;
}

TEST(Classify, ShortLoopIsTransient) {
  const std::vector<RoutingLoop> loops = {loop_at(0, 3 * net::kSecond)};
  const auto result = classify_loops(loops, net::kMinute * 30);
  EXPECT_EQ(result.transient, 1u);
  EXPECT_EQ(result.persistent, 0u);
  EXPECT_EQ(result.classes[0], LoopClass::transient);
  EXPECT_DOUBLE_EQ(result.persistent_fraction(), 0.0);
}

TEST(Classify, LongLoopIsPersistent) {
  const std::vector<RoutingLoop> loops = {loop_at(0, 6 * net::kMinute)};
  const auto result = classify_loops(loops, net::kMinute * 30);
  EXPECT_EQ(result.persistent, 1u);
}

TEST(Classify, OngoingAtTraceEndIsPersistentIfOldEnough) {
  const net::TimeNs trace_end = 10 * net::kMinute;
  // Runs until the end, 2 minutes old: persistent.
  const std::vector<RoutingLoop> old_ongoing = {
      loop_at(8 * net::kMinute, trace_end - net::kSecond)};
  EXPECT_EQ(classify_loops(old_ongoing, trace_end).persistent, 1u);

  // Runs until the end but only 5 s old: could be a truncated transient.
  const std::vector<RoutingLoop> young_ongoing = {
      loop_at(trace_end - 5 * net::kSecond, trace_end - net::kSecond)};
  EXPECT_EQ(classify_loops(young_ongoing, trace_end).transient, 1u);
}

TEST(Classify, ThresholdConfigurable) {
  const std::vector<RoutingLoop> loops = {loop_at(0, 30 * net::kSecond)};
  ClassifierConfig cfg;
  cfg.persistent_threshold = 20 * net::kSecond;
  EXPECT_EQ(classify_loops(loops, net::kMinute * 30, cfg).persistent, 1u);
}

TEST(Classify, MixedPopulation) {
  const net::TimeNs trace_end = 60 * net::kMinute;
  const std::vector<RoutingLoop> loops = {
      loop_at(0, net::kSecond),
      loop_at(net::kMinute, net::kMinute + 8 * net::kMinute),
      loop_at(20 * net::kMinute, 20 * net::kMinute + 2 * net::kSecond),
  };
  const auto result = classify_loops(loops, trace_end);
  EXPECT_EQ(result.transient, 2u);
  EXPECT_EQ(result.persistent, 1u);
  EXPECT_NEAR(result.persistent_fraction(), 1.0 / 3.0, 1e-12);
}

// End-to-end: a misconfigured router produces a loop the detector finds and
// the classifier labels persistent.
TEST(Classify, DetectsInjectedMisconfigurationLoop) {
  routing::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto c = topo.add_node("c");
  const auto ab = topo.add_link(a, b, net::kMillisecond, 1e9, 400, 1);
  topo.add_link(b, c, net::kMillisecond, 1e9, 400, 1);

  sim::Network network(topo, 11, {});
  const auto prefix = *net::Prefix::parse("203.0.113.0/24");
  network.attach_external_route({prefix, {c}});
  network.attach_external_route({*net::Prefix::parse("198.51.100.0/24"), {a}});
  network.install_all_routes();
  const auto tap = network.add_tap(ab, a, "tap", 0);

  // At t=5s, b's operator fat-fingers a static route for the prefix back
  // toward a; cleared at t=6min.
  network.inject_misconfiguration(prefix, b, ab, 5 * net::kSecond);
  network.clear_misconfiguration(prefix, b, 6 * net::kMinute);

  // Steady trickle of traffic to the prefix for 7 simulated minutes.
  for (int i = 0; i < 7 * 60; ++i) {
    network.inject(
        net::make_udp_packet(net::Ipv4Addr(198, 51, 100, 5),
                             net::Ipv4Addr(203, 0, 113, 9), 1000, 53, 64, 64,
                             static_cast<std::uint16_t>(i)),
        104, a, i * net::kSecond);
  }
  network.run_all();

  const auto result = detect_loops(network.tap_trace(tap));
  ASSERT_EQ(result.loops.size(), 1u);
  EXPECT_GE(result.loops[0].duration(), 5 * net::kMinute);

  const auto& trace = network.tap_trace(tap);
  const auto classified =
      classify_loops(result.loops, trace.records().back().ts);
  EXPECT_EQ(classified.persistent, 1u);
  EXPECT_EQ(classified.transient, 0u);

  // The control log carries the misconfiguration events.
  bool saw_set = false, saw_clear = false;
  for (const auto& ev : network.control_log()) {
    if (ev.kind == sim::ControlEvent::Kind::misconfig_set) saw_set = true;
    if (ev.kind == sim::ControlEvent::Kind::misconfig_clear) saw_clear = true;
  }
  EXPECT_TRUE(saw_set);
  EXPECT_TRUE(saw_clear);
}

}  // namespace
}  // namespace rloop::core
