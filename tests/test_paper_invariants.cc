// Reproduction regression suite: the paper's headline SHAPES, asserted
// against the committed scenario seeds. If a refactor of the simulator,
// traffic generator or detector silently changes what the benches report,
// these tests fail before the bench output does.
//
// Each backbone is simulated once per process (shared fixture); the whole
// file costs roughly one backbone_study run.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/impact.h"
#include "core/loop_detector.h"
#include "core/metrics.h"
#include "scenarios/backbone.h"

namespace rloop {
namespace {

struct BackboneData {
  std::unique_ptr<scenarios::BackboneRun> run;
  core::LoopDetectionResult result;
};

const BackboneData& data(int k) {
  static std::map<int, BackboneData> cache;
  auto it = cache.find(k);
  if (it == cache.end()) {
    BackboneData d;
    d.run = scenarios::run_backbone(k);
    d.result = core::detect_loops(d.run->trace());
    it = cache.emplace(k, std::move(d)).first;
  }
  return it->second;
}

TEST(PaperInvariants, TableI_TrafficVolumes) {
  // B2 is the busy link; loops are rare everywhere (< 10 % of packets).
  const auto& b1 = data(1);
  const auto& b2 = data(2);
  EXPECT_GT(b2.run->trace().size(), 2 * b1.run->trace().size());
  for (int k = 1; k <= 4; ++k) {
    const auto& d = data(k);
    ASSERT_GT(d.run->trace().size(), 100'000u) << "backbone " << k;
    const double looped_fraction =
        static_cast<double>(d.result.looped_packet_records()) /
        static_cast<double>(d.run->trace().size());
    EXPECT_LT(looped_fraction, 0.10) << "backbone " << k;
  }
  // B1's looped fraction exceeds B2's (B2 is busier, loops similar).
  const double f1 = static_cast<double>(b1.result.looped_packet_records()) /
                    static_cast<double>(b1.run->trace().size());
  const double f2 = static_cast<double>(b2.result.looped_packet_records()) /
                    static_cast<double>(b2.run->trace().size());
  EXPECT_GT(f1, f2);
}

TEST(PaperInvariants, TableII_StreamsMergeIntoFewLoops) {
  for (int k : {1, 2, 4}) {
    const auto& d = data(k);
    ASSERT_GT(d.result.valid_streams.size(), 20u) << "backbone " << k;
    ASSERT_GT(d.result.loops.size(), 3u) << "backbone " << k;
    EXPECT_GT(d.result.valid_streams.size(), 3 * d.result.loops.size())
        << "backbone " << k;
  }
}

TEST(PaperInvariants, Fig2_TtlDeltaShapes) {
  // B1-B3: delta 2 dominates outright.
  for (int k : {1, 2, 3}) {
    const auto hist = core::ttl_delta_distribution(data(k).result.valid_streams);
    ASSERT_GT(hist.total(), 0u) << "backbone " << k;
    EXPECT_GT(hist.fraction(2), 0.9) << "backbone " << k;
  }
  // B4: delta 2 majority with a substantial delta-3 minority.
  const auto hist4 = core::ttl_delta_distribution(data(4).result.valid_streams);
  EXPECT_GT(hist4.fraction(2), hist4.fraction(3));
  EXPECT_GT(hist4.fraction(3), 0.15);
  EXPECT_LT(hist4.fraction(3), 0.60);
}

TEST(PaperInvariants, Fig3_ReplicaCountSteps) {
  // Steps from initial TTLs 64/128 in delta-2 loops: a run of sizes at
  // ~29-32 and, where 128-TTL packets looped, at ~60-64.
  const auto cdf = core::stream_size_cdf(data(1).result.valid_streams);
  ASSERT_FALSE(cdf.empty());
  const double step64 =
      cdf.fraction_at_or_below(32.5) - cdf.fraction_at_or_below(28.5);
  EXPECT_GT(step64, 0.2) << "no TTL-64 step";
  const double step128 =
      cdf.fraction_at_or_below(64.5) - cdf.fraction_at_or_below(59.5);
  EXPECT_GT(step128, 0.1) << "no TTL-128 step";
}

TEST(PaperInvariants, Fig4_SpacingUnder8msOnShortHaulLinks) {
  for (int k : {1, 2}) {
    const auto cdf = core::spacing_cdf_ms(data(k).result.valid_streams);
    ASSERT_FALSE(cdf.empty()) << "backbone " << k;
    EXPECT_GT(cdf.fraction_at_or_below(8.0), 0.9) << "backbone " << k;
  }
  // Long-haul B4 sits wider than B1.
  const auto b1 = core::spacing_cdf_ms(data(1).result.valid_streams);
  const auto b4 = core::spacing_cdf_ms(data(4).result.valid_streams);
  EXPECT_GT(b4.quantile(0.5), b1.quantile(0.5));
}

TEST(PaperInvariants, Fig5_TrafficMix) {
  for (int k = 1; k <= 4; ++k) {
    const auto mix = core::traffic_type_mix(data(k).result.records);
    EXPECT_GT(mix.fraction("TCP"), 0.80) << "backbone " << k;
    EXPECT_GT(mix.fraction("UDP"), 0.04) << "backbone " << k;
    EXPECT_LT(mix.fraction("UDP"), 0.20) << "backbone " << k;
    EXPECT_LT(mix.fraction("SYN"), 0.10) << "backbone " << k;
    EXPECT_GT(mix.fraction("ICMP"), 0.0) << "backbone " << k;
  }
}

TEST(PaperInvariants, Fig6_LoopedSynOverRepresentation) {
  // Aggregate across the busy traces: looped SYN share well above the
  // all-traffic SYN share.
  double looped_syn = 0, all_syn = 0;
  int counted = 0;
  for (int k : {1, 2}) {
    const auto& d = data(k);
    const auto all = core::traffic_type_mix(d.result.records);
    const auto looped =
        core::looped_type_mix(d.result.records, d.result.valid_streams);
    if (looped.total() == 0) continue;
    looped_syn += looped.fraction("SYN");
    all_syn += all.fraction("SYN");
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_GT(looped_syn, 2.0 * all_syn);
}

TEST(PaperInvariants, Fig9_LoopDurations) {
  // B3/B4: >= 85 % of loops under 10 s. B1: a real tail beyond 10 s.
  for (int k : {3, 4}) {
    const auto cdf = core::loop_duration_cdf_s(data(k).result.loops);
    ASSERT_FALSE(cdf.empty()) << "backbone " << k;
    EXPECT_GE(cdf.fraction_at_or_below(10.0), 0.85) << "backbone " << k;
  }
  const auto b1 = core::loop_duration_cdf_s(data(1).result.loops);
  ASSERT_FALSE(b1.empty());
  EXPECT_LT(b1.fraction_at_or_below(10.0), 0.9);
  EXPECT_GT(b1.max(), 20.0);
}

TEST(PaperInvariants, SectionVI_EscapesAreMinoritySomeExist) {
  std::uint64_t escaped = 0, looped = 0;
  for (int k : {1, 2, 4}) {
    for (const auto& fate : data(k).run->network->fates()) {
      if (fate.loop_crossings > 0) {
        ++looped;
        if (fate.kind == sim::FateKind::delivered) ++escaped;
      }
    }
  }
  ASSERT_GT(looped, 0u);
  const double fraction =
      static_cast<double>(escaped) / static_cast<double>(looped);
  EXPECT_GT(fraction, 0.0005);
  EXPECT_LT(fraction, 0.25);
}

TEST(PaperInvariants, DetectionIsSoundEverywhere) {
  // Precision guard: every reported loop corresponds to ground truth.
  for (int k = 1; k <= 4; ++k) {
    const auto& d = data(k);
    const auto truth = d.run->truth_loops();
    for (const auto& loop : d.result.loops) {
      bool matched = false;
      for (const auto& t : truth) {
        if (t.prefix24 == loop.prefix24 &&
            t.start - 2 * net::kSecond <= loop.end &&
            loop.start - 2 * net::kSecond <= t.end) {
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched) << "backbone " << k << " false positive on "
                           << loop.prefix24.to_string();
    }
  }
}

}  // namespace
}  // namespace rloop
