#include "core/stream_validator.h"

#include <gtest/gtest.h>

#include "trace_builder.h"

namespace rloop::core {
namespace {

using net::Ipv4Addr;
using rloop::testing::TraceBuilder;

const Ipv4Addr kDst(203, 0, 113, 10);
const Ipv4Addr kSamePrefix(203, 0, 113, 200);  // same /24 as kDst
const Ipv4Addr kOtherPrefix(198, 18, 5, 20);

struct ValidationRun {
  std::vector<ReplicaStream> valid;
  ValidationStats stats;
};

ValidationRun validate(TraceBuilder& builder, ValidatorConfig cfg = {}) {
  const auto records = parse_trace(builder.trace());
  const auto raw = ReplicaDetector(ReplicaDetectorConfig{}).detect(builder.trace(), records);
  ValidationRun run;
  run.valid = StreamValidator(cfg).validate(records, raw, &run.stats);
  return run;
}

TEST(StreamValidator, AcceptsCleanStream) {
  TraceBuilder builder;
  builder.replica_stream(1000, kDst, 60, 7, 10, 2, net::kMillisecond);
  const auto run = validate(builder);
  ASSERT_EQ(run.valid.size(), 1u);
  EXPECT_EQ(run.stats.accepted, 1u);
  EXPECT_EQ(run.stats.input_streams, 1u);
}

TEST(StreamValidator, RejectsTwoElementStreams) {
  // Link-layer duplicate: two identical observations.
  TraceBuilder builder;
  builder.packet(0, kDst, 60, 7);
  builder.packet(500, kDst, 60, 7);
  const auto run = validate(builder);
  EXPECT_TRUE(run.valid.empty());
  EXPECT_EQ(run.stats.rejected_too_small, 1u);
}

TEST(StreamValidator, MinReplicasConfigurable) {
  TraceBuilder builder;
  builder.packet(0, kDst, 60, 7);
  builder.packet(500, kDst, 58, 7);  // genuine 2-replica loop evidence
  ValidatorConfig cfg;
  cfg.min_replicas = 2;
  EXPECT_EQ(validate(builder, cfg).valid.size(), 1u);
  cfg.min_replicas = 3;
  EXPECT_TRUE(validate(builder, cfg).valid.empty());
}

TEST(StreamValidator, RejectsStreamWithHealthyPrefixTraffic) {
  // A non-looped packet to the same /24 inside the stream interval refutes
  // the loop: the prefix's forwarding was demonstrably fine.
  TraceBuilder builder;
  builder.packet(0, kDst, 60, 7);
  builder.packet(2 * net::kMillisecond, kSamePrefix, 64, 99);  // healthy!
  builder.packet(4 * net::kMillisecond, kDst, 58, 7);
  builder.packet(8 * net::kMillisecond, kDst, 56, 7);
  const auto run = validate(builder);
  EXPECT_TRUE(run.valid.empty());
  EXPECT_EQ(run.stats.rejected_prefix_conflict, 1u);
}

TEST(StreamValidator, HealthyTrafficOutsideIntervalIsFine) {
  TraceBuilder builder;
  builder.packet(0, kSamePrefix, 64, 99);  // before the loop
  builder.replica_stream(net::kSecond, kDst, 60, 7, 5, 2, net::kMillisecond);
  builder.packet(10 * net::kSecond, kSamePrefix, 64, 100);  // after
  EXPECT_EQ(validate(builder).valid.size(), 1u);
}

TEST(StreamValidator, OtherPrefixTrafficDoesNotInterfere) {
  TraceBuilder builder;
  builder.packet(0, kDst, 60, 7);
  builder.packet(net::kMillisecond, kOtherPrefix, 64, 99);
  builder.packet(2 * net::kMillisecond, kDst, 58, 7);
  builder.packet(4 * net::kMillisecond, kDst, 56, 7);
  EXPECT_EQ(validate(builder).valid.size(), 1u);
}

TEST(StreamValidator, ConcurrentStreamsToSamePrefixSupportEachOther) {
  // Two looped packets to the same /24, overlapping in time: each is the
  // other's "all packets to the prefix loop" evidence.
  TraceBuilder builder;
  for (int i = 0; i < 5; ++i) {
    const auto t = i * 2 * net::kMillisecond;
    builder.packet(t, kDst, static_cast<std::uint8_t>(60 - 2 * i), 7);
    builder.packet(t + net::kMillisecond, kSamePrefix,
                   static_cast<std::uint8_t>(58 - 2 * i), 9);
  }
  const auto run = validate(builder);
  EXPECT_EQ(run.valid.size(), 2u);
  EXPECT_EQ(run.stats.rejected_prefix_conflict, 0u);
}

TEST(StreamValidator, RawTwoElementStreamStillCountsAsLooped) {
  // A 2-element stream is itself rejected, but its packets are replicas and
  // must not refute an overlapping valid stream on the same prefix.
  TraceBuilder builder;
  for (int i = 0; i < 5; ++i) {
    builder.packet(i * 2 * net::kMillisecond, kDst,
                   static_cast<std::uint8_t>(60 - 2 * i), 7);
  }
  // Overlapping 2-element stream to the same prefix (different packet).
  builder.packet(net::kMillisecond, kSamePrefix, 50, 11);
  builder.packet(3 * net::kMillisecond, kSamePrefix, 48, 11);
  const auto run = validate(builder);
  ASSERT_EQ(run.valid.size(), 1u);
  EXPECT_EQ(run.stats.rejected_too_small, 1u);
  EXPECT_EQ(run.stats.rejected_prefix_conflict, 0u);
}

}  // namespace
}  // namespace rloop::core
