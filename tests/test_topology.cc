#include "routing/topology.h"

#include <gtest/gtest.h>

namespace rloop::routing {
namespace {

TEST(Topology, AddNodesAssignsIdsAndLoopbacks) {
  Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(topo.node(a).name, "a");
  EXPECT_NE(topo.node(a).loopback, topo.node(b).loopback);
}

TEST(Topology, AddLinkBuildsAdjacency) {
  Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto c = topo.add_node("c");
  const auto ab = topo.add_link(a, b, 1000, 1e9, 10, 1);
  const auto bc = topo.add_link(b, c, 2000, 1e9, 10, 2);

  ASSERT_EQ(topo.neighbors(b).size(), 2u);
  EXPECT_EQ(topo.neighbors(b)[0].neighbor, a);
  EXPECT_EQ(topo.neighbors(b)[0].link, ab);
  EXPECT_EQ(topo.neighbors(b)[1].neighbor, c);
  EXPECT_EQ(topo.neighbors(b)[1].link, bc);
  EXPECT_EQ(topo.link(bc).igp_cost, 2u);
  EXPECT_EQ(topo.link(ab).other(a), b);
  EXPECT_EQ(topo.link(ab).other(b), a);
}

TEST(Topology, FindLink) {
  Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto c = topo.add_node("c");
  const auto ab = topo.add_link(a, b, 1000, 1e9, 10);
  EXPECT_EQ(topo.find_link(a, b), ab);
  EXPECT_EQ(topo.find_link(b, a), ab);
  EXPECT_FALSE(topo.find_link(a, c).has_value());
  EXPECT_FALSE(topo.find_link(-1, c).has_value());
}

TEST(Topology, LinkStateToggles) {
  Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto ab = topo.add_link(a, b, 1000, 1e9, 10);
  EXPECT_TRUE(topo.link(ab).up);
  topo.set_link_up(ab, false);
  EXPECT_FALSE(topo.link(ab).up);
}

TEST(Topology, RejectsInvalidLinks) {
  Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  EXPECT_THROW(topo.add_link(a, a, 0, 1e9, 10), std::invalid_argument);
  EXPECT_THROW(topo.add_link(a, 7, 0, 1e9, 10), std::invalid_argument);
  EXPECT_THROW(topo.add_link(a, b, 0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(topo.add_link(a, b, 0, 1e9, 0), std::invalid_argument);
}

}  // namespace
}  // namespace rloop::routing
