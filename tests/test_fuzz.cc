// Fuzz-style robustness tests: untrusted bytes must never crash parsers or
// the detector (network data is hostile input).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/loop_detector.h"
#include "core/replica_key.h"
#include "core/streaming_detector.h"
#include "net/packet.h"
#include "net/pcap.h"
#include "result_equality.h"
#include "trace_builder.h"
#include "util/random.h"

namespace rloop {
namespace {

std::vector<std::byte> random_bytes(util::Rng& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next_u64());
  return out;
}

TEST(Fuzz, ParsePacketNeverCrashes) {
  util::Rng rng(1);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 60));
    auto bytes = random_bytes(rng, n);
    // Bias half the inputs toward "almost valid": version 4, IHL 5.
    if (!bytes.empty() && rng.bernoulli(0.5)) bytes[0] = std::byte{0x45};
    const auto parsed = net::parse_packet(bytes);
    if (parsed) {
      // Whatever parsed must be internally consistent enough to reserialize.
      std::array<std::byte, net::kMaxHeaderBytes> buf{};
      EXPECT_NO_THROW(net::serialize_packet(*parsed, buf));
    }
  }
}

TEST(Fuzz, ReplicaKeyHandlesArbitraryBytes) {
  util::Rng rng(2);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 40));
    const auto bytes = random_bytes(rng, n);
    const auto key = core::make_replica_key(bytes);
    EXPECT_EQ(key.len, n);
    // Identical input -> identical key, regardless of content.
    EXPECT_EQ(key, core::make_replica_key(bytes));
  }
}

TEST(Fuzz, DetectorSurvivesGarbageTrace) {
  util::Rng rng(3);
  net::Trace trace("garbage", 0);
  net::TimeNs t = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 45));
    auto bytes = random_bytes(rng, n);
    if (!bytes.empty() && rng.bernoulli(0.6)) bytes[0] = std::byte{0x45};
    trace.add(t, bytes, static_cast<std::uint32_t>(n));
    t += static_cast<net::TimeNs>(rng.uniform_int(0, 1'000'000));
  }
  const auto result = core::detect_loops(trace);
  EXPECT_EQ(result.total_records, 5000u);
  // Random bytes should essentially never produce validated loops: a loop
  // needs >= 3 byte-identical records with decrementing TTLs.
  EXPECT_EQ(result.loops.size(), 0u);
}

TEST(Fuzz, StreamingDetectorSurvivesGarbage) {
  util::Rng rng(4);
  core::StreamingDetector detector({}, nullptr);
  net::TimeNs t = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 45));
    auto bytes = random_bytes(rng, n);
    if (!bytes.empty() && rng.bernoulli(0.6)) bytes[0] = std::byte{0x45};
    detector.on_packet(t, bytes);
    t += static_cast<net::TimeNs>(rng.uniform_int(0, 100'000));
  }
  EXPECT_EQ(detector.packets_seen(), 20000u);
}

// Randomized TTL-sequence fuzzing through BOTH detector paths. Each trial
// builds a trace from a pool of flows whose observation sequences mix every
// TTL pattern the per-key state machine branches on — monotonic decreases
// (loop-like), TTL increases (retransmission with IP-ID reuse), equal-TTL
// duplicates (link-layer dups), quiet gaps exceeding stream_timeout
// (stream splits), and IP-ID wraparound — then asserts the serial and the
// sharded/parallel pipeline produce FIELD-IDENTICAL results and neither
// crashes. Any divergence here would mean sharding changed the algorithm.
TEST(Fuzz, RandomTtlSequencesSerialAndParallelNeverDiverge) {
  using rloop::testing::TraceBuilder;
  for (const std::uint64_t seed : {11u, 29u, 73u, 131u, 977u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::Rng rng(seed);
    TraceBuilder builder;
    net::TimeNs t = 0;
    for (int burst = 0; burst < 120; ++burst) {
      const net::Ipv4Addr dst(
          static_cast<std::uint8_t>(rng.uniform_int(1, 223)),
          static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
          static_cast<std::uint8_t>(rng.uniform_int(0, 255)), 10);
      // Bias IP-IDs toward the wrap point so successive bursts reuse ids
      // across the 16-bit boundary.
      const auto ip_id = static_cast<std::uint16_t>(
          rng.bernoulli(0.3) ? 65533 + rng.uniform_int(0, 5)
                             : rng.uniform_int(0, 65535));
      auto ttl = static_cast<int>(rng.uniform_int(2, 255));
      const int len = static_cast<int>(rng.uniform_int(1, 12));
      for (int i = 0; i < len; ++i) {
        builder.packet(t, dst, static_cast<std::uint8_t>(ttl), ip_id);
        switch (rng.uniform_int(0, 4)) {
          case 0:  // loop-like monotonic decrease
            ttl = std::max(2, ttl - static_cast<int>(rng.uniform_int(1, 3)));
            break;
          case 1:  // TTL increase (retransmission reusing the IP-ID)
            ttl = std::min(255, ttl + static_cast<int>(rng.uniform_int(1, 64)));
            break;
          case 2:  // equal-TTL duplicate
            break;
          case 3:  // quiet gap past stream_timeout: forces a stream split
            t += 11 * net::kSecond;
            break;
          default:
            ttl = std::max(2, ttl - 1);
            break;
        }
        t += static_cast<net::TimeNs>(rng.uniform_int(1, 2'000'000));
      }
      if (rng.bernoulli(0.1)) {  // interleave malformed records
        builder.raw(t, std::vector<std::byte>(
                           static_cast<std::size_t>(rng.uniform_int(0, 30))));
      }
    }

    const auto serial = core::detect_loops(builder.trace());
    for (const auto& [threads, bits] :
         {std::pair<unsigned, unsigned>{2, 1}, {4, 4}, {8, 2}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " bits=" + std::to_string(bits));
      core::LoopDetectorConfig config;
      config.parallel.num_threads = threads;
      config.parallel.shard_bits = bits;
      const auto parallel = core::detect_loops(builder.trace(), config);
      rloop::testing::expect_equal_results(serial, parallel);
    }
  }
}

// Pure-garbage traces through both paths: same no-crash guarantee as
// DetectorSurvivesGarbageTrace, plus no serial/parallel divergence even on
// mostly-unparseable input.
TEST(Fuzz, GarbageTraceSerialAndParallelNeverDiverge) {
  util::Rng rng(6);
  net::Trace trace("garbage", 0);
  net::TimeNs t = 0;
  for (int i = 0; i < 3000; ++i) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 45));
    auto bytes = random_bytes(rng, n);
    if (!bytes.empty() && rng.bernoulli(0.6)) bytes[0] = std::byte{0x45};
    trace.add(t, bytes, static_cast<std::uint32_t>(n));
    t += static_cast<net::TimeNs>(rng.uniform_int(0, 1'000'000));
  }
  const auto serial = core::detect_loops(trace);
  core::LoopDetectorConfig config;
  config.parallel.num_threads = 4;
  config.parallel.shard_bits = 3;
  const auto parallel = core::detect_loops(trace, config);
  rloop::testing::expect_equal_results(serial, parallel);
}

TEST(Fuzz, PcapReaderRejectsGarbageFilesGracefully) {
  util::Rng rng(5);
  const auto dir = std::filesystem::temp_directory_path();
  for (int trial = 0; trial < 60; ++trial) {
    const auto path =
        (dir / ("rloop_fuzz_" + std::to_string(trial) + ".pcap")).string();
    {
      std::ofstream out(path, std::ios::binary);
      const auto n = static_cast<std::size_t>(rng.uniform_int(0, 400));
      auto bytes = random_bytes(rng, n);
      // Half the trials get a valid magic so the reader goes deeper.
      if (n >= 4 && rng.bernoulli(0.5)) {
        bytes[0] = std::byte{0xd4};
        bytes[1] = std::byte{0xc3};
        bytes[2] = std::byte{0xb2};
        bytes[3] = std::byte{0xa1};
      }
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
    // Must either parse (possibly zero records) or throw cleanly.
    try {
      const auto trace = net::read_pcap(path);
      (void)trace;
    } catch (const std::runtime_error&) {
      // expected for malformed files
    }
    std::filesystem::remove(path);
  }
}

TEST(Fuzz, SampleTraceBounds) {
  net::Trace trace("t", 0);
  const auto pkt = net::make_udp_packet(net::Ipv4Addr(1, 2, 3, 4),
                                        net::Ipv4Addr(5, 6, 7, 8), 1, 2, 10,
                                        64, 1);
  for (int i = 0; i < 10000; ++i) trace.add(i, pkt, 50);

  EXPECT_EQ(net::sample_trace(trace, 1.0, 9).size(), 10000u);
  EXPECT_EQ(net::sample_trace(trace, 0.0, 9).size(), 0u);
  const auto half = net::sample_trace(trace, 0.5, 9);
  EXPECT_NEAR(static_cast<double>(half.size()), 5000.0, 300.0);
  // Deterministic.
  EXPECT_EQ(net::sample_trace(trace, 0.5, 9).size(), half.size());
  // Order preserved.
  for (std::size_t i = 1; i < half.size(); ++i) {
    EXPECT_GE(half[i].ts, half[i - 1].ts);
  }
  EXPECT_THROW(net::sample_trace(trace, 1.5, 9), std::invalid_argument);
}

}  // namespace
}  // namespace rloop
