// Fuzz-style robustness tests: untrusted bytes must never crash parsers or
// the detector (network data is hostile input).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/loop_detector.h"
#include "core/replica_key.h"
#include "core/streaming_detector.h"
#include "net/packet.h"
#include "net/pcap.h"
#include "util/random.h"

namespace rloop {
namespace {

std::vector<std::byte> random_bytes(util::Rng& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next_u64());
  return out;
}

TEST(Fuzz, ParsePacketNeverCrashes) {
  util::Rng rng(1);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 60));
    auto bytes = random_bytes(rng, n);
    // Bias half the inputs toward "almost valid": version 4, IHL 5.
    if (!bytes.empty() && rng.bernoulli(0.5)) bytes[0] = std::byte{0x45};
    const auto parsed = net::parse_packet(bytes);
    if (parsed) {
      // Whatever parsed must be internally consistent enough to reserialize.
      std::array<std::byte, net::kMaxHeaderBytes> buf{};
      EXPECT_NO_THROW(net::serialize_packet(*parsed, buf));
    }
  }
}

TEST(Fuzz, ReplicaKeyHandlesArbitraryBytes) {
  util::Rng rng(2);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 40));
    const auto bytes = random_bytes(rng, n);
    const auto key = core::make_replica_key(bytes);
    EXPECT_EQ(key.len, n);
    // Identical input -> identical key, regardless of content.
    EXPECT_EQ(key, core::make_replica_key(bytes));
  }
}

TEST(Fuzz, DetectorSurvivesGarbageTrace) {
  util::Rng rng(3);
  net::Trace trace("garbage", 0);
  net::TimeNs t = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 45));
    auto bytes = random_bytes(rng, n);
    if (!bytes.empty() && rng.bernoulli(0.6)) bytes[0] = std::byte{0x45};
    trace.add(t, bytes, static_cast<std::uint32_t>(n));
    t += static_cast<net::TimeNs>(rng.uniform_int(0, 1'000'000));
  }
  const auto result = core::detect_loops(trace);
  EXPECT_EQ(result.total_records, 5000u);
  // Random bytes should essentially never produce validated loops: a loop
  // needs >= 3 byte-identical records with decrementing TTLs.
  EXPECT_EQ(result.loops.size(), 0u);
}

TEST(Fuzz, StreamingDetectorSurvivesGarbage) {
  util::Rng rng(4);
  core::StreamingDetector detector({}, nullptr);
  net::TimeNs t = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 45));
    auto bytes = random_bytes(rng, n);
    if (!bytes.empty() && rng.bernoulli(0.6)) bytes[0] = std::byte{0x45};
    detector.on_packet(t, bytes);
    t += static_cast<net::TimeNs>(rng.uniform_int(0, 100'000));
  }
  EXPECT_EQ(detector.packets_seen(), 20000u);
}

TEST(Fuzz, PcapReaderRejectsGarbageFilesGracefully) {
  util::Rng rng(5);
  const auto dir = std::filesystem::temp_directory_path();
  for (int trial = 0; trial < 60; ++trial) {
    const auto path =
        (dir / ("rloop_fuzz_" + std::to_string(trial) + ".pcap")).string();
    {
      std::ofstream out(path, std::ios::binary);
      const auto n = static_cast<std::size_t>(rng.uniform_int(0, 400));
      auto bytes = random_bytes(rng, n);
      // Half the trials get a valid magic so the reader goes deeper.
      if (n >= 4 && rng.bernoulli(0.5)) {
        bytes[0] = std::byte{0xd4};
        bytes[1] = std::byte{0xc3};
        bytes[2] = std::byte{0xb2};
        bytes[3] = std::byte{0xa1};
      }
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
    // Must either parse (possibly zero records) or throw cleanly.
    try {
      const auto trace = net::read_pcap(path);
      (void)trace;
    } catch (const std::runtime_error&) {
      // expected for malformed files
    }
    std::filesystem::remove(path);
  }
}

TEST(Fuzz, SampleTraceBounds) {
  net::Trace trace("t", 0);
  const auto pkt = net::make_udp_packet(net::Ipv4Addr(1, 2, 3, 4),
                                        net::Ipv4Addr(5, 6, 7, 8), 1, 2, 10,
                                        64, 1);
  for (int i = 0; i < 10000; ++i) trace.add(i, pkt, 50);

  EXPECT_EQ(net::sample_trace(trace, 1.0, 9).size(), 10000u);
  EXPECT_EQ(net::sample_trace(trace, 0.0, 9).size(), 0u);
  const auto half = net::sample_trace(trace, 0.5, 9);
  EXPECT_NEAR(static_cast<double>(half.size()), 5000.0, 300.0);
  // Deterministic.
  EXPECT_EQ(net::sample_trace(trace, 0.5, 9).size(), half.size());
  // Order preserved.
  for (std::size_t i = 1; i < half.size(); ++i) {
    EXPECT_GE(half[i].ts, half[i - 1].ts);
  }
  EXPECT_THROW(net::sample_trace(trace, 1.5, 9), std::invalid_argument);
}

}  // namespace
}  // namespace rloop
