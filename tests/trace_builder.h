// Test helper: build synthetic traces with precise control over replicas.
//
// Records may be added in any time order; trace() stably sorts by timestamp
// before materializing the (time-ordered) Trace.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "net/trace.h"

namespace rloop::testing {

class TraceBuilder {
 public:
  // One ordinary UDP packet.
  void packet(net::TimeNs ts, net::Ipv4Addr dst, std::uint8_t ttl,
              std::uint16_t ip_id,
              net::Ipv4Addr src = net::Ipv4Addr(198, 51, 100, 1),
              std::uint16_t src_port = 1000, std::uint16_t dst_port = 2000) {
    entries_.push_back({ts,
                        net::make_udp_packet(src, dst, src_port, dst_port, 64,
                                             ttl, ip_id),
                        {},
                        false});
    dirty_ = true;
  }

  // A looped packet's replica stream: `count` observations starting at
  // `start`/`ttl0`, TTL decreasing by `delta` per observation, spaced
  // `spacing` apart. All observations share the same header bytes except
  // TTL/checksum, exactly like a real loop.
  void replica_stream(net::TimeNs start, net::Ipv4Addr dst, std::uint8_t ttl0,
                      std::uint16_t ip_id, int count, int delta,
                      net::TimeNs spacing,
                      net::Ipv4Addr src = net::Ipv4Addr(198, 51, 100, 1)) {
    for (int i = 0; i < count; ++i) {
      entries_.push_back(
          {start + i * spacing,
           net::make_udp_packet(src, dst, 1000, 2000, 64,
                                static_cast<std::uint8_t>(ttl0 - i * delta),
                                ip_id),
           {},
           false});
    }
    dirty_ = true;
  }

  // Raw bytes (e.g. malformed records).
  void raw(net::TimeNs ts, std::vector<std::byte> bytes) {
    entries_.push_back({ts, {}, std::move(bytes), true});
    dirty_ = true;
  }

  std::size_t size() const { return entries_.size(); }

  net::Trace& trace() {
    if (dirty_) {
      std::stable_sort(entries_.begin(), entries_.end(),
                       [](const Entry& a, const Entry& b) {
                         return a.ts < b.ts;
                       });
      trace_ = net::Trace("synthetic", 0);
      for (const auto& e : entries_) {
        if (e.is_raw) {
          trace_.add(e.ts, e.bytes, static_cast<std::uint32_t>(e.bytes.size()));
        } else {
          trace_.add(e.ts, e.pkt, e.pkt.ip.total_length);
        }
      }
      dirty_ = false;
    }
    return trace_;
  }

 private:
  struct Entry {
    net::TimeNs ts = 0;
    net::ParsedPacket pkt;
    std::vector<std::byte> bytes;
    bool is_raw = false;
  };
  std::vector<Entry> entries_;
  net::Trace trace_{"synthetic", 0};
  bool dirty_ = true;
};

}  // namespace rloop::testing
