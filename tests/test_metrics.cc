#include "core/metrics.h"

#include <gtest/gtest.h>

#include "trace_builder.h"

namespace rloop::core {
namespace {

using net::Ipv4Addr;
using rloop::testing::TraceBuilder;

LoopDetectionResult result_for(TraceBuilder& builder) {
  return detect_loops(builder.trace());
}

TEST(Metrics, TtlDeltaDistribution) {
  TraceBuilder builder;
  builder.replica_stream(0, Ipv4Addr(203, 0, 113, 1), 60, 1, 4, 2, 1000);
  builder.replica_stream(net::kSecond, Ipv4Addr(198, 18, 0, 1), 60, 2, 4, 2,
                         1000);
  builder.replica_stream(2 * net::kSecond, Ipv4Addr(198, 19, 0, 1), 60, 3, 4,
                         3, 1000);
  const auto result = result_for(builder);
  const auto hist = ttl_delta_distribution(result.valid_streams);
  EXPECT_EQ(hist.total(), 3u);
  EXPECT_EQ(hist.count(2), 2u);
  EXPECT_EQ(hist.count(3), 1u);
  EXPECT_NEAR(hist.fraction(2), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(hist.mode(), 2);
}

TEST(Metrics, StreamSizeCdf) {
  TraceBuilder builder;
  builder.replica_stream(0, Ipv4Addr(203, 0, 113, 1), 100, 1, 31, 2, 1000);
  builder.replica_stream(net::kSecond, Ipv4Addr(198, 18, 0, 1), 200, 2, 63, 2,
                         1000);
  const auto result = result_for(builder);
  const auto cdf = stream_size_cdf(result.valid_streams);
  ASSERT_EQ(cdf.size(), 2u);
  // The Figure 3 jumps: ~31 replicas for TTL 64, ~63 for TTL 128.
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(31), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(63), 1.0);
}

TEST(Metrics, SpacingCdfInMilliseconds) {
  TraceBuilder builder;
  builder.replica_stream(0, Ipv4Addr(203, 0, 113, 1), 60, 1, 5, 2,
                         2 * net::kMillisecond);
  const auto result = result_for(builder);
  const auto cdf = spacing_cdf_ms(result.valid_streams);
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_NEAR(cdf.min(), 2.0, 1e-9);
}

TEST(Metrics, DurationCdfs) {
  TraceBuilder builder;
  builder.replica_stream(0, Ipv4Addr(203, 0, 113, 1), 60, 1, 5, 2,
                         10 * net::kMillisecond);  // 40 ms duration
  const auto result = result_for(builder);
  const auto stream_cdf = stream_duration_cdf_ms(result.valid_streams);
  EXPECT_NEAR(stream_cdf.min(), 40.0, 1e-9);
  const auto loop_cdf = loop_duration_cdf_s(result.loops);
  EXPECT_NEAR(loop_cdf.min(), 0.04, 1e-9);
}

TEST(Metrics, PacketCategoriesMultiMembership) {
  const auto syn_ack = net::make_tcp_packet(
      Ipv4Addr(1, 2, 3, 4), Ipv4Addr(5, 6, 7, 8), 1, 2, 0, 0,
      net::kTcpSyn | net::kTcpAck, 0, 64, 1);
  const auto cats = packet_categories(syn_ack);
  EXPECT_EQ(cats, (std::vector<std::string>{"TCP", "ACK", "SYN"}));

  const auto udp = net::make_udp_packet(Ipv4Addr(1, 2, 3, 4),
                                        Ipv4Addr(5, 6, 7, 8), 1, 2, 0, 64, 1);
  EXPECT_EQ(packet_categories(udp), (std::vector<std::string>{"UDP"}));

  const auto mcast_udp = net::make_udp_packet(
      Ipv4Addr(1, 2, 3, 4), Ipv4Addr(224, 0, 1, 5), 1, 2, 0, 64, 1);
  EXPECT_EQ(packet_categories(mcast_udp),
            (std::vector<std::string>{"MCAST", "UDP"}));

  const auto icmp = net::make_icmp_packet(Ipv4Addr(1, 2, 3, 4),
                                          Ipv4Addr(5, 6, 7, 8),
                                          net::IcmpType::echo_request, 0, 0,
                                          32, 64, 1);
  EXPECT_EQ(packet_categories(icmp), (std::vector<std::string>{"ICMP"}));
}

TEST(Metrics, TrafficTypeMixFractions) {
  TraceBuilder builder;
  // 3 UDP packets + 1 looping UDP stream of 3 replicas: 6 UDP records.
  for (int i = 0; i < 3; ++i) {
    builder.packet(i * 1000, Ipv4Addr(198, 18, 0, 1), 64,
                   static_cast<std::uint16_t>(i));
  }
  builder.replica_stream(10'000, Ipv4Addr(203, 0, 113, 1), 60, 99, 3, 2, 100);
  const auto result = result_for(builder);

  const auto all = traffic_type_mix(result.records);
  EXPECT_EQ(all.total(), 6u);
  EXPECT_DOUBLE_EQ(all.fraction("UDP"), 1.0);
  EXPECT_DOUBLE_EQ(all.fraction("TCP"), 0.0);

  const auto looped = looped_type_mix(result.records, result.valid_streams);
  EXPECT_EQ(looped.total(), 3u);  // only the replicas
  EXPECT_DOUBLE_EQ(looped.fraction("UDP"), 1.0);
}

TEST(Metrics, DstTimeseries) {
  TraceBuilder builder;
  const Ipv4Addr dst(203, 0, 113, 42);
  builder.replica_stream(5 * net::kSecond, dst, 60, 1, 4, 2, 1000);
  const auto result = result_for(builder);
  const auto series = dst_timeseries(result.valid_streams);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_NEAR(series[0].time_s, 5.0, 1e-9);
  EXPECT_EQ(series[0].dst, dst);
}

}  // namespace
}  // namespace rloop::core
