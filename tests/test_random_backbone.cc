// Property tests over randomized topologies: the detector's guarantees must
// hold on networks it was never tuned for.
#include "scenarios/random_backbone.h"

#include <gtest/gtest.h>

#include "baseline/comparison.h"
#include "correlate/correlate.h"
#include "core/loop_detector.h"

namespace rloop::scenarios {
namespace {

class RandomBackbone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBackbone, DetectorPropertiesHold) {
  RandomBackboneConfig config;
  config.seed = GetParam();
  auto run = build_random_backbone(config);
  execute(*run);

  // The scenario must be alive: traffic flowed and crossed the tap.
  ASSERT_GT(run->trace().size(), 1000u);
  ASSERT_GT(run->network->stats().delivered, 0u);

  const auto result = core::detect_loops(run->trace());
  const auto truth = run->truth_loops();

  // Property 1: no false positives — every reported loop matches a
  // ground-truth loop interval on the same prefix.
  const auto score =
      baseline::score_passive(truth, result.loops, 2 * net::kSecond);
  EXPECT_EQ(score.unmatched_reports, 0u)
      << "false positives on seed " << GetParam();

  // Property 2: every reported loop is explained by the control-plane log.
  const auto explanations =
      correlate::explain_loops(result.loops, run->network->control_log());
  for (const auto& ex : explanations) {
    EXPECT_NE(ex.cause, correlate::Cause::unexplained)
        << "loop " << ex.loop_index << " unexplained on seed " << GetParam();
  }

  // Property 3: every validated stream has a sane loop signature.
  for (const auto& stream : result.valid_streams) {
    EXPECT_GE(stream.size(), 3u);
    EXPECT_GE(stream.dominant_ttl_delta(), 2);
    EXPECT_LE(stream.dominant_ttl_delta(), 32);
  }
}

TEST_P(RandomBackbone, DeterministicAcrossRuns) {
  RandomBackboneConfig config;
  config.seed = GetParam();
  config.duration = 20 * net::kSecond;
  config.bgp_events = 2;

  auto run1 = build_random_backbone(config);
  execute(*run1);
  auto run2 = build_random_backbone(config);
  execute(*run2);

  ASSERT_EQ(run1->trace().size(), run2->trace().size());
  EXPECT_EQ(run1->network->stats().loop_crossings,
            run2->network->stats().loop_crossings);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBackbone,
                         ::testing::Values(1, 7, 23, 91, 5150));

TEST(RandomBackbone, DifferentSeedsDifferentTopologies) {
  RandomBackboneConfig a, b;
  a.seed = 1;
  b.seed = 2;
  auto run_a = build_random_backbone(a);
  auto run_b = build_random_backbone(b);
  // Either node counts or link counts should differ for most seed pairs;
  // at minimum the generated prefix pools differ.
  const bool differs =
      run_a->network->topology().node_count() !=
          run_b->network->topology().node_count() ||
      run_a->network->topology().link_count() !=
          run_b->network->topology().link_count() ||
      run_a->destinations->prefixes() != run_b->destinations->prefixes();
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace rloop::scenarios
