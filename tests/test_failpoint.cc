// Unit tests for the failpoint framework (util/failpoint.h). This binary
// compiles with RLOOP_FAILPOINTS defined per-target, and deliberately
// exercises only sites evaluated in THIS translation unit — the production
// sites (arena.alloc, daemon.epoch, ...) live in library code compiled
// without the define here, and are exercised end-to-end by the
// crash-recovery soak and failpoint matrix in a -DRLOOP_FAILPOINTS=ON
// build (mixing per-target defines with header-inline sites would be an
// ODR violation, so we don't).
#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rloop::util {
namespace {

FailpointRegistry& reg() { return FailpointRegistry::instance(); }

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { reg().disarm_all(); }
};

TEST_F(FailpointTest, DisarmedSiteNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(RLOOP_FAILPOINT("test.disarmed"));
  }
  EXPECT_EQ(reg().site("test.disarmed").trips(), 0u);
}

TEST_F(FailpointTest, TripAlwaysFiresEveryEvaluation) {
  std::string error;
  ASSERT_TRUE(reg().arm("test.always", "trip", &error)) << error;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (RLOOP_FAILPOINT("test.always")) ++fired;
  }
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(reg().site("test.always").trips(), 10u);
  EXPECT_EQ(reg().site("test.always").hits(), 10u);
}

TEST_F(FailpointTest, NthTriggerFiresExactlyOnce) {
  std::string error;
  ASSERT_TRUE(reg().arm("test.nth", "trip@nth:7", &error)) << error;
  std::vector<int> fired_at;
  for (int i = 1; i <= 20; ++i) {
    if (RLOOP_FAILPOINT("test.nth")) fired_at.push_back(i);
  }
  EXPECT_EQ(fired_at, std::vector<int>{7});
  EXPECT_EQ(reg().site("test.nth").trips(), 1u);
}

TEST_F(FailpointTest, RearmResetsTheHitCounter) {
  std::string error;
  ASSERT_TRUE(reg().arm("test.rearm", "trip@nth:3", &error)) << error;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    if (RLOOP_FAILPOINT("test.rearm")) ++fired;
  }
  EXPECT_EQ(fired, 1);
  ASSERT_TRUE(reg().arm("test.rearm", "trip@nth:3", &error)) << error;
  for (int i = 0; i < 5; ++i) {
    if (RLOOP_FAILPOINT("test.rearm")) ++fired;
  }
  EXPECT_EQ(fired, 2);
}

TEST_F(FailpointTest, ProbZeroNeverFiresProbOneAlwaysFires) {
  std::string error;
  ASSERT_TRUE(reg().arm("test.prob", "trip@prob:0.0", &error)) << error;
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(RLOOP_FAILPOINT("test.prob"));
  }
  ASSERT_TRUE(reg().arm("test.prob", "trip@prob:1.0", &error)) << error;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(RLOOP_FAILPOINT("test.prob"));
  }
}

TEST_F(FailpointTest, ProbHalfFiresRoughlyHalfTheTime) {
  std::string error;
  ASSERT_TRUE(reg().arm("test.prob_half", "trip@prob:0.5", &error)) << error;
  int fired = 0;
  constexpr int kTrials = 10'000;
  for (int i = 0; i < kTrials; ++i) {
    if (RLOOP_FAILPOINT("test.prob_half")) ++fired;
  }
  // splitmix64 over a counter: tight concentration around 0.5.
  EXPECT_GT(fired, kTrials * 2 / 5);
  EXPECT_LT(fired, kTrials * 3 / 5);
}

TEST_F(FailpointTest, OffSpecDisarmsAnArmedSite) {
  std::string error;
  ASSERT_TRUE(reg().arm("test.off", "trip", &error)) << error;
  EXPECT_TRUE(RLOOP_FAILPOINT("test.off"));
  ASSERT_TRUE(reg().arm("test.off", "off", &error)) << error;
  EXPECT_FALSE(RLOOP_FAILPOINT("test.off"));
}

TEST_F(FailpointTest, ApplySpecArmsMultipleSites) {
  std::string error;
  ASSERT_TRUE(
      reg().apply_spec("test.multi_a=trip;test.multi_b=trip@nth:2", &error))
      << error;
  EXPECT_TRUE(RLOOP_FAILPOINT("test.multi_a"));
  EXPECT_FALSE(RLOOP_FAILPOINT("test.multi_b"));
  EXPECT_TRUE(RLOOP_FAILPOINT("test.multi_b"));
}

TEST_F(FailpointTest, MalformedSpecsAreRejectedWithMessages) {
  FailpointConfig cfg;
  std::string error;
  EXPECT_FALSE(FailpointRegistry::parse_spec("explode", cfg, &error));
  EXPECT_NE(error.find("unknown action"), std::string::npos);
  EXPECT_FALSE(FailpointRegistry::parse_spec("trip@sometimes", cfg, &error));
  EXPECT_NE(error.find("unknown trigger"), std::string::npos);
  EXPECT_FALSE(FailpointRegistry::parse_spec("trip@nth:zero", cfg, &error));
  EXPECT_FALSE(FailpointRegistry::parse_spec("trip@nth:0", cfg, &error));
  EXPECT_FALSE(FailpointRegistry::parse_spec("trip@prob:1.5", cfg, &error));
  EXPECT_FALSE(FailpointRegistry::parse_spec("trip@prob:x", cfg, &error));
  EXPECT_FALSE(reg().apply_spec("=trip", &error));
  EXPECT_FALSE(reg().apply_spec("noequals", &error));
}

TEST_F(FailpointTest, TripCountsReportEverySite) {
  std::string error;
  ASSERT_TRUE(reg().arm("test.counted", "trip", &error)) << error;
  (void)RLOOP_FAILPOINT("test.counted");
  (void)RLOOP_FAILPOINT("test.counted");
  bool found = false;
  for (const auto& [name, trips] : reg().trip_counts()) {
    if (name == "test.counted") {
      found = true;
      EXPECT_EQ(trips, 2u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(FailpointTest, SiteReferencesAreStable) {
  FailpointSite& a = reg().site("test.stable");
  FailpointSite& b = reg().site("test.stable");
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace rloop::util
