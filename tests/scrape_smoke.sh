#!/usr/bin/env bash
# Scrape smoke test: boot rloopd with the observability plane on an
# ephemeral port, hit all six endpoints with curl, validate every payload
# with the strict conformance parsers (format_check), and verify a clean
# SIGTERM drain. This is the CI scrape-smoke job; it also runs under ctest.
#
#   scrape_smoke.sh <path-to-rloopd> <path-to-format_check>
set -u

RLOOPD="${1:?usage: scrape_smoke.sh <rloopd> <format_check>}"
FORMAT_CHECK="${2:?usage: scrape_smoke.sh <rloopd> <format_check>}"

if ! command -v curl >/dev/null 2>&1; then
  echo "SKIP: curl not available" >&2
  exit 77
fi

WORK="$(mktemp -d)"
PID=""
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "--- rloopd stderr ---" >&2
  cat "$WORK/stderr.log" >&2 2>/dev/null
  exit 1
}

# Paced realtime replay of a ~55 s scenario: the daemon stays up for the
# whole scrape and is then stopped by SIGTERM, never by source exhaustion.
"$RLOOPD" --source scenario --scenario ddos_burst --speed 1 \
  --http-port 0 --quiet \
  >"$WORK/stdout.log" 2>"$WORK/stderr.log" &
PID=$!

# The ephemeral port is announced on stderr.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^rloopd: http listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
    "$WORK/stderr.log" 2>/dev/null | head -n 1)"
  [ -n "$PORT" ] && break
  kill -0 "$PID" 2>/dev/null || fail "rloopd exited during startup"
  sleep 0.1
done
[ -n "$PORT" ] && echo "scrape_smoke: rloopd up on port $PORT (pid $PID)" \
  || fail "no 'http listening' line within 10s"
BASE="http://127.0.0.1:$PORT"

# fetch <path> <expected-status> <out-file>
fetch() {
  local path="$1" want="$2" out="$3" code
  code="$(curl -s -o "$out" -w '%{http_code}' --max-time 10 "$BASE$path")" \
    || fail "curl $path failed"
  [ "$code" = "$want" ] || fail "$path returned $code, want $want"
}

fetch /healthz 200 "$WORK/healthz.txt"
grep -q "ok" "$WORK/healthz.txt" || fail "/healthz body: $(cat "$WORK/healthz.txt")"

# /readyz flips to 200 once the consumer loop has started; allow a moment.
READY=""
for _ in $(seq 1 50); do
  if [ "$(curl -s -o "$WORK/readyz.txt" -w '%{http_code}' --max-time 10 \
      "$BASE/readyz")" = "200" ]; then
    READY=1
    break
  fi
  sleep 0.1
done
[ -n "$READY" ] || fail "/readyz never reached 200: $(cat "$WORK/readyz.txt")"

fetch /metrics 200 "$WORK/metrics.txt"
"$FORMAT_CHECK" prom <"$WORK/metrics.txt" \
  || fail "/metrics failed Prometheus conformance"
grep -q '^rloop_build_info{' "$WORK/metrics.txt" \
  || fail "/metrics missing rloop_build_info"
grep -q '^rloop_daemon_ring_pushed_total ' "$WORK/metrics.txt" \
  || fail "/metrics missing daemon families"

fetch /status 200 "$WORK/status.json"
"$FORMAT_CHECK" json <"$WORK/status.json" || fail "/status is not strict JSON"
grep -q '"started":true' "$WORK/status.json" \
  || fail "/status does not report started"

fetch /loops 200 "$WORK/loops.json"
"$FORMAT_CHECK" json <"$WORK/loops.json" || fail "/loops is not strict JSON"

fetch /nope 404 "$WORK/nope.txt"

# /events is an endless SSE stream: sample it for 2 s and check the
# handshake comment arrived (alert frames depend on scenario timing).
curl -s --max-time 2 "$BASE/events" >"$WORK/events.txt"
grep -q '^: rloopd event stream' "$WORK/events.txt" \
  || fail "/events missing handshake comment: $(head -c 200 "$WORK/events.txt")"

# Clean drain: SIGTERM must produce exit 0.
kill -TERM "$PID"
EXIT=0
wait "$PID" || EXIT=$?
[ "$EXIT" = "0" ] || fail "rloopd exited $EXIT after SIGTERM"
PID=""

echo "scrape_smoke: OK (all endpoints conformant, clean drain)"
exit 0
